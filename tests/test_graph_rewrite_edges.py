"""graph/rewrite.py edge cases, each validated by the static verifier."""

import numpy as np
import pytest

import repro.graph as G
from repro.analysis.verify import verify_graph
from repro.graph import builder as gb
from repro.graph.rewrite import GraphRewriter, copy_graph


@pytest.fixture
def branching_graph(rng):
    with G.default_graph() as g:
        x = gb.placeholder(name="x")
        a = gb.relu(x)
        b = gb.square(a)     # consumer 1 of a
        c = gb.sqrt(a)       # consumer 2 of a
        out = gb.reduce_mean(b + c)
    return g, x, a, out


class TestMultiConsumerRewrite:
    def test_insert_after_rewires_every_consumer(self, branching_graph, rng):
        g, x, a, out = branching_graph
        clone, mapping = copy_graph(g)
        rewriter = GraphRewriter(clone, verify=True)
        relu = mapping[a.op.name]
        node = rewriter.insert_after_outputs(relu, (0,), lambda v: v + 1.0)
        consumers = [op for op in clone.operations
                     if any(e.op is node for e in op.inputs)]
        assert len(consumers) == 2  # Square and Sqrt both rewired
        assert not any(e.op is relu for op in clone.operations
                       if op is not node for e in op.inputs)
        report = verify_graph(clone, feed_shapes={"x": (3, 3)})
        assert report.ok, str(report)
        # wrapper passthrough keeps downstream shapes inferable
        assert report.shapes[node.outputs[0].name] == (3, 3)

    def test_executes_correctly(self, branching_graph, rng):
        g, x, a, out = branching_graph
        xv = np.abs(rng.standard_normal((3, 3))) + 0.1
        vanilla = G.Session(g).run(out, {x: xv})
        clone, mapping = copy_graph(g)
        GraphRewriter(clone).insert_after_outputs(
            mapping[a.op.name], (0,), lambda v: v)
        rewritten = G.Session(clone).run(
            clone.get_tensor(out.name), {clone.get_tensor(x.name): xv})
        np.testing.assert_allclose(rewritten, vanilla)


class TestReplaceGraphOutputOp:
    def test_replace_fetched_op(self, branching_graph, rng):
        g, x, a, out = branching_graph
        clone, mapping = copy_graph(g)
        rewriter = GraphRewriter(clone, verify=True)
        target = mapping[out.op.name]  # the graph's output op
        node = rewriter.replace_op(target, lambda *arrays: np.float64(42.0))
        # a fetch of the original output must be redirected to the wrapper
        redirects = {out.name: node.outputs[0]}
        report = verify_graph(clone, feed_shapes={"x": (3, 3)},
                              redirects=redirects, source_graph=g)
        assert report.ok, str(report)
        value = G.Session(clone).run(
            node.outputs[0],
            {clone.get_tensor(x.name): np.abs(rng.standard_normal((3, 3)))})
        assert float(value) == 42.0

    def test_replacement_has_replace_role(self, branching_graph):
        g, x, a, out = branching_graph
        clone, mapping = copy_graph(g)
        node = GraphRewriter(clone).replace_op(
            mapping[out.op.name], lambda *arrays: 0.0)
        assert node.tags["pycall_role"] == "replace"


class TestCopyGraphNoGradients:
    def test_copy_forward_only_graph(self, branching_graph):
        g, x, a, out = branching_graph
        assert not any(op.forward_op is not None for op in g.operations)
        clone, mapping = copy_graph(g)
        assert len(clone.operations) == len(g.operations)
        assert all(op.forward_op is None for op in clone.operations)
        report = verify_graph(clone, feed_shapes={"x": (3, 3)})
        assert report.ok, str(report)
        assert all(shape is not None for shape in report.shapes.values())

    def test_copy_shares_variable_store(self, rng):
        with G.default_graph() as g:
            w = gb.variable(rng.standard_normal((2, 2)), name="w")
            out = gb.square(w)
        clone, _ = copy_graph(g)
        assert clone.variables is g.variables
        assert verify_graph(clone).ok
