"""Convolution kernels: every algorithm against a scipy reference, plus
gradient checks and the cuDNN-style algorithm-selection heuristic."""

import numpy as np
import pytest
from scipy import signal

from repro.kernels import nn as K


def reference_conv(x, w, stride, pad):
    n, c, h, width = x.shape
    o, _, kh, kw = w.shape
    xp = np.pad(x, ((0, 0), (0, 0), (pad[0], pad[0]), (pad[1], pad[1])))
    oh, ow = K.out_hw(h, width, kh, kw, stride, pad)
    out = np.zeros((n, o, oh, ow))
    for ni in range(n):
        for oi in range(o):
            acc = np.zeros((xp.shape[2] - kh + 1, xp.shape[3] - kw + 1))
            for ci in range(c):
                acc += signal.correlate2d(xp[ni, ci], w[oi, ci], mode="valid")
            out[ni, oi] = acc[::stride[0], ::stride[1]]
    return out


CASES = [
    # (x shape, w shape, stride, padding, expected algorithm)
    ((2, 3, 8, 8), (4, 3, 3, 3), (1, 1), (1, 1), "winograd"),
    ((2, 3, 9, 9), (4, 3, 3, 3), (1, 1), (0, 0), "winograd"),
    ((1, 1, 4, 4), (1, 1, 3, 3), (1, 1), (1, 1), "winograd"),
    ((2, 3, 8, 8), (4, 3, 1, 1), (1, 1), (0, 0), "gemm_1x1"),
    ((2, 3, 16, 16), (4, 3, 3, 3), (2, 2), (1, 1), "im2col"),
    ((1, 2, 10, 12), (3, 2, 3, 5), (2, 1), (1, 2), "im2col"),
    ((2, 3, 20, 20), (4, 3, 7, 7), (1, 1), (3, 3), "fft"),
    ((2, 3, 16, 16), (4, 3, 5, 5), (1, 1), (2, 2), "fft"),
]


@pytest.mark.parametrize("x_shape,w_shape,stride,pad,algorithm", CASES)
def test_forward_matches_scipy(rng, x_shape, w_shape, stride, pad, algorithm):
    x = rng.standard_normal(x_shape)
    w = rng.standard_normal(w_shape)
    assert K.select_conv_algorithm(x_shape, w_shape, stride, pad) == algorithm
    got = K.conv2d_forward(x, w, stride, pad)
    want = reference_conv(x, w, stride, pad)
    np.testing.assert_allclose(got, want, atol=1e-10)


@pytest.mark.parametrize("forced", ["im2col", "winograd", "fft", "gemm_1x1"])
def test_forced_algorithms_agree(rng, forced):
    if forced == "gemm_1x1":
        x, w = rng.standard_normal((2, 3, 6, 6)), rng.standard_normal((4, 3, 1, 1))
        stride, pad = (1, 1), (0, 0)
    else:
        x, w = rng.standard_normal((2, 3, 8, 8)), rng.standard_normal((4, 3, 3, 3))
        stride, pad = (1, 1), (1, 1)
    baseline = K.conv2d_forward(x, w, stride, pad, algorithm="im2col")
    got = K.conv2d_forward(x, w, stride, pad, algorithm=forced)
    np.testing.assert_allclose(got, baseline, atol=1e-10)


@pytest.mark.parametrize("stride,pad", [((1, 1), (1, 1)), ((2, 2), (0, 0)),
                                        ((2, 1), (1, 2))])
def test_backward_input_numeric(rng, stride, pad):
    from tests.conftest import numeric_gradient
    x = rng.standard_normal((2, 2, 7, 8))
    w = rng.standard_normal((3, 2, 3, 3))
    out = K.conv2d_forward(x, w, stride, pad, algorithm="im2col")
    grad_out = rng.standard_normal(out.shape)
    got = K.conv2d_backward_input(grad_out, w, x.shape, stride, pad)
    want = numeric_gradient(
        lambda: K.conv2d_forward(x, w, stride, pad, algorithm="im2col"),
        x, grad_out)
    np.testing.assert_allclose(got, want, atol=1e-4)


@pytest.mark.parametrize("stride,pad", [((1, 1), (1, 1)), ((2, 2), (1, 1))])
def test_backward_weight_numeric(rng, stride, pad):
    from tests.conftest import numeric_gradient
    x = rng.standard_normal((2, 2, 6, 6))
    w = rng.standard_normal((3, 2, 3, 3))
    out = K.conv2d_forward(x, w, stride, pad, algorithm="im2col")
    grad_out = rng.standard_normal(out.shape)
    got = K.conv2d_backward_weight(grad_out, x, w.shape, stride, pad)
    want = numeric_gradient(
        lambda: K.conv2d_forward(x, w, stride, pad, algorithm="im2col"),
        w, grad_out)
    np.testing.assert_allclose(got, want, atol=1e-4)


def test_output_shape_helper():
    assert K.out_hw(16, 16, 3, 3, (1, 1), (1, 1)) == (16, 16)
    assert K.out_hw(16, 16, 3, 3, (2, 2), (1, 1)) == (8, 8)
    assert K.out_hw(8, 10, 5, 3, (1, 2), (2, 0)) == (8, 4)


def test_winograd_matches_on_odd_sizes(rng):
    # Winograd tiles are 2x2; odd output sizes exercise the crop path
    x = rng.standard_normal((1, 2, 7, 9))
    w = rng.standard_normal((3, 2, 3, 3))
    got = K.conv2d_forward(x, w, (1, 1), (1, 1), algorithm="winograd")
    want = K.conv2d_forward(x, w, (1, 1), (1, 1), algorithm="im2col")
    np.testing.assert_allclose(got, want, atol=1e-10)


def test_fft_with_stride_subsamples(rng):
    x = rng.standard_normal((1, 1, 12, 12))
    w = rng.standard_normal((1, 1, 5, 5))
    got = K.conv2d_forward(x, w, (2, 2), (2, 2), algorithm="fft")
    want = K.conv2d_forward(x, w, (2, 2), (2, 2), algorithm="im2col")
    np.testing.assert_allclose(got, want, atol=1e-10)
