"""Shared fixtures: deterministic RNG and global-state hygiene.

The instrumentation manager, allocation tracker, and kernel runtime are
process-global (as in the real frameworks); the autouse fixture verifies each
test leaves them clean so state cannot leak between tests.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.amanda import manager
from repro.eager import alloc
from repro.kernels.runtime import runtime as kernel_runtime


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(0)


@pytest.fixture(autouse=True)
def _clean_global_state():
    alloc.tracker.reset()
    manager.reset_timers()
    manager.reset_health()
    yield
    assert not manager.active, "test left the instrumentation manager active"
    assert not kernel_runtime.has_subscribers, \
        "test left a kernel profiler subscribed"


def numeric_gradient(f, array: np.ndarray, grad_output: np.ndarray,
                     eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar <f(array), grad_output>."""
    grad = np.zeros_like(array)
    it = np.nditer(array, flags=["multi_index"])
    for _ in it:
        index = it.multi_index
        original = array[index]
        array[index] = original + eps
        up = (f() * grad_output).sum()
        array[index] = original - eps
        down = (f() * grad_output).sum()
        array[index] = original
        grad[index] = (up - down) / (2 * eps)
    return grad
