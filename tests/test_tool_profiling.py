"""Profiling tools: FLOPs counting, sparsity, kernel-level aggregation."""

import numpy as np
import pytest

import repro.amanda as amanda
import repro.eager as E
import repro.graph as G
import repro.models.eager as M
from repro.amanda.tools import (FlopsProfilingTool, KernelProfilingTool,
                                SparsityProfilingTool)
from repro.eager import F
from repro.tools.profiling import flops_for


class TestFlopsFormulas:
    def test_linear_flops(self):
        assert flops_for("linear", [(4, 10), (8, 10)], [(4, 8)]) == 2 * 4 * 8 * 10

    def test_conv_flops(self):
        # (N=1, O=8, OH=4, OW=4), weight OIHW (8, 3, 3, 3)
        got = flops_for("conv2d", [(1, 3, 4, 4), (8, 3, 3, 3)], [(1, 8, 4, 4)])
        assert got == 2 * (1 * 8 * 4 * 4) * (3 * 3 * 3)

    def test_elementwise_flops(self):
        assert flops_for("relu", [(2, 8)], [(2, 8)]) == 16

    def test_unknown_type_is_zero(self):
        assert flops_for("mystery", [(2, 2)], [(2, 2)]) == 0


class TestFlopsTool:
    def test_linear_model_exact_count(self, rng):
        tool = FlopsProfilingTool()
        lin = E.Linear(10, 8, rng=rng)
        with amanda.apply(tool):
            lin(E.tensor(rng.standard_normal((4, 10))))
        # linear + bias_add (fused in the linear op): counted as linear
        assert tool.by_op_type()["linear"] == 2 * 4 * 8 * 10

    def test_counts_functional_ops_module_hooks_miss(self, rng):
        from repro.baselines import ModuleHookFlopsProfiler
        model = M.resnet18()
        x = E.tensor(rng.standard_normal((1, 3, 16, 16)))
        tool = FlopsProfilingTool()
        with amanda.apply(tool):
            model(x)
        hook_profiler = ModuleHookFlopsProfiler(model).attach()
        model(x)
        hook_profiler.detach()
        # Amanda additionally counts batch norms, pools, adds...
        assert tool.total_flops() > hook_profiler.total_flops()
        # ...but agrees on the conv+linear share
        conv_linear = (tool.by_op_type().get("conv2d", 0)
                       + tool.by_op_type().get("linear", 0))
        assert conv_linear == hook_profiler.total_flops()

    def test_portable_across_backends(self, rng):
        from repro.graph import builder as gb
        tool = FlopsProfilingTool(op_types=("matmul",))
        with G.default_graph() as g:
            x = gb.placeholder(name="x")
            w = gb.variable(rng.standard_normal((10, 8)), name="w")
            out = gb.matmul(x, w)
        with amanda.apply(tool):
            G.Session(g).run(out, {x: rng.standard_normal((4, 10))})
        assert tool.by_op_type()["matmul"] == 2 * 4 * 8 * 10

    def test_report_sorted_desc(self, rng):
        tool = FlopsProfilingTool()
        with amanda.apply(tool):
            M.LeNet()(E.tensor(rng.standard_normal((1, 3, 16, 16))))
        rows = tool.report()
        values = [row[2] for row in rows]
        assert values == sorted(values, reverse=True)
        assert rows[0][0] == "conv2d"  # convs dominate LeNet


class TestSparsityTool:
    def test_relu_activation_sparsity_about_half(self, rng):
        tool = SparsityProfilingTool(op_types=("relu",))
        with amanda.apply(tool):
            F.relu(E.tensor(rng.standard_normal((100, 100))))
        assert 0.4 < tool.mean_sparsity("activation") < 0.6

    def test_weight_sparsity_detects_zeros(self, rng):
        tool = SparsityProfilingTool(op_types=("linear",))
        lin = E.Linear(10, 10, rng=rng)
        lin.weight.data[:5] = 0.0
        with amanda.apply(tool):
            lin(E.tensor(rng.standard_normal((2, 10))))
        assert tool.mean_sparsity("weight") == pytest.approx(0.5)

    def test_composes_with_pruning_tool(self, rng):
        """Sparsity profiler observes what the pruning tool produced."""
        from repro.amanda.tools import MagnitudePruningTool
        pruner = MagnitudePruningTool(sparsity=0.7, op_types=("linear",))
        profiler = SparsityProfilingTool(op_types=("relu",))
        lin = E.Linear(50, 50, rng=rng)
        with amanda.apply(pruner, profiler):
            F.relu(lin(E.tensor(rng.standard_normal((4, 50)))))
        # pruned weights push more activations toward the relu cut
        assert profiler.mean_sparsity("activation") > 0.3


class TestKernelTool:
    def test_kernel_events_attributed_to_ops(self, rng):
        tool = KernelProfilingTool()
        with amanda.apply(tool):
            M.LeNet()(E.tensor(rng.standard_normal((1, 3, 16, 16))))
        ops = tool.op_level_breakdown()
        assert "conv2d" in ops and "linear" in ops
        assert all(seconds >= 0 for seconds in ops.values())

    def test_conv_algorithm_mix_observed(self, rng):
        tool = KernelProfilingTool()
        with amanda.apply(tool):
            M.resnet50()(E.tensor(rng.standard_normal((1, 3, 16, 16))))
        mix = tool.conv_algorithm_mix()
        # ResNet50 mixes 1x1 (gemm) and 3x3 (winograd) convolutions
        assert mix.get("conv2d_1x1_gemm", 0) > 0
        assert mix.get("conv2d_winograd", 0) > 0

    def test_kernel_level_breakdown_for_one_op(self, rng):
        tool = KernelProfilingTool()
        with amanda.apply(tool):
            M.LeNet()(E.tensor(rng.standard_normal((1, 3, 16, 16))))
        conv_kernels = tool.kernel_level_breakdown("conv2d")
        assert conv_kernels  # e.g. im2col + gemm
        total = tool.kernel_level_breakdown()
        assert sum(total.values()) >= sum(conv_kernels.values())

    def test_unsubscribed_after_apply(self, rng):
        from repro.kernels.runtime import runtime
        tool = KernelProfilingTool()
        with amanda.apply(tool):
            assert runtime.has_subscribers
        assert not runtime.has_subscribers
