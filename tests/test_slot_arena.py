"""Slot-table execution and arena buffer reuse: equivalence + accounting.

The slot-table executor and the arena pool must be invisible except for
speed: for every worker count, with the arena on or off, instrumented or
quarantined, the results are bit-identical to the plain serial dict-era
semantics.  The arena additionally has to reach a steady state — a second
run of the same plan performs zero fresh growths — and every byte it holds
must flow through the allocation tracker and come back out at close.
"""

import numpy as np
import pytest

import repro.amanda as amanda
import repro.graph as G
import repro.models.graph as GM
from repro.amanda.tools import ExecutionTraceTool
from repro.eager import alloc
from repro.eager.alloc import Arena
from repro.graph import builder as gb
from repro.tools.faulty import FaultyTool

WORKER_COUNTS = (1, 2, 4)

ZOO = [
    (GM.build_mlp, (8, 16)),
    (GM.build_vgg, (2, 16, 16, 3)),
    (GM.build_resnet, (2, 16, 16, 3)),
    (GM.build_mobilenet_v2, (2, 16, 16, 3)),
    (GM.build_inception_v3, (2, 16, 16, 3)),
]


def _zoo_feed(gm, rng, input_shape):
    return {gm.inputs: rng.standard_normal(input_shape),
            gm.labels: rng.integers(0, 4, input_shape[0])}


def _assert_same(expected, actual):
    for want, got in zip(expected, actual):
        np.testing.assert_array_equal(np.asarray(want), np.asarray(got))


class TestBitEquivalence:
    """serial == slot-table == arena-reuse, for every worker count."""

    @pytest.mark.parametrize("builder,input_shape", ZOO)
    def test_zoo_bitwise_equal_across_modes(self, rng, builder, input_shape):
        gm = builder()
        feed = _zoo_feed(gm, rng, input_shape)
        with gm.session() as sess:
            baseline = sess.run([gm.logits, gm.loss], feed)
            for workers in WORKER_COUNTS:
                for arena_on in (False, True):
                    with amanda.num_workers(workers), \
                            amanda.arena_reuse(arena_on):
                        got = sess.run([gm.logits, gm.loss], feed)
                        # steady state: run again against the warm pool
                        again = sess.run([gm.logits, gm.loss], feed)
                    _assert_same(baseline, got)
                    _assert_same(baseline, again)

    def test_bert_bitwise_equal_across_modes(self, rng):
        gm = GM.build_bert()
        feed = {gm.inputs: rng.integers(0, 32, (2, 16)),
                gm.labels: np.zeros((2, 16), dtype=int)}
        with gm.session() as sess:
            baseline = sess.run([gm.logits, gm.loss], feed)
            for workers in WORKER_COUNTS:
                for arena_on in (False, True):
                    with amanda.num_workers(workers), \
                            amanda.arena_reuse(arena_on):
                        got = sess.run([gm.logits, gm.loss], feed)
                    _assert_same(baseline, got)

    def test_training_trajectory_identical_under_arena(self, rng):
        inputs = rng.standard_normal((8, 16))
        labels = rng.integers(0, 4, 8)

        def losses(arena_on):
            gm = GM.build_mlp()  # fresh parameters for each arm
            feed = {gm.inputs: inputs, gm.labels: labels}
            with gm.session() as sess, amanda.arena_reuse(arena_on):
                return [float(sess.run([gm.loss, gm.train_op], feed)[0])
                        for _ in range(3)]

        assert losses(False) == losses(True)

    def test_instrumented_run_bitwise_equal(self, rng):
        gm = GM.build_mlp()
        feed = _zoo_feed(gm, rng, (8, 16))
        with gm.session() as sess:
            baseline = sess.run([gm.logits, gm.loss], feed)
            with amanda.apply(ExecutionTraceTool()):
                for workers in WORKER_COUNTS:
                    for arena_on in (False, True):
                        with amanda.num_workers(workers), \
                                amanda.arena_reuse(arena_on):
                            got = sess.run([gm.logits, gm.loss], feed)
                        _assert_same(baseline, got)

    def test_quarantined_run_bitwise_equal(self, rng):
        gm = GM.build_mlp()
        feed = _zoo_feed(gm, rng, (8, 16))
        with gm.session() as sess:
            baseline = sess.run([gm.logits, gm.loss], feed)
            tool = FaultyTool(always=True)
            with amanda.error_policy("quarantine"), amanda.apply(tool) as mgr:
                with amanda.arena_reuse(True):
                    got = sess.run([gm.logits, gm.loss], feed)
                assert tool.name in mgr.quarantined
            _assert_same(baseline, got)


class TestArenaSteadyState:
    """The pool converges: repeat runs reuse buffers instead of growing."""

    @pytest.mark.parametrize("builder,input_shape", [
        (GM.build_mlp, (8, 16)),
        (GM.build_resnet, (2, 16, 16, 3)),
    ])
    def test_zero_fresh_growths_on_second_run(self, rng, builder,
                                              input_shape):
        gm = builder()
        feed = _zoo_feed(gm, rng, input_shape)
        with gm.session() as sess, amanda.arena_reuse(True):
            sess.run([gm.logits, gm.loss], feed)
            arena = sess._arena
            assert arena is not None and arena.growths > 0
            growths = arena.growths
            sess.run([gm.logits, gm.loss], feed)
            assert arena.growths == growths, \
                "steady-state run grew the arena"
            assert arena.reuses > 0

    def test_arena_off_means_no_pool(self, rng):
        gm = GM.build_mlp()
        feed = _zoo_feed(gm, rng, (8, 16))
        with gm.session() as sess:
            sess.run([gm.logits, gm.loss], feed)
            assert sess._arena is None

    def test_fetched_values_survive_pool_recycling(self, rng):
        # fetched tensors are copied out of the pool, so a later run that
        # recycles the buffer must not corrupt earlier results
        gm = GM.build_mlp()
        feed = _zoo_feed(gm, rng, (8, 16))
        with gm.session() as sess:
            reference = sess.run(gm.logits, feed)
            with amanda.arena_reuse(True):
                first = sess.run(gm.logits, feed)
                snapshot = np.array(first)
                sess.run(gm.logits,
                         _zoo_feed(gm, np.random.default_rng(7), (8, 16)))
            np.testing.assert_array_equal(first, snapshot)
            np.testing.assert_array_equal(first, np.asarray(reference))
            assert not sess._arena.owns(first)


class TestArenaUnit:
    """Arena acquire/adopt/release mechanics in isolation."""

    def test_acquire_buckets_to_power_of_two(self):
        arena = Arena()
        buf = arena.acquire((3, 5))
        assert buf.shape == (3, 5) and buf.dtype == np.float64
        assert arena.growths == 1
        # 15 elements -> 16-element bucket
        assert arena.held_bytes == 16 * 8

    def test_release_then_acquire_reuses(self):
        arena = Arena()
        buf = arena.acquire((4, 4))
        arena.adopt(buf)
        arena.release(buf)
        again = arena.acquire((2, 8))  # same 16-element bucket
        assert arena.reuses == 1 and arena.growths == 1

    def test_refcounted_alias_release(self):
        # two adopters (e.g. an Identity alias) need two releases
        arena = Arena()
        buf = arena.acquire((8,))
        view = buf[:4]
        arena.adopt(buf)
        arena.adopt(view)
        assert arena.owns(view)
        arena.release(buf)
        assert arena.acquire((8,)) is not None and arena.reuses == 0
        arena.release(view)
        arena.acquire((8,))
        assert arena.reuses == 1

    def test_unadopted_buffers_reclaimed(self):
        # a compute that raised never published its output: sweep it back
        arena = Arena()
        arena.acquire((8,))
        arena.reclaim_unadopted()
        arena.acquire((8,))
        assert arena.reuses == 1 and arena.growths == 1

    def test_growth_bytes_flushed_once(self):
        arena = Arena()
        arena.acquire((8,))
        assert arena.take_growth_bytes() == 8 * 8
        assert arena.take_growth_bytes() == 0

    def test_drain_returns_tracked_bytes(self):
        arena = Arena()
        buf = arena.acquire((8,))
        flushed = arena.take_growth_bytes()
        arena.adopt(buf)
        arena.release(buf)
        assert arena.drain() == flushed
        assert arena.held_bytes == 0

    def test_foreign_arrays_not_owned(self):
        arena = Arena()
        foreign = np.zeros(4)
        assert not arena.owns(foreign)
        arena.adopt(foreign)  # no-op
        arena.release(foreign)  # no-op
        assert arena.stats()["growths"] == 0


class TestSessionLifecycle:
    """close() releases every tracked byte and is idempotent."""

    def test_close_releases_arena_accounting(self, rng):
        gm = GM.build_mlp()
        feed = _zoo_feed(gm, rng, (8, 16))
        sess = gm.session()
        with amanda.arena_reuse(True):
            sess.run([gm.logits, gm.loss], feed)
        assert alloc.tracker.live.get("dnn", 0) > 0
        sess.close()
        assert alloc.tracker.live.get("dnn", 0) == 0
        sess.close()  # idempotent

    def test_context_manager_closes(self, rng):
        gm = GM.build_mlp()
        feed = _zoo_feed(gm, rng, (8, 16))
        with gm.session() as sess, amanda.arena_reuse(True):
            sess.run([gm.logits, gm.loss], feed)
        assert alloc.tracker.live.get("dnn", 0) == 0
        assert len(sess._plan_cache) == 0

    def test_variable_aliased_outputs_not_double_counted(self, rng):
        # an Identity of a Variable returns the variable's own array: the
        # executor must not charge it to the run's allocation accounting
        with G.default_graph() as g:
            v = gb.variable(rng.standard_normal((64,)), name="v")
            out = gb.identity(v)
        before = alloc.tracker.live.get("dnn", 0)
        sess = G.Session(g)
        value = sess.run(out)
        assert alloc.tracker.live.get("dnn", 0) == before
        np.testing.assert_array_equal(value, g.variables.read("v"))
        sess.close()


class TestPlanCacheLRU:
    """The plan cache is bounded: cycling fetch sets cannot grow it."""

    def test_cache_evicts_beyond_bound(self, rng):
        gm = GM.build_mlp()
        feed = _zoo_feed(gm, rng, (8, 16))
        fetch_sets = [[gm.logits], [gm.loss], [gm.logits, gm.loss],
                      [gm.loss, gm.logits]]
        with gm.session() as sess, amanda.plan_cache_size(2):
            for _ in range(3):  # cycle to exercise eviction + re-admission
                for fetches in fetch_sets:
                    sess.run(fetches, feed)
                    assert len(sess._plan_cache) <= 2

    def test_lru_keeps_hot_entry(self, rng):
        gm = GM.build_mlp()
        feed = _zoo_feed(gm, rng, (8, 16))
        with gm.session() as sess, amanda.plan_cache_size(2):
            sess.run(gm.logits, feed)
            hot = next(iter(sess._plan_cache))
            sess.run(gm.loss, feed)
            sess.run(gm.logits, feed)  # refresh the hot entry
            sess.run([gm.logits, gm.loss], feed)  # evicts the cold one
            assert hot in sess._plan_cache

    def test_results_identical_after_eviction(self, rng):
        gm = GM.build_mlp()
        feed = _zoo_feed(gm, rng, (8, 16))
        with gm.session() as sess:
            want = sess.run(gm.logits, feed)
            with amanda.plan_cache_size(1):
                sess.run(gm.loss, feed)  # evicts the logits plan
                got = sess.run(gm.logits, feed)  # recompiles
            np.testing.assert_array_equal(np.asarray(want), np.asarray(got))

    def test_env_knob_parsed(self, monkeypatch):
        monkeypatch.setenv("AMANDA_PLAN_CACHE_SIZE", "7")
        cfg = amanda.Config()
        assert cfg.plan_cache_size == 7
        monkeypatch.setenv("AMANDA_PLAN_CACHE_SIZE", "0")
        cfg.refresh_from_env()
        assert cfg.plan_cache_size == 1  # clamped to a sane floor


class TestPlanLevelsValidation:
    def test_missing_extra_dep_predecessor_raises(self):
        from repro.graph.core import plan_levels, topo_plan
        with G.default_graph() as g:
            a = gb.placeholder(name="a")
            b = gb.square(a)
        plan = topo_plan([b.op])
        with pytest.raises(ValueError, match="does not precede"):
            plan_levels(plan, extra_deps={b.op.name: ("ghost_op",)})
