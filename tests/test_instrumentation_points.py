"""Derived instrumentation points (Sec. 3): iteration, module, namespaces."""

import numpy as np
import pytest

import repro.amanda as amanda
import repro.eager as E
import repro.models.eager as M
from repro.amanda import Tool
from repro.amanda.tools import MappingTool
from repro.eager import F


class TestIterationPoints:
    def test_callback_fires_on_explicit_boundary(self):
        tool = Tool("t")
        iterations = []
        tool.add_inst_for_iteration(iterations.append)
        with amanda.apply(tool):
            amanda.new_iteration()
            amanda.new_iteration()
        assert len(iterations) == 2
        assert iterations == sorted(iterations)

    def test_callback_fires_after_backward(self, rng):
        tool = Tool("t")
        iterations = []
        tool.add_inst_for_iteration(iterations.append)
        lin = E.Linear(3, 2, rng=rng)
        x = E.tensor(rng.standard_normal((2, 3)))
        with amanda.apply(tool):
            for _ in range(3):
                lin(x).sum().backward()
        assert len(iterations) == 3

    def test_iteration_scoped_static_pruning(self, rng):
        """The Fig. 1 'static pruning' shape: re-mask weights once per
        iteration, at the iteration point, not inside operators."""
        lin = E.Linear(8, 8, rng=rng)
        from repro.tools.pruning import magnitude_mask
        mask = magnitude_mask(lin.weight.data, 0.5)

        tool = Tool("iteration-pruner")
        tool.add_inst_for_iteration(
            lambda iteration: lin.weight.data.__imul__(mask))
        opt = E.optim.SGD(lin.parameters(), lr=0.1)
        x = E.tensor(rng.standard_normal((4, 8)))
        y = E.tensor(rng.integers(0, 8, 4))
        with amanda.apply(tool):
            for _ in range(3):
                opt.zero_grad()
                F.cross_entropy(lin(x), y).backward()  # -> iteration boundary
                opt.step()
            amanda.new_iteration()  # final re-mask after the last step
        assert np.all(lin.weight.data[mask == 0] == 0)


class TestModulePoints:
    def test_context_exposes_owning_module(self, rng):
        tool = Tool("t")
        owners = []
        tool.add_inst_for_op(
            lambda ctx: owners.append(type(ctx.get_module()).__name__))
        lin = E.Linear(3, 2, rng=rng)
        with amanda.apply(tool):
            lin(E.tensor(rng.standard_normal((2, 3))))
        assert "Linear" in owners

    def test_functional_ops_have_no_module(self, rng):
        tool = Tool("t")
        owners = []
        tool.add_inst_for_op(lambda ctx: owners.append(ctx.get_module()))
        with amanda.apply(tool):
            F.relu(E.tensor(rng.standard_normal(3)))
        assert owners == [None]

    def test_module_scoped_instrumentation(self, rng):
        """Compose a module-level point from operator points + context:
        prune only the ops executed inside one specific block."""
        model = M.resnet18()
        target_block = model.layer1[0]
        pruned_here, pruned_elsewhere = [], []

        class BlockScopedPruner(Tool):
            def __init__(self):
                super().__init__()
                self.add_inst_for_op(self.analysis)

            def analysis(self, context):
                if context["type"] != "conv2d":
                    return
                module = context.get_module()
                owner = module
                # walk up: the dispatch stack records the direct module;
                # match by membership in the target block's subtree
                in_target = any(module is m for m in target_block.modules())
                record = pruned_here if in_target else pruned_elsewhere
                record.append(context.get_op_id())
                if in_target:
                    context.insert_before_op(lambda w: w * 0.0, inputs=[1])

        tool = BlockScopedPruner()
        x = E.tensor(rng.standard_normal((1, 3, 16, 16)))
        with amanda.apply(tool):
            model(x)
        assert len(pruned_here) == 2  # the block's two convs
        assert len(pruned_elsewhere) > 10


class TestNamespaceTags:
    def test_full_tag_group_format(self, rng):
        tool = Tool("t")
        tags = []
        tool.add_inst_for_op(lambda ctx: tags.append(ctx.namespace_tags))
        with amanda.apply(tool):
            F.relu(E.tensor(np.ones(2)))
        assert tags == ["eager/1.0/eager"]

    def test_version_specific_rule_matches(self, rng):
        hits = []
        mapping = MappingTool(rules=[
            ["eager/1.0", lambda ctx: hits.append("versioned")],
            ["eager/9.9", lambda ctx: hits.append("wrong-version")],
        ])
        with amanda.apply(mapping):
            F.relu(E.tensor(np.ones(2)))
        assert "versioned" in hits
        assert "wrong-version" not in hits

    def test_graph_mode_tag(self, rng):
        import repro.graph as G
        from repro.graph import builder as gb
        with G.default_graph() as g:
            x = gb.placeholder(name="x")
            y = gb.relu(x)
        tool = Tool("t")
        tags = []
        tool.add_inst_for_op(lambda ctx: tags.append(ctx.namespace_tags))
        with amanda.apply(tool):
            G.Session(g).run(y, {x: np.ones(2)})
        assert "graph/1.0/graph" in tags

    def test_onnx_mode_tag(self, rng):
        from repro.onnx import InferenceSession, OnnxBuilder
        builder = OnnxBuilder()
        x = builder.input()
        builder.output(builder.relu(x))
        tool = Tool("t")
        tags = []
        tool.add_inst_for_op(lambda ctx: tags.append(ctx.namespace_tags))
        with amanda.apply(tool):
            InferenceSession(builder.model).run(None, {"input": np.ones(2)})
        assert tags == ["onnx/1.0/inference"]
