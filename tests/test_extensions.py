"""Extension features: LR schedulers, graph momentum, debugging tools,
calibrated PTQ."""

import numpy as np
import pytest

import repro.amanda as amanda
import repro.eager as E
import repro.graph as G
import repro.models.eager as M
from repro.amanda.tools import (ActivationCalibrationTool, CalibratedPTQTool,
                                GradientMonitorTool, NaNGuardTool)
from repro.eager import F
from repro.eager.schedulers import CosineAnnealingLR, StepLR, WarmupLR
from repro.graph import builder as gb
from repro.graph.optim import MomentumOptimizer
from repro.tools.debugging import NaNGuardError


class TestSchedulers:
    def _optimizer(self):
        return E.optim.SGD([E.Parameter(np.zeros(1))], lr=1.0)

    def test_step_lr_decays_at_boundaries(self):
        opt = self._optimizer()
        scheduler = StepLR(opt, step_size=3, gamma=0.1)
        lrs = [scheduler.step() for _ in range(7)]
        assert lrs[0] == lrs[1] == 1.0
        assert lrs[2] == pytest.approx(0.1)
        assert lrs[5] == pytest.approx(0.01)

    def test_cosine_endpoints(self):
        opt = self._optimizer()
        scheduler = CosineAnnealingLR(opt, t_max=10, eta_min=0.0)
        values = [scheduler.step() for _ in range(10)]
        assert values[0] < 1.0
        assert values[-1] == pytest.approx(0.0, abs=1e-12)
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_warmup_ramps_linearly(self):
        opt = self._optimizer()
        scheduler = WarmupLR(opt, warmup_epochs=4)
        assert opt.lr == pytest.approx(0.25)
        values = [scheduler.step() for _ in range(5)]
        assert values[:4] == pytest.approx([0.5, 0.75, 1.0, 1.0])

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            StepLR(self._optimizer(), step_size=0)
        with pytest.raises(ValueError):
            CosineAnnealingLR(self._optimizer(), t_max=0)
        with pytest.raises(ValueError):
            WarmupLR(self._optimizer(), warmup_epochs=0)

    def test_scheduler_actually_affects_training_step(self):
        param = E.Parameter(np.array([1.0]))
        opt = E.optim.SGD([param], lr=1.0)
        scheduler = StepLR(opt, step_size=1, gamma=0.5)
        scheduler.step()
        param.grad = np.array([1.0])
        opt.step()
        np.testing.assert_allclose(param.data, [0.5])


class TestGraphMomentum:
    def test_momentum_beats_plain_sgd(self, rng):
        def train(optimizer_factory):
            with G.default_graph() as g:
                x = gb.placeholder(name="x")
                y = gb.placeholder(name="y")
                w = gb.variable(rng.standard_normal((6, 3)) * 0.1, name="w")
                loss = gb.sparse_softmax_cross_entropy(gb.matmul(x, w), y)
                train_op = optimizer_factory().minimize(loss)
            sess = G.Session(g)
            xv = np.random.default_rng(1).standard_normal((32, 6))
            yv = np.random.default_rng(1).integers(0, 3, 32)
            for _ in range(15):
                sess.run([loss, train_op.outputs[0]], {x: xv, y: yv})
            return sess.run(loss, {x: xv, y: yv})

        from repro.graph.optim import GradientDescentOptimizer
        plain = train(lambda: GradientDescentOptimizer(0.05))
        momentum = train(lambda: MomentumOptimizer(0.05, 0.9))
        assert momentum < plain

    def test_velocity_variables_not_trainable(self, rng):
        with G.default_graph() as g:
            x = gb.placeholder(name="x")
            w = gb.variable(rng.standard_normal((2, 2)), name="w")
            loss = gb.reduce_mean(gb.matmul(x, w))
            MomentumOptimizer(0.1).minimize(loss)
        from repro.graph.optim import trainable_variables
        names = [t.op.name for t in trainable_variables(g)]
        assert not any("velocity" in name for name in names)


@pytest.mark.filterwarnings("ignore::RuntimeWarning")
class TestNaNGuard:
    def test_clean_run(self, rng):
        guard = NaNGuardTool()
        with amanda.apply(guard):
            M.LeNet()(E.tensor(rng.standard_normal((1, 3, 16, 16))))
        assert guard.clean

    def test_detects_inf_source_op(self):
        guard = NaNGuardTool()
        with amanda.apply(guard):
            E.apply_op("log", E.tensor(np.array([1.0, 0.0])))
        anomaly = guard.first_anomaly()
        assert anomaly is not None
        assert anomaly.kind == "inf" and anomaly.op_type == "log"
        assert anomaly.phase == "forward"

    def test_detects_nan_in_backward(self, rng):
        guard = NaNGuardTool()
        t = E.tensor(np.array([0.0, 1.0]), requires_grad=True)
        with amanda.apply(guard):
            out = E.apply_op("sqrt", t)  # d/dx sqrt at 0 -> inf
            out.sum().backward()
        phases = {a.phase for a in guard.anomalies}
        assert "backward" in phases

    def test_raise_mode(self):
        guard = NaNGuardTool(raise_on_anomaly=True)
        with amanda.apply(guard):
            with pytest.raises(amanda.InstrumentationError, match="inf") as ei:
                E.apply_op("log", E.tensor(np.array([0.0])))
        assert isinstance(ei.value.original, NaNGuardError)
        assert ei.value.provenance.op_type == "log"

    def test_reports_first_offender_not_downstream(self, rng):
        """The op that *created* the NaN is reported first, even though every
        downstream op also carries NaNs — module hooks cannot localize this
        for functional ops."""
        guard = NaNGuardTool(check_gradients=False)
        with amanda.apply(guard):
            bad = E.apply_op("log", E.tensor(np.array([0.0, 1.0])))  # -inf
            F.relu(bad * 0.0)  # inf * 0 -> nan downstream
        assert guard.anomalies[0].op_type == "log"


class TestGradientMonitor:
    def test_records_norms_per_backward_op(self, rng):
        monitor = GradientMonitorTool()
        lin = E.Linear(4, 4, rng=rng)
        x = E.tensor(rng.standard_normal((2, 4)), requires_grad=True)
        with amanda.apply(monitor):
            for _ in range(3):
                lin(x).sum().backward()
        assert all(len(norms) == 3 for norms in monitor.norms.values())

    def test_detects_vanishing(self, rng):
        monitor = GradientMonitorTool(vanish_threshold=1e-6)
        lin = E.Linear(4, 4, rng=rng)
        with amanda.apply(monitor):
            out = lin(E.tensor(rng.standard_normal((2, 4))))
            (out * 0.0).sum().backward()  # zero incoming gradient
        assert monitor.vanishing()

    def test_detects_exploding(self, rng):
        monitor = GradientMonitorTool(explode_threshold=10.0)
        lin = E.Linear(4, 4, rng=rng)
        with amanda.apply(monitor):
            out = lin(E.tensor(rng.standard_normal((2, 4))))
            (out * 1e6).sum().backward()
        assert monitor.exploding()

    def test_summary_sorted(self, rng):
        monitor = GradientMonitorTool()
        model = M.MLP(in_features=4, hidden=8, rng=rng)
        with amanda.apply(monitor):
            model(E.tensor(rng.standard_normal((2, 4)))).sum().backward()
        rows = monitor.summary()
        means = [row[1] for row in rows]
        assert means == sorted(means, reverse=True)


class TestCalibratedPTQ:
    def test_calibration_collects_per_op(self, rng):
        calibration = ActivationCalibrationTool()
        model = M.LeNet()
        with amanda.apply(calibration):
            for _ in range(4):
                model(E.tensor(rng.standard_normal((2, 3, 16, 16))))
                amanda.new_iteration()
        # LeNet: 2 convs + 2 linears
        assert len(calibration.observations) == 4
        assert all(len(obs) == 4 for obs in calibration.observations)

    def test_calibrated_scales_are_robust_to_outliers(self, rng):
        """A single outlier batch barely moves the calibrated scale, while a
        max-based dynamic scale follows the outlier."""
        calibration = ActivationCalibrationTool(percentile=99.0)
        lin = E.Linear(16, 4, rng=rng)
        batches = [rng.standard_normal((8, 16)) for _ in range(4)]
        batches.append(rng.standard_normal((8, 16)) * 100.0)  # outlier
        with amanda.apply(calibration):
            for batch in batches:
                lin(E.tensor(batch))
                amanda.new_iteration()
        scale = calibration.scales(bits=8)[0]
        qmax = 2 ** 7 - 1
        typical = np.percentile(np.abs(batches[0]), 99.0) / qmax
        assert scale < 10 * typical  # median over batches damps the outlier

    def test_calibrated_ptq_lower_error_than_dynamic_on_outliers(self, rng):
        from repro.amanda.tools import DynamicPTQTool
        lin = E.Linear(16, 8, rng=rng)
        calibration = ActivationCalibrationTool(percentile=99.9)
        normal = [rng.standard_normal((8, 16)) for _ in range(5)]
        with amanda.apply(calibration):
            for batch in normal:
                lin(E.tensor(batch))
                amanda.new_iteration()

        test_batch = rng.standard_normal((8, 16))
        test_batch[0, 0] = 500.0  # inference-time outlier
        reference = lin(E.tensor(test_batch)).data

        with amanda.apply(CalibratedPTQTool(calibration, bits=6)):
            calibrated = lin(E.tensor(test_batch)).data
        with amanda.apply(DynamicPTQTool(bits=6)):
            dynamic = lin(E.tensor(test_batch)).data

        # exclude the outlier row: calibrated scales keep typical rows precise
        calibrated_err = np.abs(calibrated[1:] - reference[1:]).mean()
        dynamic_err = np.abs(dynamic[1:] - reference[1:]).mean()
        assert calibrated_err < dynamic_err
