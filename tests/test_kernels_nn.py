"""Numeric kernels beyond conv: pooling, norms, activations, embedding."""

import numpy as np
import pytest

from repro.kernels import nn as K
from tests.conftest import numeric_gradient


class TestPooling:
    def test_maxpool_forward(self, rng):
        x = rng.standard_normal((2, 3, 8, 8))
        out = K.maxpool2d_forward(x, (2, 2))
        assert out.shape == (2, 3, 4, 4)
        assert out[0, 0, 0, 0] == x[0, 0, :2, :2].max()

    def test_maxpool_with_padding_ignores_pad_values(self, rng):
        x = -np.abs(rng.standard_normal((1, 1, 4, 4))) - 1.0  # all negative
        out = K.maxpool2d_forward(x, (3, 3), (1, 1), (1, 1))
        # padded -inf must never win
        assert np.isfinite(out).all()

    def test_maxpool_backward_numeric(self, rng):
        x = rng.standard_normal((1, 2, 6, 6))
        out = K.maxpool2d_forward(x, (2, 2))
        grad_out = rng.standard_normal(out.shape)
        got = K.maxpool2d_backward(grad_out, x, out, (2, 2))
        want = numeric_gradient(lambda: K.maxpool2d_forward(x, (2, 2)),
                                x, grad_out)
        np.testing.assert_allclose(got, want, atol=1e-4)

    def test_avgpool_forward_backward(self, rng):
        x = rng.standard_normal((2, 2, 6, 6))
        out = K.avgpool2d_forward(x, (3, 3))
        assert out.shape == (2, 2, 2, 2)
        np.testing.assert_allclose(out[0, 0, 0, 0], x[0, 0, :3, :3].mean())
        grad_out = rng.standard_normal(out.shape)
        got = K.avgpool2d_backward(grad_out, x.shape, (3, 3))
        want = numeric_gradient(lambda: K.avgpool2d_forward(x, (3, 3)),
                                x, grad_out)
        np.testing.assert_allclose(got, want, atol=1e-6)


class TestBatchNorm:
    def test_training_normalizes(self, rng):
        x = rng.standard_normal((8, 4, 5, 5)) * 3 + 2
        gamma, beta = np.ones(4), np.zeros(4)
        rm, rv = np.zeros(4), np.ones(4)
        out, _, new_rm, new_rv = K.batch_norm_forward(
            x, gamma, beta, rm, rv, training=True)
        np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), 0, atol=1e-10)
        np.testing.assert_allclose(out.var(axis=(0, 2, 3)), 1, atol=1e-3)
        assert not np.allclose(new_rm, rm)

    def test_eval_uses_running_stats(self, rng):
        x = rng.standard_normal((4, 3, 4, 4))
        rm = np.array([1.0, 2.0, 3.0])
        rv = np.array([4.0, 4.0, 4.0])
        out, _, nrm, nrv = K.batch_norm_forward(
            x, np.ones(3), np.zeros(3), rm, rv, training=False)
        expected = (x - rm.reshape(1, 3, 1, 1)) / 2.0
        np.testing.assert_allclose(out, expected, atol=1e-3)
        np.testing.assert_array_equal(nrm, rm)

    def test_backward_numeric_training(self, rng):
        x = rng.standard_normal((4, 2, 3, 3))
        gamma = rng.standard_normal(2)
        beta = rng.standard_normal(2)
        rm, rv = np.zeros(2), np.ones(2)

        def forward():
            out, _, _, _ = K.batch_norm_forward(
                x, gamma, beta, rm.copy(), rv.copy(), training=True)
            return out

        out, cache, _, _ = K.batch_norm_forward(
            x, gamma, beta, rm.copy(), rv.copy(), training=True)
        grad_out = rng.standard_normal(out.shape)
        dx, dgamma, dbeta = K.batch_norm_backward(grad_out, cache, training=True)
        np.testing.assert_allclose(dx, numeric_gradient(forward, x, grad_out),
                                   atol=1e-4)
        np.testing.assert_allclose(
            dgamma, numeric_gradient(forward, gamma, grad_out), atol=1e-4)
        np.testing.assert_allclose(
            dbeta, numeric_gradient(forward, beta, grad_out), atol=1e-4)


class TestLayerNorm:
    def test_forward_normalizes_last_dim(self, rng):
        x = rng.standard_normal((3, 5, 8)) * 4 + 1
        out, _ = K.layer_norm_forward(x, np.ones(8), np.zeros(8))
        np.testing.assert_allclose(out.mean(axis=-1), 0, atol=1e-10)

    def test_backward_numeric(self, rng):
        x = rng.standard_normal((2, 3, 6))
        gamma = rng.standard_normal(6)
        beta = rng.standard_normal(6)

        def forward():
            return K.layer_norm_forward(x, gamma, beta)[0]

        out, cache = K.layer_norm_forward(x, gamma, beta)
        grad_out = rng.standard_normal(out.shape)
        dx, dgamma, dbeta = K.layer_norm_backward(grad_out, cache)
        np.testing.assert_allclose(dx, numeric_gradient(forward, x, grad_out),
                                   atol=1e-4)
        np.testing.assert_allclose(
            dgamma, numeric_gradient(forward, gamma, grad_out), atol=1e-4)
        np.testing.assert_allclose(
            dbeta, numeric_gradient(forward, beta, grad_out), atol=1e-4)


class TestActivations:
    @pytest.mark.parametrize("fwd,bwd,uses_output", [
        (K.relu, K.relu_backward, False),
        (K.gelu, K.gelu_backward, False),
        (K.sigmoid, K.sigmoid_backward, True),
    ])
    def test_backward_numeric(self, rng, fwd, bwd, uses_output):
        x = rng.standard_normal((4, 5)) + 0.05  # avoid relu kink at 0
        out = fwd(x)
        grad_out = rng.standard_normal(out.shape)
        got = bwd(grad_out, out if uses_output else x)
        want = numeric_gradient(lambda: fwd(x), x, grad_out)
        np.testing.assert_allclose(got, want, atol=1e-4)

    def test_softmax_rows_sum_to_one(self, rng):
        x = rng.standard_normal((3, 7))
        out = K.softmax(x)
        np.testing.assert_allclose(out.sum(axis=-1), 1.0)
        assert (out > 0).all()

    def test_softmax_backward_numeric(self, rng):
        x = rng.standard_normal((2, 5))
        out = K.softmax(x)
        grad_out = rng.standard_normal(out.shape)
        got = K.softmax_backward(grad_out, out)
        want = numeric_gradient(lambda: K.softmax(x), x, grad_out)
        np.testing.assert_allclose(got, want, atol=1e-5)

    def test_log_softmax_backward_numeric(self, rng):
        x = rng.standard_normal((2, 5))
        out = K.log_softmax(x)
        grad_out = rng.standard_normal(out.shape)
        got = K.log_softmax_backward(grad_out, out)
        want = numeric_gradient(lambda: K.log_softmax(x), x, grad_out)
        np.testing.assert_allclose(got, want, atol=1e-5)

    def test_softmax_shift_invariance(self, rng):
        x = rng.standard_normal((2, 4))
        np.testing.assert_allclose(K.softmax(x), K.softmax(x + 100.0),
                                   atol=1e-12)


class TestEmbedding:
    def test_forward_gathers_rows(self, rng):
        weight = rng.standard_normal((10, 4))
        indices = np.array([[1, 3], [0, 9]])
        out = K.embedding_forward(indices, weight)
        np.testing.assert_array_equal(out[0, 1], weight[3])

    def test_backward_scatter_adds_duplicates(self, rng):
        grad_out = np.ones((1, 3, 4))
        indices = np.array([[2, 2, 5]])
        grad_w = K.embedding_backward(grad_out, indices, vocab_size=10)
        np.testing.assert_allclose(grad_w[2], 2 * np.ones(4))
        np.testing.assert_allclose(grad_w[5], np.ones(4))
        np.testing.assert_allclose(grad_w[0], np.zeros(4))
