"""Subgraph rewriting tool: pattern matching and chain replacement."""

import numpy as np

import repro.amanda as amanda
import repro.eager as E
from repro.amanda.tools import SubgraphRewritingTool
from repro.eager import F


def test_matches_linear_relu_chain(rng):
    tool = SubgraphRewritingTool(
        pattern=["linear", "relu"],
        rewrite=lambda contexts: [None, None])
    lin = E.Linear(4, 4, rng=rng)
    x = E.tensor(rng.standard_normal((2, 4)))
    with amanda.apply(tool):
        F.relu(lin(x))
    assert len(tool.matches) == 1
    assert len(tool.matches[0]) == 2


def test_no_match_without_chain(rng):
    tool = SubgraphRewritingTool(
        pattern=["linear", "relu"],
        rewrite=lambda contexts: [None, None])
    x = E.tensor(rng.standard_normal((2, 4)))
    with amanda.apply(tool):
        F.relu(x)  # relu without a producing linear
    assert tool.matches == []


def test_replace_tail_of_chain(rng):
    """Fuse linear+relu: relu replaced immediately (it is the matched op)."""
    tool = SubgraphRewritingTool(
        pattern=["linear", "relu"],
        rewrite=lambda contexts: [None, lambda a: a * 0.0])
    lin = E.Linear(4, 4, rng=rng)
    x = E.tensor(rng.standard_normal((2, 4)))
    with amanda.apply(tool):
        out = F.relu(lin(x))
    np.testing.assert_allclose(out.data, 0.0)


def test_earlier_op_replacement_applies_next_iteration(rng):
    """Eager mode: replacing the chain head takes effect from the next
    execution (the analysis of the tail runs after the head already ran)."""
    tool = SubgraphRewritingTool(
        pattern=["linear", "relu"],
        rewrite=lambda contexts: ["identity", None])
    lin = E.Linear(4, 4, rng=rng)
    x = E.tensor(rng.standard_normal((2, 4)))
    model = E.Sequential(lin, E.ReLU())
    with amanda.apply(tool):
        first = model(x)
        second = model(x)
    reference = x.data @ lin.weight.data.T + lin.bias.data
    np.testing.assert_allclose(first.data, np.maximum(reference, 0))
    # second iteration: linear replaced by identity -> relu(x)
    np.testing.assert_allclose(second.data, np.maximum(x.data, 0))


def test_three_op_pattern(rng):
    tool = SubgraphRewritingTool(
        pattern=["linear", "relu", "linear"],
        rewrite=lambda contexts: [None, None, None])
    l1, l2 = E.Linear(4, 4, rng=rng), E.Linear(4, 4, rng=rng)
    x = E.tensor(rng.standard_normal((2, 4)))
    with amanda.apply(tool):
        l2(F.relu(l1(x)))
    assert len(tool.matches) == 1
    assert len(tool.matches[0]) == 3


def test_graph_mode_rewrite_applies_immediately(rng):
    """In graph mode all analysis precedes execution (two-phase rewrite), so
    replacing the chain head applies to the very first run."""
    import repro.graph as G
    from repro.graph import builder as gb

    with G.default_graph() as g:
        x = gb.placeholder(name="x")
        w = gb.variable(rng.standard_normal((4, 4)), name="w")
        out = gb.relu(gb.matmul(x, w))

    tool = SubgraphRewritingTool(
        pattern=["matmul", "relu"],
        rewrite=lambda contexts: [None, lambda a: a * 0.0])
    sess = G.Session(g)
    xv = rng.standard_normal((2, 4))
    with amanda.apply(tool):
        result = sess.run(out, {x: xv})
    assert len(tool.matches) == 1
    np.testing.assert_allclose(result, 0.0)
    vanilla = sess.run(out, {x: xv})
    assert np.abs(vanilla).sum() > 0
