"""Graph backend: construction, execution, gradients, sessions, rewriting."""

import numpy as np
import pytest

import repro.eager as E
import repro.graph as G
from repro.eager import F
from repro.graph import builder as gb
from repro.graph.rewrite import GraphRewriter, copy_graph


class TestGraphConstruction:
    def test_unique_names(self):
        with G.default_graph() as g:
            a = gb.constant(1.0, name="c")
            b = gb.constant(2.0, name="c")
        assert a.op.name != b.op.name

    def test_default_graph_stack(self):
        outer = G.get_default_graph()
        with G.default_graph() as inner:
            assert G.get_default_graph() is inner
        assert G.get_default_graph() is outer

    def test_get_tensor_by_name(self):
        with G.default_graph() as g:
            t = gb.constant(1.0, name="x")
        assert g.get_tensor(t.name) is t

    def test_finalize_blocks_user_mutation(self):
        with G.default_graph() as g:
            x = gb.placeholder(name="p")
        G.Session(g).run(x, {x: np.zeros(1)})
        with pytest.raises(G.GraphFinalizedError):
            gb.relu(x)

    def test_operator_overloading_builds_nodes(self):
        with G.default_graph() as g:
            a = gb.constant(2.0)
            out = (-a + 3.0) * 2.0 / 2.0 - 1.0
        value = G.Session(g).run(out)
        assert value == 0.0


class TestExecution:
    def test_placeholder_must_be_fed(self):
        with G.default_graph() as g:
            x = gb.placeholder(name="x")
        with pytest.raises(KeyError):
            G.Session(g).run(x)

    def test_variable_persists_across_runs(self, rng):
        with G.default_graph() as g:
            v = gb.variable(np.array([1.0]), name="v")
            update = gb.assign_add(v, gb.constant(np.array([1.0])))
        sess = G.Session(g)
        sess.run(update.outputs[0])
        sess.run(update.outputs[0])
        np.testing.assert_array_equal(g.variables.read("v"), [3.0])

    def test_plan_is_cached(self):
        with G.default_graph() as g:
            x = gb.placeholder(name="x")
            y = gb.relu(x)
        sess = G.Session(g)
        sess.run(y, {x: np.zeros(2)})
        cached = len(sess._plan_cache)
        sess.run(y, {x: np.zeros(2)})
        assert len(sess._plan_cache) == cached == 1

    def test_plan_only_executes_dependencies(self):
        calls = []
        with G.default_graph() as g:
            x = gb.placeholder(name="x")
            used = gb.py_call(lambda a: calls.append("used") or a, [x])
            unused = gb.py_call(lambda a: calls.append("unused") or a, [x])
        G.Session(g).run(used.outputs[0], {x: np.zeros(1)})
        assert calls == ["used"]

    def test_control_dependencies_run_first(self):
        order = []
        with G.default_graph() as g:
            x = gb.placeholder(name="x")
            eff = gb.py_call(lambda a: order.append("effect") or a, [x])
            done = gb.group([eff])
        G.Session(g).run(done.outputs[0], {x: np.zeros(1)})
        assert order == ["effect"]

    def test_multi_fetch_returns_list(self):
        with G.default_graph() as g:
            a = gb.constant(1.0)
            b = gb.constant(2.0)
        values = G.Session(g).run([a, b])
        assert values == [1.0, 2.0]


class TestGradients:
    def _eager_vs_graph(self, rng, eager_fn, graph_fn, x_shape, w_shape):
        xv = rng.standard_normal(x_shape)
        wv = rng.standard_normal(w_shape)
        # eager
        wt = E.tensor(wv, requires_grad=True)
        eager_fn(E.tensor(xv), wt).backward()
        # graph
        with G.default_graph() as g:
            xp = gb.placeholder(name="x")
            w = gb.variable(wv, name="w")
            loss = graph_fn(xp, w)
            (grad_w,) = G.gradients(loss, [w])
        got = G.Session(g).run(grad_w, {xp: xv})
        np.testing.assert_allclose(got, wt.grad, atol=1e-10)

    def test_matmul_mean_parity(self, rng):
        self._eager_vs_graph(
            rng,
            lambda x, w: (x @ w).mean(),
            lambda x, w: gb.reduce_mean(gb.matmul(x, w)),
            (4, 3), (3, 2))

    def test_relu_square_sum_parity(self, rng):
        self._eager_vs_graph(
            rng,
            lambda x, w: (F.relu(x @ w) ** 2.0).sum(),
            lambda x, w: gb.reduce_sum(gb.square(gb.relu(gb.matmul(x, w)))),
            (5, 4), (4, 3))

    def test_tanh_sigmoid_chain_parity(self, rng):
        self._eager_vs_graph(
            rng,
            lambda x, w: F.sigmoid(F.tanh(x @ w)).sum(),
            lambda x, w: gb.reduce_sum(gb.sigmoid(gb.tanh(gb.matmul(x, w)))),
            (3, 3), (3, 3))

    def test_conv_bias_relu_parity(self, rng):
        xv = rng.standard_normal((2, 6, 6, 2))  # NHWC
        wv = rng.standard_normal((3, 3, 2, 4))  # HWIO
        bv = rng.standard_normal(4)
        with G.default_graph() as g:
            xp = gb.placeholder(name="x")
            w = gb.variable(wv, name="w")
            b = gb.variable(bv, name="b")
            loss = gb.reduce_mean(
                gb.relu(gb.bias_add(gb.conv2d(xp, w, (1, 1), (1, 1)), b)))
            grads = G.gradients(loss, [w, b])
        gw, gbias = G.Session(g).run(grads, {xp: xv})
        # eager reference in NCHW/OIHW
        xe = E.tensor(xv.transpose(0, 3, 1, 2))
        we = E.tensor(wv.transpose(3, 2, 0, 1), requires_grad=True)
        be = E.tensor(bv, requires_grad=True)
        F.relu(F.conv2d(xe, we, be, (1, 1), (1, 1))).mean().backward()
        np.testing.assert_allclose(gw.transpose(3, 2, 0, 1), we.grad, atol=1e-10)
        np.testing.assert_allclose(gbias, be.grad, atol=1e-10)

    def test_gradient_accumulation_uses_addn(self, rng):
        with G.default_graph() as g:
            x = gb.placeholder(name="x")
            w = gb.variable(rng.standard_normal((3, 3)), name="w")
            h = gb.matmul(x, w)
            # two consumers of h -> AddN in backward
            loss = gb.reduce_sum(gb.relu(h)) + gb.reduce_sum(gb.tanh(h))
            G.gradients(loss, [w])
        assert any(op.type == "AddN" for op in g.operations)

    def test_backward_ops_mapped_to_forward(self, rng):
        with G.default_graph() as g:
            x = gb.placeholder(name="x")
            w = gb.variable(rng.standard_normal((2, 2)), name="w")
            loss = gb.reduce_mean(gb.relu(gb.matmul(x, w)))
            G.gradients(loss, [w])
        relu_grads = [op for op in g.operations if op.type == "ReluGrad"]
        assert len(relu_grads) == 1
        assert relu_grads[0].forward_op.type == "Relu"

    def test_unreachable_variable_gets_none(self, rng):
        with G.default_graph() as g:
            x = gb.placeholder(name="x")
            w = gb.variable(rng.standard_normal((2, 2)), name="w")
            unused = gb.variable(rng.standard_normal(3), name="unused")
            loss = gb.reduce_mean(gb.matmul(x, w))
            grads = G.gradients(loss, [w, unused])
        assert grads[0] is not None and grads[1] is None

    def test_training_reduces_loss(self, rng):
        import repro.models.graph as GM
        gm = GM.build_mlp(learning_rate=0.5)
        sess = gm.session()
        x = rng.standard_normal((16, 16))
        y = rng.integers(0, 4, 16)
        first = sess.run(gm.loss, {gm.inputs: x, gm.labels: y})
        for _ in range(40):
            sess.run([gm.loss, gm.train_op], {gm.inputs: x, gm.labels: y})
        last = sess.run(gm.loss, {gm.inputs: x, gm.labels: y})
        assert last < first * 0.5


class TestSessionHooks:
    def test_hook_extra_fetches(self, rng):
        with G.default_graph() as g:
            x = gb.placeholder(name="x")
            y = gb.relu(x)

        class Hook(G.SessionRunHook):
            def __init__(self):
                self.seen = []

            def before_run(self, ctx):
                return [y]

            def after_run(self, ctx, values):
                self.seen.append(ctx.extra_results[y.name])

        hook = Hook()
        sess = G.Session(g, hooks=[hook])
        sess.run(x, {x: np.array([-1.0, 2.0])})
        np.testing.assert_array_equal(hook.seen[0], [0.0, 2.0])


class TestRewrite:
    def _simple_graph(self, rng):
        with G.default_graph() as g:
            x = gb.placeholder(name="x")
            w = gb.variable(rng.standard_normal((4, 4)), name="w")
            y = gb.reduce_mean(gb.relu(gb.matmul(x, w)))
        return g, x, y

    def test_copy_preserves_semantics(self, rng):
        g, x, y = self._simple_graph(rng)
        clone, mapping = copy_graph(g)
        xv = rng.standard_normal((2, 4))
        original = G.Session(g).run(y, {x: xv})
        copied = G.Session(clone).run(clone.get_tensor(y.name),
                                      {clone.get_tensor(x.name): xv})
        assert original == copied
        assert len(mapping) == len(g.operations)

    def test_copy_shares_variable_store(self, rng):
        g, x, y = self._simple_graph(rng)
        clone, _ = copy_graph(g)
        assert clone.variables is g.variables

    def test_insert_before_input(self, rng):
        g, x, y = self._simple_graph(rng)
        clone, _ = copy_graph(g)
        matmul = next(op for op in clone.operations if op.type == "MatMul")
        GraphRewriter(clone).insert_before_input(matmul, 1, lambda w: w * 0.0)
        out = G.Session(clone).run(clone.get_tensor(y.name),
                                   {clone.get_tensor(x.name):
                                    rng.standard_normal((2, 4))})
        assert out == 0.0

    def test_replace_op(self, rng):
        g, x, y = self._simple_graph(rng)
        clone, _ = copy_graph(g)
        relu = next(op for op in clone.operations if op.type == "Relu")
        GraphRewriter(clone).replace_op(relu, lambda a: np.abs(a))
        xv = rng.standard_normal((2, 4))
        got = G.Session(clone).run(clone.get_tensor(y.name),
                                   {clone.get_tensor(x.name): xv})
        w = g.variables.read([n for n in g.variables.names()
                              if n.startswith("w")][0])
        assert abs(got - np.abs(xv @ w).mean()) < 1e-12

    def test_insert_before_multiple_inputs(self, rng):
        with G.default_graph() as g:
            a = gb.placeholder(name="a")
            b = gb.placeholder(name="b")
            out = a + b
        clone, _ = copy_graph(g)
        add = next(op for op in clone.operations if op.type == "Add")
        GraphRewriter(clone).insert_before_inputs(
            add, (0, 1), lambda x, y: (x * 2, y * 3))
        got = G.Session(clone).run(
            clone.get_tensor(out.name),
            {clone.get_tensor(a.name): np.array([1.0]),
             clone.get_tensor(b.name): np.array([1.0])})
        np.testing.assert_array_equal(got, [5.0])
