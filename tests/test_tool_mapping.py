"""MappingTool: namespace-filtered rules, canonical normalization."""

import numpy as np

import repro.amanda as amanda
import repro.eager as E
import repro.graph as G
from repro.amanda import Tool
from repro.amanda.tools import MappingTool, standard_mapping_tool
from repro.eager import F
from repro.graph import builder as gb


def collect_contexts(tool_dependencies, run):
    """Run `run()` with a collector tool depending on the given tools."""
    collected = []
    collector = Tool("collector")
    collector.depends_on(*tool_dependencies)
    collector.add_inst_for_op(lambda ctx: collected.append(dict(ctx)))
    collector.add_inst_for_op(lambda ctx: collected.append(dict(ctx)),
                              backward=True)
    with amanda.apply(collector):
        run()
    return collected


def test_rule_namespace_filtering():
    eager_hits, graph_hits = [], []
    mapping = MappingTool(rules=[
        ["eager", lambda ctx: eager_hits.append(ctx["_raw_type"])],
        ["graph", lambda ctx: graph_hits.append(ctx["_raw_type"])],
    ])
    x = E.tensor(np.ones(3))
    with amanda.apply(mapping):
        F.relu(x)
    assert eager_hits and not graph_hits


def test_graph_types_normalized_to_canonical(rng):
    with G.default_graph() as g:
        x = gb.placeholder(name="x")
        w = gb.variable(rng.standard_normal((3, 3, 3, 2)), name="w")
        out = gb.relu(gb.conv2d(x, w, (1, 1), (1, 1)))

    contexts = collect_contexts(
        [standard_mapping_tool()],
        lambda: G.Session(g).run(out, {x: rng.standard_normal((1, 4, 4, 3))}))
    types = {c.get("type") for c in contexts}
    assert "conv2d" in types and "relu" in types
    assert "Conv2D" not in types


def test_graph_backward_types_normalized(rng):
    with G.default_graph() as g:
        x = gb.placeholder(name="x")
        w = gb.variable(rng.standard_normal((3, 3, 3, 2)), name="w")
        loss = gb.reduce_mean(gb.conv2d(x, w, (1, 1), (1, 1)))
        (gw,) = G.gradients(loss, [w])

    contexts = collect_contexts(
        [standard_mapping_tool()],
        lambda: G.Session(g).run(gw, {x: rng.standard_normal((1, 4, 4, 3))}))
    backward_types = {c.get("backward_type") for c in contexts
                      if not c.get("_is_forward", True)}
    assert "conv2d_backward_weight" in backward_types
    assert "conv2d_backward_input" in backward_types


def test_layout_annotations_differ_by_backend(rng):
    eager_layouts, graph_layouts = set(), set()
    contexts = collect_contexts(
        [standard_mapping_tool()],
        lambda: F.relu(E.tensor(np.ones(3))))
    eager_layouts = {c.get("data_layout") for c in contexts}
    with G.default_graph() as g:
        x = gb.placeholder(name="x")
        y = gb.relu(x)
    contexts = collect_contexts(
        [standard_mapping_tool()],
        lambda: G.Session(g).run(y, {x: np.ones(3)}))
    graph_layouts = {c.get("data_layout") for c in contexts}
    assert "NCHW" in eager_layouts
    assert "NHWC" in graph_layouts


def test_mapping_runs_before_dependent_tool():
    order = []
    mapping = MappingTool(rules=[["eager", lambda ctx: order.append("map")]])
    user = Tool("user")
    user.depends_on(mapping)
    user.add_inst_for_op(lambda ctx: order.append("user"))
    with amanda.apply(user):
        F.relu(E.tensor(np.ones(2)))
    assert order[:2] == ["map", "user"]


def test_custom_rule_rewrites_type():
    mapping = MappingTool(rules=[
        ["eager", lambda ctx: ctx.__setitem__("type", "renamed/" + ctx["_raw_type"])],
    ])
    seen = []
    user = Tool("user")
    user.depends_on(mapping)
    user.add_inst_for_op(lambda ctx: seen.append(ctx["type"]))
    with amanda.apply(user):
        F.relu(E.tensor(np.ones(2)))
    assert "renamed/relu" in seen
