"""Hypothesis property tests over the numeric kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import nn as K


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(1, 3),
    c=st.integers(1, 3),
    o=st.integers(1, 3),
    size=st.integers(5, 10),
    pad=st.integers(0, 2),
    seed=st.integers(0, 10_000),
)
def test_winograd_equals_im2col_everywhere(n, c, o, size, pad, seed):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n, c, size, size))
    w = rng.standard_normal((o, c, 3, 3))
    winograd = K.conv2d_forward(x, w, (1, 1), (pad, pad), algorithm="winograd")
    im2col = K.conv2d_forward(x, w, (1, 1), (pad, pad), algorithm="im2col")
    np.testing.assert_allclose(winograd, im2col, atol=1e-9)


@settings(max_examples=40, deadline=None)
@given(
    kh=st.integers(1, 5),
    stride=st.integers(1, 3),
    size=st.integers(8, 14),
    seed=st.integers(0, 10_000),
)
def test_fft_equals_im2col(kh, stride, size, seed):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((1, 2, size, size))
    w = rng.standard_normal((2, 2, kh, kh))
    pad = kh // 2
    fft = K.conv2d_forward(x, w, (stride, stride), (pad, pad), algorithm="fft")
    im2col = K.conv2d_forward(x, w, (stride, stride), (pad, pad),
                              algorithm="im2col")
    np.testing.assert_allclose(fft, im2col, atol=1e-9)


@settings(max_examples=40, deadline=None)
@given(
    size=st.integers(4, 12),
    kernel=st.integers(1, 3),
    seed=st.integers(0, 10_000),
)
def test_maxpool_output_is_window_max(size, kernel, seed):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((1, 1, size, size))
    out = K.maxpool2d_forward(x, (kernel, kernel), (kernel, kernel))
    oh, ow = out.shape[2], out.shape[3]
    for i in range(oh):
        for j in range(ow):
            window = x[0, 0, i * kernel:(i + 1) * kernel,
                       j * kernel:(j + 1) * kernel]
            assert out[0, 0, i, j] == window.max()


@settings(max_examples=40, deadline=None)
@given(
    batch=st.integers(2, 6),
    channels=st.integers(1, 4),
    seed=st.integers(0, 10_000),
)
def test_batch_norm_training_zero_mean_unit_var(batch, channels, seed):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((batch, channels, 3, 3)) * 5 + 2
    out, _, _, _ = K.batch_norm_forward(
        x, np.ones(channels), np.zeros(channels),
        np.zeros(channels), np.ones(channels), training=True)
    np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), 0, atol=1e-10)
    np.testing.assert_allclose(out.std(axis=(0, 2, 3)), 1, atol=1e-2)


@settings(max_examples=40, deadline=None)
@given(
    rows=st.integers(1, 6),
    cols=st.integers(2, 8),
    scale=st.floats(0.1, 50.0),
    seed=st.integers(0, 10_000),
)
def test_softmax_is_probability_distribution(rows, cols, scale, seed):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((rows, cols)) * scale
    out = K.softmax(x)
    np.testing.assert_allclose(out.sum(axis=-1), 1.0, atol=1e-12)
    assert (out >= 0).all()
    # order preserved: argmax of logits == argmax of probabilities
    np.testing.assert_array_equal(np.argmax(x, axis=-1),
                                  np.argmax(out, axis=-1))


@settings(max_examples=30, deadline=None)
@given(
    vocab=st.integers(2, 20),
    dim=st.integers(1, 8),
    count=st.integers(1, 16),
    seed=st.integers(0, 10_000),
)
def test_embedding_backward_row_sums(vocab, dim, count, seed):
    """Each vocab row's gradient equals the sum of grads at its occurrences."""
    rng = np.random.default_rng(seed)
    indices = rng.integers(0, vocab, (1, count))
    grad_out = rng.standard_normal((1, count, dim))
    grad_w = K.embedding_backward(grad_out, indices, vocab)
    for row in range(vocab):
        expected = grad_out[0][indices[0] == row].sum(axis=0) \
            if (indices[0] == row).any() else np.zeros(dim)
        np.testing.assert_allclose(grad_w[row], expected, atol=1e-12)


@settings(max_examples=30, deadline=None)
@given(
    size=st.integers(6, 12),
    kernel=st.integers(2, 3),
    seed=st.integers(0, 10_000),
)
def test_avgpool_backward_distributes_uniformly(size, kernel, seed):
    rng = np.random.default_rng(seed)
    usable = (size // kernel) * kernel
    grad_out = rng.standard_normal((1, 1, size // kernel, size // kernel))
    grad_x = K.avgpool2d_backward(grad_out, (1, 1, size, size),
                                  (kernel, kernel), (kernel, kernel))
    # total gradient mass is conserved
    np.testing.assert_allclose(grad_x.sum(), grad_out.sum(), atol=1e-10)
