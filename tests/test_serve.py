"""Unit tests for the ``repro.serve`` serving runtime components.

Covers the micro-batcher's size/deadline flush semantics, future
resolution, deterministic per-tenant sampling, end-to-end submit/result,
drain-on-stop, the sticky lease's idle close, and the metrics endpoint —
plus regression tests for the falsy-empty-graph fallbacks fixed in the same
change (an empty ``Graph`` has ``len() == 0`` and is falsy, so truthiness
checks silently redirected ops to the default graph).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro import serve
from repro.amanda import manager
from repro.graph import builder as gb
from repro.graph.core import Graph, default_graph
from repro.models.graph.builders import build_mlp
from repro.serve.batcher import MicroBatcher
from repro.serve.queue import ServeFuture, ServeRequest
from repro.tools.faulty import FaultyTool
from repro.tools.pruning import ActivationPruningTool


class _FakeTenant:
    def __init__(self, name):
        self.name = name


def _request(tenant_name="t", sampled=False):
    return ServeRequest(_FakeTenant(tenant_name), {}, sampled=sampled)


class TestMicroBatcher:
    def test_flush_on_size(self):
        b = MicroBatcher(max_batch=3, deadline=60.0)
        for _ in range(3):
            b.put(_request())
        batch = b.take(timeout=0.0)
        assert batch is not None and len(batch) == 3
        stats = b.stats()
        assert stats["size_flushes"] == 1
        assert stats["deadline_flushes"] == 0

    def test_flush_on_deadline(self):
        b = MicroBatcher(max_batch=64, deadline=0.02)
        b.put(_request())
        start = time.monotonic()
        batch = b.take(timeout=2.0)
        waited = time.monotonic() - start
        assert batch is not None and len(batch) == 1
        assert waited < 1.0, "deadline flush did not preempt the timeout"
        assert b.stats()["deadline_flushes"] == 1

    def test_batches_partition_by_tenant_and_lane(self):
        b = MicroBatcher(max_batch=64, deadline=0.0)  # seal immediately
        b.put(_request("a", sampled=False))
        b.put(_request("a", sampled=True))
        b.put(_request("b", sampled=False))
        keys = set()
        for _ in range(3):
            batch = b.take(timeout=1.0)
            assert batch is not None and len(batch) == 1
            keys.add(batch[0].key)
        assert keys == {("a", False), ("a", True), ("b", False)}

    def test_take_returns_none_on_timeout_and_stop_drains(self):
        b = MicroBatcher(max_batch=4, deadline=60.0)
        assert b.take(timeout=0.01) is None
        b.put(_request())
        b.put(_request())
        b.stop()  # seals the open batch for draining
        assert len(b.take(timeout=0.0)) == 2
        assert b.take(timeout=0.0) is None  # stopped and drained
        with pytest.raises(RuntimeError):
            b.put(_request())
        assert b.pending == 0


class TestServeFuture:
    def test_result_timeout(self):
        with pytest.raises(TimeoutError):
            ServeFuture().result(timeout=0.01)

    def test_exception_propagates(self):
        f = ServeFuture()
        f.set_exception(ValueError("boom"))
        assert f.done()
        with pytest.raises(ValueError, match="boom"):
            f.result(timeout=0)
        assert isinstance(f.exception(timeout=0), ValueError)


class TestSampling:
    def test_deterministic_one_in_n(self):
        model = build_mlp(seed=0)
        tenant = serve.Tenant("t", model.graph, model.logits,
                              tools=(ActivationPruningTool(keep_ratio=0.5),),
                              sample_rate=3)
        draws = [tenant.draw() for _ in range(9)]
        assert draws == [True, False, False] * 3

    def test_rate_zero_never_samples(self):
        model = build_mlp(seed=0)
        tenant = serve.Tenant("t", model.graph, model.logits,
                              tools=(ActivationPruningTool(keep_ratio=0.5),),
                              sample_rate=0)
        assert not any(tenant.draw() for _ in range(10))

    def test_toolless_tenant_never_samples(self):
        model = build_mlp(seed=0)
        tenant = serve.Tenant("t", model.graph, model.logits, sample_rate=1)
        assert not any(tenant.draw() for _ in range(10))


class TestServeRuntime:
    def test_vanilla_results_match_direct_session(self, rng):
        model = build_mlp(seed=5)
        feeds = [{model.inputs: rng.standard_normal((4, 16))}
                 for _ in range(8)]
        session = model.session()
        references = [session.run(model.logits, f) for f in feeds]
        rt = serve.ServeRuntime("vanilla-match", workers=2, batch_size=4)
        tenant = rt.register("mlp", model.graph, model.logits)
        with rt:
            outs = [rt.request(tenant, f, timeout=30.0) for f in feeds]
        for out, ref in zip(outs, references):
            np.testing.assert_array_equal(out, ref)
        session.close()

    def test_stop_drains_submitted_requests(self, rng):
        model = build_mlp(seed=6)
        rt = serve.ServeRuntime("drain", workers=1, batch_size=64,
                                deadline_ms=10_000.0)
        tenant = rt.register("mlp", model.graph, model.logits)
        rt.start()
        futures = [rt.submit(tenant,
                             {model.inputs: rng.standard_normal((2, 16))})
                   for _ in range(6)]
        # the batch is far from full and its deadline is 10s out; stop()
        # must still serve everything already submitted
        rt.stop()
        for f in futures:
            assert f.result(timeout=0).shape == (2, 4)
        assert rt.snapshot()["completed"] == 6
        with pytest.raises(RuntimeError):
            rt.submit(tenant, {})

    def test_raise_policy_propagates_to_future(self, rng):
        model = build_mlp(seed=7)
        rt = serve.ServeRuntime("raise", workers=1, batch_size=1)
        tenant = rt.register(
            "faulty", model.graph, model.logits,
            tools=(FaultyTool(mode="instrumentation", always=True),),
            sample_rate=1, error_policy="raise")
        with rt:
            future = rt.submit(
                tenant, {model.inputs: rng.standard_normal((2, 16))})
            with pytest.raises(Exception):
                future.result(timeout=30.0)
        assert rt.snapshot()["tenants"]["faulty"]["errors"] == 1

    def test_lease_closes_when_idle(self, rng):
        model = build_mlp(seed=8)
        rt = serve.ServeRuntime("idle", workers=1, batch_size=1)
        tenant = rt.register(
            "mlp", model.graph, model.logits,
            tools=(ActivationPruningTool(keep_ratio=0.5),), sample_rate=1)
        with rt:
            rt.request(tenant, {model.inputs: rng.standard_normal((2, 16))},
                       timeout=30.0)
            deadline = time.monotonic() + 5.0
            while manager.active and time.monotonic() < deadline:
                time.sleep(0.01)
            # sticky lease must close on idle so an idle serving process
            # does not keep intercepting unrelated code
            assert not manager.active
        assert not manager.active

    def test_metrics_endpoint_shape(self, rng):
        model = build_mlp(seed=9)
        rt = serve.ServeRuntime("metrics-shape", workers=1, batch_size=2)
        tenant = rt.register("mlp", model.graph, model.logits)
        with rt:
            rt.request(tenant, {model.inputs: rng.standard_normal((2, 16))},
                       timeout=30.0)
            snap = serve.metrics()
        assert set(snap) == {"runtimes", "health", "plans", "kernels"}
        mine = snap["runtimes"]["metrics-shape"]
        assert mine["completed"] == 1
        lat = mine["tenants"]["mlp"]["latency"]["vanilla"]
        assert lat["count"] == 1
        assert lat["p99_ms"] >= lat["p50_ms"] >= 0.0
        assert "launch_count" in snap["kernels"]
        assert "compiled" in snap["plans"]

    def test_duplicate_tenant_rejected(self):
        model = build_mlp(seed=0)
        rt = serve.ServeRuntime("dup")
        rt.register("mlp", model.graph, model.logits)
        with pytest.raises(ValueError):
            rt.register("mlp", model.graph, model.logits)
        rt.stop()


class TestEmptyGraphFallbacks:
    """A fresh explicit ``Graph()`` is falsy; fallbacks must check identity."""

    def test_default_graph_honors_fresh_empty_graph(self):
        g = Graph()
        assert len(g) == 0 and not g  # the hazard: empty graphs are falsy
        with default_graph(g) as active:
            assert active is g
            gb.placeholder(name="x")
        assert len(g) == 1

    def test_group_with_no_ops_targets_explicit_graph(self):
        g = Graph()
        op = gb.group([], graph=g)
        assert op.graph is g

    def test_py_call_with_no_inputs_targets_explicit_graph(self):
        g = Graph()
        op = gb.py_call(lambda: np.zeros(2), [], graph=g)
        assert op.graph is g
