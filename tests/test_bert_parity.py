"""Transformer parity across backends: eager BERT == graph BERT.

The two BERT implementations are written independently (eager modules with
functional attention vs. graph-mode builder ops in TF style); loading the
eager model's weights into the graph variables must produce identical logits
— a whole-pipeline correctness check of embeddings, layer norm, multi-head
attention, GELU and the classifier on both substrates.
"""

import numpy as np
import pytest

import repro.eager as E
import repro.models.eager as ME
import repro.models.graph as MG


def _copy_eager_bert_into_graph(eager_model, graph_model) -> None:
    """Map eager parameters onto the graph model's variables by role."""
    store = graph_model.graph.variables
    bert = eager_model.bert
    store.write("token_embedding", bert.token_embedding.weight.data)
    store.write("position_embedding", bert.position_embedding.weight.data)

    # variables were created in deterministic order with counter suffixes
    dense_weights = [name for name in store.names()
                     if name.startswith("fc_w")]
    dense_biases = [name for name in store.names()
                    if name.startswith("fc_b")]
    ln_gammas = [name for name in store.names() if name.startswith("ln_gamma")]
    ln_betas = [name for name in store.names() if name.startswith("ln_beta")]

    def order(names):
        return sorted(names, key=lambda n: int(n.rsplit("_", 1)[1]))

    dense_weights, dense_biases = order(dense_weights), order(dense_biases)
    ln_gammas, ln_betas = order(ln_gammas), order(ln_betas)

    eager_dense = []
    eager_norms = [bert.embedding_norm]
    for block in bert.blocks:
        eager_dense += [block.attention.q_proj, block.attention.k_proj,
                        block.attention.v_proj, block.attention.out_proj,
                        block.intermediate, block.output]
        eager_norms += [block.attention_norm, block.output_norm]
    eager_dense.append(eager_model.classifier)

    assert len(eager_dense) == len(dense_weights)
    for layer, w_name, b_name in zip(eager_dense, dense_weights, dense_biases):
        store.write(w_name, layer.weight.data.T)  # (out,in) -> (in,out)
        store.write(b_name, layer.bias.data)
    assert len(eager_norms) == len(ln_gammas)
    for norm, g_name, b_name in zip(eager_norms, ln_gammas, ln_betas):
        store.write(g_name, norm.weight.data)
        store.write(b_name, norm.bias.data)


@pytest.fixture
def paired_berts(rng):
    eager_model = ME.bert_mini(layers=2, rng=np.random.default_rng(21))
    graph_model = MG.build_bert(layers=2, seed=99)
    _copy_eager_bert_into_graph(eager_model, graph_model)
    return eager_model, graph_model


def test_logits_parity(rng, paired_berts):
    eager_model, graph_model = paired_berts
    tokens = rng.integers(0, 32, (2, 16))
    eager_logits = eager_model(tokens).data
    graph_logits = graph_model.session().run(graph_model.logits,
                                             {graph_model.inputs: tokens})
    np.testing.assert_allclose(graph_logits, eager_logits, atol=1e-10)


def test_loss_parity(rng, paired_berts):
    from repro.eager import F
    eager_model, graph_model = paired_berts
    tokens = rng.integers(0, 32, (2, 16))
    labels = rng.integers(0, 2, (2, 16))
    eager_loss = F.cross_entropy(
        eager_model(tokens).reshape(-1, 2),
        E.tensor(labels.reshape(-1))).item()
    graph_loss = graph_model.session().run(
        graph_model.loss,
        {graph_model.inputs: tokens, graph_model.labels: labels})
    assert graph_loss == pytest.approx(eager_loss, abs=1e-10)


def test_parity_survives_instrumentation(rng, paired_berts):
    """The same attention-pruning tool produces the same pruned logits on
    both backends — the strongest cross-backend portability statement."""
    import repro.amanda as amanda
    from repro.amanda.tools import AttentionPruningTool
    eager_model, graph_model = paired_berts
    tokens = rng.integers(0, 32, (2, 16))

    tool_eager = AttentionPruningTool(threshold_ratio=0.2)
    with amanda.apply(tool_eager):
        eager_logits = eager_model(tokens).data

    tool_graph = AttentionPruningTool(threshold_ratio=0.2)
    session = graph_model.session()
    with amanda.apply(tool_graph):
        graph_logits = session.run(graph_model.logits,
                                   {graph_model.inputs: tokens})
    np.testing.assert_allclose(graph_logits, eager_logits, atol=1e-10)
    assert tool_eager.pruned_fraction and tool_graph.pruned_fraction
