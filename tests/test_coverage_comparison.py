"""Fig. 9 invariant: Amanda covers strictly more ops than module hooks.

The paper's core coverage claim, checked as executable assertions per model:
module hooks only see module boundaries, Amanda sees every operator — the gap
is largest in backward (one forward op launches several backward ops) and on
models with functional ops (BERT attention, ResNet skips).
"""

import numpy as np
import pytest

import repro.amanda as amanda
import repro.eager as E
import repro.models.eager as M
from repro.amanda.tools import GraphTracingTool
from repro.baselines import ModuleHookTracer
from repro.eager import F


def measure_coverage(model, run):
    """Return (hook_fwd, hook_bwd, amanda_fwd, amanda_bwd) counts."""
    tracer = GraphTracingTool()
    with amanda.apply(tracer):
        run(model)
    hook_tracer = ModuleHookTracer(model).attach()
    run(model)
    hook_tracer.detach()
    return (len(hook_tracer.forward_events), len(hook_tracer.backward_events),
            len(tracer.forward_nodes()), len(tracer.backward_nodes()))


def train_step(model):
    x = E.tensor(np.random.default_rng(0).standard_normal((1, 3, 16, 16)))
    loss = F.cross_entropy(model(x), E.tensor(np.array([0])))
    loss.backward()
    model.zero_grad()


def bert_train_step(model):
    tokens = np.random.default_rng(0).integers(0, 32, (1, 8))
    logits = model(tokens)
    loss = F.cross_entropy(logits.reshape(-1, 2),
                           E.tensor(np.zeros(8, dtype=int)))
    loss.backward()
    model.zero_grad()


@pytest.mark.parametrize("factory,runner", [
    (M.resnet18, train_step),
    (M.mobilenet_v2, train_step),
    (M.inception_v3, train_step),
    (M.bert_mini, bert_train_step),
])
def test_amanda_covers_more_ops_than_module_hooks(factory, runner):
    model = factory()
    hook_fwd, hook_bwd, amanda_fwd, amanda_bwd = measure_coverage(model, runner)
    assert amanda_fwd > hook_fwd
    assert amanda_bwd > hook_bwd


def test_vgg_gap_is_smallest(rng):
    """VGG19 is purely sequential modules: the forward gap shrinks (the paper
    found module hooks complete on VGG19 forward)."""
    vgg = M.vgg19()
    hook_fwd, _, amanda_fwd, _ = measure_coverage(vgg, train_step)

    resnet = M.resnet18()
    r_hook_fwd, _, r_amanda_fwd, _ = measure_coverage(resnet, train_step)

    vgg_gap = (amanda_fwd - hook_fwd) / amanda_fwd
    resnet_gap = (r_amanda_fwd - r_hook_fwd) / r_amanda_fwd
    assert vgg_gap < resnet_gap


def test_backward_multiplicity(rng):
    """One forward op launches multiple backward ops: every conv2d yields a
    data-gradient op and a filter-gradient op."""
    tracer = GraphTracingTool()
    model = M.resnet18()
    with amanda.apply(tracer):
        train_step(model)
    types = list(tracer.op_types().values())
    conv_count = types.count("conv2d")
    assert conv_count > 10
    assert types.count("conv2d_backward_input") == conv_count
    assert types.count("conv2d_backward_weight") == conv_count


def test_gradient_accumulation_only_visible_to_amanda(rng):
    """Module hooks cannot see accumulate_grad ops; Amanda instruments them."""
    tracer = GraphTracingTool()
    model = M.MLP(in_features=4, hidden=8, rng=rng)
    with amanda.apply(tracer):
        out = model(E.tensor(rng.standard_normal((2, 4))))
        out.sum().backward()
    types = list(tracer.op_types().values())
    assert "accumulate_grad" in types


def test_functional_residual_add_missed_by_hooks(rng):
    """The ResNet skip-connection add: invisible to hooks, traced by Amanda."""
    model = M.resnet18()
    tracer = GraphTracingTool()
    with amanda.apply(tracer):
        model(E.tensor(rng.standard_normal((1, 3, 16, 16))))
    assert "add" in tracer.op_types().values()

    hook_tracer = ModuleHookTracer(model).attach()
    model(E.tensor(rng.standard_normal((1, 3, 16, 16))))
    hook_tracer.detach()
    # module-hook events are module names; no functional add among them
    assert all("add" not in event for event in hook_tracer.forward_events)
