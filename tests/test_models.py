"""Model zoos: shapes, op structure, trainability on both backends."""

import numpy as np
import pytest

import repro.amanda as amanda
import repro.eager as E
import repro.models.eager as M
import repro.models.graph as GM
from repro.amanda.tools import GraphTracingTool
from repro.eager import F


@pytest.fixture
def image(rng):
    return E.tensor(rng.standard_normal((2, 3, 16, 16)))


class TestEagerModels:
    @pytest.mark.parametrize("factory", [
        M.vgg11, M.vgg16, M.vgg19, M.resnet18, M.resnet50,
        M.mobilenet_v2, M.inception_v3, M.LeNet,
    ])
    def test_forward_shape(self, factory, image):
        model = factory()
        assert model(image).shape == (2, 4)

    def test_mlp_shape(self, rng):
        model = M.MLP(in_features=10, num_classes=3)
        assert model(E.tensor(rng.standard_normal((5, 10)))).shape == (5, 3)

    def test_bert_token_classification_shape(self, rng):
        model = M.bert_mini()
        tokens = rng.integers(0, 32, (2, 12))
        assert model(tokens).shape == (2, 12, 2)
        assert model.span_logits(tokens).shape == (2, 12)

    def test_resnet_backward_trains_all_parameters(self, image):
        model = M.resnet18()
        loss = F.cross_entropy(model(image), E.tensor(np.array([0, 1])))
        loss.backward()
        missing = [name for name, p in model.named_parameters()
                   if p.grad is None]
        assert missing == []

    def test_bert_backward_trains_all_parameters(self, rng):
        model = M.bert_mini()
        tokens = rng.integers(0, 32, (2, 8))
        logits = model(tokens)
        loss = F.cross_entropy(logits.reshape(-1, 2),
                               E.tensor(np.zeros(16, dtype=int)))
        loss.backward()
        missing = [name for name, p in model.named_parameters()
                   if p.grad is None]
        assert missing == []

    def test_vgg19_has_16_convs(self, image):
        model = M.vgg19()
        convs = [m for m in model.modules() if isinstance(m, E.Conv2d)]
        assert len(convs) == 16

    def test_resnet50_has_53_convs(self):
        model = M.resnet50()
        convs = [m for m in model.modules() if isinstance(m, E.Conv2d)]
        assert len(convs) == 53  # 1 stem + 16*3 bottleneck + 4 downsample

    def test_resnet_uses_functional_adds(self, image):
        tracer = GraphTracingTool()
        with amanda.apply(tracer):
            M.resnet18()(image)
        types = list(tracer.op_types().values())
        assert types.count("add") >= 8  # one per basic block

    def test_inception_uses_concat(self, image):
        tracer = GraphTracingTool()
        with amanda.apply(tracer):
            M.inception_v3()(image)
        assert "concat" in tracer.op_types().values()

    def test_training_improves_accuracy(self, rng):
        from repro.data import ClassificationDataset
        data = ClassificationDataset(train_n=64, test_n=32, size=8)
        model = M.LeNet(input_size=8, rng=rng)
        opt = E.optim.Adam(model.parameters(), lr=0.01)
        before = data.accuracy(lambda x: model(E.tensor(x)).data)
        for _ in range(20):
            opt.zero_grad()
            loss = F.cross_entropy(model(E.tensor(data.train_x)),
                                   E.tensor(data.train_y))
            loss.backward()
            opt.step()
        after = data.accuracy(lambda x: model(E.tensor(x)).data)
        assert after > max(before, 0.5)


class TestGraphModels:
    @pytest.mark.parametrize("builder,input_shape", [
        (GM.build_vgg, (2, 16, 16, 3)),
        (GM.build_resnet, (2, 16, 16, 3)),
        (GM.build_mobilenet_v2, (2, 16, 16, 3)),
        (GM.build_inception_v3, (2, 16, 16, 3)),
    ])
    def test_loss_evaluates(self, rng, builder, input_shape):
        gm = builder()
        sess = gm.session()
        loss = sess.run(gm.loss, {gm.inputs: rng.standard_normal(input_shape),
                                  gm.labels: rng.integers(0, 4, 2)})
        assert np.isfinite(loss)

    def test_bert_graph_loss(self, rng):
        gm = GM.build_bert()
        sess = gm.session()
        tokens = rng.integers(0, 32, (2, 16))
        loss = sess.run(gm.loss, {gm.inputs: tokens,
                                  gm.labels: np.zeros((2, 16), dtype=int)})
        assert np.isfinite(loss)

    def test_mlp_trains(self, rng):
        gm = GM.build_mlp(learning_rate=0.3)
        sess = gm.session()
        x = rng.standard_normal((32, 16))
        y = rng.integers(0, 4, 32)
        first = sess.run(gm.loss, {gm.inputs: x, gm.labels: y})
        for _ in range(30):
            sess.run([gm.loss, gm.train_op], {gm.inputs: x, gm.labels: y})
        assert sess.run(gm.loss, {gm.inputs: x, gm.labels: y}) < first

    def test_resnet_and_vgg_op_counts_substantial(self):
        assert len(GM.build_resnet().graph) > 250
        assert len(GM.build_vgg().graph) > 80


class TestDatasets:
    def test_classification_learnable_structure(self):
        from repro.data import ClassificationDataset
        data = ClassificationDataset()
        assert data.train_x.shape == (128, 3, 16, 16)
        assert set(np.unique(data.train_y)) <= {0, 1, 2, 3}
        # the class pattern is present: quadrant means differ by label
        zero = data.train_x[data.train_y == 0]
        assert zero[:, :, :8, :8].mean() > zero[:, :, 8:, 8:].mean()

    def test_qa_trigger_token(self):
        from repro.data import QADataset
        data = QADataset()
        rows = np.arange(len(data.train_x))
        assert (data.train_x[rows, data.train_y] == 1).all()

    def test_batches_cover_everything(self, rng):
        from repro.data import batches
        x, y = np.arange(10), np.arange(10)
        seen = []
        for bx, by in batches(x, y, 3):
            seen.extend(bx.tolist())
        assert sorted(seen) == list(range(10))
