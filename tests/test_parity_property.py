"""Property-based parity: the two trainable backends agree on values and
gradients for randomly generated computations (hypothesis-driven)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.eager as E
import repro.graph as G
from repro.eager import F
from repro.graph import builder as gb

# a small algebra of composable unary stages available on both backends
_STAGES = {
    "relu": (F.relu, gb.relu),
    "tanh": (F.tanh, gb.tanh),
    "sigmoid": (F.sigmoid, gb.sigmoid),
    "gelu": (F.gelu, gb.gelu),
    "softmax": (lambda t: F.softmax(t, axis=-1), gb.softmax),
}


@settings(max_examples=40, deadline=None)
@given(
    batch=st.integers(1, 5),
    in_dim=st.integers(1, 6),
    out_dim=st.integers(1, 6),
    stages=st.lists(st.sampled_from(sorted(_STAGES)), min_size=0, max_size=3),
    seed=st.integers(0, 10_000),
)
def test_matmul_chain_value_and_grad_parity(batch, in_dim, out_dim, stages,
                                            seed):
    rng = np.random.default_rng(seed)
    xv = rng.standard_normal((batch, in_dim))
    wv = rng.standard_normal((in_dim, out_dim))

    # eager
    w_eager = E.tensor(wv, requires_grad=True)
    value = E.tensor(xv) @ w_eager
    for stage in stages:
        value = _STAGES[stage][0](value)
    loss_eager = value.mean()
    loss_eager.backward()

    # graph
    with G.default_graph() as g:
        x = gb.placeholder(name="x")
        w = gb.variable(wv, name="w")
        node = gb.matmul(x, w)
        for stage in stages:
            node = _STAGES[stage][1](node)
        loss = gb.reduce_mean(node)
        (grad_w,) = G.gradients(loss, [w])
    session = G.Session(g)
    loss_graph, grad_graph = session.run([loss, grad_w], {x: xv})

    np.testing.assert_allclose(loss_graph, loss_eager.item(), atol=1e-10)
    np.testing.assert_allclose(grad_graph, w_eager.grad, atol=1e-10)


@settings(max_examples=25, deadline=None)
@given(
    channels=st.integers(1, 4),
    filters=st.integers(1, 4),
    size=st.integers(5, 9),
    seed=st.integers(0, 10_000),
)
def test_conv_relu_mean_parity(channels, filters, size, seed):
    rng = np.random.default_rng(seed)
    xv = rng.standard_normal((2, channels, size, size))
    wv = rng.standard_normal((filters, channels, 3, 3))

    w_eager = E.tensor(wv, requires_grad=True)
    loss_eager = F.relu(F.conv2d(E.tensor(xv), w_eager,
                                 stride=(1, 1), padding=(1, 1))).mean()
    loss_eager.backward()

    with G.default_graph() as g:
        x = gb.placeholder(name="x")
        w = gb.variable(wv.transpose(2, 3, 1, 0), name="w")  # OIHW -> HWIO
        loss = gb.reduce_mean(gb.relu(gb.conv2d(x, w, (1, 1), (1, 1))))
        (grad_w,) = G.gradients(loss, [w])
    loss_graph, grad_graph = G.Session(g).run(
        [loss, grad_w], {x: xv.transpose(0, 2, 3, 1)})  # NCHW -> NHWC

    np.testing.assert_allclose(loss_graph, loss_eager.item(), atol=1e-10)
    np.testing.assert_allclose(grad_graph.transpose(3, 2, 0, 1),
                               w_eager.grad, atol=1e-10)


@settings(max_examples=25, deadline=None)
@given(
    rows=st.integers(1, 5),
    cols=st.integers(2, 6),
    seed=st.integers(0, 10_000),
)
def test_unbroadcast_property(rows, cols, seed):
    """unbroadcast(grad, shape) equals the true gradient of broadcasting."""
    from repro.eager.dispatch import unbroadcast
    rng = np.random.default_rng(seed)
    grad = rng.standard_normal((rows, cols))
    # broadcasting (cols,) across (rows, cols): d/dsmall sum(grad * big)
    np.testing.assert_allclose(unbroadcast(grad, (cols,)), grad.sum(axis=0))
    np.testing.assert_allclose(unbroadcast(grad, (1, cols)),
                               grad.sum(axis=0, keepdims=True))
    np.testing.assert_allclose(unbroadcast(grad, (rows, 1)),
                               grad.sum(axis=1, keepdims=True))
    np.testing.assert_allclose(unbroadcast(grad, (rows, cols)), grad)


@settings(max_examples=20, deadline=None)
@given(batch=st.integers(1, 4), dim=st.integers(2, 6),
       seed=st.integers(0, 10_000))
def test_eager_onnx_inference_parity(batch, dim, seed):
    """Random tiny MLPs export to the ONNX backend bit-exactly."""
    import repro.models.eager as M
    from repro.onnx import InferenceSession
    from repro.tools.export import export_onnx
    rng = np.random.default_rng(seed)
    model = M.MLP(in_features=dim, hidden=dim + 2, num_classes=3,
                  rng=rng)
    x = E.tensor(rng.standard_normal((batch, dim)))
    onnx_model = export_onnx(model, x)
    got = InferenceSession(onnx_model).run(None, {"input": x.data})[0]
    np.testing.assert_array_equal(got, model(x).data)
