"""Memory attribution (Fig. 13 machinery) and overhead sanity (Fig. 10)."""

import time

import numpy as np
import pytest

import repro.amanda as amanda
import repro.eager as E
import repro.graph as G
import repro.models.eager as M
import repro.models.graph as GM
from repro.amanda import Tool
from repro.amanda.tools import ExecutionTraceTool, GraphTracingTool
from repro.eager import alloc


class TestMemoryAttribution:
    def test_dnn_allocations_dominant_without_tools(self, rng):
        alloc.tracker.reset()
        M.LeNet()(E.tensor(rng.standard_normal((2, 3, 16, 16))))
        snapshot = alloc.tracker.snapshot()
        assert snapshot["total"]["dnn"] > 0
        assert snapshot["total"]["tool"] == 0

    def test_tool_allocations_attributed(self, rng):
        class CopyTool(Tool):
            def __init__(self):
                super().__init__()
                self.add_inst_for_op(self.analysis)

            def analysis(self, context):
                if context["type"] == "conv2d":
                    context.insert_after_op(
                        lambda y: E.Tensor(y.copy()) and None, outputs=[0])

        alloc.tracker.reset()
        with amanda.apply(CopyTool()):
            M.LeNet()(E.tensor(rng.standard_normal((2, 3, 16, 16))))
        snapshot = alloc.tracker.snapshot()
        assert snapshot["total"]["tool"] > 0
        assert snapshot["total"]["dnn"] > snapshot["total"]["tool"]

    def test_graph_mode_attribution(self, rng):
        gm = GM.build_mlp()
        tool = Tool("t")
        tool.add_inst_for_op(
            lambda ctx: ctx.insert_after_op(lambda y: y + 0.0, outputs=[0])
            if ctx["type"] == "Relu" else None)
        alloc.tracker.reset()
        sess = gm.session()
        with amanda.apply(tool):
            sess.run(gm.logits, {gm.inputs: rng.standard_normal((4, 16))})
        snapshot = alloc.tracker.snapshot()
        assert snapshot["total"]["tool"] > 0

    def test_memory_overhead_small_fraction(self, rng):
        """Fig. 13 shape: Amanda+tool memory is a minor share of the total."""
        tracer = GraphTracingTool()
        alloc.tracker.reset()
        with amanda.apply(tracer):
            M.resnet18()(E.tensor(rng.standard_normal((4, 3, 16, 16))))
        totals = alloc.tracker.snapshot()["total"]
        overhead = totals["tool"] + totals["amanda"]
        assert overhead <= 0.25 * totals["dnn"]


class TestOverhead:
    def _time(self, fn, repeats=5):
        fn()  # warm up (analysis + cache fill)
        samples = []
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            samples.append(time.perf_counter() - start)
        samples.sort()
        return samples[len(samples) // 2]  # median resists load spikes

    def test_eager_tracing_overhead_moderate(self, rng):
        model = M.resnet18()
        x = E.tensor(rng.standard_normal((2, 3, 16, 16)))
        vanilla = self._time(lambda: model(x))
        tracer = GraphTracingTool()
        with amanda.apply(tracer):
            instrumented = self._time(lambda: model(x))
        # the paper reports <1% on GPUs; our numpy ops are far cheaper than
        # CUDA kernels so allow a loose bound — the point is same order
        assert instrumented < vanilla * 2.0

    def test_empty_toolset_near_zero_overhead(self, rng):
        model = M.LeNet()
        x = E.tensor(rng.standard_normal((2, 3, 16, 16)))
        vanilla = self._time(lambda: model(x), repeats=5)
        noop = Tool("noop")
        noop.add_inst_for_op(lambda ctx: None)
        with amanda.apply(noop):
            instrumented = self._time(lambda: model(x), repeats=5)
        assert instrumented < vanilla * 2.0

    def test_cache_reduces_repeated_cost(self, rng):
        """Fig. 12 shape: disabling the cache costs extra time per run."""
        model = M.resnet18()
        x = E.tensor(rng.standard_normal((1, 3, 16, 16)))
        from repro.amanda.tools import MagnitudePruningTool

        tool = MagnitudePruningTool(sparsity=0.5)
        with amanda.apply(tool):
            cached = self._time(lambda: model(x), repeats=3)
        tool2 = MagnitudePruningTool(sparsity=0.5)
        with amanda.apply(tool2), amanda.cache_disabled():
            uncached = self._time(lambda: model(x), repeats=3)
        # medians + a small tolerance keep this robust under machine load
        assert uncached > cached * 0.9

    def test_timer_breakdown_accumulates(self, rng):
        amanda.manager.reset_timers()
        tracer = ExecutionTraceTool()
        with amanda.apply(tracer):
            M.LeNet()(E.tensor(rng.standard_normal((1, 3, 16, 16))))
            timers = dict(amanda.manager.timers)
        assert timers["tool"] > 0
        assert timers["framework"] > 0
