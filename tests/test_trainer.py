"""High-level Trainer: plain training, tooled training, schedulers, ckpts."""

import numpy as np
import pytest

import repro.eager as E
import repro.models.eager as M
from repro.amanda.tools import MagnitudePruningTool, QATTool
from repro.data import ClassificationDataset
from repro.eager.schedulers import StepLR
from repro.train import Trainer


@pytest.fixture
def data():
    return ClassificationDataset(train_n=64, test_n=32, size=8, seed=4)


def make_trainer(data, tools=(), lr=0.01, **kwargs):
    model = M.LeNet(input_size=8, rng=np.random.default_rng(0))
    optimizer = E.optim.Adam(model.parameters(), lr=lr)
    return Trainer(model, optimizer, tools=tools, **kwargs)


def test_fit_improves_loss_and_accuracy(data):
    trainer = make_trainer(data)
    history = trainer.fit(data.train_x, data.train_y, epochs=10)
    assert history.improved
    assert trainer.evaluate(data.test_x, data.test_y) > 0.5


def test_minibatching_covers_all_samples(data):
    trainer = make_trainer(data)
    history = trainer.fit(data.train_x, data.train_y, epochs=2, batch_size=16)
    assert len(history.epoch_losses) == 2


def test_scheduler_integration(data):
    model = M.LeNet(input_size=8, rng=np.random.default_rng(0))
    optimizer = E.optim.SGD(model.parameters(), lr=1.0)
    scheduler = StepLR(optimizer, step_size=2, gamma=0.1)
    trainer = Trainer(model, optimizer, scheduler=scheduler)
    trainer.fit(np.zeros((4, 3, 8, 8)), np.zeros(4, dtype=int), epochs=4)
    assert trainer.history.learning_rates[0] == 1.0
    assert trainer.history.learning_rates[-1] == pytest.approx(0.1)


def test_training_under_pruning_tool(data):
    tool = MagnitudePruningTool(sparsity=0.5)
    trainer = make_trainer(data, tools=[tool])
    trainer.fit(data.train_x, data.train_y, epochs=8)
    assert tool.masks  # the tool saw the convs/linears
    accuracy = trainer.evaluate(data.test_x, data.test_y)
    assert accuracy > 0.4


def test_qat_training_workflow(data):
    tool = QATTool(bits=8)
    trainer = make_trainer(data, tools=[tool])
    history = trainer.fit(data.train_x, data.train_y, epochs=8)
    assert history.improved


def test_checkpoint_written(tmp_path, data):
    path = str(tmp_path / "ckpt.npz")
    trainer = make_trainer(data, checkpoint_path=path, checkpoint_every=2)
    trainer.fit(data.train_x, data.train_y, epochs=4)
    import os
    assert os.path.exists(path)
    archive = np.load(path)
    assert any(k.endswith("weight") for k in archive.files)


def test_evaluate_without_instrumentation(data):
    tool = MagnitudePruningTool(sparsity=0.9)
    trainer = make_trainer(data, tools=[tool])
    trainer.fit(data.train_x, data.train_y, epochs=2)
    with_tool = trainer.predict(data.test_x[:4], instrumented=True)
    without = trainer.predict(data.test_x[:4], instrumented=False)
    assert not np.allclose(with_tool, without)


def test_evaluate_restores_training_mode(data):
    trainer = make_trainer(data)
    trainer.model.train()
    trainer.evaluate(data.test_x, data.test_y)
    assert trainer.model.training
