"""Graph verifier: corrupted-graph detection with op-level provenance."""

import numpy as np
import pytest

import repro.amanda as amanda
import repro.graph as G
from repro.analysis.verify import (VerificationError, verify_graph)
from repro.graph import builder as gb
from repro.graph.rewrite import GraphRewriter, copy_graph


@pytest.fixture
def mlp_graph(rng):
    with G.default_graph() as g:
        x = gb.placeholder(name="x")
        w = gb.variable(rng.standard_normal((4, 3)), name="w")
        logits = gb.relu(gb.matmul(x, w))
        loss = gb.reduce_mean(gb.square(logits))
        (grad_w,) = G.gradients(loss, [w])
    return g, x, w, logits, loss, grad_w


class TestVanillaGraphsPass:
    def test_mlp(self, mlp_graph):
        g = mlp_graph[0]
        report = verify_graph(g, feed_shapes={"x": (2, 4)})
        assert report.ok, str(report)

    def test_without_feed_shapes_no_false_positives(self, mlp_graph):
        # unknown placeholder shapes must not produce spurious issues
        assert verify_graph(mlp_graph[0]).ok

    def test_model_zoo(self):
        import repro.models.graph.builders as GM
        for build, feeds in [
            (lambda: GM.build_mlp(learning_rate=0.1),
             {"input": (8, 16), "labels": (8,)}),
            (lambda: GM.build_bert(layers=1, learning_rate=0.1),
             {"input": (2, 16), "labels": (2, 16)}),
        ]:
            report = verify_graph(build().graph, feed_shapes=feeds)
            assert report.ok, str(report)


class TestCorruptionClasses:
    def test_dangling_input(self, mlp_graph, rng):
        g = mlp_graph[0]
        other = G.Graph()
        foreign = other.add_op("Const", attrs={"value": np.ones(3)})
        matmul = next(op for op in g.operations if op.type == "MatMul")
        matmul.inputs[1] = foreign.outputs[0]
        report = verify_graph(g)
        issues = report.issues_of_kind("dangling-input")
        assert issues, str(report)
        assert issues[0].op_name == matmul.name
        assert "not part of this graph" in issues[0].message
        assert any(matmul.name in line for line in issues[0].trail)

    def test_dangling_output_index(self, mlp_graph):
        g = mlp_graph[0]
        relu = next(op for op in g.operations if op.type == "Relu")
        square = next(op for op in g.operations if op.type == "Square")
        square.inputs[0] = G.GraphTensor(relu, 5)  # relu has 1 output
        issues = verify_graph(g).issues_of_kind("dangling-input")
        assert issues and "output 5" in issues[0].message

    def test_cycle(self, mlp_graph):
        g = mlp_graph[0]
        matmul = next(op for op in g.operations if op.type == "MatMul")
        relu = next(op for op in g.operations if op.type == "Relu")
        # close the loop: MatMul consumes Relu's output
        matmul.inputs[0] = relu.outputs[0]
        report = verify_graph(g)
        issues = report.issues_of_kind("cycle")
        assert issues, str(report)
        assert matmul.name in issues[0].message
        assert relu.name in issues[0].message
        # cycle provenance lists the loop ops in order
        assert len(issues[0].trail) >= 3

    def test_duplicate_name(self, mlp_graph):
        g = mlp_graph[0]
        relu = next(op for op in g.operations if op.type == "Relu")
        square = next(op for op in g.operations if op.type == "Square")
        square.name = relu.name
        issues = verify_graph(g).issues_of_kind("duplicate-name")
        assert issues
        assert issues[0].op_name == relu.name

    def test_orphaned_pycall(self, mlp_graph):
        g = mlp_graph[0]
        clone, mapping = copy_graph(g)
        rewriter = GraphRewriter(clone)
        relu = next(op for op in clone.operations if op.type == "Relu")
        consumers = [(op, i) for op in clone.operations
                     for i, e in enumerate(op.inputs)
                     if e.op is relu]
        node = rewriter.insert_after_outputs(relu, (0,), lambda a: a)
        # simulate a buggy rewrite: the consumers get rewired back, leaving
        # the wrapper dangling with no redirect pointing at it
        for op, index in consumers:
            op.inputs[index] = relu.outputs[0]
        report = verify_graph(clone)
        issues = report.issues_of_kind("orphan-pycall")
        assert issues, str(report)
        assert issues[0].op_name == node.name
        assert "no consumers" in issues[0].message

    def test_shape_mismatch_after_bad_rewrite(self, mlp_graph, rng):
        g, x, w, *_ = mlp_graph
        # a "tool" swaps the weight for a wrong-shaped constant
        with G.default_graph(g):
            g._internal_mutation = True
            bad = gb.constant(rng.standard_normal((5, 3)), name="bad_weight")
            g._internal_mutation = False
        matmul = next(op for op in g.operations if op.type == "MatMul")
        matmul.inputs[1] = bad
        report = verify_graph(g, feed_shapes={"x": (2, 4)})
        issues = report.issues_of_kind("shape-mismatch")
        assert issues, str(report)
        issue = issues[0]
        assert issue.op_name == matmul.name and issue.op_type == "MatMul"
        assert "inner dimensions" in issue.message
        # provenance trail walks the producer chain with inferred shapes
        assert any("bad_weight" in line for line in issue.trail)
        assert any("(2, 4)" in line for line in issue.trail)

    def test_redirect_consistency(self, mlp_graph):
        g, x, w, logits, *_ = mlp_graph
        clone, mapping = copy_graph(g)
        relu = next(op for op in clone.operations if op.type == "Relu")
        # a redirect must target a PyCall wrapper — Relu is not one
        report = verify_graph(clone, redirects={"Relu:0": relu.outputs[0]},
                              source_graph=g)
        issues = report.issues_of_kind("redirect")
        assert issues
        assert "wrapper" in issues[0].message
        # and the redirect source must exist in the vanilla graph
        report = verify_graph(
            clone, redirects={"NoSuchOp:0": relu.outputs[0]}, source_graph=g)
        assert any("vanilla graph" in i.message
                   for i in report.issues_of_kind("redirect"))

    def test_unknown_op_type(self, mlp_graph):
        g = mlp_graph[0]
        g._internal_mutation = True
        g.add_op("TotallyUnknownOp", [])
        g._internal_mutation = False
        issues = verify_graph(g).issues_of_kind("unknown-op")
        assert issues and issues[0].op_type == "TotallyUnknownOp"


class TestReporting:
    def test_raise_on_error(self, mlp_graph):
        g = mlp_graph[0]
        square = next(op for op in g.operations if op.type == "Square")
        other = G.Graph()
        foreign = other.add_op("Const", attrs={"value": np.ones(3)})
        square.inputs[0] = foreign.outputs[0]
        with pytest.raises(VerificationError) as excinfo:
            verify_graph(g, raise_on_error=True)
        assert excinfo.value.report.issues
        assert "dangling-input" in str(excinfo.value)

    def test_report_str_mentions_op(self, mlp_graph):
        g = mlp_graph[0]
        report = verify_graph(g)
        assert "OK" in str(report)


class TestDriverIntegration:
    def test_driver_verifies_under_pytest(self, rng, mlp_graph):
        g, x, w, logits, loss, grad_w = mlp_graph
        tool = amanda.Tool("t")
        tool.add_inst_for_op(
            lambda context: context.insert_after_op(lambda a: a * 2.0)
            if context["type"] == "Relu" else None)
        sess = G.Session(g)
        with amanda.apply(tool) as mgr:
            sess.run(logits, {x: rng.standard_normal((2, 4))})
            driver = next(d for d in mgr._drivers if d.namespace == "graph")
            assert driver._should_verify  # auto-on under pytest
            assert driver.last_report is not None and driver.last_report.ok
            assert driver.last_contexts  # lint-pass input is exposed

    def test_instrumented_graph_passes_with_real_tools(self, rng):
        import repro.models.graph.builders as GM
        from repro.tools.pruning import MagnitudePruningTool
        gm = GM.build_mlp(learning_rate=0.1)
        sess = gm.session()
        feed = {gm.inputs: rng.standard_normal((8, 16)),
                gm.labels: rng.integers(0, 4, 8)}
        with amanda.apply(MagnitudePruningTool(sparsity=0.5)) as mgr:
            sess.run([gm.loss, gm.train_op], feed)
            driver = next(d for d in mgr._drivers if d.namespace == "graph")
            assert driver.last_report is not None
            assert driver.last_report.ok, str(driver.last_report)

    def test_rewriter_rejects_stale_handle(self, mlp_graph):
        g = mlp_graph[0]
        clone, _ = copy_graph(g)
        rewriter = GraphRewriter(clone, verify=True)
        stale = next(op for op in g.operations if op.type == "Relu")
        with pytest.raises(ValueError, match="not part of this rewriter"):
            rewriter.insert_after_outputs(stale, (0,), lambda a: a)

    def test_rewriter_rejects_bad_index(self, mlp_graph):
        g = mlp_graph[0]
        clone, _ = copy_graph(g)
        rewriter = GraphRewriter(clone, verify=True)
        relu = next(op for op in clone.operations if op.type == "Relu")
        with pytest.raises(ValueError, match="out of range"):
            rewriter.insert_before_inputs(relu, (7,), lambda a: a)
