"""Memory profiling / DTR-style rematerialization tool."""

import numpy as np
import pytest

import repro.amanda as amanda
import repro.eager as E
import repro.models.eager as M
from repro.eager import F
from repro.tools.memory import MemoryProfilingTool


@pytest.fixture
def recorded(rng):
    tool = MemoryProfilingTool()
    model = M.LeNet()
    with amanda.apply(tool):
        model(E.tensor(rng.standard_normal((2, 3, 16, 16))))
    return tool


def test_records_every_op(recorded):
    assert len(recorded.order) == len(recorded.output_bytes)
    assert len(recorded.order) >= 10  # LeNet ops
    assert all(nbytes > 0 for nbytes in recorded.output_bytes.values())


def test_peak_at_most_sum_at_least_max(recorded):
    peak = recorded.peak_memory()
    total = sum(recorded.output_bytes.values())
    largest = max(recorded.output_bytes.values())
    assert largest <= peak <= total


def test_liveness_frees_dead_activations(rng):
    """A long sequential chain must peak far below the sum of activations."""
    tool = MemoryProfilingTool()
    model = E.Sequential(*[layer for _ in range(8)
                           for layer in (E.Linear(64, 64), E.ReLU())])
    with amanda.apply(tool):
        model(E.tensor(rng.standard_normal((4, 64))))
    peak = tool.peak_memory()
    total = sum(tool.output_bytes.values())
    assert peak < 0.5 * total


def test_eviction_lowers_peak(recorded):
    baseline = recorded.peak_memory()
    biggest = max(recorded.output_bytes, key=recorded.output_bytes.get)
    # evicting one tensor can never raise the peak...
    assert recorded.peak_memory({biggest}) <= baseline
    # ...and evicting the two largest strictly lowers it
    two_largest = set(sorted(recorded.output_bytes,
                             key=recorded.output_bytes.get)[-2:])
    assert recorded.peak_memory(two_largest) < baseline


def test_plan_trivial_when_budget_sufficient(recorded):
    plan = recorded.rematerialization_plan(budget=recorded.peak_memory())
    assert plan.feasible and plan.evicted == [] and plan.recompute_flops == 0


def test_plan_reaches_tighter_budget(recorded):
    baseline = recorded.peak_memory()
    plan = recorded.rematerialization_plan(budget=int(baseline * 0.6))
    assert plan.feasible
    assert plan.evicted
    assert plan.achieved_peak <= int(baseline * 0.6)
    assert plan.recompute_flops >= 0


def test_plan_prefers_cheap_big_activations(recorded):
    """The first eviction has the best bytes-per-recompute-FLOP ratio."""
    plan = recorded.rematerialization_plan(
        budget=int(recorded.peak_memory() * 0.9))
    first = plan.evicted[0]
    ratio = (recorded.output_bytes[first]
             / (1 + recorded.recompute_cost.get(first, 0)))
    best = max(recorded.output_bytes[op]
               / (1 + recorded.recompute_cost.get(op, 0))
               for op in recorded.order)
    assert ratio == best


def test_works_on_resnet_with_branches(rng):
    tool = MemoryProfilingTool()
    with amanda.apply(tool):
        M.resnet18()(E.tensor(rng.standard_normal((1, 3, 16, 16))))
    baseline = tool.peak_memory()
    plan = tool.rematerialization_plan(budget=int(baseline * 0.5))
    assert plan.achieved_peak < baseline


def test_reset(recorded):
    recorded.reset()
    assert not recorded.order and not recorded.output_bytes
