"""Hammer tests for the shared hot path the serving runtime leans on.

These are the regression tests for the concurrency bugs fixed alongside
``repro.serve``: the session plan cache was an unlocked OrderedDict (LRU
reorder + eviction raced), the manager's health counters were unsynchronized
(lost updates under concurrent failures), and the allocation tracker shared
one scope stack across threads.  Each test drives the structure from many
threads with a tiny switch interval to force interleavings, then asserts
*exact* counts — a lost update shows up as an off-by-N, not a flake.
"""

from __future__ import annotations

import sys
import threading

import numpy as np
import pytest

import repro.amanda as amanda
from repro.amanda import manager
from repro.core.faults import InstrumentationError, Provenance
from repro.eager import alloc
from repro.models.graph.builders import build_mlp

THREADS = 8


@pytest.fixture(autouse=True)
def _aggressive_preemption():
    old = sys.getswitchinterval()
    sys.setswitchinterval(1e-5)
    yield
    sys.setswitchinterval(old)


def _run_threads(worker, n=THREADS):
    errors: list[BaseException] = []

    def wrapped(i):
        try:
            worker(i)
        except BaseException as e:  # noqa: BLE001 - surfaced via assert
            errors.append(e)

    threads = [threading.Thread(target=wrapped, args=(i,)) for i in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, f"worker raised: {errors[0]!r}"


class TestPlanCacheHammer:
    def test_shared_session_concurrent_fetch_sets(self, rng):
        """8 threads cycle >cache-size fetch sets on one session.

        Unlocked, the OrderedDict's move_to_end/insert/popitem interleave and
        either KeyError, over-evict, or grow past the bound; locked, every
        result is bit-identical to its serial reference and run_count is
        exact (no lost update on the counter either).
        """
        model = build_mlp(seed=3)
        session = model.session()
        feed = {model.inputs: rng.standard_normal((4, 16))}
        # >= 5 distinct fetch tuples, all pure-forward (only the input
        # placeholder is fed), so references are deterministic
        forward = [op for op in model.graph.operations
                   if op.type in ("MatMul", "Relu", "BiasAdd")]
        fetches = [op.outputs[0] for op in forward[:5]] + [model.logits]
        assert len(fetches) >= 5
        iterations = 30
        with amanda.plan_cache_size(3), amanda.arena_reuse(False):
            references = [session.run(t, feed) for t in fetches]

            def worker(i):
                for k in range(iterations):
                    j = (i + k) % len(fetches)
                    out = session.run(fetches[j], feed)
                    np.testing.assert_array_equal(out, references[j])

            _run_threads(worker)
            assert len(session._plan_cache) <= 3
        assert session.run_count == len(fetches) + THREADS * iterations
        session.close()

    def test_single_plan_compiled_once_per_fetch_set(self, rng):
        """Concurrent first-touch of one fetch set compiles exactly one plan."""
        model = build_mlp(seed=4)
        session = model.session()
        feed = {model.inputs: rng.standard_normal((2, 16))}
        barrier = threading.Barrier(THREADS)
        plans = []
        with amanda.arena_reuse(False):
            def worker(i):
                barrier.wait()
                session.run(model.logits, feed)
                plans.append(next(iter(session._plan_cache.values())))

            _run_threads(worker)
        assert len(session._plan_cache) == 1
        assert len({id(p) for p in plans}) == 1, \
            "racing threads compiled duplicate plans for one fetch set"
        session.close()


class TestHealthHammer:
    FAILURES_PER_THREAD = 200

    def _failure(self, thread: int, k: int) -> InstrumentationError:
        return InstrumentationError(
            ValueError(f"boom-{thread}-{k}"),
            Provenance(tool=f"tool{thread % 4}", op_id=k,
                       op_type="relu", i_point="before_forward_op"),
            phase="analysis")

    def test_concurrent_failures_and_readers(self):
        """8 writers x 200 failures with concurrent health() readers.

        The unlocked counters lost increments (read-modify-write on the
        dict) and readers crashed on mid-append list state; locked, the
        total is exact, every breakdown sums to it, and each reader's
        snapshot is internally consistent.
        """
        manager.reset_health()
        stop = threading.Event()
        snapshots = []

        def reader():
            while not stop.is_set():
                report = manager.health()
                assert report["errors"] == sum(report["by_tool"].values())
                snapshots.append(report)

        readers = [threading.Thread(target=reader) for _ in range(2)]
        for r in readers:
            r.start()
        try:
            def worker(i):
                for k in range(self.FAILURES_PER_THREAD):
                    manager.record_failure(self._failure(i, k))

            _run_threads(worker)
        finally:
            stop.set()
            for r in readers:
                r.join()

        total = THREADS * self.FAILURES_PER_THREAD
        report = manager.health()
        assert report["errors"] == total
        assert sum(report["by_tool"].values()) == total
        assert sum(report["by_i_point"].values()) == total
        assert sum(report["by_op"].values()) == total
        assert len(report["recent"]) == manager.MAX_RECORDED_ERRORS
        assert snapshots, "readers never observed a snapshot"
        manager.reset_health()

    def test_snapshot_is_isolated_from_later_mutation(self):
        manager.reset_health()
        manager.record_failure(self._failure(0, 0))
        report = manager.health()
        before = report["by_tool"].copy()
        manager.record_failure(self._failure(0, 1))
        assert report["by_tool"] == before, \
            "health() returned live references, not a deep-copied snapshot"
        manager.reset_health()

    def test_concurrent_quarantine_is_idempotent(self):
        manager.reset_health()
        epoch = manager.tool_epoch

        def worker(i):
            manager.quarantine("flaky")

        _run_threads(worker)
        assert manager.quarantined == {"flaky"}
        # idempotent: 8 racing quarantines of one tool bump the epoch once
        assert manager.tool_epoch == epoch + 1
        manager.clear_quarantine()
        manager.reset_health()


class TestAllocTrackerHammer:
    PER_THREAD = 500

    def test_scope_stacks_are_thread_local_and_counts_exact(self):
        """Half the threads attribute to "tool", half to "amanda".

        With the old shared scope stack, one thread's push re-attributed
        concurrent threads' allocations (cross-scope bleed); with unlocked
        counters, increments were lost.  Both show up as inexact totals.
        """
        tracker = alloc.tracker
        tracker.reset()

        def worker(i):
            name = "tool" if i % 2 else "amanda"
            tracker.push_scope(name)
            try:
                for _ in range(self.PER_THREAD):
                    assert tracker.current_scope == name
                    scope = tracker.allocate(16)
                    assert scope == name, "allocation bled into another scope"
                    tracker.release(16, scope)
            finally:
                tracker.pop_scope()
            assert tracker.current_scope == "dnn"

        _run_threads(worker)
        snap = tracker.snapshot()
        expected = (THREADS // 2) * self.PER_THREAD * 16
        assert snap["total"]["tool"] == expected
        assert snap["total"]["amanda"] == expected
        assert snap["live"]["tool"] == 0
        assert snap["live"]["amanda"] == 0
        tracker.reset()
