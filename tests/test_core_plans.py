"""Execution plans: compile-once/replay-forever for cached actions.

Unit coverage for ``repro.core.plans`` plus the manager's plan ownership:
compilation at cache-store time, epoch/append invalidation, the
``plan_stats()`` observability API, and the Fig. 11 timer accounting the
plan layer's spans are built on.
"""

import numpy as np
import pytest

import repro.amanda as amanda
import repro.eager as E
import repro.models.eager as M
from repro.amanda import Tool
from repro.core.actions import Action, ActionType
from repro.core.manager import CachedOpRecord, InstrumentationManager
from repro.core.plans import (EMPTY_SLICE, NDARRAY_ADAPTER, PlanKind,
                              PlanSlice, compile_actions,
                              compile_backward_slice, compile_forward_slice,
                              compile_plan, run_steps)


def _noop(*arrays, **kwargs):
    return None


def _action(action_type, func=_noop, indices=None, kwargs=None,
            backward_op=None):
    return Action(type=action_type, func=func, tensor_indices=indices,
                  kwargs=kwargs or {}, backward_op=backward_op)


def _runner(func, args, kwargs, provenance=None):
    return func(*args, **kwargs)


class TestPartitioning:
    def test_forward_slice_partitions_by_phase(self):
        actions = [
            _action(ActionType.INSERT_BEFORE_OP),
            _action(ActionType.INSERT_AFTER_OP),
            _action(ActionType.INSERT_BEFORE_OP),
            _action(ActionType.INSERT_AFTER_BACKWARD_OP),  # not forward
        ]
        plan_slice = compile_forward_slice(actions)
        assert len(plan_slice.before) == 2
        assert len(plan_slice.after) == 1
        assert plan_slice.replace is None

    def test_last_replace_wins(self):
        first = _action(ActionType.REPLACE_OP, func=lambda a: a * 2)
        second = _action(ActionType.REPLACE_OP, func=lambda a: a * 3)
        plan_slice = compile_forward_slice([first, second])
        assert plan_slice.replace.action is second

    def test_empty_input_is_the_shared_empty_slice(self):
        assert compile_forward_slice([]) is EMPTY_SLICE
        assert EMPTY_SLICE.empty

    def test_backward_slice_filters_by_backward_op(self):
        keep = _action(ActionType.INSERT_BEFORE_BACKWARD_OP,
                       backward_op="matmul_grad")
        drop = _action(ActionType.INSERT_BEFORE_BACKWARD_OP,
                       backward_op="relu_grad")
        universal = _action(ActionType.INSERT_AFTER_BACKWARD_OP)
        plan_slice = compile_backward_slice([keep, drop, universal],
                                            "matmul_grad")
        assert [s.action for s in plan_slice.before] == [keep]
        assert [s.action for s in plan_slice.after] == [universal]

    def test_backward_slice_accepts_name_tuple(self):
        raw = _action(ActionType.INSERT_BEFORE_BACKWARD_OP,
                      backward_op="MatMulGrad")
        mapped = _action(ActionType.INSERT_BEFORE_BACKWARD_OP,
                         backward_op="matmul_grad")
        plan_slice = compile_backward_slice([raw, mapped],
                                            ("matmul_grad", "MatMulGrad"))
        assert len(plan_slice.before) == 2

    def test_concat_composes_and_later_replace_wins(self):
        a = compile_forward_slice([
            _action(ActionType.INSERT_BEFORE_OP),
            _action(ActionType.REPLACE_OP, func=lambda x: x)])
        b = compile_forward_slice([
            _action(ActionType.INSERT_AFTER_OP),
            _action(ActionType.REPLACE_OP, func=lambda x: -x)])
        combined = PlanSlice.concat(a, b)
        assert len(combined.before) == 1 and len(combined.after) == 1
        assert combined.replace is b.replace
        # concat with an empty side returns the other side unchanged
        assert PlanSlice.concat(EMPTY_SLICE, b) is b
        assert PlanSlice.concat(a, EMPTY_SLICE) is a


class TestRunSteps:
    def test_observation_returns_none_and_leaves_values(self):
        seen = []
        step_actions = [_action(ActionType.INSERT_BEFORE_OP,
                                func=lambda *a: seen.append(a))]
        values = [np.ones(2), np.zeros(2)]
        originals = list(values)
        mutated = run_steps(compile_forward_slice(step_actions).before,
                            values, NDARRAY_ADAPTER, _runner)
        assert not mutated
        assert values[0] is originals[0] and values[1] is originals[1]
        assert len(seen[0]) == 2  # None selector resolves to all values

    def test_replacement_written_back_through_adapter(self):
        step_actions = [_action(ActionType.INSERT_BEFORE_OP,
                                func=lambda a: a + 1, indices=(1,))]
        values = [np.zeros(2), np.zeros(2)]
        mutated = run_steps(compile_forward_slice(step_actions).before,
                            values, NDARRAY_ADAPTER, _runner)
        assert mutated
        np.testing.assert_array_equal(values[0], np.zeros(2))
        np.testing.assert_array_equal(values[1], np.ones(2))

    def test_kwargs_are_bound(self):
        step_actions = [_action(ActionType.INSERT_BEFORE_OP,
                                func=lambda a, scale: a * scale,
                                indices=(0,), kwargs={"scale": 3.0})]
        values = [np.ones(2)]
        run_steps(compile_forward_slice(step_actions).before, values,
                  NDARRAY_ADAPTER, _runner)
        np.testing.assert_array_equal(values[0], 3.0 * np.ones(2))

    def test_clamp_drops_out_of_range_and_skips_empty(self):
        calls = []
        step_actions = [_action(ActionType.INSERT_BEFORE_BACKWARD_OP,
                                func=lambda *a: calls.append(len(a)),
                                indices=(0, 5))]
        run_steps(compile_backward_slice(step_actions).before,
                  [np.ones(1)], NDARRAY_ADAPTER, _runner, clamp=True)
        assert calls == [1]  # index 5 clamped away
        # a selector that clamps to nothing skips the routine entirely
        step_actions = [_action(ActionType.INSERT_BEFORE_BACKWARD_OP,
                                func=lambda *a: calls.append(len(a)),
                                indices=(7,))]
        run_steps(compile_backward_slice(step_actions).before,
                  [np.ones(1)], NDARRAY_ADAPTER, _runner, clamp=True)
        assert calls == [1]

    def test_explicit_empty_selector_is_pure_trigger(self):
        fired = []
        step_actions = [_action(ActionType.INSERT_BEFORE_BACKWARD_OP,
                                func=lambda: fired.append(True),
                                indices=())]
        run_steps(compile_backward_slice(step_actions).before,
                  [np.ones(1)], NDARRAY_ADAPTER, _runner, clamp=True)
        assert fired == [True]


class TestClassification:
    def test_vanilla(self):
        plan = compile_actions([], epoch=0)
        assert plan.kind is PlanKind.VANILLA

    def test_observe_only(self):
        plan = compile_actions([_action(ActionType.INSERT_AFTER_OP)], epoch=0)
        assert plan.kind is PlanKind.OBSERVE_ONLY

    def test_replace_is_mutating(self):
        plan = compile_actions([_action(ActionType.REPLACE_OP)], epoch=0)
        assert plan.kind is PlanKind.MUTATING

    def test_backward_actions_are_mutating(self):
        plan = compile_actions(
            [_action(ActionType.INSERT_AFTER_BACKWARD_OP)], epoch=0)
        assert plan.kind is PlanKind.MUTATING

    def test_user_state_is_mutating(self):
        plan = compile_actions([], epoch=0, user_state=True)
        assert plan.kind is PlanKind.MUTATING

    def test_backward_actions_recorded_on_forward_list(self):
        # backward records historically store their actions in
        # forward_actions; the compiler re-partitions by ActionType
        record = CachedOpRecord()
        record.forward_actions = [
            _action(ActionType.INSERT_BEFORE_BACKWARD_OP, backward_op="g")]
        plan = compile_plan(record, epoch=0)
        assert plan.has_backward
        assert plan.forward.empty
        assert len(plan.backward_slice("g").before) == 1

    def test_backward_slice_is_memoized(self):
        plan = compile_actions(
            [_action(ActionType.INSERT_BEFORE_BACKWARD_OP)], epoch=0)
        assert plan.backward_slice("g") is plan.backward_slice("g")


class TestManagerPlanOwnership:
    def _record(self, *actions):
        record = CachedOpRecord()
        record.forward_actions = list(actions)
        return record

    def test_cache_store_compiles_plan(self):
        mgr = InstrumentationManager()
        record = self._record(_action(ActionType.INSERT_AFTER_OP))
        mgr.cache_store(7, record)
        assert record.plan is not None
        assert record.plan.kind is PlanKind.OBSERVE_ONLY
        assert record.plan.epoch == mgr.tool_epoch

    def test_cache_store_compiles_even_when_cache_disabled(self):
        mgr = InstrumentationManager()
        mgr.cache_enabled = False
        record = self._record()
        mgr.cache_store(7, record)
        assert record.plan is not None
        assert 7 not in mgr.action_cache

    def test_plan_for_recompiles_on_epoch_change(self):
        mgr = InstrumentationManager()
        record = self._record()
        mgr.cache_store(7, record)
        first = record.plan
        mgr.tool_epoch += 1
        plan = mgr.plan_for(record)
        assert plan is not first
        assert plan.epoch == mgr.tool_epoch
        assert plan.recompiles == 1

    def test_plan_counters_survive_recompile(self):
        mgr = InstrumentationManager()
        record = self._record()
        mgr.cache_store(7, record)
        record.plan.replays = 5
        mgr.tool_epoch += 1
        plan = mgr.plan_for(record)
        assert plan.replays == 5

    def test_cache_append_invalidates_stale_fast_path(self):
        # a record promoted to the vanilla fast path must lose that
        # classification when a late action is appended (subgraph tools)
        mgr = InstrumentationManager()
        record = self._record()
        mgr.cache_store(7, record)
        assert record.plan.kind is PlanKind.VANILLA
        assert mgr.cache_append(7, _action(ActionType.INSERT_BEFORE_OP))
        plan = mgr.plan_for(record)
        assert plan.kind is PlanKind.OBSERVE_ONLY
        assert plan.recompiles == 1

    def test_cache_append_to_missing_record_still_false(self):
        mgr = InstrumentationManager()
        assert not mgr.cache_append(99, _action(ActionType.INSERT_BEFORE_OP))

    def test_plan_stats_shape(self):
        mgr = InstrumentationManager()
        mgr.cache_store(1, self._record())
        mgr.cache_store(2, self._record(_action(ActionType.INSERT_AFTER_OP)))
        stats = mgr.plan_stats()
        assert stats["by_kind"]["vanilla"] == 1
        assert stats["by_kind"]["observe_only"] == 1
        assert stats["compiled"] == 2
        assert set(stats["ops"]) == {1, 2}
        assert stats["ops"][2]["kind"] == "observe_only"


class TestPlanReplayEndToEnd:
    def test_eager_replay_counters_and_kinds(self, rng):
        model = M.LeNet()
        x = E.tensor(rng.standard_normal((2, 3, 16, 16)))
        tool = Tool("observer")
        tool.add_inst_for_op(
            lambda context: context.insert_after_op(lambda a: None and a))
        with amanda.apply(tool) as mgr:
            model(x)  # trace
            model(x)  # replay
            model(x)  # replay
            stats = mgr.plan_stats()
        assert stats["compiled"] > 0
        replays = [s["replays"] for s in stats["ops"].values()]
        assert replays and all(r == 2 for r in replays)

    def test_mutating_plan_replays_identically(self, rng):
        model = M.LeNet()
        x = E.tensor(rng.standard_normal((2, 3, 16, 16)))
        tool = Tool("halver")
        tool.add_inst_for_op(
            lambda context: context.replace_op(lambda *a: a[0] * 0.5)
            if context["type"] == "relu" else None)
        with amanda.apply(tool):
            traced = model(x).data.copy()
            replayed = model(x).data.copy()
        np.testing.assert_allclose(replayed, traced)

    def test_fig11_framework_plus_tool_bounded_by_wall(self, rng):
        """Timer regression (Fig. 11): the framework/tool breakdown of a
        profiled run can never exceed the measured wall time."""
        import time
        model = M.LeNet()
        x = E.tensor(rng.standard_normal((2, 3, 16, 16)))
        from repro.amanda.tools import FlopsProfilingTool
        with amanda.apply(FlopsProfilingTool()) as mgr:
            mgr.reset_timers()
            start = time.perf_counter()
            for _ in range(3):
                model(x)
            wall = time.perf_counter() - start
            timers = dict(mgr.timers)
        assert timers["tool"] > 0.0
        assert timers["framework"] > 0.0
        assert timers["framework"] + timers["tool"] <= wall


class TestNestedApplyScopes:
    """Satellite: nested ``apply()`` must invalidate cached fast paths so
    inner-scope tools get analyzed on ops already cached by the outer scope."""

    def test_epoch_bumped_and_cache_cleared_on_nested_apply(self, rng):
        model = M.LeNet()
        x = E.tensor(rng.standard_normal((2, 3, 16, 16)))
        outer = Tool("outer")
        outer.add_inst_for_op(lambda context: None)
        with amanda.apply(outer) as mgr:
            model(x)
            assert mgr.action_cache
            epoch_before = mgr.tool_epoch
            inner = Tool("inner")
            inner.add_inst_for_op(lambda context: None)
            with amanda.apply(inner):
                assert mgr.tool_epoch > epoch_before
                assert mgr.action_cache == {}
            # leaving the inner scope invalidates again
            assert mgr.tool_epoch > epoch_before + 1

    def test_inner_tool_analyzed_on_outer_cached_ops(self, rng):
        model = M.LeNet()
        x = E.tensor(rng.standard_normal((2, 3, 16, 16)))
        outer = Tool("outer")
        outer.add_inst_for_op(lambda context: None)
        inner_ops = []
        inner = Tool("inner")
        inner.add_inst_for_op(
            lambda context: inner_ops.append(context["type"]))
        with amanda.apply(outer):
            model(x)  # every op now cached (vanilla plans) by the outer scope
            model(x)
            with amanda.apply(inner):
                model(x)
        assert inner_ops, "inner-scope tool never saw the cached ops"

    def test_outer_scope_reanalyzes_after_inner_exits(self, rng):
        model = M.LeNet()
        x = E.tensor(rng.standard_normal((2, 3, 16, 16)))
        outer_calls = []
        outer = Tool("outer")
        outer.add_inst_for_op(lambda context: outer_calls.append(1))
        inner = Tool("inner")
        inner.add_inst_for_op(lambda context: None)
        with amanda.apply(outer):
            model(x)
            first = len(outer_calls)
            with amanda.apply(inner):
                model(x)
            after_inner = len(outer_calls)
            model(x)  # cache was cleared on inner exit: analysis reruns
            assert len(outer_calls) > after_inner > first
