"""Autograd engine: numeric grad checks per op, graph traversal, accumulation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.eager as E
from repro.eager import F, no_grad
from tests.conftest import numeric_gradient


def check_grad(build, *arrays, atol=1e-5):
    """build(*tensors) -> output tensor; checks grads of every input."""
    tensors = [E.tensor(a, requires_grad=True) for a in arrays]
    out = build(*tensors)
    grad_out = np.random.default_rng(7).standard_normal(out.shape)
    out.backward(grad_out)
    for tensor, array in zip(tensors, arrays):
        def forward(t=tensor, a=array):
            fresh = [E.tensor(x) for x in arrays]
            return build(*fresh).data
        want = numeric_gradient(
            lambda: build(*[E.tensor(a2) for a2 in arrays]).data,
            array, grad_out)
        np.testing.assert_allclose(tensor.grad, want, atol=atol,
                                   err_msg=str(build))


class TestElementwiseGrads:
    def test_add_broadcast(self, rng):
        check_grad(lambda a, b: a + b,
                   rng.standard_normal((3, 4)), rng.standard_normal((4,)))

    def test_sub_broadcast(self, rng):
        check_grad(lambda a, b: a - b,
                   rng.standard_normal((2, 3)), rng.standard_normal((1, 3)))

    def test_mul(self, rng):
        check_grad(lambda a, b: a * b,
                   rng.standard_normal((3, 3)), rng.standard_normal((3, 3)))

    def test_div(self, rng):
        check_grad(lambda a, b: a / b, rng.standard_normal((2, 2)),
                   rng.standard_normal((2, 2)) + 3.0)

    def test_pow_neg(self, rng):
        check_grad(lambda a: (-(a ** 3.0)).sum().reshape(1),
                   rng.standard_normal((4,)) + 2.0)

    def test_chained_expression(self, rng):
        check_grad(lambda a, b: ((a * b + a) / (b * b + 2.0)).sum().reshape(1),
                   rng.standard_normal((3,)), rng.standard_normal((3,)))


class TestShapedGrads:
    def test_matmul_batched(self, rng):
        check_grad(F.matmul, rng.standard_normal((2, 3, 4)),
                   rng.standard_normal((2, 4, 5)))

    def test_linear_with_bias(self, rng):
        check_grad(lambda x, w, b: F.linear(x, w, b),
                   rng.standard_normal((4, 3)), rng.standard_normal((5, 3)),
                   rng.standard_normal((5,)))

    def test_conv2d_with_bias(self, rng):
        check_grad(lambda x, w, b: F.conv2d(x, w, b, (1, 1), (1, 1),
                                            algorithm="im2col"),
                   rng.standard_normal((1, 2, 5, 5)),
                   rng.standard_normal((3, 2, 3, 3)),
                   rng.standard_normal(3), atol=1e-4)

    def test_reshape_transpose_roundtrip(self, rng):
        check_grad(lambda a: F.transpose(a.reshape(3, 4), (1, 0)),
                   rng.standard_normal(12))

    def test_slice(self, rng):
        check_grad(lambda a: a[1:3], rng.standard_normal((5, 2)))

    def test_concat(self, rng):
        check_grad(lambda a, b: F.concat([a, b], axis=1),
                   rng.standard_normal((2, 3)), rng.standard_normal((2, 2)))

    def test_sum_mean_reductions(self, rng):
        check_grad(lambda a: a.sum(axis=0), rng.standard_normal((3, 4)))
        check_grad(lambda a: a.mean(axis=(0, 2)),
                   rng.standard_normal((2, 3, 4)))

    def test_softmax_cross_entropy(self, rng):
        targets = np.array([0, 2, 1])
        check_grad(lambda a: F.cross_entropy(a, E.tensor(targets)).reshape(1),
                   rng.standard_normal((3, 4)))

    def test_mse(self, rng):
        t = rng.standard_normal((3, 2))
        check_grad(lambda a: F.mse_loss(a, E.tensor(t)).reshape(1),
                   rng.standard_normal((3, 2)))

    def test_embedding_grad_flows_to_weight(self, rng):
        weight = E.tensor(rng.standard_normal((6, 3)), requires_grad=True)
        out = F.embedding(np.array([[0, 1, 1]]), weight)
        out.sum().backward()
        np.testing.assert_allclose(weight.grad[1], 2 * np.ones(3))
        np.testing.assert_allclose(weight.grad[5], np.zeros(3))


class TestEngine:
    def test_scalar_requirement_for_implicit_grad(self, rng):
        t = E.tensor(rng.standard_normal((2, 2)), requires_grad=True)
        out = t * 2.0
        with pytest.raises(RuntimeError):
            out.backward()

    def test_diamond_graph_accumulates(self):
        t = E.tensor([3.0], requires_grad=True)
        a = t * 2.0
        b = t * 4.0
        (a + b).sum().backward()
        np.testing.assert_allclose(t.grad, [6.0])

    def test_reused_input_in_one_op(self):
        t = E.tensor([2.0], requires_grad=True)
        (t * t).sum().backward()
        np.testing.assert_allclose(t.grad, [4.0])

    def test_repeated_backward_accumulates_grad(self):
        t = E.tensor([1.0], requires_grad=True)
        (t * 3.0).sum().backward()
        (t * 3.0).sum().backward()
        np.testing.assert_allclose(t.grad, [6.0])

    def test_no_grad_blocks_taping(self):
        t = E.tensor([1.0], requires_grad=True)
        with no_grad():
            out = t * 2.0
        assert out.node is None and not out.requires_grad

    def test_grad_helper_restores_state(self, rng):
        t = E.tensor(rng.standard_normal(3), requires_grad=True)
        t.grad = np.ones(3)
        out = (t * 2.0).sum()
        grads = E.grad(out, [t])
        np.testing.assert_allclose(grads[0], 2 * np.ones(3))
        np.testing.assert_allclose(t.grad, np.ones(3))  # restored

    def test_deep_chain_no_recursion_error(self):
        t = E.tensor([1.0], requires_grad=True)
        out = t
        for _ in range(500):
            out = out * 1.001
        out.sum().backward()
        assert t.grad is not None

    def test_backward_completion_listener(self):
        from repro.eager import autograd
        fired = []
        autograd.add_backward_completion_listener(lambda: fired.append(1))
        try:
            t = E.tensor([1.0], requires_grad=True)
            (t * 1.0).sum().backward()
        finally:
            autograd.remove_backward_completion_listener(fired.append)
            # remove by identity of the actual registered lambda
            autograd._completion_listeners.clear()
        assert fired == [1]


class TestHypothesisGradcheck:
    @settings(max_examples=25, deadline=None)
    @given(rows=st.integers(1, 4), cols=st.integers(1, 4),
           seed=st.integers(0, 10_000))
    def test_tanh_linear_chain(self, rows, cols, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((rows, cols))
        w = rng.standard_normal((cols, cols))
        t = E.tensor(x, requires_grad=True)
        out = F.tanh(t @ E.tensor(w)).sum()
        out.backward()
        grad_out = np.ones(())
        want = numeric_gradient(
            lambda: np.tanh(x @ w).sum(), x, np.ones(()))
        np.testing.assert_allclose(t.grad, want, atol=1e-4)

    @settings(max_examples=25, deadline=None)
    @given(n=st.integers(1, 6), seed=st.integers(0, 10_000))
    def test_sum_grad_is_ones(self, n, seed):
        rng = np.random.default_rng(seed)
        t = E.tensor(rng.standard_normal(n), requires_grad=True)
        t.sum().backward()
        np.testing.assert_array_equal(t.grad, np.ones(n))
