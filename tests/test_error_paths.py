"""Error handling and edge cases across the stack."""

import numpy as np
import pytest

import repro.amanda as amanda
import repro.eager as E
import repro.graph as G
from repro.amanda import InstrumentationError, Tool
from repro.eager import F
from repro.eager.dispatch import OpDef, apply_op, registry
from repro.graph import builder as gb


class TestEagerErrors:
    def test_unknown_operator(self):
        with pytest.raises(KeyError, match="unknown operator"):
            apply_op("frobnicate", E.tensor([1.0]))

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            registry.register(OpDef("relu", lambda ctx, x: x))

    def test_slice_negative_indices(self, rng):
        t = E.tensor(rng.standard_normal(5), requires_grad=True)
        out = t[-2:]
        out.sum().backward()
        np.testing.assert_array_equal(t.grad, [0, 0, 0, 1, 1])

    def test_dropout_p_zero_identity(self, rng):
        x = E.tensor(rng.standard_normal((3, 3)))
        np.testing.assert_array_equal(F.dropout(x, p=0.0).data, x.data)

    def test_pow_zero_exponent(self):
        t = E.tensor([2.0], requires_grad=True)
        (t ** 0.0).sum().backward()
        np.testing.assert_allclose(t.grad, [0.0])

    def test_empty_slice_grad(self):
        t = E.tensor([1.0, 2.0], requires_grad=True)
        out = t[0:0]
        assert out.shape == (0,)

    def test_mean_no_axis_scalar(self, rng):
        t = E.tensor(rng.standard_normal((2, 3)))
        assert t.mean().shape == ()

    def test_replace_backward_requires_dict(self, rng):
        tool = Tool("t")

        def backward_analysis(context):
            if context.get("backward_type") == "relu_backward":
                context.replace_backward_op(lambda g: g)  # wrong: not a dict

        tool.add_inst_for_op(backward_analysis, backward=True)
        x = E.tensor(np.ones(3), requires_grad=True)
        with amanda.apply(tool):
            out = F.relu(x)
            with pytest.raises(InstrumentationError, match="dict") as excinfo:
                out.sum().backward()
        assert isinstance(excinfo.value.original, TypeError)
        assert excinfo.value.provenance.i_point == "replace_backward_op"


class TestGraphErrors:
    def test_fetch_unknown_tensor_name(self):
        with G.default_graph() as g:
            gb.constant(1.0, name="c")
        with pytest.raises(KeyError):
            g.get_tensor("nope:0")

    def test_assign_sub_requires_variable(self):
        with G.default_graph() as g:
            c = gb.constant(np.zeros(2))
            with pytest.raises(ValueError, match="Variable"):
                gb.assign_sub(c, c)

    def test_unknown_compute_type(self):
        with G.default_graph() as g:
            op = g.add_op("Bogus", [])
        with pytest.raises(NotImplementedError, match="Bogus"):
            G.Session(g).run(op.outputs[0])

    def test_gradient_of_nondifferentiable_chain_is_none(self, rng):
        with G.default_graph() as g:
            v = gb.variable(rng.standard_normal(3), name="v")
            detached = gb.constant(np.zeros(3))
            loss = gb.reduce_sum(detached)
            grads = G.gradients(loss, [v])
        assert grads == [None]


class TestToolRobustness:
    def test_analysis_exception_propagates(self, rng):
        tool = Tool("t")

        def broken(context):
            if context["type"] == "relu":
                raise RuntimeError("tool bug")

        tool.add_inst_for_op(broken)
        with amanda.apply(tool):
            with pytest.raises(RuntimeError, match="tool bug"):
                F.relu(E.tensor(np.ones(2)))

    def test_backend_restored_after_tool_exception(self, rng):
        tool = Tool("t")
        tool.add_inst_for_op(lambda ctx: (_ for _ in ()).throw(
            RuntimeError("boom")) if ctx["type"] == "relu" else None)
        try:
            with amanda.apply(tool):
                F.relu(E.tensor(np.ones(2)))
        except RuntimeError:
            pass
        # the apply scope unwound: vanilla execution works again
        out = F.relu(E.tensor(np.array([-1.0, 1.0])))
        np.testing.assert_array_equal(out.data, [0.0, 1.0])
        assert not amanda.manager.active

    def test_instrumentation_routine_exception_propagates(self, rng):
        tool = Tool("t")

        def analysis(context):
            if context["type"] == "relu":
                context.insert_before_op(
                    lambda x: (_ for _ in ()).throw(ValueError("routine bug")))

        tool.add_inst_for_op(analysis)
        with amanda.apply(tool):
            with pytest.raises(InstrumentationError, match="routine bug") as ei:
                F.relu(E.tensor(np.ones(2)))
        assert isinstance(ei.value.original, ValueError)
        assert ei.value.tool == "t"

    def test_out_of_range_indices_ignored_for_grads(self, rng):
        """Backward actions with indices beyond the produced grads no-op."""
        tool = Tool("t")

        def backward_analysis(context):
            if context.get("backward_type") == "relu_backward":
                context.insert_after_backward_op(lambda g: g * 0.0,
                                                 grad_inputs=[7])

        tool.add_inst_for_op(backward_analysis, backward=True)
        x = E.tensor(np.ones(3), requires_grad=True)
        with amanda.apply(tool):
            F.relu(x).sum().backward()
        np.testing.assert_array_equal(x.grad, np.ones(3))

    def test_nested_apply_inner_tool_removed_at_outer_exit(self, rng):
        inner_calls = []
        outer = Tool("outer")
        inner = Tool("inner")
        inner.add_inst_for_op(lambda ctx: inner_calls.append(1))
        with amanda.apply(outer):
            with amanda.apply(inner):
                F.relu(E.tensor(np.ones(1)))
            count_after_inner = len(inner_calls)
            # inner stays active until the outermost scope exits (documented)
            F.relu(E.tensor(np.ones(1)))
        assert len(inner_calls) >= count_after_inner
        F.relu(E.tensor(np.ones(1)))
        final = len(inner_calls)
        F.relu(E.tensor(np.ones(1)))
        assert len(inner_calls) == final  # fully detached now
