"""Static liveness/peak-memory estimator, cross-checked against the dynamic
MemoryProfilingTool numbers."""

import numpy as np
import pytest

import repro.amanda as amanda
import repro.graph as G
from repro.analysis.liveness import estimate_liveness
from repro.graph import builder as gb


class TestChainGraph:
    """Hand-computable case: a chain where every byte count is known."""

    @pytest.fixture
    def chain(self):
        with G.default_graph() as g:
            x = gb.placeholder(name="x")          # (4, 8) -> 256 B
            a = gb.relu(x)                        # 256 B
            b = gb.square(a)                      # 256 B
            c = gb.reduce_mean(b)                 # () -> 8 B
        return g, x, c

    def test_exact_peak(self, chain):
        g, x, c = chain
        report = estimate_liveness(g, fetches=[c],
                                   feed_shapes={"x": (4, 8)})
        # schedule: Relu(alloc 256, x frees), Square(alloc 256 -> live 512,
        # then Relu frees), Mean(alloc 8 -> live 264 after Square freed)
        assert report.output_bytes[c.op.name] == 8
        relu = next(name for name in report.schedule if "Relu" in name)
        square = next(name for name in report.schedule if "Square" in name)
        assert report.output_bytes[relu] == 256
        assert report.output_bytes[square] == 256
        assert report.peak_bytes == 512
        assert report.peak_op == square
        assert report.unknown_ops == []

    def test_lifetimes(self, chain):
        g, x, c = chain
        report = estimate_liveness(g, fetches=[c],
                                   feed_shapes={"x": (4, 8)})
        relu = next(name for name in report.schedule if "Relu" in name)
        square = next(name for name in report.schedule if "Square" in name)
        # relu's output dies exactly when square (its only consumer) runs
        birth, death = report.lifetime[relu]
        assert death == report.schedule.index(square)
        # the fetched tensor lives to the end of the schedule
        assert report.lifetime[c.op.name][1] == len(report.schedule) - 1

    def test_unknown_shapes_degrade_gracefully(self, chain):
        g, x, c = chain
        report = estimate_liveness(g, fetches=[c])  # no feed shapes
        assert len(report.unknown_ops) > 0
        assert report.peak_bytes >= 0  # never crashes, conservative 0s


class TestBranchingGraph:
    def test_multi_consumer_keeps_tensor_live(self, rng):
        with G.default_graph() as g:
            x = gb.placeholder(name="x")
            a = gb.relu(x)
            b = gb.square(a)
            c = gb.sqrt(a)       # second consumer of a
            d = gb.reduce_mean(b + c)
        report = estimate_liveness(g, fetches=[d],
                                   feed_shapes={"x": (10, 10)})
        a_name = a.op.name
        birth, death = report.lifetime[a_name]
        consumers = [i for i, name in enumerate(report.schedule)
                     if a_name in
                     [e.op.name for e in g.get_operation(name).inputs]]
        assert death == max(consumers)


class TestCrossCheckDynamic:
    def test_static_matches_dynamic_profiler(self, rng):
        """The static estimate agrees with the measured activation peak."""
        import repro.models.graph.builders as GM
        from repro.tools.memory import MemoryProfilingTool

        gm = GM.build_mlp(learning_rate=None)
        feeds = {"input": (8, 16), "labels": (8,)}
        static = estimate_liveness(gm.graph, fetches=[gm.loss],
                                   feed_shapes=feeds, exclude_types=())

        tool = MemoryProfilingTool()
        sess = gm.session()
        with amanda.apply(tool):
            sess.run(gm.loss, {gm.inputs: rng.standard_normal((8, 16)),
                               gm.labels: rng.integers(0, 4, 8)})
        dynamic = tool.peak_memory()

        assert dynamic > 0 and static.peak_bytes > 0
        ratio = static.peak_bytes / dynamic
        assert 0.5 <= ratio <= 2.0, (
            f"static {static.peak_bytes} vs dynamic {dynamic} "
            f"(ratio {ratio:.2f})")

    def test_static_total_bytes_exact_for_forward_pass(self, rng):
        """Static per-op byte sizes equal the executed array sizes."""
        import repro.models.graph.builders as GM
        gm = GM.build_mlp(learning_rate=None)
        feeds = {"input": (8, 16), "labels": (8,)}
        report = estimate_liveness(gm.graph, fetches=[gm.loss],
                                   feed_shapes=feeds, exclude_types=())

        sess = gm.session()
        values = sess.run(
            [gm.logits, gm.loss],
            {gm.inputs: rng.standard_normal((8, 16)),
             gm.labels: rng.integers(0, 4, 8)})
        assert report.output_bytes[gm.logits.op.name] == \
            np.asarray(values[0]).nbytes
        # the xent op has two outputs: the scalar loss plus a logits-shaped
        # softmax-gradient tensor kept for the backward pass
        assert report.output_bytes[gm.loss.op.name] == \
            np.asarray(values[1]).nbytes + np.asarray(values[0]).nbytes
