"""Static liveness/peak-memory estimator, cross-checked against the dynamic
MemoryProfilingTool numbers."""

import numpy as np
import pytest

import repro.amanda as amanda
import repro.graph as G
from repro.analysis.liveness import estimate_liveness
from repro.graph import builder as gb


class TestChainGraph:
    """Hand-computable case: a chain where every byte count is known."""

    @pytest.fixture
    def chain(self):
        with G.default_graph() as g:
            x = gb.placeholder(name="x")          # (4, 8) -> 256 B
            a = gb.relu(x)                        # 256 B
            b = gb.square(a)                      # 256 B
            c = gb.reduce_mean(b)                 # () -> 8 B
        return g, x, c

    def test_exact_peak(self, chain):
        g, x, c = chain
        report = estimate_liveness(g, fetches=[c],
                                   feed_shapes={"x": (4, 8)})
        # schedule: Relu(alloc 256, x frees), Square(alloc 256 -> live 512,
        # then Relu frees), Mean(alloc 8 -> live 264 after Square freed)
        assert report.output_bytes[c.op.name] == 8
        relu = next(name for name in report.schedule if "Relu" in name)
        square = next(name for name in report.schedule if "Square" in name)
        assert report.output_bytes[relu] == 256
        assert report.output_bytes[square] == 256
        assert report.peak_bytes == 512
        assert report.peak_op == square
        assert report.unknown_ops == []

    def test_lifetimes(self, chain):
        g, x, c = chain
        report = estimate_liveness(g, fetches=[c],
                                   feed_shapes={"x": (4, 8)})
        relu = next(name for name in report.schedule if "Relu" in name)
        square = next(name for name in report.schedule if "Square" in name)
        # relu's output dies exactly when square (its only consumer) runs
        birth, death = report.lifetime[relu]
        assert death == report.schedule.index(square)
        # the fetched tensor lives to the end of the schedule
        assert report.lifetime[c.op.name][1] == len(report.schedule) - 1

    def test_unknown_shapes_degrade_gracefully(self, chain):
        g, x, c = chain
        report = estimate_liveness(g, fetches=[c])  # no feed shapes
        assert len(report.unknown_ops) > 0
        assert report.peak_bytes >= 0  # never crashes, conservative 0s


class TestBranchingGraph:
    def test_multi_consumer_keeps_tensor_live(self, rng):
        with G.default_graph() as g:
            x = gb.placeholder(name="x")
            a = gb.relu(x)
            b = gb.square(a)
            c = gb.sqrt(a)       # second consumer of a
            d = gb.reduce_mean(b + c)
        report = estimate_liveness(g, fetches=[d],
                                   feed_shapes={"x": (10, 10)})
        a_name = a.op.name
        birth, death = report.lifetime[a_name]
        consumers = [i for i, name in enumerate(report.schedule)
                     if a_name in
                     [e.op.name for e in g.get_operation(name).inputs]]
        assert death == max(consumers)


class TestCrossCheckDynamic:
    def test_static_matches_dynamic_profiler(self, rng):
        """The static estimate agrees with the measured activation peak."""
        import repro.models.graph.builders as GM
        from repro.tools.memory import MemoryProfilingTool

        gm = GM.build_mlp(learning_rate=None)
        feeds = {"input": (8, 16), "labels": (8,)}
        static = estimate_liveness(gm.graph, fetches=[gm.loss],
                                   feed_shapes=feeds, exclude_types=())

        tool = MemoryProfilingTool()
        sess = gm.session()
        with amanda.apply(tool):
            sess.run(gm.loss, {gm.inputs: rng.standard_normal((8, 16)),
                               gm.labels: rng.integers(0, 4, 8)})
        dynamic = tool.peak_memory()

        # forward graphs are fully covered by the instrumentation mapping,
        # so the byte models agree exactly (same ops, same nbytes, same
        # last-consumer frees)
        assert dynamic > 0
        assert static.peak_bytes == dynamic

    @pytest.mark.parametrize("model", ["mlp", "bert", "inception"])
    def test_remat_planners_agree_on_zoo(self, rng, model):
        """The dynamic DTR-style planner and the static remat scheduler see
        the same activation byte model and pin the same source ops."""
        import repro.models.graph.builders as GM
        from repro.analysis.remat import plan_remat_for_graph
        from repro.tools.memory import MemoryProfilingTool

        if model == "mlp":
            gm = GM.build_mlp(learning_rate=None)
            feeds = {"input": (8, 16), "labels": (8,)}
            data = {gm.inputs: rng.standard_normal((8, 16)),
                    gm.labels: rng.integers(0, 4, 8)}
        elif model == "bert":
            gm = GM.build_bert(learning_rate=None)
            feeds = {"input": (2, 16), "labels": (2, 16)}
            data = {gm.inputs: rng.integers(0, 32, (2, 16)),
                    gm.labels: rng.integers(0, 2, (2, 16))}
        else:
            gm = GM.build_inception_v3(learning_rate=None)
            feeds = {"input": (2, 32, 32, 3), "labels": (2,)}
            data = {gm.inputs: rng.standard_normal((2, 32, 32, 3)),
                    gm.labels: rng.integers(0, 4, 2)}

        tool = MemoryProfilingTool()
        sess = gm.session()
        with amanda.apply(tool):
            sess.run(gm.loss, data)

        # byte-model parity: the dynamic activation peak (variables are
        # store-owned, zero bytes) equals the static planner's serial
        # baseline exactly
        dyn_baseline = tool.peak_memory(activations_only=True)
        unbudgeted = plan_remat_for_graph(gm.graph, [gm.loss],
                                          budget=1 << 60, feed_shapes=feeds)
        assert dyn_baseline == unbudgeted.baseline_serial_peak

        # under a tight budget both planners evict, neither touches sources
        budget = int(dyn_baseline * 0.7)
        dyn_plan = tool.rematerialization_plan(budget,
                                               activations_only=True)
        assert dyn_plan.evicted, "budget below baseline must force evictions"
        sources = {"variable", "placeholder", "constant"}
        assert all(tool.op_types[op_id] not in sources
                   for op_id in dyn_plan.evicted)

        static = plan_remat_for_graph(gm.graph, [gm.loss], budget=budget,
                                      feed_shapes=feeds)
        assert static.serial_peak <= static.baseline_serial_peak
        if static.feasible:
            # the dynamic estimate is optimistic (evicted tensors occupy no
            # residency at all), so a feasible real schedule implies a
            # feasible dynamic plan
            assert dyn_plan.feasible
            assert dyn_plan.achieved_peak <= budget

    def test_static_total_bytes_exact_for_forward_pass(self, rng):
        """Static per-op byte sizes equal the executed array sizes."""
        import repro.models.graph.builders as GM
        gm = GM.build_mlp(learning_rate=None)
        feeds = {"input": (8, 16), "labels": (8,)}
        report = estimate_liveness(gm.graph, fetches=[gm.loss],
                                   feed_shapes=feeds, exclude_types=())

        sess = gm.session()
        values = sess.run(
            [gm.logits, gm.loss],
            {gm.inputs: rng.standard_normal((8, 16)),
             gm.labels: rng.integers(0, 4, 8)})
        assert report.output_bytes[gm.logits.op.name] == \
            np.asarray(values[0]).nbytes
        # the xent op has two outputs: the scalar loss plus a logits-shaped
        # softmax-gradient tensor kept for the backward pass
        assert report.output_bytes[gm.loss.op.name] == \
            np.asarray(values[1]).nbytes + np.asarray(values[0]).nbytes
