"""LCG-based op identity: stability across iterations (hypothesis-backed)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.amanda import LinearCongruentialGenerator, OpIdAssigner


class TestLCG:
    def test_deterministic_stream(self):
        a = LinearCongruentialGenerator(seed=42)
        b = LinearCongruentialGenerator(seed=42)
        assert [a.next() for _ in range(100)] == [b.next() for _ in range(100)]

    def test_different_seeds_diverge(self):
        a = LinearCongruentialGenerator(seed=1)
        b = LinearCongruentialGenerator(seed=2)
        assert [a.next() for _ in range(10)] != [b.next() for _ in range(10)]

    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=50, deadline=None)
    def test_values_in_modulus_range(self, seed):
        lcg = LinearCongruentialGenerator(seed)
        for _ in range(20):
            value = lcg.next()
            assert 0 <= value < 2**32

    def test_full_period_no_short_cycle(self):
        # the (a, c, m) parameters give a full-period generator; sanity-check
        # a long prefix has no repeats
        lcg = LinearCongruentialGenerator(seed=7)
        seen = set()
        for _ in range(10_000):
            value = lcg.next()
            assert value not in seen
            seen.add(value)


class TestOpIdAssigner:
    def test_same_sequence_same_ids_across_iterations(self):
        assigner = OpIdAssigner()
        sequence = ["conv2d", "relu", "conv2d", "linear"]
        first = [assigner.assign(name) for name in sequence]
        assigner.new_iteration()
        second = [assigner.assign(name) for name in sequence]
        assert first == second

    def test_distinct_ops_distinct_ids(self):
        assigner = OpIdAssigner()
        ids = [assigner.assign("conv2d") for _ in range(10)]
        assert len(set(ids)) == 10

    def test_same_name_different_occurrence_differs(self):
        assigner = OpIdAssigner()
        a = assigner.assign("relu")
        b = assigner.assign("relu")
        assert a != b

    def test_peek_does_not_advance(self):
        assigner = OpIdAssigner()
        op_id = assigner.assign("conv2d")
        assert assigner.peek("conv2d", 0) == op_id
        assert assigner.peek("conv2d", 5) is None

    def test_reset_forgets_ids(self):
        assigner = OpIdAssigner()
        first = assigner.assign("conv2d")
        assigner.reset()
        # fresh LCG state was NOT reset, but mapping is: a new id is drawn
        second = assigner.assign("conv2d")
        assert first != second

    def test_iteration_counter(self):
        assigner = OpIdAssigner()
        assert assigner.iteration == 0
        assigner.new_iteration()
        assert assigner.iteration == 1

    @given(names=st.lists(st.sampled_from(["a", "b", "c", "d"]),
                          min_size=1, max_size=30),
           iterations=st.integers(2, 5))
    @settings(max_examples=50, deadline=None)
    def test_stability_property(self, names, iterations):
        """Any op-name sequence replayed across iterations keeps its ids."""
        assigner = OpIdAssigner()
        reference = [assigner.assign(name) for name in names]
        for _ in range(iterations):
            assigner.new_iteration()
            assert [assigner.assign(name) for name in names] == reference
