"""Unit tests for the simulated kernel runtime (CUPTI analog)."""

import threading

import numpy as np
import pytest

from repro.kernels.runtime import KernelEvent, KernelRuntime


@pytest.fixture
def runtime() -> KernelRuntime:
    return KernelRuntime()


def test_launch_passthrough_without_subscribers(runtime):
    result = runtime.launch("gemm", np.matmul, np.eye(3), np.ones((3, 2)))
    assert result.shape == (3, 2)
    assert runtime.launch_count == 1


def test_subscriber_receives_events(runtime):
    events: list[KernelEvent] = []
    runtime.subscribe(events.append)
    runtime.launch("relu", np.maximum, np.array([-1.0, 2.0]), 0.0)
    runtime.unsubscribe(events.append)
    assert len(events) == 1
    event = events[0]
    assert event.name == "relu"
    assert event.duration >= 0
    assert event.bytes_accessed > 0


def test_unsubscribe_stops_events(runtime):
    events = []
    runtime.subscribe(events.append)
    runtime.unsubscribe(events.append)
    runtime.launch("noop", lambda: 0)
    assert events == []


def test_correlation_tag_stack(runtime):
    events = []
    runtime.subscribe(events.append)
    runtime.push_tag("conv2d|1")
    runtime.push_tag("gemm|2")
    runtime.launch("inner", lambda: np.zeros(1))
    runtime.pop_tag()
    runtime.launch("outer", lambda: np.zeros(1))
    runtime.pop_tag()
    runtime.launch("untagged", lambda: np.zeros(1))
    runtime.unsubscribe(events.append)
    assert events[0].correlation_tag == "gemm|2"
    assert events[1].correlation_tag == "conv2d|1"
    assert events[2].correlation_tag is None


def test_pop_tag_on_empty_stack_is_noop(runtime):
    runtime.pop_tag()
    assert runtime.current_tag() is None


def test_bytes_accessed_counts_args_and_result(runtime):
    events = []
    runtime.subscribe(events.append)
    a = np.zeros((4, 4))
    runtime.launch("copy", lambda x: x.copy(), a)
    runtime.unsubscribe(events.append)
    assert events[0].bytes_accessed == 2 * a.nbytes


def test_multiple_subscribers_all_notified(runtime):
    seen_a, seen_b = [], []
    runtime.subscribe(seen_a.append)
    runtime.subscribe(seen_b.append)
    runtime.launch("k", lambda: np.zeros(1))
    runtime.unsubscribe(seen_a.append)
    runtime.unsubscribe(seen_b.append)
    assert len(seen_a) == len(seen_b) == 1


def test_event_meta_passthrough(runtime):
    events = []
    runtime.subscribe(events.append)
    runtime.launch("k", lambda: np.zeros(1), meta={"algo": "winograd"})
    runtime.unsubscribe(events.append)
    assert events[0].meta == {"algo": "winograd"}


# -- parallel safety (wavefront executor launches from worker threads) --------

def _hammer(runtime, threads, launches_per_thread):
    def work():
        for _ in range(launches_per_thread):
            runtime.launch("k", lambda: np.zeros(1))
    workers = [threading.Thread(target=work) for _ in range(threads)]
    for t in workers:
        t.start()
    for t in workers:
        t.join()


def test_launch_count_exact_under_contention(runtime):
    _hammer(runtime, threads=8, launches_per_thread=200)
    assert runtime.launch_count == 8 * 200


def test_subscriber_sees_every_event_under_contention(runtime):
    events = []
    lock = threading.Lock()

    def record(event):
        with lock:
            events.append(event)

    runtime.subscribe(record)
    _hammer(runtime, threads=8, launches_per_thread=100)
    runtime.unsubscribe(record)
    assert len(events) == 8 * 100


def test_correlation_tags_are_per_thread(runtime):
    events = []
    lock = threading.Lock()

    def record(event):
        with lock:
            events.append(event)

    runtime.subscribe(record)
    barrier = threading.Barrier(2)

    def work(tag):
        runtime.push_tag(tag)
        barrier.wait()  # both threads hold their tag simultaneously
        for _ in range(20):
            runtime.launch("k", lambda: np.zeros(1))
        runtime.pop_tag()

    threads = [threading.Thread(target=work, args=(f"op|{i}",))
               for i in range(2)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    runtime.unsubscribe(record)
    by_tag = {}
    for event in events:
        by_tag[event.correlation_tag] = by_tag.get(event.correlation_tag, 0) + 1
    # no cross-thread bleed: each thread's 20 launches carry its own tag
    assert by_tag == {"op|0": 20, "op|1": 20}
    assert runtime.current_tag() is None  # main thread's stack untouched


def test_capture_buffers_instead_of_delivering(runtime):
    delivered, captured = [], []
    runtime.subscribe(delivered.append)
    with runtime.capture(captured):
        runtime.launch("k", lambda: np.zeros(1))
    assert delivered == []
    assert len(captured) == 1
    runtime.deliver(captured)
    runtime.unsubscribe(delivered.append)
    assert delivered == captured


def test_capture_restores_previous_buffer(runtime):
    outer, inner = [], []
    with runtime.capture(outer):
        with runtime.capture(inner):
            runtime.launch("a", lambda: np.zeros(1))
        runtime.launch("b", lambda: np.zeros(1))
    assert [e.name for e in inner] == ["a"]
    assert [e.name for e in outer] == ["b"]
    # outside any capture scope events flow inline again (none buffered)
    runtime.launch("c", lambda: np.zeros(1))
    assert len(outer) == 1 and len(inner) == 1


def test_capture_without_subscribers_still_records(runtime):
    captured = []
    with runtime.capture(captured):
        runtime.launch("k", lambda: np.zeros(1))
    assert len(captured) == 1  # profiler may subscribe before deliver()


def test_ordered_subscriber_tracked_and_released(runtime):
    events = []
    runtime.subscribe(events.append, ordered=True)
    assert runtime.has_ordered_subscribers
    runtime.unsubscribe(events.append)
    assert not runtime.has_ordered_subscribers
    assert not runtime.has_subscribers


def test_ordered_flag_survives_bound_method_identity(runtime):
    """list.append-style bound methods get a fresh object per access; the
    ordered bookkeeping must still clear on unsubscribe (equality, not id)."""
    seen = []
    runtime.subscribe(seen.append, ordered=True)
    runtime.unsubscribe(seen.append)  # distinct object, equal value
    assert not runtime.has_ordered_subscribers
