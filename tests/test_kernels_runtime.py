"""Unit tests for the simulated kernel runtime (CUPTI analog)."""

import numpy as np
import pytest

from repro.kernels.runtime import KernelEvent, KernelRuntime


@pytest.fixture
def runtime() -> KernelRuntime:
    return KernelRuntime()


def test_launch_passthrough_without_subscribers(runtime):
    result = runtime.launch("gemm", np.matmul, np.eye(3), np.ones((3, 2)))
    assert result.shape == (3, 2)
    assert runtime.launch_count == 1


def test_subscriber_receives_events(runtime):
    events: list[KernelEvent] = []
    runtime.subscribe(events.append)
    runtime.launch("relu", np.maximum, np.array([-1.0, 2.0]), 0.0)
    runtime.unsubscribe(events.append)
    assert len(events) == 1
    event = events[0]
    assert event.name == "relu"
    assert event.duration >= 0
    assert event.bytes_accessed > 0


def test_unsubscribe_stops_events(runtime):
    events = []
    runtime.subscribe(events.append)
    runtime.unsubscribe(events.append)
    runtime.launch("noop", lambda: 0)
    assert events == []


def test_correlation_tag_stack(runtime):
    events = []
    runtime.subscribe(events.append)
    runtime.push_tag("conv2d|1")
    runtime.push_tag("gemm|2")
    runtime.launch("inner", lambda: np.zeros(1))
    runtime.pop_tag()
    runtime.launch("outer", lambda: np.zeros(1))
    runtime.pop_tag()
    runtime.launch("untagged", lambda: np.zeros(1))
    runtime.unsubscribe(events.append)
    assert events[0].correlation_tag == "gemm|2"
    assert events[1].correlation_tag == "conv2d|1"
    assert events[2].correlation_tag is None


def test_pop_tag_on_empty_stack_is_noop(runtime):
    runtime.pop_tag()
    assert runtime.current_tag() is None


def test_bytes_accessed_counts_args_and_result(runtime):
    events = []
    runtime.subscribe(events.append)
    a = np.zeros((4, 4))
    runtime.launch("copy", lambda x: x.copy(), a)
    runtime.unsubscribe(events.append)
    assert events[0].bytes_accessed == 2 * a.nbytes


def test_multiple_subscribers_all_notified(runtime):
    seen_a, seen_b = [], []
    runtime.subscribe(seen_a.append)
    runtime.subscribe(seen_b.append)
    runtime.launch("k", lambda: np.zeros(1))
    runtime.unsubscribe(seen_a.append)
    runtime.unsubscribe(seen_b.append)
    assert len(seen_a) == len(seen_b) == 1


def test_event_meta_passthrough(runtime):
    events = []
    runtime.subscribe(events.append)
    runtime.launch("k", lambda: np.zeros(1), meta={"algo": "winograd"})
    runtime.unsubscribe(events.append)
    assert events[0].meta == {"algo": "winograd"}
