"""Wavefront-parallel graph execution: equivalence, fallbacks, memory.

The parallel executor must be invisible except for speed and memory: results,
profiler attribution and fault semantics are bit-identical to the serial
executor for every worker count, and anything not provably order-independent
silently falls back to serial.
"""

import numpy as np
import pytest

import repro.amanda as amanda
import repro.eager as E
import repro.graph as G
import repro.models.eager as M
import repro.models.graph as GM
from repro.amanda.tools import ExecutionTraceTool, KernelProfilingTool
from repro.analysis.liveness import estimate_liveness
from repro.eager import alloc
from repro.graph import builder as gb
from repro.graph.core import plan_levels, topo_plan
from repro.graph.session import CompiledPlan
from repro.kernels.runtime import runtime as kernel_runtime

WORKER_COUNTS = (1, 2, 4)


def _run(sess, fetches, feed, workers):
    with amanda.num_workers(workers):
        return sess.run(fetches, feed)


class TestBitEquivalence:
    """Serial and parallel runs produce bitwise-identical results."""

    @pytest.mark.parametrize("builder,input_shape", [
        (GM.build_mlp, (8, 16)),
        (GM.build_vgg, (2, 16, 16, 3)),
        (GM.build_resnet, (2, 16, 16, 3)),
        (GM.build_mobilenet_v2, (2, 16, 16, 3)),
        (GM.build_inception_v3, (2, 16, 16, 3)),
    ])
    def test_models_bitwise_equal_across_worker_counts(self, rng, builder,
                                                       input_shape):
        gm = builder()
        sess = gm.session()
        feed = {gm.inputs: rng.standard_normal(input_shape),
                gm.labels: rng.integers(0, 4, input_shape[0])}
        baseline = _run(sess, [gm.logits, gm.loss], feed, workers=1)
        assert not sess.last_run_parallel
        for workers in WORKER_COUNTS[1:]:
            got = _run(sess, [gm.logits, gm.loss], feed, workers)
            assert sess.last_run_parallel, sess.last_fallback_reason
            for expected, actual in zip(baseline, got):
                np.testing.assert_array_equal(np.asarray(expected),
                                              np.asarray(actual))

    def test_bert_bitwise_equal(self, rng):
        gm = GM.build_bert()
        sess = gm.session()
        feed = {gm.inputs: rng.integers(0, 32, (2, 16)),
                gm.labels: np.zeros((2, 16), dtype=int)}
        baseline = _run(sess, gm.loss, feed, workers=1)
        for workers in WORKER_COUNTS[1:]:
            got = _run(sess, gm.loss, feed, workers)
            assert sess.last_run_parallel, sess.last_fallback_reason
            np.testing.assert_array_equal(np.asarray(baseline),
                                          np.asarray(got))

    def test_eager_models_unaffected_by_knob(self, rng):
        """num_workers only touches the graph Session; eager stays eager."""
        model = M.LeNet(rng=rng)
        x = E.tensor(rng.standard_normal((2, 3, 16, 16)))
        baseline = model(x).data
        with amanda.num_workers(4):
            np.testing.assert_array_equal(model(x).data, baseline)


class TestFallbackRules:
    def test_training_fetches_run_wavefront_parallel(self, rng):
        """Every optimizer writer data-depends on its Variable read, so the
        race analysis finds zero conflicting pairs and training — the
        headline case the old executor bailed out of — runs wavefronted."""
        gm = GM.build_mlp(learning_rate=0.3)
        sess = gm.session()
        x = rng.standard_normal((16, 16))
        y = rng.integers(0, 4, 16)
        with amanda.num_workers(4):
            loss, _ = sess.run([gm.loss, gm.train_op],
                               {gm.inputs: x, gm.labels: y})
        assert sess.last_run_parallel
        report = sess.last_serialization_report
        assert report.parallel and report.conflicts == ()
        assert report.serialized_ops == {}
        assert np.isfinite(loss)

    def test_legacy_knob_restores_all_or_nothing_fallback(self, rng):
        """AMANDA_EFFECT_ANALYSIS=0 brings back the old whole-plan bailout."""
        gm = GM.build_mlp(learning_rate=0.3)
        sess = gm.session()
        feed = {gm.inputs: rng.standard_normal((16, 16)),
                gm.labels: rng.integers(0, 4, 16)}
        with amanda.num_workers(4), amanda.effect_analysis(False):
            loss, _ = sess.run([gm.loss, gm.train_op], feed)
        assert not sess.last_run_parallel
        assert "variable-store writer" in sess.last_fallback_reason
        assert np.isfinite(loss)

    def test_training_trajectory_identical_under_knob(self, rng):
        """The knob never changes training numerics (race-directed order)."""
        x = rng.standard_normal((16, 16))
        y = rng.integers(0, 4, 16)

        def losses(workers):
            gm = GM.build_mlp(learning_rate=0.3, seed=7)
            sess = gm.session()
            with amanda.num_workers(workers):
                return [np.asarray(sess.run(
                    [gm.loss, gm.train_op],
                    {gm.inputs: x, gm.labels: y})[0]) for _ in range(5)]

        np.testing.assert_array_equal(losses(1), losses(4))

    def test_ordered_kernel_subscriber_forces_serial(self, rng):
        gm = GM.build_mlp(learning_rate=None)
        sess = gm.session()
        feed = {gm.inputs: rng.standard_normal((4, 16))}
        seen = []
        kernel_runtime.subscribe(seen.append, ordered=True)
        try:
            with amanda.num_workers(4):
                sess.run(gm.logits, feed)
            assert not sess.last_run_parallel
            assert "in-order" in sess.last_fallback_reason
            assert seen  # events were still delivered inline
        finally:
            kernel_runtime.unsubscribe(seen.append)

    def test_untagged_pycall_forces_serial(self, rng):
        with G.default_graph() as g:
            x = gb.placeholder(name="x")
            y = gb.py_call(lambda v: v * 2, [x]).outputs[0]
        sess = G.Session(g)
        with amanda.num_workers(4):
            out = sess.run(y, {x: np.ones(3)})
        assert not sess.last_run_parallel
        assert "PyCall" in sess.last_fallback_reason
        np.testing.assert_array_equal(np.asarray(out), 2 * np.ones(3))

    def test_serial_when_workers_not_requested(self, rng):
        gm = GM.build_mlp(learning_rate=None)
        sess = gm.session()
        sess.run(gm.logits, {gm.inputs: rng.standard_normal((4, 16))})
        assert not sess.last_run_parallel
        assert sess.last_fallback_reason is None


class TestRaceDirectedParallel:
    """Plans with genuine conflicts still run wavefronted: only the
    conflicting pair is serialized, bit-identical to serial execution."""

    @staticmethod
    def _write_write_graph():
        """Two independent writers of one variable — one write-write pair."""
        with G.default_graph() as g:
            x = gb.placeholder(name="x")
            v = gb.variable(np.zeros(4), name="v")
            a = gb.assign_add(v, gb.relu(x), name="writer_a")
            b = gb.assign_add(v, gb.tanh(x), name="writer_b")
            step = gb.group([a, b], name="step").outputs[0]
            out = gb.identity(gb.relu(x), name="out")
        return g, x, step, out

    def test_single_write_write_pair_bit_identical(self, rng):
        x_val = rng.standard_normal(4)

        def run(workers):
            g, x, step, out = self._write_write_graph()
            sess = G.Session(g)
            fetched = _run(sess, [out, step], {x: x_val}, workers)[0]
            return sess, np.asarray(fetched), g.variables.read("v")

        sess, base_out, base_store = run(1)
        assert not sess.last_run_parallel
        for workers in WORKER_COUNTS[1:]:
            sess, got_out, got_store = run(workers)
            report = sess.last_serialization_report
            assert sess.last_run_parallel, sess.last_fallback_reason
            # exactly the one conflicting pair is serialized, nothing else
            assert len(report.conflicts) == 1
            conflict = report.conflicts[0]
            assert conflict.kind == "write-write"
            assert conflict.keys == ("v",)
            assert set(report.serialized_ops) == {"writer_a", "writer_b"}
            np.testing.assert_array_equal(got_out, base_out)
            np.testing.assert_array_equal(got_store, base_store)

    @staticmethod
    def _shared_bn_graph():
        """Two training BatchNorms updating the same running statistics."""
        with G.default_graph() as g:
            x = gb.placeholder(name="x")
            gamma = gb.constant(np.ones(3), name="gamma")
            beta = gb.constant(np.zeros(3), name="beta")
            g.variables.create("shared_mean", np.zeros(3))
            g.variables.create("shared_var", np.ones(3))
            y1 = gb.fused_batch_norm(x, gamma, beta, "shared_mean",
                                     "shared_var", training=True, name="bn1")
            y2 = gb.fused_batch_norm(x, gamma, beta, "shared_mean",
                                     "shared_var", training=True, name="bn2")
            out = gb.identity(y1 + y2, name="out")
        return g, x, out

    def test_training_batchnorm_pair_bit_identical(self, rng):
        x_val = rng.standard_normal((8, 4, 4, 3))

        def run(workers):
            g, x, out = self._shared_bn_graph()
            sess = G.Session(g)
            fetched = _run(sess, out, {x: x_val}, workers)
            return sess, np.asarray(fetched), \
                g.variables.read("shared_mean"), \
                g.variables.read("shared_var")

        _, base_out, base_mean, base_var = run(1)
        for workers in WORKER_COUNTS[1:]:
            sess, got_out, got_mean, got_var = run(workers)
            report = sess.last_serialization_report
            assert sess.last_run_parallel, sess.last_fallback_reason
            assert len(report.conflicts) == 1
            assert report.conflicts[0].kind == "write-write"
            assert set(report.conflicts[0].keys) == {"shared_mean",
                                                     "shared_var"}
            np.testing.assert_array_equal(got_out, base_out)
            np.testing.assert_array_equal(got_mean, base_mean)
            np.testing.assert_array_equal(got_var, base_var)

    def test_mutating_tool_graph_still_parallelizes(self, rng):
        """A rewriting tool that declares pure effects (pruning computes the
        replacement statically) no longer forces the serial executor."""
        from repro.amanda.tools import MagnitudePruningTool
        gm = GM.build_mlp(learning_rate=None, depth=3)
        sess = gm.session()
        feed = {gm.inputs: rng.standard_normal((4, 16))}

        def run(workers):
            tool = MagnitudePruningTool(sparsity=0.5)
            with amanda.num_workers(workers), amanda.apply(tool):
                return np.asarray(sess.run(gm.logits, feed))

        baseline = run(1)
        got = run(4)
        assert sess.last_run_parallel, sess.last_fallback_reason
        np.testing.assert_array_equal(got, baseline)


class TestCompiledPlan:
    def test_levels_partition_plan_and_respect_deps(self):
        gm = GM.build_inception_v3()
        plan = topo_plan([gm.logits.op])
        levels = plan_levels(plan)
        assert sum(len(level) for level in levels) == len(plan)
        # inception's parallel branches make levels genuinely wide
        assert max(len(level) for level in levels) >= 4
        level_of = {op.name: i for i, level in enumerate(levels)
                    for op in level}
        for op in plan:
            for edge in op.inputs:
                assert level_of[edge.op.name] < level_of[op.name]

    def test_release_excludes_fetched_ops(self):
        gm = GM.build_mlp(learning_rate=None)
        plan = topo_plan([gm.logits.op])
        compiled = CompiledPlan(plan, (gm.logits.op.name,))
        released = [name for level in compiled.release_after_level
                    for name in level]
        assert gm.logits.op.name not in released
        assert compiled.parallel_safe

    def test_plan_cache_prunes_stale_versions(self, rng):
        gm = GM.build_mlp(learning_rate=None)
        sess = gm.session()
        feed = {gm.inputs: rng.standard_normal((4, 16))}
        sess.run(gm.logits, feed)
        assert len(sess._plan_cache) == 1
        # a driver-style internal rewrite bumps the version; the next plan
        # compile must evict the now-unreachable entry instead of growing
        for _ in range(3):
            gm.graph._internal_mutation = True
            try:
                gm.graph.add_op("NoOp", name="epoch_marker")
            finally:
                gm.graph._internal_mutation = False
            sess.run(gm.logits, feed)
            assert len(sess._plan_cache) == 1

    def test_distinct_fetch_sets_share_the_cache(self, rng):
        gm = GM.build_mlp(learning_rate=None)
        sess = gm.session()
        feed = {gm.inputs: rng.standard_normal((4, 16)),
                gm.labels: rng.integers(0, 4, 4)}
        sess.run(gm.logits, feed)
        sess.run(gm.loss, feed)
        sess.run(gm.logits, feed)
        assert len(sess._plan_cache) == 2


class TestFingerprint:
    def test_fingerprint_memoized_until_version_moves(self):
        with G.default_graph() as g:
            x = gb.placeholder(name="x")
            gb.relu(x)
        first = g.fingerprint()
        assert g.fingerprint() is first  # memo hit: same tuple object
        g.add_op("NoOp")
        second = g.fingerprint()
        assert second != first
        assert second[1] == g.version

    def test_structurally_equal_graphs_share_digest_not_identity(self):
        def build():
            with G.default_graph() as g:
                x = gb.placeholder(name="x")
                gb.relu(x)
            return g

        a, b = build(), build()
        assert a.fingerprint()[2] == b.fingerprint()[2]
        assert a.fingerprint() != b.fingerprint()


class TestMemoryRelease:
    def test_parallel_peak_within_wavefront_estimate(self, rng):
        gm = GM.build_mlp(learning_rate=None, depth=6, hidden=64)
        sess = gm.session()
        x = rng.standard_normal((32, 16))
        feed = {gm.inputs: x}

        alloc.tracker.reset()
        baseline = _run(sess, gm.logits, feed, workers=1)
        serial_peak = alloc.tracker.peak["dnn"]

        alloc.tracker.reset()
        got = _run(sess, gm.logits, feed, workers=4)
        parallel_peak = alloc.tracker.peak["dnn"]
        assert sess.last_run_parallel

        np.testing.assert_array_equal(np.asarray(baseline), np.asarray(got))
        report = estimate_liveness(gm.graph, fetches=[gm.logits],
                                   feed_shapes={"input": x.shape},
                                   exclude_types=(),
                                   schedule_mode="wavefront")
        # early release keeps the runtime peak under the static wavefront
        # bound, and strictly under the keep-everything serial peak
        assert parallel_peak <= report.peak_bytes
        assert parallel_peak < serial_peak

    def test_wavefront_estimate_bounds_serial_estimate(self, rng):
        gm = GM.build_inception_v3()
        feeds = {"input": (2, 16, 16, 3), "labels": (2,)}
        serial = estimate_liveness(gm.graph, fetches=[gm.loss],
                                   feed_shapes=feeds, exclude_types=())
        wavefront = estimate_liveness(gm.graph, fetches=[gm.loss],
                                      feed_shapes=feeds, exclude_types=(),
                                      schedule_mode="wavefront")
        # level barriers can only delay frees relative to the serial sweep
        assert wavefront.peak_bytes >= serial.peak_bytes
        assert wavefront.schedule == serial.schedule

    def test_unknown_schedule_mode_rejected(self):
        gm = GM.build_mlp(learning_rate=None)
        with pytest.raises(ValueError, match="schedule_mode"):
            estimate_liveness(gm.graph, fetches=[gm.logits],
                              schedule_mode="diagonal")

    def test_no_leaked_accounting_after_parallel_run(self, rng):
        gm = GM.build_mlp(learning_rate=None)
        sess = gm.session()
        alloc.tracker.reset()
        _run(sess, gm.logits, {gm.inputs: rng.standard_normal((4, 16))}, 4)
        assert alloc.tracker.live["dnn"] == 0


class TestInstrumentedParallel:
    def test_observe_only_tool_still_parallelizes(self, rng):
        gm = GM.build_mlp(learning_rate=None, depth=3)
        sess = gm.session()
        feed = {gm.inputs: rng.standard_normal((4, 16))}
        baseline = _run(sess, gm.logits, feed, workers=1)

        tool = ExecutionTraceTool()
        with amanda.num_workers(4), amanda.apply(tool):
            got = sess.run(gm.logits, feed)
        # the driver tags observe-only PyCalls parallel_safe, so the
        # instrumented graph runs wavefronted
        assert sess.last_run_parallel, sess.last_fallback_reason
        np.testing.assert_array_equal(np.asarray(baseline), np.asarray(got))
        assert tool.events  # every recorder fired

    def test_profiler_attribution_bit_identical(self, rng):
        gm = GM.build_mlp(learning_rate=None, depth=3)
        sess = gm.session()
        feed = {gm.inputs: rng.standard_normal((4, 16))}

        def profile(workers):
            tool = KernelProfilingTool()
            with amanda.num_workers(workers), amanda.apply(tool):
                sess.run(gm.logits, feed)
            assert sess.last_run_parallel == (workers > 1)
            # durations are wall-clock; compare the deterministic parts:
            # aggregation structure, per-kernel event counts (in delivery
            # order) and byte totals
            shape = [(op, kernel, len(durations))
                     for op, kernels in tool.kernel_times.items()
                     for kernel, durations in kernels.items()]
            return shape, dict(tool.kernel_bytes)

        serial_shape, serial_bytes = profile(1)
        for workers in WORKER_COUNTS[1:]:
            shape, kernel_bytes = profile(workers)
            assert shape == serial_shape
            assert kernel_bytes == serial_bytes

    def test_quarantined_tool_falls_back_to_vanilla_in_parallel(self, rng):
        class BoomTool(amanda.Tool):
            def __init__(self):
                super().__init__()
                self.add_inst_for_op(self.analysis)

            def analysis(self, context):
                if context.get("type") == "Relu":
                    context.insert_before_op(self._boom, inputs=[])

            @staticmethod
            def _boom(*arrays):
                raise RuntimeError("boom from a worker thread")

        gm = GM.build_mlp(learning_rate=None, depth=3)
        sess = gm.session()
        feed = {gm.inputs: rng.standard_normal((4, 16))}
        baseline = _run(sess, gm.logits, feed, workers=1)

        tool = BoomTool()
        with amanda.num_workers(4), amanda.error_policy("quarantine"), \
                amanda.apply(tool) as mgr:
            out1 = sess.run(gm.logits, feed)  # raises mid-run, on a worker
            assert tool.name in mgr.quarantined
            out2 = sess.run(gm.logits, feed)  # recompiled without the tool
        np.testing.assert_array_equal(np.asarray(out1), np.asarray(baseline))
        np.testing.assert_array_equal(np.asarray(out2), np.asarray(baseline))
        assert alloc.tracker.live["dnn"] == 0  # failed run fully unwound


class TestConfig:
    def test_env_parsing(self, monkeypatch):
        from repro.core.config import Config
        monkeypatch.setenv("AMANDA_NUM_WORKERS", "8")
        assert Config().num_workers == 8
        monkeypatch.setenv("AMANDA_NUM_WORKERS", "not-a-number")
        assert Config().num_workers == 1
        monkeypatch.setenv("AMANDA_NUM_WORKERS", "-3")
        assert Config().num_workers == 1
        monkeypatch.setenv("AMANDA_NUM_WORKERS", "auto")
        assert Config().num_workers >= 1
        monkeypatch.delenv("AMANDA_NUM_WORKERS")
        assert Config().num_workers == 1

    def test_scoped_override_restores(self):
        before = amanda.config.num_workers
        with amanda.num_workers(6):
            assert amanda.config.num_workers == 6
        assert amanda.config.num_workers == before
