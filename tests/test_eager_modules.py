"""Module system: traversal, state dict, train/eval, hooks, layers."""

import numpy as np
import pytest

import repro.eager as E
from repro.eager import F


class TestModuleBasics:
    def test_named_parameters_nested(self, rng):
        model = E.Sequential(E.Linear(4, 8, rng=rng), E.ReLU(),
                             E.Linear(8, 2, rng=rng))
        names = [n for n, _ in model.named_parameters()]
        assert "0.weight" in names and "2.bias" in names
        assert len(model.parameters()) == 4

    def test_state_dict_roundtrip(self, rng):
        a = E.Linear(3, 3, rng=rng)
        b = E.Linear(3, 3, rng=np.random.default_rng(99))
        assert not np.allclose(a.weight.data, b.weight.data)
        b.load_state_dict(a.state_dict())
        np.testing.assert_array_equal(a.weight.data, b.weight.data)

    def test_state_dict_includes_buffers(self):
        bn = E.BatchNorm2d(4)
        state = bn.state_dict()
        assert "running_mean" in state and "running_var" in state

    def test_load_rejects_unknown_keys(self, rng):
        with pytest.raises(KeyError):
            E.Linear(2, 2, rng=rng).load_state_dict({"nope": np.zeros(1)})

    def test_train_eval_propagates(self):
        model = E.Sequential(E.Dropout(0.5), E.Sequential(E.Dropout(0.5)))
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_zero_grad(self, rng):
        lin = E.Linear(2, 2, rng=rng)
        out = lin(E.tensor(rng.standard_normal((1, 2))))
        out.sum().backward()
        assert lin.weight.grad is not None
        lin.zero_grad()
        assert lin.weight.grad is None

    def test_module_list(self, rng):
        ml = E.ModuleList([E.Linear(2, 2, rng=rng)])
        ml.append(E.Linear(2, 2, rng=rng))
        assert len(ml) == 2
        assert len(list(ml[0].parameters())) == 2


class TestHooks:
    def test_forward_pre_hook_can_modify_input(self, rng):
        lin = E.Linear(2, 2, rng=rng)
        lin.register_forward_pre_hook(lambda m, args: (args[0] * 0.0,))
        out = lin(E.tensor(rng.standard_normal((1, 2))))
        np.testing.assert_allclose(out.data, lin.bias.data.reshape(1, 2))

    def test_forward_hook_can_replace_output(self, rng):
        lin = E.Linear(2, 2, rng=rng)
        lin.register_forward_hook(lambda m, args, out: out * 0.0)
        out = lin(E.tensor(rng.standard_normal((1, 2))))
        np.testing.assert_allclose(out.data, 0.0)

    def test_backward_hook_receives_grads(self, rng):
        lin = E.Linear(3, 2, rng=rng)
        seen = {}

        def hook(module, grad_inputs, grad_outputs):
            seen["go"] = grad_outputs
            seen["gi"] = grad_inputs

        lin.register_full_backward_hook(hook)
        x = E.tensor(rng.standard_normal((4, 3)), requires_grad=True)
        lin(x).sum().backward()
        assert seen["go"][0].shape == (4, 2)
        assert seen["gi"][0].shape == (4, 3)

    def test_backward_hook_fires_once_per_backward(self, rng):
        lin = E.Linear(2, 2, rng=rng)
        count = []
        lin.register_full_backward_hook(lambda m, gi, go: count.append(1))
        x = E.tensor(rng.standard_normal((1, 2)), requires_grad=True)
        lin(x).sum().backward()
        assert count == [1]

    def test_hook_handle_remove(self, rng):
        lin = E.Linear(2, 2, rng=rng)
        calls = []
        handle = lin.register_forward_hook(lambda m, a, o: calls.append(1))
        handle.remove()
        lin(E.tensor(rng.standard_normal((1, 2))))
        assert calls == []


class TestLayers:
    def test_linear_matches_manual(self, rng):
        lin = E.Linear(3, 2, rng=rng)
        x = rng.standard_normal((4, 3))
        out = lin(E.tensor(x))
        want = x @ lin.weight.data.T + lin.bias.data
        np.testing.assert_allclose(out.data, want)

    def test_conv_output_shape(self, rng):
        conv = E.Conv2d(3, 8, 3, stride=2, padding=1, rng=rng)
        out = conv(E.tensor(rng.standard_normal((2, 3, 8, 8))))
        assert out.shape == (2, 8, 4, 4)

    def test_batchnorm_updates_running_stats_in_train(self, rng):
        bn = E.BatchNorm2d(3)
        before = bn.running_mean.data.copy()
        bn(E.tensor(rng.standard_normal((4, 3, 5, 5)) + 10.0))
        assert not np.allclose(bn.running_mean.data, before)

    def test_batchnorm_eval_frozen(self, rng):
        bn = E.BatchNorm2d(3).eval()
        before = bn.running_mean.data.copy()
        bn(E.tensor(rng.standard_normal((4, 3, 5, 5))))
        np.testing.assert_array_equal(bn.running_mean.data, before)

    def test_dropout_train_vs_eval(self, rng):
        drop = E.Dropout(0.5)
        x = E.tensor(np.ones((100, 100)))
        train_out = drop(x)
        assert (train_out.data == 0).any()
        drop.eval()
        np.testing.assert_array_equal(drop(x).data, x.data)

    def test_mha_shape_and_grad(self, rng):
        mha = E.MultiheadAttention(8, 2, rng=rng)
        x = E.tensor(rng.standard_normal((2, 5, 8)), requires_grad=True)
        out = mha(x)
        assert out.shape == (2, 5, 8)
        out.sum().backward()
        assert x.grad.shape == (2, 5, 8)

    def test_mha_rejects_bad_heads(self):
        with pytest.raises(ValueError):
            E.MultiheadAttention(7, 2)

    def test_adaptive_avgpool_global(self, rng):
        pool = E.AdaptiveAvgPool2d()
        x = rng.standard_normal((2, 3, 4, 4))
        out = pool(E.tensor(x))
        np.testing.assert_allclose(out.data[:, :, 0, 0], x.mean(axis=(2, 3)))

    def test_flatten(self, rng):
        out = E.Flatten()(E.tensor(rng.standard_normal((2, 3, 4))))
        assert out.shape == (2, 12)

    def test_embedding_layer(self, rng):
        emb = E.Embedding(10, 4, rng=rng)
        out = emb(np.array([[1, 2], [3, 4]]))
        assert out.shape == (2, 2, 4)


class TestOptim:
    def test_sgd_reduces_quadratic(self):
        p = E.Parameter(np.array([5.0]))
        opt = E.optim.SGD([p], lr=0.1)
        for _ in range(50):
            opt.zero_grad()
            (p * p).sum().backward()
            opt.step()
        assert abs(p.data[0]) < 1e-3

    def test_sgd_momentum_accelerates(self):
        def run(momentum):
            p = E.Parameter(np.array([5.0]))
            opt = E.optim.SGD([p], lr=0.02, momentum=momentum)
            for _ in range(30):
                opt.zero_grad()
                (p * p).sum().backward()
                opt.step()
            return abs(p.data[0])
        assert run(0.9) < run(0.0)

    def test_adam_converges(self):
        p = E.Parameter(np.array([3.0, -2.0]))
        opt = E.optim.Adam([p], lr=0.1)
        for _ in range(200):
            opt.zero_grad()
            (p * p).sum().backward()
            opt.step()
        assert np.abs(p.data).max() < 1e-2

    def test_weight_decay_pulls_to_zero(self):
        p = E.Parameter(np.array([1.0]))
        opt = E.optim.SGD([p], lr=0.1, weight_decay=1.0)
        for _ in range(20):
            opt.zero_grad()
            # zero loss gradient: only decay acts
            p.grad = np.zeros(1)
            opt.step()
        assert abs(p.data[0]) < 0.2

    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            E.optim.SGD([], lr=0.1)

    def test_step_skips_params_without_grad(self):
        p = E.Parameter(np.array([1.0]))
        opt = E.optim.Adam([p], lr=0.1)
        opt.step()  # no grad: no crash, no change
        assert p.data[0] == 1.0
