"""Cross-driver equivalence of the shared execution-plan layer.

One tiny network — ``y = relu(x @ W)`` with identical fixed weights — is
built on all three backends.  Because every driver now routes its cached
(replay) path through the same compiled :class:`ExecutionPlan` executor,
the same tool applied to the same network must produce the same result
regardless of backend:

* tracing (observe-only plans) must leave every backend's output equal to
  its un-instrumented reference;
* static pruning (mutating plans: ``insert_before_op`` on the weight) must
  yield numerically identical outputs across all three backends;
* static quantization must derive the same weight scales on every backend.

The ONNX builder stores Gemm weights as ``(out, in)`` with ``transB=1``,
so it receives ``W.T`` — magnitude masks and max-abs scales are layout
invariant, which is exactly why the cross-backend comparison is exact.
"""

import contextlib

import numpy as np
import pytest

import repro.amanda as amanda
import repro.eager as E
import repro.eager.functional as F
import repro.graph as G
from repro.capture import capture
from repro.graph import builder as gb
from repro.onnx import InferenceSession
from repro.onnx.model import OnnxBuilder
from repro.tools.faulty import FaultyTool
from repro.tools.pruning import MagnitudePruningTool
from repro.tools.quantization import StaticPTQTool
from repro.tools.tracing import ExecutionTraceTool

RNG = np.random.default_rng(7)
X = RNG.standard_normal((3, 6))
W = RNG.standard_normal((6, 4))


def run_eager():
    out = F.relu(F.matmul(E.tensor(X), E.tensor(W)))
    return np.asarray(out.data)


def run_graph():
    with G.default_graph() as graph:
        x = gb.placeholder(shape=X.shape, name="x")
        w = gb.variable(W, name="w")
        y = gb.relu(gb.matmul(x, w))
    sess = G.Session(graph)
    return np.asarray(sess.run(y, {x: X}))


def run_onnx():
    builder = OnnxBuilder()
    x = builder.input("input")
    y = builder.relu(builder.gemm(x, W.T.copy()))
    builder.output(y)
    sess = InferenceSession(builder.model)
    return np.asarray(sess.run(None, {"input": X})[0])


BACKENDS = {"eager": run_eager, "graph": run_graph, "onnx": run_onnx}


class _CaptureNet(E.Module):
    """The same ``y = relu(x @ W)`` network as a module, for capture."""

    def __init__(self):
        super().__init__()
        self.w = E.Parameter(W.copy())

    def forward(self, x):
        return F.relu(F.matmul(x, self.w))


def _outputs(tool=None):
    """Run the network on every backend, optionally under a fresh tool."""
    results = {}
    tools = {}
    for name, run in BACKENDS.items():
        if tool is None:
            results[name] = run()
        else:
            instance = tool()
            with amanda.apply(instance):
                run()          # analysis pass populates the cache + plans
                results[name] = run()  # compiled-plan replay path
            tools[name] = instance
    return results, tools


class TestCrossDriverEquivalence:
    def test_vanilla_outputs_agree(self):
        results, _ = _outputs()
        reference = results["eager"]
        for name, value in results.items():
            np.testing.assert_allclose(value, reference, rtol=1e-9,
                                       err_msg=name)

    def test_tracing_preserves_outputs_on_every_backend(self):
        vanilla, _ = _outputs()
        traced, tools = _outputs(ExecutionTraceTool)
        for name in BACKENDS:
            np.testing.assert_allclose(traced[name], vanilla[name],
                                       rtol=1e-9, err_msg=name)
            assert tools[name].events, name  # the tool did observe ops

    def test_pruning_outputs_identical_across_backends(self):
        pruned, tools = _outputs(lambda: MagnitudePruningTool(sparsity=0.5))
        for name, tool in tools.items():
            assert tool.masks, name  # the weight op was found and masked
        reference = pruned["eager"]
        vanilla = run_eager()
        assert not np.allclose(reference, vanilla)  # pruning changed the net
        for name, value in pruned.items():
            np.testing.assert_allclose(value, reference, rtol=1e-9,
                                       err_msg=name)

    def test_captured_joins_the_equivalence_class(self):
        """The capture frontend produces the same bytes as eager dispatch."""
        model = _CaptureNet().eval()
        cm = capture(model)
        out = cm(E.tensor(X))
        np.testing.assert_array_equal(np.asarray(out.data), run_eager())

    def test_quantization_scales_agree_across_backends(self):
        quantized, tools = _outputs(lambda: StaticPTQTool(bits=8))
        # eager assigns fresh op ids per call, so dedupe by value: the
        # *set* of derived scales is the backend-independent quantity
        scales = {name: np.unique(list(tool.weight_scales.values()))
                  for name, tool in tools.items()}
        for name in BACKENDS:
            assert scales[name], name
            np.testing.assert_allclose(scales[name], scales["eager"],
                                       rtol=1e-12, err_msg=name)
        reference = quantized["eager"]
        for name, value in quantized.items():
            np.testing.assert_allclose(value, reference, rtol=1e-9,
                                       err_msg=name)


# ---------------------------------------------------------------------------
# capture matrix: {vanilla, observe-only, mutating, quarantined} tools
# x workers {1, 4} — captured execution must stay bit-identical to eager
# ---------------------------------------------------------------------------

_MATRIX_TOOLS = {
    "vanilla": None,
    "observe": ExecutionTraceTool,
    "mutate": lambda: MagnitudePruningTool(sparsity=0.5),
    "quarantine": lambda: FaultyTool(i_point="before_forward_op", always=True),
}


def _matrix_run(run, kind, workers):
    """Steady-state output of ``run`` under the matrix cell's tool."""
    factory = _MATRIX_TOOLS[kind]
    policy = (amanda.error_policy("quarantine") if kind == "quarantine"
              else contextlib.nullcontext())
    if factory is None:
        with amanda.num_workers(workers):
            run()
            return run(), None, None
    instance = factory()
    with policy, amanda.num_workers(workers), amanda.apply(instance) as mgr:
        run()                  # analysis pass / trace + first replay
        out = run()            # steady-state replay
        quarantined = set(mgr.quarantined)  # scope exit lifts quarantine
    return out, instance, quarantined


class TestCapturedMatrixEquivalence:
    """Captured == eager, bitwise, across tools and worker counts."""

    @pytest.mark.parametrize("workers", [1, 4])
    @pytest.mark.parametrize("kind", sorted(_MATRIX_TOOLS))
    def test_captured_matches_eager(self, kind, workers):
        x = E.tensor(X)
        eager_model = _CaptureNet().eval()
        cm = capture(_CaptureNet().eval())

        eager_out, eager_tool, _ = _matrix_run(
            lambda: eager_model(x).data, kind, workers)
        cap_out, cap_tool, cap_quarantined = _matrix_run(
            lambda: cm(x).data, kind, workers)
        np.testing.assert_array_equal(np.asarray(cap_out),
                                      np.asarray(eager_out))
        assert cm.capture_count >= 1
        assert cm.fallback_count == 0

        if kind == "observe":
            assert cap_tool.events          # replay is visible to the tool
            vanilla = run_eager()
            np.testing.assert_array_equal(np.asarray(cap_out), vanilla)
        elif kind == "mutate":
            assert cap_tool.masks and eager_tool.masks
            assert not np.allclose(cap_out, run_eager())  # pruning took hold
        elif kind == "quarantine":
            assert cap_tool.name in cap_quarantined  # faulty tool ejected
            np.testing.assert_array_equal(np.asarray(cap_out), run_eager())
