"""Tool x backend matrix: the portability grid, exhaustively.

One parametrized grid: each portable tool runs on each of the three
execution backends and must produce its artifact — the strongest executable
form of the paper's Tbl. 3 claim, extended to the third backend.
"""

import numpy as np
import pytest

import repro.amanda as amanda
import repro.eager as E
import repro.models.eager as M
import repro.models.graph as GM
from repro.amanda.tools import (ExecutionTraceTool, FlopsProfilingTool,
                                GraphTracingTool, LatencyProfilingTool,
                                MagnitudePruningTool, SparsityProfilingTool,
                                StaticPTQTool)
from repro.eager import F
from repro.onnx import InferenceSession, OnnxBuilder


def run_eager():
    rng = np.random.default_rng(0)
    model = M.LeNet()
    model(E.tensor(rng.standard_normal((2, 3, 16, 16))))


def run_graph():
    rng = np.random.default_rng(0)
    gm = GM.build_vgg("vgg16")
    gm.session().run(gm.logits, {gm.inputs: rng.standard_normal((2, 16, 16, 3))})


def run_onnx():
    rng = np.random.default_rng(0)
    builder = OnnxBuilder()
    x = builder.input("input")
    h = builder.relu(builder.conv(x, rng.standard_normal((4, 3, 3, 3)),
                                  np.zeros(4), pads=(1, 1)))
    h = builder.flatten(builder.max_pool(h))
    builder.output(builder.gemm(h, rng.standard_normal((4, 4 * 8 * 8))))
    InferenceSession(builder.model).run(
        None, {"input": rng.standard_normal((2, 3, 16, 16))})


BACKENDS = {"eager": run_eager, "graph": run_graph, "onnx": run_onnx}

TOOLS = {
    "graph-tracing": (GraphTracingTool,
                      lambda tool: len(tool.forward_nodes()) > 3),
    "execution-trace": (ExecutionTraceTool, lambda tool: len(tool.events) > 3),
    "flops": (FlopsProfilingTool, lambda tool: tool.total_flops() > 0),
    "latency": (LatencyProfilingTool,
                lambda tool: sum(tool.by_op_type().values()) > 0),
    "sparsity": (SparsityProfilingTool,
                 lambda tool: len(tool.records) > 0),
    "pruning": (lambda: MagnitudePruningTool(sparsity=0.5),
                lambda tool: len(tool.masks) > 0),
    "static-ptq": (lambda: StaticPTQTool(bits=8),
                   lambda tool: len(tool.weight_scales) > 0),
}


@pytest.mark.parametrize("backend", sorted(BACKENDS))
@pytest.mark.parametrize("tool_name", sorted(TOOLS))
def test_tool_produces_artifact_on_backend(backend, tool_name):
    factory, check = TOOLS[tool_name]
    tool = factory()
    with amanda.apply(tool):
        BACKENDS[backend]()
    assert check(tool), f"{tool_name} produced nothing on {backend}"


@pytest.mark.parametrize("backend", sorted(BACKENDS))
def test_execution_unchanged_by_observation_tools(backend):
    """Observation tools must not alter results on any backend."""
    rng = np.random.default_rng(0)

    def compute():
        if backend == "eager":
            model = M.MLP(in_features=6, hidden=8,
                          rng=np.random.default_rng(1))
            return model(E.tensor(np.ones((2, 6)))).data
        if backend == "graph":
            gm = GM.build_mlp(seed=1)
            return gm.session().run(gm.logits, {gm.inputs: np.ones((2, 16))})
        builder = OnnxBuilder()
        x = builder.input("input")
        builder.output(builder.gemm(
            x, np.random.default_rng(1).standard_normal((3, 6))))
        return InferenceSession(builder.model).run(
            None, {"input": np.ones((2, 6))})[0]

    reference = compute()
    with amanda.apply(FlopsProfilingTool(), SparsityProfilingTool(),
                      GraphTracingTool()):
        observed = compute()
    np.testing.assert_array_equal(observed, reference)
