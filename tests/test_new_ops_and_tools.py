"""New eager ops (clip/abs/where/stack/split/pad) and the tools built on
them (gradient clipping, latency profiling)."""

import numpy as np
import pytest

import repro.amanda as amanda
import repro.eager as E
import repro.models.eager as M
from repro.amanda.tools import GradientClippingTool, LatencyProfilingTool
from repro.eager import F
from tests.conftest import numeric_gradient


class TestNewOps:
    def test_clip_forward_and_grad(self, rng):
        x = rng.standard_normal((3, 4)) * 2
        t = E.tensor(x, requires_grad=True)
        out = F.clip(t, -0.5, 0.5)
        assert out.data.max() <= 0.5 and out.data.min() >= -0.5
        grad_out = rng.standard_normal(out.shape)
        out.backward(grad_out)
        inside = (x >= -0.5) & (x <= 0.5)
        np.testing.assert_allclose(t.grad, grad_out * inside)

    def test_clip_one_sided(self, rng):
        t = E.tensor(np.array([-2.0, 0.0, 2.0]), requires_grad=True)
        out = F.clip(t, minimum=0.0)
        np.testing.assert_array_equal(out.data, [0.0, 0.0, 2.0])

    def test_abs_grad(self, rng):
        t = E.tensor(np.array([-2.0, 3.0]), requires_grad=True)
        F.abs(t).sum().backward()
        np.testing.assert_array_equal(t.grad, [-1.0, 1.0])

    def test_where_routes_gradients(self, rng):
        condition = np.array([True, False, True])
        a = E.tensor(np.ones(3), requires_grad=True)
        b = E.tensor(np.zeros(3), requires_grad=True)
        F.where(condition, a, b).sum().backward()
        np.testing.assert_array_equal(a.grad, [1.0, 0.0, 1.0])
        np.testing.assert_array_equal(b.grad, [0.0, 1.0, 0.0])

    def test_stack_grad_splits(self, rng):
        a = E.tensor(rng.standard_normal(3), requires_grad=True)
        b = E.tensor(rng.standard_normal(3), requires_grad=True)
        out = F.stack([a, b], axis=0)
        assert out.shape == (2, 3)
        grad_out = rng.standard_normal((2, 3))
        out.backward(grad_out)
        np.testing.assert_allclose(a.grad, grad_out[0])
        np.testing.assert_allclose(b.grad, grad_out[1])

    def test_split_grad_concatenates(self, rng):
        t = E.tensor(rng.standard_normal((4, 2)), requires_grad=True)
        top, bottom = F.split(t, 2, axis=0)
        (top.sum() + (bottom * 2.0).sum()).backward()
        np.testing.assert_allclose(t.grad[:2], 1.0)
        np.testing.assert_allclose(t.grad[2:], 2.0)

    def test_pad_numeric_grad(self, rng):
        x = rng.standard_normal((2, 3))
        t = E.tensor(x, requires_grad=True)
        out = F.pad(t, [(1, 0), (2, 1)])
        assert out.shape == (3, 6)
        grad_out = rng.standard_normal(out.shape)
        out.backward(grad_out)
        want = numeric_gradient(
            lambda: np.pad(x, [(1, 0), (2, 1)]), x, grad_out)
        np.testing.assert_allclose(t.grad, want, atol=1e-6)

    def test_split_ops_are_instrumentable(self, rng):
        """New ops flow through the same dispatch: tools see them."""
        from repro.amanda.tools import GraphTracingTool
        tracer = GraphTracingTool()
        with amanda.apply(tracer):
            a, b = F.split(E.tensor(rng.standard_normal((4, 2))))
            F.stack([a, b])
        types = set(tracer.op_types().values())
        assert {"split", "stack"} <= types


class TestGradientClippingTool:
    def test_norm_clipping(self, rng):
        tool = GradientClippingTool(max_norm=0.5)
        lin = E.Linear(4, 4, rng=rng)
        with amanda.apply(tool):
            (lin(E.tensor(rng.standard_normal((8, 4)))) * 50.0).sum().backward()
        for param in lin.parameters():
            assert np.sqrt((param.grad ** 2).sum()) <= 0.5 + 1e-9
        assert tool.clip_events > 0

    def test_value_clipping(self, rng):
        tool = GradientClippingTool(clip_value=0.01)
        lin = E.Linear(4, 4, rng=rng)
        with amanda.apply(tool):
            lin(E.tensor(rng.standard_normal((8, 4)))).sum().backward()
        for param in lin.parameters():
            assert np.abs(param.grad).max() <= 0.01 + 1e-12

    def test_exactly_one_mode_required(self):
        with pytest.raises(ValueError):
            GradientClippingTool()
        with pytest.raises(ValueError):
            GradientClippingTool(max_norm=1.0, clip_value=1.0)

    def test_small_gradients_untouched(self, rng):
        tool = GradientClippingTool(max_norm=1e9)
        lin = E.Linear(4, 4, rng=rng)
        x = E.tensor(rng.standard_normal((2, 4)))
        lin(x).sum().backward()
        reference = {id(p): p.grad.copy() for p in lin.parameters()}
        lin.zero_grad()
        with amanda.apply(tool):
            lin(x).sum().backward()
        for param in lin.parameters():
            np.testing.assert_allclose(param.grad, reference[id(param)])
        assert tool.clip_events == 0


class TestLatencyProfilingTool:
    def test_latencies_recorded_per_op(self, rng):
        tool = LatencyProfilingTool()
        with amanda.apply(tool):
            for _ in range(3):
                M.LeNet()(E.tensor(rng.standard_normal((1, 3, 16, 16))))
        by_type = tool.by_op_type()
        assert by_type.get("conv2d", 0) > 0
        assert all(v >= 0 for v in by_type.values())

    def test_conv_dominates_lenet(self, rng):
        tool = LatencyProfilingTool()
        model = M.LeNet()
        x = E.tensor(rng.standard_normal((4, 3, 16, 16)))
        with amanda.apply(tool):
            for _ in range(3):
                model(x)
                amanda.new_iteration()
        assert tool.report(1)[0][0] == "conv2d"

    def test_portable_to_graph_backend(self, rng):
        import repro.models.graph as GM
        tool = LatencyProfilingTool()
        gm = GM.build_mlp()
        with amanda.apply(tool):
            gm.session().run(gm.logits,
                             {gm.inputs: rng.standard_normal((4, 16))})
        assert tool.by_op_type().get("matmul", 0) > 0

    def test_reset(self, rng):
        tool = LatencyProfilingTool()
        with amanda.apply(tool):
            F.relu(E.tensor(rng.standard_normal(4)))
        tool.reset()
        assert tool.by_op_type() == {}
