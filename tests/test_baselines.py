"""Ad-hoc baselines: they work where designed and fail where the paper says."""

import numpy as np
import pytest

import repro.amanda as amanda
import repro.eager as E
import repro.graph as G
import repro.models.eager as M
from repro.baselines import (APEXStyleSparsity, ActivationPrunedResNet,
                             AttentionPrunedBert, ChannelPrunedLeNet,
                             ModuleHookFlopsProfiler, ModuleHookPruner,
                             ModuleHookTracer, TracingSessionHook,
                             WeightPruningSessionHook)
from repro.eager import F


class TestModuleHookTracer:
    def test_counts_module_boundaries(self, rng):
        model = M.LeNet()
        tracer = ModuleHookTracer(model).attach()
        model(E.tensor(rng.standard_normal((1, 3, 16, 16))))
        tracer.detach()
        # LeNet leaf modules: 2 conv, 2 relu, 2 pool, flatten, 2 linear, relu
        assert len(tracer.forward_events) == 10

    def test_detach_removes_hooks(self, rng):
        model = M.LeNet()
        tracer = ModuleHookTracer(model).attach()
        tracer.detach()
        model(E.tensor(rng.standard_normal((1, 3, 16, 16))))
        assert tracer.forward_events == []

    def test_backward_events_need_backward_pass(self, rng):
        model = M.MLP(in_features=4, hidden=8)
        tracer = ModuleHookTracer(model).attach()
        out = model(E.tensor(rng.standard_normal((2, 4)), requires_grad=True))
        assert tracer.backward_events == []
        out.sum().backward()
        tracer.detach()
        assert tracer.backward_events


class TestModuleHookPruner:
    def test_prunes_and_keeps_sparsity_through_training(self, rng):
        model = M.MLP(in_features=8, hidden=16, rng=rng)
        pruner = ModuleHookPruner(model, sparsity=0.5).attach()
        opt = E.optim.SGD(model.parameters(), lr=0.05)
        x = E.tensor(rng.standard_normal((8, 8)))
        y = E.tensor(rng.integers(0, 4, 8))
        for _ in range(3):
            opt.zero_grad()
            F.cross_entropy(model(x), y).backward()
            opt.step()
        pruner.detach()
        assert pruner.overall_sparsity() == pytest.approx(0.5, abs=0.05)
        for name, module in model.named_modules():
            if name in pruner.masks:
                mask = pruner.masks[name]
                assert np.all(module.weight.data[mask == 0] == 0)


class TestAPEXStyle:
    def test_two_four_sparsity_maintained(self, rng):
        model = M.MLP(in_features=8, hidden=8, rng=rng)
        opt = E.optim.SGD(model.parameters(), lr=0.05)
        apex = APEXStyleSparsity(model, opt)
        apex.init_masks()
        apex.wrap()
        x = E.tensor(rng.standard_normal((4, 8)))
        y = E.tensor(rng.integers(0, 4, 4))
        for _ in range(3):
            opt.zero_grad()
            F.cross_entropy(model(x), y).backward()
            opt.step()
        apex.unwrap()
        assert apex.overall_sparsity() == pytest.approx(0.5)
        first_weight = next(iter(model.modules().__iter__()))
        for mask_id, mask in apex.masks.items():
            pass  # masks exist
        # all masked weights stayed zero through training
        for module in model.modules():
            if isinstance(module, E.Linear):
                mask = apex.masks[id(module.weight)]
                assert np.all(module.weight.data[mask == 0] == 0)

    def test_unwrap_restores_step(self, rng):
        model = M.MLP(rng=rng)
        opt = E.optim.SGD(model.parameters(), lr=0.1)
        apex = APEXStyleSparsity(model, opt)
        apex.init_masks()
        apex.wrap()
        assert "step" in opt.__dict__  # instance-level patch in place
        apex.unwrap()
        assert "step" not in opt.__dict__  # class method restored


class TestSourceModification:
    def test_channel_pruned_lenet_runs(self, rng):
        model = ChannelPrunedLeNet(keep_ratio=0.5, rng=rng)
        out = model(E.tensor(rng.standard_normal((2, 3, 16, 16))))
        assert out.shape == (2, 4)

    def test_activation_pruned_resnet_sparsity(self, rng):
        model = ActivationPrunedResNet(keep_ratio=0.25, rng=rng)
        from repro.amanda.tools import SparsityProfilingTool
        out = model(E.tensor(rng.standard_normal((1, 3, 16, 16))))
        assert out.shape == (1, 4)

    def test_attention_pruned_bert_runs_and_trains(self, rng):
        model = AttentionPrunedBert(rng=rng)
        tokens = rng.integers(0, 32, (2, 8))
        logits = model(tokens)
        assert logits.shape == (2, 8, 2)
        loss = F.cross_entropy(logits.reshape(-1, 2),
                               E.tensor(np.zeros(16, dtype=int)))
        loss.backward()  # no crash: pruning is differentiation-safe


class TestSessionHookBaselines:
    def test_tracing_hook_collects_tensors(self, rng):
        from repro.graph import builder as gb
        with G.default_graph() as g:
            x = gb.placeholder(name="x")
            y = gb.relu(x)
        hook = TracingSessionHook([y])
        sess = G.Session(g, hooks=[hook])
        sess.run(y, {x: np.array([-1.0, 1.0])})
        assert len(hook.traces) == 1

    def test_tracing_hook_cannot_add_ops(self, rng):
        """The TF limitation: the sealed graph rejects new tracing ops."""
        from repro.graph import builder as gb
        with G.default_graph() as g:
            x = gb.placeholder(name="x")
            y = gb.relu(x)
        sess = G.Session(g)
        sess.run(y, {x: np.zeros(1)})
        with pytest.raises(G.GraphFinalizedError):
            gb.tanh(y)  # post-hoc instrumentation op: impossible

    def test_weight_pruning_hook(self, rng):
        import repro.models.graph as GM
        gm = GM.build_mlp(learning_rate=0.1)
        hook = WeightPruningSessionHook(gm.graph, sparsity=0.5)
        sess = gm.session()
        sess.add_hook(hook)
        x = rng.standard_normal((8, 16))
        y = rng.integers(0, 4, 8)
        for _ in range(3):
            sess.run([gm.loss, gm.train_op], {gm.inputs: x, gm.labels: y})
        assert hook.overall_sparsity() == pytest.approx(0.5, abs=0.05)
        for name, mask in hook.masks.items():
            value = gm.graph.variables.read(name)
            assert np.all(value[mask == 0] == 0)
