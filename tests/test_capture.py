"""Symbolic capture (repro.capture): bit-identity and guard semantics.

The capture contract is exact: a captured call must return byte-for-byte
the arrays plain eager dispatch would — forward, training step, gradient
accumulation, and batch-norm running-stat updates — because replay runs
the same eager kernels in the same order on the same parameter buffers.
Guard mismatches re-trace into new buckets; untraceable calls fall back
to eager with a structured reason.
"""

import numpy as np
import pytest

import repro.amanda as amanda
import repro.eager as E
import repro.eager.functional as F
import repro.models.eager as M
from repro.capture import capture, capture_step
from repro.eager.optim import SGD

RNG = np.random.default_rng(11)


def _mlp_pair():
    """Two MLPs with identical weights (MLP defaults to a seeded rng)."""
    return M.MLP(), M.MLP()


def _x(batch=2):
    return E.tensor(RNG.standard_normal((batch, 16)))


def _loss_fn(model, x, y):
    return F.cross_entropy(model(x), y)


class TestCapturedForward:
    def test_forward_bit_identical(self):
        eager_model, model = _mlp_pair()
        eager_model.eval(), model.eval()
        cm = capture(model)
        x = _x()
        want = eager_model(x).data
        for _ in range(3):
            np.testing.assert_array_equal(cm(x).data, want)
        assert cm.capture_count == 1
        assert cm.replay_count == 3
        assert cm.fallback_count == 0

    def test_shape_change_recaptures_into_new_bucket(self):
        eager_model, model = _mlp_pair()
        eager_model.eval(), model.eval()
        cm = capture(model)
        a, b = _x(batch=2), _x(batch=5)
        np.testing.assert_array_equal(cm(a).data, eager_model(a).data)
        np.testing.assert_array_equal(cm(b).data, eager_model(b).data)
        np.testing.assert_array_equal(cm(a).data, eager_model(a).data)
        assert cm.capture_count == 2       # one bucket per shape
        assert cm.fallback_count == 0

    def test_train_eval_mode_selects_distinct_buckets(self):
        model = M.MLP()
        cm = capture(model)
        x = _x()
        model.eval()
        cm(x)
        model.train()
        cm(x)
        assert cm.capture_count == 2

    def test_float32_ndarray_arg_falls_back_with_reason(self):
        eager_model, model = _mlp_pair()
        eager_model.eval(), model.eval()
        cm = capture(model)
        raw = RNG.standard_normal((2, 16)).astype(np.float32)
        out = cm(raw)
        np.testing.assert_array_equal(out.data, eager_model(raw).data)
        assert cm.fallback_count == 1
        assert cm.capture_count == 0
        assert "float32" in cm.last_fallback_reason

    def test_item_escape_falls_back_with_reason(self):
        class Escaping(E.Module):
            def __init__(self):
                super().__init__()
                self.fc = E.Linear(4, 4, rng=np.random.default_rng(3))

            def forward(self, x):
                y = self.fc(x)
                if y.sum().item() > -1e9:   # concrete read during trace
                    y = F.relu(y)
                return y

        model = Escaping().eval()
        cm = capture(model)
        x = E.tensor(RNG.standard_normal((2, 4)))
        out = cm(x)
        np.testing.assert_array_equal(out.data, model(x).data)
        assert cm.fallback_count == 1
        assert "item()" in cm.last_fallback_reason

    def test_capture_knob_off_passes_through(self):
        eager_model, model = _mlp_pair()
        eager_model.eval(), model.eval()
        cm = capture(model)
        x = _x()
        with amanda.capture_enabled(False):
            out = cm(x)
        np.testing.assert_array_equal(out.data, eager_model(x).data)
        assert cm.capture_count == 0
        assert cm.replay_count == 0

    def test_nested_captured_module_contributes_to_outer_trace(self):
        class Outer(E.Module):
            def __init__(self):
                super().__init__()
                self.body = E.Linear(6, 6, rng=np.random.default_rng(5))
                self.captured_body = capture(self.body)

            def forward(self, x):
                return F.relu(self.captured_body(x))

        model = Outer().eval()
        cm = capture(model)
        x = E.tensor(RNG.standard_normal((2, 6)))
        want = F.relu(model.body(x)).data
        np.testing.assert_array_equal(cm(x).data, want)
        # the inner wrapper never traced on its own: inside the outer trace
        # it must pass straight through so its ops land in the outer graph
        assert model.captured_body.capture_count == 0
        assert cm.capture_count == 1

    def test_batchnorm_running_stats_advance_identically(self):
        def net():
            rng = np.random.default_rng(9)
            return E.Sequential(E.Conv2d(3, 4, 3, padding=1, rng=rng),
                                E.BatchNorm2d(4), E.ReLU())

        eager_model, model = net(), net()
        eager_model.train(), model.train()
        cm = capture(model)
        x = E.tensor(RNG.standard_normal((2, 3, 8, 8)))
        for _ in range(3):
            want = eager_model(x)
            got = cm(x)
            np.testing.assert_array_equal(got.data, want.data)
        bn_e, bn_c = eager_model._modules["1"], model._modules["1"]
        np.testing.assert_array_equal(bn_c.running_mean.data,
                                      bn_e.running_mean.data)
        np.testing.assert_array_equal(bn_c.running_var.data,
                                      bn_e.running_var.data)
        assert cm.capture_count == 1


class TestCapturedStep:
    def test_training_loop_bit_identical(self):
        eager_model, model = _mlp_pair()
        step = capture_step(model, _loss_fn)
        opt_e = SGD(eager_model.parameters(), lr=0.05)
        opt_c = SGD(model.parameters(), lr=0.05)
        y = np.array([0, 3])
        for i in range(4):
            x = _x()
            opt_e.zero_grad(), opt_c.zero_grad()
            loss_e = _loss_fn(eager_model, x, y)
            loss_e.backward()
            opt_e.step()
            loss_c = step(x, y)
            opt_c.step()
            np.testing.assert_array_equal(loss_c.data, loss_e.data, err_msg=str(i))
        for (name, pe), (_, pc) in zip(eager_model.named_parameters(),
                                       model.named_parameters()):
            np.testing.assert_array_equal(pc.data, pe.data, err_msg=name)
        # grads-absent first call, grads-present never hit (zero_grad resets)
        assert step.capture_count == 1
        assert step.replay_count == 4

    def test_grad_accumulation_without_zero_grad(self):
        eager_model, model = _mlp_pair()
        step = capture_step(model, _loss_fn)
        y = np.array([1, 2])
        for i in range(3):
            x = _x()
            loss_e = _loss_fn(eager_model, x, y)
            loss_e.backward()
            loss_c = step(x, y)
            np.testing.assert_array_equal(loss_c.data, loss_e.data, err_msg=str(i))
        for (name, pe), (_, pc) in zip(eager_model.named_parameters(),
                                       model.named_parameters()):
            np.testing.assert_array_equal(pc.grad, pe.grad, err_msg=name)
        # bucket 1: no grads present; bucket 2: accumulation chains seeded
        # from grad_in placeholders
        assert step.capture_count == 2

    def test_step_under_instrumentation_matches_eager(self):
        eager_model, model = _mlp_pair()
        step = capture_step(model, _loss_fn)
        x, y = _x(), np.array([2, 0])
        tool_e = amanda.tools.ExecutionTraceTool()
        tool_c = amanda.tools.ExecutionTraceTool()
        with amanda.apply(tool_e):
            loss_e = _loss_fn(eager_model, x, y)
            loss_e.backward()
        with amanda.apply(tool_c):
            loss_c = step(x, y)
        np.testing.assert_array_equal(loss_c.data, loss_e.data)
        for (name, pe), (_, pc) in zip(eager_model.named_parameters(),
                                       model.named_parameters()):
            np.testing.assert_array_equal(pc.grad, pe.grad, err_msg=name)
        assert tool_c.events          # replay is visible to the tool

    def test_non_scalar_loss_falls_back(self):
        _, model = _mlp_pair()

        def bad_loss(mod, x):
            return mod(x)             # (2, 4): not a scalar

        step = capture_step(model, bad_loss)
        with pytest.raises(RuntimeError):
            # eager fallback raises exactly like plain eager would
            step(_x())
        assert step.fallback_count == 1
        assert step.last_fallback_reason is not None


class TestCapturedFusion:
    """Captured graphs route through ``graph.fusion`` before compilation."""

    class _EwiseNet(E.Module):
        def __init__(self):
            super().__init__()
            from repro.eager.layers import Linear
            self.head = Linear(16, 16)
            self.tail = Linear(16, 4)

        def forward(self, x):
            h = F.relu(self.head(x))
            h = h * 2.0
            h = h + 1.0
            h = F.tanh(h)
            return self.tail(h)

    def _record_events(self, fn):
        from repro.kernels.runtime import runtime
        events = []

        def on_event(event):
            events.append((event.name, event.bytes_accessed))

        runtime.subscribe(on_event)
        try:
            result = fn()
        finally:
            runtime.unsubscribe(on_event)
        return result, events

    def test_elementwise_chain_fuses_and_stays_bit_identical(self):
        net = self._EwiseNet()
        net.eval()
        x = E.tensor(RNG.standard_normal((2, 16)))
        want = net(x).data                       # plain eager reference
        cm = capture(net)
        np.testing.assert_array_equal(cm(x).data, want)  # trace call
        np.testing.assert_array_equal(cm(x).data, want)  # fused replay
        (bucket,) = cm._buckets.values()
        assert list(bucket.fusion_report.values()) == \
            [["relu", "mul", "add", "tanh"]]

    def test_kernel_events_match_eager_exactly(self):
        """The fused executor launches the same kernels with the same byte
        counts as plain eager dispatch — a profiler subscribed to the
        kernel runtime cannot tell replay apart from eager."""
        net = self._EwiseNet()
        net.eval()
        x = E.tensor(RNG.standard_normal((2, 16)))
        eager_out, eager_events = self._record_events(lambda: net(x))
        cm = capture(net)
        cm(x)                                    # trace outside recording
        replay_out, replay_events = self._record_events(lambda: cm(x))
        np.testing.assert_array_equal(replay_out.data, eager_out.data)
        assert any(bucket.fusion_report for bucket in cm._buckets.values())
        assert replay_events == eager_events

    def test_training_step_protects_backward_stashes(self):
        """Ops whose outputs feed backward stashes are control targets and
        must never fuse away — grads stay bit-identical."""
        eager_model, model = _mlp_pair()
        step = capture_step(model, _loss_fn)
        x, y = _x(), np.array([2, 0])
        loss_e = _loss_fn(eager_model, x, y)
        loss_e.backward()
        loss_c = step(x, y)
        np.testing.assert_array_equal(loss_c.data, loss_e.data)
        for (name, pe), (_, pc) in zip(eager_model.named_parameters(),
                                       model.named_parameters()):
            np.testing.assert_array_equal(pc.grad, pe.grad, err_msg=name)
