"""Graph driver: rewrite-time analysis, graph switching, graph-level cache."""

import numpy as np
import pytest

import repro.amanda as amanda
import repro.graph as G
from repro.amanda import Tool, manager
from repro.graph import builder as gb


@pytest.fixture
def small_graph(rng):
    with G.default_graph() as g:
        x = gb.placeholder(name="x")
        w = gb.variable(np.abs(rng.standard_normal((4, 3))) + 0.1, name="w")
        logits = gb.relu(gb.matmul(x, w))
        loss = gb.reduce_mean(gb.square(logits))
        (grad_w,) = G.gradients(loss, [w])
    return g, x, w, logits, loss, grad_w


class TestForwardInstrumentation:
    def test_insert_before_op(self, rng, small_graph):
        g, x, w, logits, loss, grad_w = small_graph
        tool = Tool("t")

        def analysis(context):
            if context["type"] == "MatMul":
                context.insert_before_op(lambda wv: wv * 0.0, inputs=[1])

        tool.add_inst_for_op(analysis)
        sess = G.Session(g)
        with amanda.apply(tool):
            out = sess.run(logits, {x: np.abs(rng.standard_normal((2, 4)))})
        np.testing.assert_allclose(out, 0.0)

    def test_insert_after_op(self, rng, small_graph):
        g, x, w, logits, loss, grad_w = small_graph
        tool = Tool("t")

        def analysis(context):
            if context["type"] == "Relu":
                context.insert_after_op(lambda y: y + 5.0, outputs=[0])

        tool.add_inst_for_op(analysis)
        xv = np.abs(rng.standard_normal((2, 4)))
        sess = G.Session(g)
        vanilla = sess.run(logits, {x: xv})
        with amanda.apply(tool):
            instrumented = sess.run(logits, {x: xv})
        np.testing.assert_allclose(instrumented, vanilla + 5.0)

    def test_replace_op_redirects_fetch(self, rng, small_graph):
        g, x, w, logits, loss, grad_w = small_graph
        tool = Tool("t")

        def analysis(context):
            if context["type"] == "Relu":
                context.replace_op(lambda a: np.full_like(a, 9.0))

        tool.add_inst_for_op(analysis)
        sess = G.Session(g)
        with amanda.apply(tool):
            out = sess.run(logits, {x: np.abs(rng.standard_normal((2, 4)))})
        np.testing.assert_allclose(out, 9.0)

    def test_static_variable_values_visible_in_analysis(self, rng, small_graph):
        g, x, w, logits, loss, grad_w = small_graph
        tool = Tool("t")
        captured = []

        def analysis(context):
            if context["type"] == "MatMul":
                captured.append(context.get_inputs()[1].data)

        tool.add_inst_for_op(analysis)
        with amanda.apply(tool):
            G.Session(g).run(logits, {x: np.abs(rng.standard_normal((2, 4)))})
        np.testing.assert_array_equal(captured[0], g.variables.read("w"))

    def test_placeholder_inputs_are_symbolic(self, rng, small_graph):
        g, x, w, logits, loss, grad_w = small_graph
        tool = Tool("t")
        captured = []

        def analysis(context):
            if context["type"] == "MatMul":
                captured.append(context.get_inputs()[0].data)

        tool.add_inst_for_op(analysis)
        with amanda.apply(tool):
            G.Session(g).run(logits, {x: np.abs(rng.standard_normal((2, 4)))})
        assert captured[0] is None


class TestBackwardInstrumentation:
    def test_after_backward_masks_gradient(self, rng, small_graph):
        g, x, w, logits, loss, grad_w = small_graph
        tool = Tool("t")

        def backward_analysis(context):
            if context.get("_backward_name") == "MatMul" and \
                    not context.is_forward():
                context.insert_after_backward_op(lambda gv: gv * 0.0)

        tool.add_inst_for_op(backward_analysis, backward=True)
        sess = G.Session(g)
        with amanda.apply(tool):
            gw = sess.run(grad_w, {x: np.abs(rng.standard_normal((2, 4)))})
        np.testing.assert_allclose(gw, 0.0)

    def test_backward_context_links_forward(self, rng, small_graph):
        g, x, w, logits, loss, grad_w = small_graph
        tool = Tool("t")
        pairs = []

        def backward_analysis(context):
            pairs.append((context["_raw_type"], context.get("_backward_name")))

        tool.add_inst_for_op(backward_analysis, backward=True)
        with amanda.apply(tool):
            G.Session(g).run(grad_w, {x: np.abs(rng.standard_normal((2, 4)))})
        assert ("Relu", "ReluGrad") in pairs


class TestGraphSwitching:
    def test_vanilla_graph_not_mutated(self, rng, small_graph):
        g, x, w, logits, loss, grad_w = small_graph
        ops_before = len(g.operations)
        tool = Tool("t")
        tool.add_inst_for_op(lambda ctx: ctx.insert_after_op(
            lambda y: y, outputs=[0]) if ctx["type"] == "Relu" else None)
        with amanda.apply(tool):
            G.Session(g).run(logits, {x: np.abs(rng.standard_normal((2, 4)))})
        assert len(g.operations) == ops_before
        assert not any(op.type == "PyCall" for op in g.operations)

    def test_results_restored_after_apply(self, rng, small_graph):
        g, x, w, logits, loss, grad_w = small_graph
        xv = np.abs(rng.standard_normal((2, 4)))
        sess = G.Session(g)
        vanilla = sess.run(loss, {x: xv})
        tool = Tool("t")
        tool.add_inst_for_op(lambda ctx: ctx.insert_before_op(
            lambda wv: wv * 0.0, inputs=[1]) if ctx["type"] == "MatMul" else None)
        with amanda.apply(tool):
            instrumented = sess.run(loss, {x: xv})
        restored = sess.run(loss, {x: xv})
        assert instrumented != vanilla
        assert restored == vanilla


class TestGraphLevelCache:
    def _counting_tool(self):
        tool = Tool("t")
        tool.calls = 0

        def analysis(context):
            if context["type"] == "MatMul":
                tool.calls += 1

        tool.add_inst_for_op(analysis)
        return tool

    def test_rewrite_happens_once_with_cache(self, rng, small_graph):
        g, x, w, logits, loss, grad_w = small_graph
        tool = self._counting_tool()
        sess = G.Session(g)
        with amanda.apply(tool):
            for _ in range(5):
                sess.run(logits, {x: np.abs(rng.standard_normal((2, 4)))})
        assert tool.calls == 1

    def test_rewrite_every_run_without_cache(self, rng, small_graph):
        g, x, w, logits, loss, grad_w = small_graph
        tool = self._counting_tool()
        sess = G.Session(g)
        with amanda.apply(tool), amanda.cache_disabled():
            for _ in range(5):
                sess.run(logits, {x: np.abs(rng.standard_normal((2, 4)))})
        assert tool.calls == 5

    def test_variable_state_shared_with_instrumented_graph(self, rng):
        with G.default_graph() as g:
            v = gb.variable(np.array([1.0]), name="v")
            update = gb.assign_add(v, gb.constant(np.array([1.0])))
        tool = Tool("t")
        tool.add_inst_for_op(lambda ctx: None)
        sess = G.Session(g)
        with amanda.apply(tool):
            sess.run(update.outputs[0])
        # the instrumented run mutated the shared store
        np.testing.assert_array_equal(g.variables.read("v"), [2.0])


class TestDetachResetsState:
    """attach -> detach -> attach must not leak state across tool epochs."""

    def test_detach_clears_graph_cache_and_stats(self, rng, small_graph):
        g, x, w, logits, loss, grad_w = small_graph
        sess = G.Session(g)
        xv = np.abs(rng.standard_normal((2, 4)))

        tool = Tool("t")
        tool.add_inst_for_op(
            lambda context: context.insert_after_op(lambda a: a * 2.0)
            if context["type"] == "Relu" else None)
        with amanda.apply(tool) as mgr:
            driver = next(d for d in mgr._drivers if d.namespace == "graph")
            sess.run(logits, {x: xv})
            sess.run(logits, {x: xv})
            assert driver._graph_cache
            assert driver.rewrite_count == 1
            assert driver.cache_misses == 1 and driver.cache_hits == 1
        # deactivation detaches the driver: everything epoch-scoped is gone
        assert driver._graph_cache == {}
        assert driver.rewrite_count == 0
        assert driver.cache_hits == 0 and driver.cache_misses == 0
        assert driver.last_contexts == [] and driver.last_report is None

    def test_reattach_does_not_reuse_stale_entry(self, rng, small_graph):
        g, x, w, logits, loss, grad_w = small_graph
        sess = G.Session(g)
        xv = np.abs(rng.standard_normal((2, 4)))
        vanilla = sess.run(logits, {x: xv})

        doubler = Tool("doubler")
        doubler.add_inst_for_op(
            lambda context: context.insert_after_op(lambda a: a * 2.0)
            if context["type"] == "Relu" else None)
        with amanda.apply(doubler):
            first = sess.run(logits, {x: xv})
        np.testing.assert_allclose(first, vanilla * 2.0)

        # a second epoch with a different tool must re-instrument from the
        # vanilla graph, not serve the doubler's cached rewrite
        tripler = Tool("tripler")
        tripler.add_inst_for_op(
            lambda context: context.insert_after_op(lambda a: a * 3.0)
            if context["type"] == "Relu" else None)
        with amanda.apply(tripler) as mgr:
            driver = next(d for d in mgr._drivers if d.namespace == "graph")
            second = sess.run(logits, {x: xv})
            assert driver.cache_misses == 1 and driver.cache_hits == 0
        np.testing.assert_allclose(second, vanilla * 3.0)
