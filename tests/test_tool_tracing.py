"""Graph tracing tools: structure reconstruction in eager mode, trace dumps."""

import json

import numpy as np
import networkx as nx

import repro.amanda as amanda
import repro.eager as E
import repro.models.eager as M
from repro.amanda.tools import ExecutionTraceTool, GraphTracingTool
from repro.eager import F


def test_eager_graph_structure_reconstructed(rng):
    tracer = GraphTracingTool()
    model = E.Sequential(E.Linear(4, 8, rng=rng), E.ReLU(),
                         E.Linear(8, 2, rng=rng))
    with amanda.apply(tracer):
        model(E.tensor(rng.standard_normal((2, 4))))
    types = list(tracer.op_types().values())
    assert types.count("linear") == 2
    assert types.count("relu") == 1
    # data edges follow execution order: linear -> relu -> linear
    graph = tracer.graph
    assert nx.is_directed_acyclic_graph(graph)
    linears = [n for n, d in graph.nodes(data=True) if d["type"] == "linear"]
    relus = [n for n, d in graph.nodes(data=True) if d["type"] == "relu"]
    assert graph.has_edge(linears[0], relus[0]) or \
        graph.has_edge(linears[1], relus[0])


def test_backward_nodes_linked_to_forward(rng):
    tracer = GraphTracingTool()
    lin = E.Linear(3, 2, rng=rng)
    x = E.tensor(rng.standard_normal((2, 3)), requires_grad=True)
    with amanda.apply(tracer):
        lin(x).sum().backward()
    backward = tracer.backward_nodes()
    assert backward
    # every backward node has an incoming forward_backward edge
    for node in backward:
        kinds = [d.get("kind") for _, _, d in
                 tracer.graph.in_edges(node, data=True)]
        if kinds:
            assert "forward_backward" in kinds


def test_residual_add_appears_in_trace(rng):
    tracer = GraphTracingTool()
    model = M.resnet18()
    with amanda.apply(tracer):
        model(E.tensor(rng.standard_normal((1, 3, 16, 16))))
    types = list(tracer.op_types().values())
    assert "add" in types  # the functional skip connections


def test_context_exposes_graph(rng):
    tracer = GraphTracingTool()
    from repro.amanda import Tool
    graphs = []
    user = Tool("user")
    user.depends_on(tracer)
    user.add_inst_for_op(lambda ctx: graphs.append(ctx.get("graph")),
                         require_outputs=True)
    with amanda.apply(user):
        F.relu(E.tensor(np.ones(3)))
    assert graphs and graphs[0] is tracer.graph


def test_execution_trace_chrome_dump(tmp_path, rng):
    trace = ExecutionTraceTool()
    lin = E.Linear(3, 2, rng=rng)
    x = E.tensor(rng.standard_normal((2, 3)), requires_grad=True)
    with amanda.apply(trace):
        lin(x).sum().backward()
    assert any(e["args"]["phase"] == "forward" for e in trace.events)
    assert any(e["args"]["phase"] == "backward" for e in trace.events)
    path = tmp_path / "trace.json"
    trace.dump(str(path))
    payload = json.loads(path.read_text())
    assert payload["traceEvents"]


def test_execution_trace_records_every_iteration(rng):
    trace = ExecutionTraceTool()
    x = E.tensor(rng.standard_normal(4))
    with amanda.apply(trace):
        for _ in range(3):
            F.relu(x)
            amanda.new_iteration()
    forward_relus = [e for e in trace.events if e["name"] == "relu"]
    assert len(forward_relus) == 3


def test_tracer_reset(rng):
    tracer = GraphTracingTool()
    with amanda.apply(tracer):
        F.relu(E.tensor(np.ones(2)))
    assert len(tracer.graph) > 0
    tracer.reset()
    assert len(tracer.graph) == 0
