"""Tool management: dependency resolution, cycles, control APIs, interceptor."""

import pytest

import repro.amanda as amanda
from repro.amanda import Interceptor, Tool, manager
from repro.core.manager import CachedOpRecord


def make_tool(name: str) -> Tool:
    return Tool(name=name)


class TestDependencyResolution:
    def test_dependencies_run_first(self):
        base = make_tool("base")
        dependent = make_tool("dependent")
        dependent.depends_on(base)
        order = manager.resolve_tools((dependent,))
        assert order == [base, dependent]

    def test_diamond_dependency_deduplicated(self):
        shared = make_tool("shared")
        left, right = make_tool("left"), make_tool("right")
        left.depends_on(shared)
        right.depends_on(shared)
        top = make_tool("top")
        top.depends_on(left, right)
        order = manager.resolve_tools((top,))
        assert order.count(shared) == 1
        assert order.index(shared) < order.index(left)

    def test_cycle_detected(self):
        a, b = make_tool("a"), make_tool("b")
        a.depends_on(b)
        b.depends_on(a)
        with pytest.raises(ValueError, match="cycle"):
            manager.resolve_tools((a,))

    def test_self_cycle_detected(self):
        a = make_tool("a")
        a.depends_on(a)
        with pytest.raises(ValueError, match="cycle"):
            manager.resolve_tools((a,))

    def test_multiple_roots_all_included(self):
        a, b = make_tool("a"), make_tool("b")
        order = manager.resolve_tools((a, b))
        assert order == [a, b]


class TestApplyLifecycle:
    def test_apply_activates_and_restores(self):
        tool = make_tool("t")
        assert not manager.active
        with amanda.apply(tool):
            assert manager.active
            assert tool in manager.tools
        assert not manager.active

    def test_nested_apply_unions_tools(self):
        a, b = make_tool("a"), make_tool("b")
        with amanda.apply(a):
            with amanda.apply(b):
                assert a in manager.tools and b in manager.tools
            # inner exit keeps the outer scope alive
            assert manager.active
        assert not manager.active

    def test_on_apply_on_remove_called(self):
        events = []

        class LifecycleTool(Tool):
            def on_apply(self):
                events.append("apply")

            def on_remove(self):
                events.append("remove")

        with amanda.apply(LifecycleTool()):
            pass
        assert events == ["apply", "remove"]

    def test_epoch_bumped_on_toolset_change(self):
        before = manager.tool_epoch
        with amanda.apply(make_tool("t")):
            during = manager.tool_epoch
        assert during > before
        assert manager.tool_epoch > during


class TestControlAPIs:
    def test_disabled_suppresses_activity(self):
        with amanda.apply(make_tool("t")):
            assert manager.active
            with amanda.disabled():
                assert not manager.active
            assert manager.active

    def test_enabled_reenables_inside_disabled(self):
        with amanda.apply(make_tool("t")):
            with amanda.disabled():
                with amanda.enabled():
                    assert manager.active

    def test_cache_disabled_clears_and_restores(self):
        manager.action_cache[123] = CachedOpRecord()
        with amanda.cache_disabled():
            assert not manager.cache_enabled
            assert 123 not in manager.action_cache
            assert manager.cache_lookup(123) is None
        assert manager.cache_enabled
        manager.action_cache.clear()

    def test_cache_store_respects_flag(self):
        with amanda.cache_disabled():
            manager.cache_store(1, CachedOpRecord())
            assert 1 not in manager.action_cache

    def test_allow_instrumented_ad(self):
        assert not manager.instrumented_ad
        with amanda.allow_instrumented_ad():
            assert manager.instrumented_ad
        assert not manager.instrumented_ad

    def test_cache_append_to_missing_record(self):
        from repro.amanda import Action, ActionType
        action = Action(ActionType.INSERT_BEFORE_OP, lambda *a: None)
        assert not manager.cache_append(999_999, action)


class TestInterceptor:
    class Target:
        def __init__(self):
            self.value = "original"

    def test_patch_and_restore(self):
        target = self.Target()
        interceptor = Interceptor()
        interceptor.patch(target, "value", "patched")
        assert target.value == "patched"
        interceptor.restore_all()
        assert target.value == "original"

    def test_lifo_restore_order(self):
        target = self.Target()
        interceptor = Interceptor()
        interceptor.patch(target, "value", "first")
        interceptor.patch(target, "value", "second")
        interceptor.restore_all()
        assert target.value == "original"

    def test_missing_attribute_deleted_on_restore(self):
        target = self.Target()
        interceptor = Interceptor()
        interceptor.patch(target, "added", 42)
        assert target.added == 42
        interceptor.restore_all()
        assert not hasattr(target, "added")

    def test_context_manager(self):
        target = self.Target()
        with Interceptor() as interceptor:
            interceptor.patch(target, "value", "inside")
            assert target.value == "inside"
        assert target.value == "original"

    def test_active_patch_count(self):
        interceptor = Interceptor()
        target = self.Target()
        interceptor.patch(target, "value", 1)
        assert interceptor.active_patch_count == 1
        interceptor.restore_all()
        assert interceptor.active_patch_count == 0
