"""Compiler-fusion pass + instrumentation-point remapping (paper Sec. 7)."""

import numpy as np
import pytest

import repro.amanda as amanda
import repro.graph as G
from repro.amanda import Tool
from repro.amanda.tools import MagnitudePruningTool
from repro.graph import builder as gb
from repro.graph.fusion import fuse_graph, fusion_report


@pytest.fixture
def conv_net(rng):
    with G.default_graph() as g:
        x = gb.placeholder(name="x")
        w = gb.variable(rng.standard_normal((3, 3, 3, 4)) * 0.3, name="conv_w")
        b = gb.variable(np.zeros(4), name="conv_b")
        h = gb.relu(gb.bias_add(gb.conv2d(x, w, (1, 1), (1, 1)), b))
        w2 = gb.variable(rng.standard_normal((4 * 8 * 8, 3)) * 0.1, name="fc_w")
        logits = gb.matmul(gb.reshape(h, (-1, 4 * 8 * 8)), w2)
    return g, x, logits


class TestFusionPass:
    def test_conv_bias_relu_fused(self, rng, conv_net):
        g, x, logits = conv_net
        fused, report = fuse_graph(g, protected={logits.op.name})
        assert len(fused) < len(g)
        assert list(report.values()) == [["Conv2D", "BiasAdd", "Relu"]]
        assert any(op.type == "FusedConv2D" for op in fused.operations)

    def test_fusion_preserves_semantics(self, rng, conv_net):
        g, x, logits = conv_net
        xv = rng.standard_normal((2, 8, 8, 3))
        reference = G.Session(g).run(logits, {x: xv})
        fused, _ = fuse_graph(g, protected={logits.op.name})
        out = G.Session(fused).run(fused.get_tensor(logits.name),
                                   {fused.get_tensor(x.name): xv})
        np.testing.assert_allclose(out, reference, atol=1e-12)

    def test_matmul_bias_relu_fused(self, rng):
        with G.default_graph() as g:
            x = gb.placeholder(name="x")
            w = gb.variable(rng.standard_normal((4, 4)), name="w")
            b = gb.variable(np.zeros(4), name="b")
            out = gb.relu(gb.bias_add(gb.matmul(x, w), b))
        fused, report = fuse_graph(g, protected={out.op.name})
        # the tail Relu is protected (it is fetched): only MatMul+BiasAdd fuse
        assert list(report.values()) == [["MatMul", "BiasAdd"]]
        xv = rng.standard_normal((3, 4))
        np.testing.assert_allclose(
            G.Session(fused).run(fused.get_tensor(out.name),
                                 {fused.get_tensor(x.name): xv}),
            G.Session(g).run(out, {x: xv}), atol=1e-12)

    def test_multi_consumer_blocks_fusion(self, rng):
        with G.default_graph() as g:
            x = gb.placeholder(name="x")
            w = gb.variable(rng.standard_normal((4, 4)), name="w")
            b = gb.variable(np.zeros(4), name="b")
            mm = gb.matmul(x, w)
            biased = gb.bias_add(mm, b)
            # mm has a second consumer: fusing would change its value
            side = gb.relu(mm)
            total = biased + side
        fused, report = fuse_graph(g, protected={total.op.name})
        assert report == {}

    def test_original_graph_untouched(self, rng, conv_net):
        g, x, logits = conv_net
        before = len(g.operations)
        fuse_graph(g, protected={logits.op.name})
        assert len(g.operations) == before
        assert not any("Fused" in op.type for op in g.operations)

    def test_report_formatting(self, rng, conv_net):
        g, x, logits = conv_net
        _, report = fuse_graph(g, protected={logits.op.name})
        text = fusion_report(report)
        assert "Conv2D + BiasAdd + Relu" in text


class TestInstrumentationOnFusedGraphs:
    def test_pruning_reaches_fused_conv_weight(self, rng, conv_net):
        g, x, logits = conv_net
        fused, _ = fuse_graph(g, protected={logits.op.name})
        xv = rng.standard_normal((2, 8, 8, 3))
        reference = G.Session(fused).run(fused.get_tensor(logits.name),
                                         {fused.get_tensor(x.name): xv})
        tool = MagnitudePruningTool(sparsity=0.5)
        sess = G.Session(fused)
        with amanda.apply(tool):
            pruned = sess.run(fused.get_tensor(logits.name),
                              {fused.get_tensor(x.name): xv})
        assert len(tool.masks) == 2  # fused conv + fc matmul
        assert not np.allclose(pruned, reference)

    def test_fused_provenance_exposed_in_context(self, rng, conv_net):
        g, x, logits = conv_net
        fused, _ = fuse_graph(g, protected={logits.op.name})
        seen = []
        from repro.amanda.tools import standard_mapping_tool
        probe = Tool("probe")
        probe.depends_on(standard_mapping_tool())
        probe.add_inst_for_op(
            lambda ctx: seen.append((ctx["type"], ctx.get("fused_types")))
            if ctx.get("fused_types") else None)
        with amanda.apply(probe):
            G.Session(fused).run(fused.get_tensor(logits.name),
                                 {fused.get_tensor(x.name):
                                  rng.standard_normal((1, 8, 8, 3))})
        assert seen == [("conv2d", ["conv2d", "bias_add", "relu"])]

    def test_relu_point_removed_but_recoverable(self, rng, conv_net):
        """The standalone relu instrumentation point disappears under fusion
        (the Sec. 7 problem); a fusion-aware tool finds it via fused_types."""
        g, x, logits = conv_net
        fused, _ = fuse_graph(g, protected={logits.op.name})
        standalone_relus = []
        fused_relus = []
        from repro.amanda.tools import standard_mapping_tool
        probe = Tool("probe")
        probe.depends_on(standard_mapping_tool())

        def analysis(ctx):
            if ctx["type"] == "relu":
                standalone_relus.append(ctx.get_op_id())
            if "relu" in (ctx.get("fused_types") or []):
                fused_relus.append(ctx.get_op_id())

        probe.add_inst_for_op(analysis)
        with amanda.apply(probe):
            G.Session(fused).run(fused.get_tensor(logits.name),
                                 {fused.get_tensor(x.name):
                                  rng.standard_normal((1, 8, 8, 3))})
        assert standalone_relus == []  # point removed by the compiler
        assert len(fused_relus) == 1   # ...but recoverable via provenance
