"""Compiler-fusion pass + instrumentation-point remapping (paper Sec. 7)."""

import numpy as np
import pytest

import repro.amanda as amanda
import repro.graph as G
from repro.amanda import Tool
from repro.amanda.tools import MagnitudePruningTool
from repro.graph import builder as gb
from repro.graph.fusion import fuse_graph, fusion_report


@pytest.fixture
def conv_net(rng):
    with G.default_graph() as g:
        x = gb.placeholder(name="x")
        w = gb.variable(rng.standard_normal((3, 3, 3, 4)) * 0.3, name="conv_w")
        b = gb.variable(np.zeros(4), name="conv_b")
        h = gb.relu(gb.bias_add(gb.conv2d(x, w, (1, 1), (1, 1)), b))
        w2 = gb.variable(rng.standard_normal((4 * 8 * 8, 3)) * 0.1, name="fc_w")
        logits = gb.matmul(gb.reshape(h, (-1, 4 * 8 * 8)), w2)
    return g, x, logits


class TestFusionPass:
    def test_conv_bias_relu_fused(self, rng, conv_net):
        g, x, logits = conv_net
        fused, report = fuse_graph(g, protected={logits.op.name})
        assert len(fused) < len(g)
        assert list(report.values()) == [["Conv2D", "BiasAdd", "Relu"]]
        assert any(op.type == "FusedConv2D" for op in fused.operations)

    def test_fusion_preserves_semantics(self, rng, conv_net):
        g, x, logits = conv_net
        xv = rng.standard_normal((2, 8, 8, 3))
        reference = G.Session(g).run(logits, {x: xv})
        fused, _ = fuse_graph(g, protected={logits.op.name})
        out = G.Session(fused).run(fused.get_tensor(logits.name),
                                   {fused.get_tensor(x.name): xv})
        np.testing.assert_allclose(out, reference, atol=1e-12)

    def test_matmul_bias_relu_fused(self, rng):
        with G.default_graph() as g:
            x = gb.placeholder(name="x")
            w = gb.variable(rng.standard_normal((4, 4)), name="w")
            b = gb.variable(np.zeros(4), name="b")
            out = gb.relu(gb.bias_add(gb.matmul(x, w), b))
        fused, report = fuse_graph(g, protected={out.op.name})
        # the tail Relu is protected (it is fetched): only MatMul+BiasAdd fuse
        assert list(report.values()) == [["MatMul", "BiasAdd"]]
        xv = rng.standard_normal((3, 4))
        np.testing.assert_allclose(
            G.Session(fused).run(fused.get_tensor(out.name),
                                 {fused.get_tensor(x.name): xv}),
            G.Session(g).run(out, {x: xv}), atol=1e-12)

    def test_multi_consumer_blocks_fusion(self, rng):
        with G.default_graph() as g:
            x = gb.placeholder(name="x")
            w = gb.variable(rng.standard_normal((4, 4)), name="w")
            b = gb.variable(np.zeros(4), name="b")
            mm = gb.matmul(x, w)
            biased = gb.bias_add(mm, b)
            # mm has a second consumer: fusing would change its value
            side = gb.relu(mm)
            total = biased + side
        fused, report = fuse_graph(g, protected={total.op.name})
        assert report == {}

    def test_original_graph_untouched(self, rng, conv_net):
        g, x, logits = conv_net
        before = len(g.operations)
        fuse_graph(g, protected={logits.op.name})
        assert len(g.operations) == before
        assert not any("Fused" in op.type for op in g.operations)

    def test_report_formatting(self, rng, conv_net):
        g, x, logits = conv_net
        _, report = fuse_graph(g, protected={logits.op.name})
        text = fusion_report(report)
        assert "Conv2D + BiasAdd + Relu" in text


class TestInstrumentationOnFusedGraphs:
    def test_pruning_reaches_fused_conv_weight(self, rng, conv_net):
        g, x, logits = conv_net
        fused, _ = fuse_graph(g, protected={logits.op.name})
        xv = rng.standard_normal((2, 8, 8, 3))
        reference = G.Session(fused).run(fused.get_tensor(logits.name),
                                         {fused.get_tensor(x.name): xv})
        tool = MagnitudePruningTool(sparsity=0.5)
        sess = G.Session(fused)
        with amanda.apply(tool):
            pruned = sess.run(fused.get_tensor(logits.name),
                              {fused.get_tensor(x.name): xv})
        assert len(tool.masks) == 2  # fused conv + fc matmul
        assert not np.allclose(pruned, reference)

    def test_fused_provenance_exposed_in_context(self, rng, conv_net):
        g, x, logits = conv_net
        fused, _ = fuse_graph(g, protected={logits.op.name})
        seen = []
        from repro.amanda.tools import standard_mapping_tool
        probe = Tool("probe")
        probe.depends_on(standard_mapping_tool())
        probe.add_inst_for_op(
            lambda ctx: seen.append((ctx["type"], ctx.get("fused_types")))
            if ctx.get("fused_types") else None)
        with amanda.apply(probe):
            G.Session(fused).run(fused.get_tensor(logits.name),
                                 {fused.get_tensor(x.name):
                                  rng.standard_normal((1, 8, 8, 3))})
        assert seen == [("conv2d", ["conv2d", "bias_add", "relu"])]

    def test_relu_point_removed_but_recoverable(self, rng, conv_net):
        """The standalone relu instrumentation point disappears under fusion
        (the Sec. 7 problem); a fusion-aware tool finds it via fused_types."""
        g, x, logits = conv_net
        fused, _ = fuse_graph(g, protected={logits.op.name})
        standalone_relus = []
        fused_relus = []
        from repro.amanda.tools import standard_mapping_tool
        probe = Tool("probe")
        probe.depends_on(standard_mapping_tool())

        def analysis(ctx):
            if ctx["type"] == "relu":
                standalone_relus.append(ctx.get_op_id())
            if "relu" in (ctx.get("fused_types") or []):
                fused_relus.append(ctx.get_op_id())

        probe.add_inst_for_op(analysis)
        with amanda.apply(probe):
            G.Session(fused).run(fused.get_tensor(logits.name),
                                 {fused.get_tensor(x.name):
                                  rng.standard_normal((1, 8, 8, 3))})
        assert standalone_relus == []  # point removed by the compiler
        assert len(fused_relus) == 1   # ...but recoverable via provenance


class TestElementwiseFusion:
    """Linear elementwise chains collapse into one FusedElementwise op."""

    @pytest.fixture
    def ewise_net(self, rng):
        # square(x) -> add(., y) -> tanh: a 3-op linear chain
        with G.default_graph() as g:
            x = gb.placeholder(name="x")
            y = gb.placeholder(name="y")
            out = gb.tanh(gb.square(x) + y)
            final = gb.reduce_sum(out)
        return g, x, y, final

    def test_chain_detected(self, rng, ewise_net):
        g, x, y, final = ewise_net
        fused, report = fuse_graph(g, protected={final.op.name})
        chains = [c for c in report.values() if c == ["Square", "Add", "Tanh"]]
        assert len(chains) == 1
        op = next(op for op in fused.operations
                  if op.type == "FusedElementwise")
        assert op.attrs["chain"] == (("Square", None), ("Add", 0),
                                     ("Tanh", None))
        assert op.tags["fused_from"] == ["Square", "Add", "Tanh"]
        assert len(op.tags["fused_names"]) == 3

    def test_chain_bitwise_identical(self, rng, ewise_net):
        g, x, y, final = ewise_net
        feed = {x: rng.standard_normal((4, 6)),
                y: rng.standard_normal((4, 6))}
        reference = G.Session(g).run(final, feed)
        fused, _ = fuse_graph(g, protected={final.op.name})
        got = G.Session(fused).run(
            fused.get_tensor(final.name),
            {fused.get_tensor(x.name): feed[x],
             fused.get_tensor(y.name): feed[y]})
        np.testing.assert_array_equal(np.asarray(got), np.asarray(reference))

    def test_chain_replays_exact_kernel_events(self, rng, ewise_net):
        """Fused execution launches the same kernels in the same order."""
        from repro.kernels.runtime import runtime as kernel_runtime
        g, x, y, final = ewise_net
        feed_vals = (rng.standard_normal((3, 4)), rng.standard_normal((3, 4)))

        def kernel_names(graph, fetch, xt, yt):
            names = []
            callback = lambda event: names.append(event.name)
            kernel_runtime.subscribe(callback)
            try:
                G.Session(graph).run(fetch, {xt: feed_vals[0],
                                             yt: feed_vals[1]})
            finally:
                kernel_runtime.unsubscribe(callback)
            return names

        unfused = kernel_names(g, final, x, y)
        fused, _ = fuse_graph(g, protected={final.op.name})
        refused = kernel_names(fused, fused.get_tensor(final.name),
                               fused.get_tensor(x.name),
                               fused.get_tensor(y.name))
        assert refused == unfused

    def test_resnet_residual_add_relu_fused(self, rng):
        import repro.models.graph as GM
        gm = GM.build_resnet()
        fused, report = fuse_graph(
            gm.graph, protected={gm.logits.op.name, gm.loss.op.name})
        residuals = [c for c in report.values() if c == ["Add", "Relu"]]
        assert residuals, "resnet residual Add->Relu chains should fuse"
        feed = {gm.inputs: rng.standard_normal((2, 16, 16, 3)),
                gm.labels: rng.integers(0, 4, 2)}
        reference = gm.session().run([gm.logits, gm.loss], feed)
        got = G.Session(fused).run(
            [fused.get_tensor(gm.logits.name), fused.get_tensor(gm.loss.name)],
            {fused.get_tensor(gm.inputs.name): feed[gm.inputs],
             fused.get_tensor(gm.labels.name): feed[gm.labels]})
        for expected, actual in zip(reference, got):
            np.testing.assert_array_equal(np.asarray(expected),
                                          np.asarray(actual))

    def test_fused_graph_passes_shape_verification(self, rng, ewise_net):
        from repro.analysis.verify import verify_graph
        g, x, y, final = ewise_net
        fused, _ = fuse_graph(g, protected={final.op.name})
        report = verify_graph(fused, feed_shapes={x.op.name: (4, 6),
                                                  y.op.name: (4, 6)})
        assert report.ok
        ew = next(op for op in fused.operations
                  if op.type == "FusedElementwise")
        assert report.shapes[ew.outputs[0].name] == (4, 6)

    def test_multi_consumer_intermediate_blocks_chain(self, rng):
        with G.default_graph() as g:
            x = gb.placeholder(name="x")
            mid = gb.square(x)
            a = gb.tanh(mid)
            b = gb.sqrt(mid)  # second consumer of mid
            total = gb.reduce_sum(a + b)
        fused, report = fuse_graph(g, protected={total.op.name})
        # mid cannot be absorbed; only single-consumer links fuse
        assert all("Square" not in chain or len(chain) == 1
                   or chain[0] != "Square"
                   for chain in report.values()) or report == {}
        feed = {x: rng.standard_normal((5,)) ** 2}
        np.testing.assert_array_equal(
            np.asarray(G.Session(fused).run(
                fused.get_tensor(total.name),
                {fused.get_tensor(x.name): feed[x]})),
            np.asarray(G.Session(g).run(total, feed)))

    def test_protected_tail_not_absorbed(self, rng, ewise_net):
        g, x, y, final = ewise_net
        tanh_op = next(op for op in g.operations if op.type == "Tanh")
        fused, report = fuse_graph(
            g, protected={final.op.name, tanh_op.name})
        assert all("Tanh" not in chain for chain in report.values())
        assert any(op.name == tanh_op.name for op in fused.operations)
