"""OpContext: inspection APIs, action recording, user-state tracking."""

from repro.amanda import ActionType, OpContext


def test_context_is_a_dict():
    context = OpContext()
    context["type"] = "conv2d"
    assert context["type"] == "conv2d"
    assert "type" in context


def test_inspection_defaults():
    context = OpContext()
    assert context.get_op() is None
    assert context.get_inputs() == []
    assert context.get_grad_outputs() == []
    assert context.is_forward() is True
    assert context.namespace is None


def test_inspection_reads_reserved_keys():
    context = OpContext()
    context["_inputs"] = [1, 2]
    context["_op_id"] = 77
    context["_is_forward"] = False
    context["_backward_op_id"] = 88
    context["_namespace"] = "eager"
    assert context.get_inputs() == [1, 2]
    assert context.get_op_id() == 77
    assert not context.is_forward()
    assert context.get_backward_op_id() == 88
    assert context.namespace == "eager"


def test_action_recording_types():
    context = OpContext()
    context.insert_before_op(lambda x: x, inputs=[1], mask=3)
    context.insert_after_op(lambda x: x)
    context.insert_before_backward_op(lambda g: g, grad_outputs=[0])
    context.insert_after_backward_op(lambda g: g)
    context.replace_op(lambda *a: a)
    context.replace_backward_op(lambda *g: g)
    types = [a.type for a in context.actions]
    assert types == [
        ActionType.INSERT_BEFORE_OP, ActionType.INSERT_AFTER_OP,
        ActionType.INSERT_BEFORE_BACKWARD_OP,
        ActionType.INSERT_AFTER_BACKWARD_OP, ActionType.REPLACE_OP,
        ActionType.REPLACE_BACKWARD_OP,
    ]


def test_action_index_conventions():
    context = OpContext()
    all_action = context.insert_before_op(lambda *x: None)
    none_action = context.insert_before_op(lambda: None, inputs=[])
    some_action = context.insert_before_op(lambda x: x, inputs=[2])
    assert all_action.tensor_indices is None
    assert none_action.tensor_indices == ()
    assert some_action.tensor_indices == (2,)


def test_action_kwargs_captured():
    context = OpContext()
    action = context.insert_before_op(lambda w, mask: w * mask,
                                      inputs=[1], mask="M")
    assert action.kwargs == {"mask": "M"}


def test_backward_action_scoped_to_backward_type():
    context = OpContext()
    context["_is_forward"] = False
    context["backward_type"] = "conv2d_backward_weight"
    action = context.insert_after_backward_op(lambda g: g)
    assert action.backward_op == "conv2d_backward_weight"


def test_forward_action_not_scoped():
    context = OpContext()
    action = context.insert_before_backward_op(lambda g: g)
    assert action.backward_op is None


def test_tool_attribution():
    context = OpContext()
    context._current_tool = "PruningTool"
    action = context.insert_before_op(lambda x: x)
    assert action.tool == "PruningTool"


def test_user_state_tracking():
    context = OpContext()
    context["_op_id"] = 1  # reserved: not user state
    assert not context.has_user_state
    context._transform_write = True
    context["type"] = "conv2d"  # transform write: not user state
    assert not context.has_user_state
    context._transform_write = False
    context["mask"] = "M"  # a user tool stored state
    assert context.has_user_state


def test_repr_mentions_kind_and_type():
    context = OpContext()
    context["type"] = "relu"
    assert "relu" in repr(context)
    assert "forward" in repr(context)


def test_is_backward_classification():
    assert ActionType.INSERT_AFTER_BACKWARD_OP.is_backward
    assert ActionType.REPLACE_BACKWARD_OP.is_backward
    assert not ActionType.INSERT_BEFORE_OP.is_backward
    assert not ActionType.REPLACE_OP.is_backward
