"""Effective-path tool: extraction sanity on MLP and CNN."""

import numpy as np
import pytest

import repro.amanda as amanda
import repro.eager as E
import repro.models.eager as M
from repro.amanda.tools import EffectivePathTool
from repro.eager import F


@pytest.fixture
def mlp_run(rng):
    tool = EffectivePathTool()
    model = M.MLP(in_features=8, hidden=16, num_classes=4, rng=rng)
    with amanda.apply(tool):
        model(E.tensor(rng.standard_normal((1, 8))))
    return tool


def test_density_in_unit_interval(mlp_run):
    density = mlp_run.path_density(theta=0.5)
    assert 0.0 < density <= 1.0


def test_density_monotone_in_theta(mlp_run):
    low = mlp_run.path_density(theta=0.1)
    high = mlp_run.path_density(theta=0.9)
    assert low <= high


def test_path_sparser_than_full_network(mlp_run):
    # with a small theta the path keeps only a fraction of neurons
    assert mlp_run.path_density(theta=0.3) < 1.0


def test_extract_returns_masks_per_op(mlp_run):
    active = mlp_run.extract(theta=0.5)
    assert active
    for op_id, mask in active.items():
        assert mask.dtype == bool


def test_sink_seeded_with_argmax(rng):
    tool = EffectivePathTool()
    model = M.MLP(in_features=6, hidden=8, num_classes=3, rng=rng)
    x = E.tensor(rng.standard_normal((1, 6)))
    with amanda.apply(tool):
        logits = model(x)
    active = tool.extract(theta=0.5)
    # find the sink (final linear) node mask: exactly one active class
    graph = tool.tracer.graph
    sinks = [n for n in active
             if graph.out_degree(n) == 0 and not graph.nodes[n]["backward"]]
    assert sinks
    sink_mask = active[sinks[0]]
    assert sink_mask.sum() == 1
    assert int(np.argmax(logits.data[0])) == int(np.argmax(sink_mask))


def test_works_on_cnn(rng):
    tool = EffectivePathTool()
    model = M.LeNet()
    with amanda.apply(tool):
        model(E.tensor(rng.standard_normal((1, 3, 16, 16))))
    density = tool.path_density(theta=0.5)
    assert 0.0 < density <= 1.0


def test_requires_both_graphs(rng):
    """The tool needs forward and backward graph structure (Tbl. 1) — its
    dependency on GraphTracingTool provides the graph in the context."""
    tool = EffectivePathTool()
    assert any(type(dep).__name__ == "GraphTracingTool"
               for dep in tool.dependencies)


def test_reset_clears_state(mlp_run):
    mlp_run.reset()
    assert not mlp_run.activations
    assert len(mlp_run.tracer.graph) == 0
