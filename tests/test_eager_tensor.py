"""Tensor basics: construction, arithmetic dispatch, hooks, allocation."""

import numpy as np
import pytest

import repro.eager as E
from repro.eager import alloc


class TestConstruction:
    def test_float_upcast_to_float64(self):
        t = E.tensor(np.zeros(3, dtype=np.float32))
        assert t.dtype == np.float64

    def test_int_arrays_keep_dtype(self):
        t = E.tensor(np.array([1, 2, 3]))
        assert np.issubdtype(t.dtype, np.integer)

    def test_from_tensor_shares_nothing_weird(self):
        a = E.tensor([1.0, 2.0])
        b = E.Tensor(a)
        assert b.shape == (2,)

    def test_factories(self):
        assert E.zeros(2, 3).shape == (2, 3)
        assert E.ones(4).data.sum() == 4
        assert E.arange(5).shape == (5,)
        assert E.randn(2, 2, rng=np.random.default_rng(0)).shape == (2, 2)

    def test_detach_drops_grad_tracking(self):
        t = E.tensor([1.0], requires_grad=True)
        d = t.detach()
        assert not d.requires_grad and d.node is None


class TestArithmetic:
    def test_add_scalar_broadcast(self):
        t = E.tensor([1.0, 2.0]) + 1.0
        np.testing.assert_array_equal(t.data, [2.0, 3.0])

    def test_radd_rsub_rmul_rdiv(self):
        t = E.tensor([2.0])
        assert (1.0 + t).item() == 3.0
        assert (5.0 - t).item() == 3.0
        assert (3.0 * t).item() == 6.0
        assert (8.0 / t).item() == 4.0

    def test_neg_pow_matmul(self):
        t = E.tensor([[1.0, 2.0]])
        assert (-t).data[0, 0] == -1.0
        assert (t ** 2).data[0, 1] == 4.0
        m = t @ E.tensor([[1.0], [1.0]])
        assert m.item() == 3.0

    def test_reshape_transpose_slice(self):
        t = E.tensor(np.arange(6, dtype=float))
        r = t.reshape(2, 3)
        assert r.shape == (2, 3)
        assert r.transpose().shape == (3, 2)
        assert t[2:4].shape == (2,)

    def test_sum_mean_axes(self):
        t = E.tensor(np.ones((2, 3)))
        assert t.sum().item() == 6.0
        assert t.mean(axis=0).shape == (3,)
        assert t.sum(axis=1, keepdims=True).shape == (2, 1)

    def test_copy_inplace(self):
        t = E.tensor([0.0, 0.0])
        t.copy_([1.0, 2.0])
        np.testing.assert_array_equal(t.data, [1.0, 2.0])


class TestGradHooks:
    def test_hook_observes_gradient(self):
        t = E.tensor([1.0, 2.0], requires_grad=True)
        seen = []
        t.register_hook(lambda g: seen.append(g.copy()))
        (t * 3.0).sum().backward()
        np.testing.assert_allclose(seen[0], [3.0, 3.0])

    def test_hook_can_replace_gradient(self):
        t = E.tensor([1.0, 2.0], requires_grad=True)
        t.register_hook(lambda g: g * 0.0)
        (t * 3.0).sum().backward()
        np.testing.assert_allclose(t.grad, [0.0, 0.0])

    def test_hook_removal(self):
        t = E.tensor([1.0], requires_grad=True)
        calls = []
        remove = t.register_hook(lambda g: calls.append(1))
        remove()
        (t * 1.0).sum().backward()
        assert calls == []


class TestAllocation:
    def test_tensor_allocation_tracked(self):
        alloc.tracker.reset()
        t = E.tensor(np.zeros((100, 100)))
        assert alloc.tracker.live["dnn"] >= t.data.nbytes

    def test_scope_attribution(self):
        alloc.tracker.reset()
        with alloc.scope("tool"):
            t = E.tensor(np.zeros(1000))
        assert alloc.tracker.live["tool"] >= t.data.nbytes
        assert alloc.tracker.peak["tool"] >= t.data.nbytes

    def test_release_on_gc(self):
        import gc
        alloc.tracker.reset()
        t = E.tensor(np.zeros(1000))
        before = alloc.tracker.live["dnn"]
        del t
        gc.collect()
        assert alloc.tracker.live["dnn"] < before

    def test_unknown_scope_rejected(self):
        with pytest.raises(ValueError):
            alloc.tracker.push_scope("gpu7")
