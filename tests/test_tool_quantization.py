"""Quantization tools: quantizer properties (hypothesis) and tool behaviour."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.amanda as amanda
import repro.eager as E
from repro.amanda.tools import DynamicPTQTool, QATTool, StaticPTQTool
from repro.eager import F
from repro.tools.quantization import quantize_dequantize


class TestQuantizeDequantize:
    @settings(max_examples=60, deadline=None)
    @given(n=st.integers(1, 64), bits=st.integers(2, 8),
           seed=st.integers(0, 10_000))
    def test_error_bounded_by_half_step(self, n, bits, seed):
        array = np.random.default_rng(seed).standard_normal(n)
        quantized = quantize_dequantize(array, bits=bits)
        qmax = 2 ** (bits - 1) - 1
        scale = np.abs(array).max() / qmax if np.abs(array).max() > 0 else 1.0
        assert np.abs(quantized - array).max() <= scale / 2 + 1e-12

    @settings(max_examples=30, deadline=None)
    @given(n=st.integers(1, 32), bits=st.integers(2, 8),
           seed=st.integers(0, 10_000))
    def test_idempotent(self, n, bits, seed):
        array = np.random.default_rng(seed).standard_normal(n)
        once = quantize_dequantize(array, bits=bits)
        scale = np.abs(array).max() / (2 ** (bits - 1) - 1)
        twice = quantize_dequantize(once, bits=bits, scale=scale)
        np.testing.assert_allclose(once, twice, atol=1e-12)

    @settings(max_examples=30, deadline=None)
    @given(bits=st.integers(2, 8), seed=st.integers(0, 10_000))
    def test_level_count_bounded(self, bits, seed):
        array = np.random.default_rng(seed).standard_normal(500)
        quantized = quantize_dequantize(array, bits=bits)
        assert len(np.unique(quantized)) <= 2 ** bits

    def test_zero_array(self):
        np.testing.assert_array_equal(
            quantize_dequantize(np.zeros(4)), np.zeros(4))

    def test_explicit_scale_clips_outliers(self):
        array = np.array([100.0, 0.5])
        out = quantize_dequantize(array, bits=8, scale=0.01)
        assert out[0] == pytest.approx(1.27)  # clipped at qmax * scale


class TestPTQTools:
    def test_static_ptq_quantizes_weights_only(self, rng):
        tool = StaticPTQTool(bits=4)
        lin = E.Linear(6, 3, rng=rng)
        x = E.tensor(rng.standard_normal((5, 6)))
        with amanda.apply(tool):
            out = lin(x).data
        quantized_w = quantize_dequantize(lin.weight.data, bits=4)
        want = x.data @ quantized_w.T + lin.bias.data
        np.testing.assert_allclose(out, want, atol=1e-12)
        assert tool.weight_scales

    def test_dynamic_ptq_also_quantizes_activations(self, rng):
        static = StaticPTQTool(bits=4)
        dynamic = DynamicPTQTool(bits=4)
        lin = E.Linear(6, 3, rng=rng)
        x = E.tensor(rng.standard_normal((5, 6)))
        with amanda.apply(static):
            static_out = lin(x).data
        with amanda.apply(dynamic):
            dynamic_out = lin(x).data
        quantized_w = quantize_dequantize(lin.weight.data, bits=4)
        quantized_x = quantize_dequantize(x.data, bits=4)
        want = quantized_x @ quantized_w.T + lin.bias.data
        np.testing.assert_allclose(dynamic_out, want, atol=1e-12)
        assert not np.allclose(dynamic_out, static_out)

    def test_lower_bits_higher_error(self, rng):
        lin = E.Linear(16, 8, rng=rng)
        x = E.tensor(rng.standard_normal((10, 16)))
        reference = lin(x).data

        def error(bits):
            tool = StaticPTQTool(bits=bits)
            with amanda.apply(tool):
                return np.abs(lin(x).data - reference).mean()

        assert error(2) > error(4) > error(8)

    def test_ptq_applies_to_conv(self, rng):
        tool = StaticPTQTool(bits=8)
        conv = E.Conv2d(3, 4, 3, rng=rng)
        with amanda.apply(tool):
            conv(E.tensor(rng.standard_normal((1, 3, 6, 6))))
        assert len(tool.weight_scales) == 1


class TestQAT:
    def test_gradients_flow_through_quantizer(self, rng):
        tool = QATTool(bits=8)
        lin = E.Linear(6, 3, rng=rng)
        x = E.tensor(rng.standard_normal((5, 6)))
        with amanda.apply(tool):
            lin(x).sum().backward()
        # STE: the original weight still receives a (nonzero) gradient
        assert lin.weight.grad is not None
        assert np.abs(lin.weight.grad).sum() > 0

    def test_qat_training_reduces_loss(self, rng):
        from repro.data import ClassificationDataset
        data = ClassificationDataset(train_n=32, test_n=16, size=8)
        mlp = E.Sequential(E.Flatten(), E.Linear(3 * 8 * 8, 16, rng=rng),
                           E.ReLU(), E.Linear(16, 4, rng=rng))
        opt = E.optim.SGD(mlp.parameters(), lr=0.05, momentum=0.9)
        tool = QATTool(bits=8)
        losses = []
        with amanda.apply(tool):
            for _ in range(15):
                opt.zero_grad()
                logits = mlp(E.tensor(data.train_x))
                loss = F.cross_entropy(logits, E.tensor(data.train_y))
                loss.backward()
                opt.step()
                losses.append(loss.item())
        assert losses[-1] < losses[0]

    def test_gradient_clipping_zeroes_saturated(self, rng):
        tool = QATTool(bits=2)  # tiny range: plenty of saturation
        lin = E.Linear(8, 4, rng=rng)
        lin.weight.data[0, 0] = 100.0  # far outside quantizer range? no: scale adapts
        x = E.tensor(rng.standard_normal((5, 8)))
        with amanda.apply(tool):
            lin(x).sum().backward()
        assert lin.weight.grad is not None
