"""Pruning tools: mask properties (hypothesis) and end-to-end behaviour."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.amanda as amanda
import repro.eager as E
import repro.graph as G
import repro.models.eager as M
from repro.amanda.tools import (ActivationPruningTool, AttentionPruningTool,
                                ChannelPruningTool, MagnitudePruningTool,
                                TileWisePruningTool, VectorWisePruningTool)
from repro.eager import F
from repro.tools.pruning import magnitude_mask, n_m_mask, tile_mask


class TestMaskFunctions:
    @settings(max_examples=50, deadline=None)
    @given(rows=st.integers(1, 8), cols=st.integers(1, 8),
           sparsity=st.floats(0.0, 1.0), seed=st.integers(0, 1000))
    def test_magnitude_mask_sparsity_close_to_target(self, rows, cols,
                                                     sparsity, seed):
        weight = np.random.default_rng(seed).standard_normal((rows, cols))
        mask = magnitude_mask(weight, sparsity)
        assert mask.shape == weight.shape
        assert set(np.unique(mask)) <= {0.0, 1.0}
        achieved = (mask == 0).mean()
        assert abs(achieved - sparsity) <= 1.0 / weight.size + 1e-9

    def test_magnitude_mask_keeps_largest(self, rng):
        weight = np.array([0.1, -5.0, 0.2, 3.0])
        mask = magnitude_mask(weight, 0.5)
        np.testing.assert_array_equal(mask, [0, 1, 0, 1])

    def test_magnitude_mask_extremes(self, rng):
        w = rng.standard_normal((3, 3))
        assert magnitude_mask(w, 0.0).all()
        assert not magnitude_mask(w, 1.0).any()

    @settings(max_examples=30, deadline=None)
    @given(m_rows=st.integers(2, 12), m_cols=st.integers(2, 12),
           seed=st.integers(0, 1000))
    def test_tile_mask_is_tile_structured(self, m_rows, m_cols, seed):
        weight = np.random.default_rng(seed).standard_normal((m_rows, m_cols))
        mask = tile_mask(weight, (2, 2), 0.5)
        # within each full 2x2 tile the mask is constant
        for r in range(0, m_rows - 1, 2):
            for c in range(0, m_cols - 1, 2):
                tile = mask[r:r + 2, c:c + 2]
                assert tile.min() == tile.max()

    @settings(max_examples=30, deadline=None)
    @given(rows=st.integers(1, 6), groups=st.integers(1, 6),
           seed=st.integers(0, 1000))
    def test_n_m_mask_invariant(self, rows, groups, seed):
        weight = np.random.default_rng(seed).standard_normal((rows, groups * 4))
        mask = n_m_mask(weight, 2, 4)
        grouped = mask.reshape(rows, groups, 4)
        np.testing.assert_array_equal(grouped.sum(axis=2), 2)

    def test_n_m_mask_keeps_largest_in_group(self):
        weight = np.array([[1.0, 10.0, 2.0, 20.0]])
        mask = n_m_mask(weight, 2, 4)
        np.testing.assert_array_equal(mask, [[0, 1, 0, 1]])

    def test_n_m_mask_ragged_tail_kept(self):
        weight = np.ones((1, 6))  # one full group of 4 + tail of 2
        mask = n_m_mask(weight, 2, 4)
        np.testing.assert_array_equal(mask[0, 4:], [1, 1])


class TestStaticPruningTools:
    def test_magnitude_tool_masks_forward_and_backward(self, rng):
        tool = MagnitudePruningTool(sparsity=0.5)
        conv = E.Conv2d(3, 4, 3, padding=1, rng=rng)
        x = E.tensor(rng.standard_normal((2, 3, 8, 8)))
        with amanda.apply(tool):
            out = conv(x)
            out.sum().backward()
        mask = next(iter(tool.masks.values()))
        assert np.all(conv.weight.grad[mask == 0] == 0)
        assert 0.4 < tool.overall_sparsity() < 0.6

    def test_tile_wise_tool_on_linear(self, rng):
        tool = TileWisePruningTool(tile_shape=(2, 2), sparsity=0.5)
        lin = E.Linear(8, 8, rng=rng)
        with amanda.apply(tool):
            lin(E.tensor(rng.standard_normal((2, 8))))
        mask = next(iter(tool.masks.values()))
        for r in range(0, 8, 2):
            for c in range(0, 8, 2):
                tile = mask[r:r + 2, c:c + 2]
                assert tile.min() == tile.max()

    def test_vector_wise_tool_2_4(self, rng):
        tool = VectorWisePruningTool(n=2, m=4)
        lin = E.Linear(8, 4, rng=rng)
        with amanda.apply(tool):
            lin(E.tensor(rng.standard_normal((2, 8))))
        assert abs(tool.overall_sparsity() - 0.5) < 1e-9

    def test_same_tool_runs_on_graph_backend(self, rng):
        from repro.graph import builder as gb
        with G.default_graph() as g:
            x = gb.placeholder(name="x")
            w = gb.variable(rng.standard_normal((3, 3, 3, 4)), name="conv_w")
            out = gb.reduce_mean(gb.conv2d(x, w, (1, 1), (1, 1)))
            (gw,) = G.gradients(out, [w])
        tool = MagnitudePruningTool(sparsity=0.5)
        sess = G.Session(g)
        with amanda.apply(tool):
            grad = sess.run(gw, {x: rng.standard_normal((1, 6, 6, 3))})
        mask = next(iter(tool.masks.values()))
        # HWIO weight gradient is masked too
        assert np.all(grad[mask == 0] == 0)

    def test_pruned_weights_stay_pruned_through_training(self, rng):
        tool = MagnitudePruningTool(sparsity=0.5, op_types=("linear",))
        lin = E.Linear(6, 4, rng=rng)
        opt = E.optim.SGD(lin.parameters(), lr=0.1)
        x = E.tensor(rng.standard_normal((8, 6)))
        y = E.tensor(rng.integers(0, 4, 8))
        with amanda.apply(tool):
            for _ in range(5):
                opt.zero_grad()
                loss = F.cross_entropy(lin(x), y)
                loss.backward()
                opt.step()
        mask = next(iter(tool.masks.values()))
        # gradient masking keeps pruned coordinates frozen at their value
        # (effective weight = w * mask is what forward used)
        assert np.all(lin.weight.grad[mask == 0] == 0)


class TestDynamicPruningTools:
    def test_channel_tool_zeroes_channels(self, rng):
        tool = ChannelPruningTool(keep_ratio=0.5)
        conv = E.Conv2d(4, 2, 1, rng=rng)
        captured = {}

        def spy(context):
            return None

        x = E.tensor(rng.standard_normal((1, 4, 4, 4)))
        with amanda.apply(tool):
            conv(x)
        assert sum(tool.gate_counts.values()) == 2  # 4 channels, keep 2

    def test_activation_tool_enforces_keep_ratio(self, rng):
        tool = ActivationPruningTool(keep_ratio=0.25)
        x = E.tensor(rng.standard_normal((4, 100)))
        with amanda.apply(tool):
            out = F.relu(x)
        nonzero_fraction = (out.data != 0).mean()
        assert nonzero_fraction <= 0.3

    def test_attention_tool_renormalizes(self, rng):
        tool = AttentionPruningTool(threshold_ratio=0.5)
        x = E.tensor(rng.standard_normal((2, 4, 8)))
        with amanda.apply(tool):
            weights = F.softmax(x)
        np.testing.assert_allclose(weights.data.sum(axis=-1), 1.0, atol=1e-12)
        assert (weights.data == 0).any()
        assert tool.pruned_fraction and tool.pruned_fraction[0] > 0

    def test_dynamic_pruning_reacts_to_each_batch(self, rng):
        tool = ActivationPruningTool(keep_ratio=0.5)
        outs = []
        with amanda.apply(tool):
            for _ in range(2):
                x = E.tensor(rng.standard_normal((2, 50)))
                outs.append(F.relu(x).data)
                amanda.new_iteration()
        # both batches pruned (not only the first: instrumentation reruns)
        assert all((o == 0).mean() > 0.4 for o in outs)


class TestPruningAccuracySemantics:
    def test_masked_forward_equals_manual_masking(self, rng):
        tool = MagnitudePruningTool(sparsity=0.5, op_types=("linear",))
        lin = E.Linear(6, 3, rng=rng)
        x = E.tensor(rng.standard_normal((5, 6)))
        with amanda.apply(tool):
            instrumented = lin(x).data
        mask = next(iter(tool.masks.values()))
        manual = x.data @ (lin.weight.data * mask).T + lin.bias.data
        np.testing.assert_allclose(instrumented, manual, atol=1e-12)
