"""Checkpoint save/load: parameters, buffers, optimizer state."""

import numpy as np
import pytest

import repro.eager as E
import repro.models.eager as M
from repro.eager import F
from repro.eager.checkpoint import load_checkpoint, save_checkpoint


def _train_steps(model, optimizer, rng, steps=3):
    x = E.tensor(rng.standard_normal((4, 3, 16, 16)))
    y = E.tensor(rng.integers(0, 4, 4))
    for _ in range(steps):
        optimizer.zero_grad()
        F.cross_entropy(model(x), y).backward()
        optimizer.step()


def test_roundtrip_restores_parameters(tmp_path, rng):
    model = M.LeNet(rng=np.random.default_rng(1))
    path = str(tmp_path / "ckpt.npz")
    save_checkpoint(path, model)
    reference = model.state_dict()

    fresh = M.LeNet(rng=np.random.default_rng(2))
    load_checkpoint(path, fresh)
    for key, value in fresh.state_dict().items():
        np.testing.assert_array_equal(value, reference[key])


def test_roundtrip_restores_buffers(tmp_path, rng):
    model = M.resnet18()
    _train_steps(model, E.optim.SGD(model.parameters(), lr=0.01), rng)
    path = str(tmp_path / "ckpt.npz")
    save_checkpoint(path, model)
    fresh = M.resnet18()
    load_checkpoint(path, fresh)
    # batch-norm running stats are buffers, not parameters
    np.testing.assert_array_equal(fresh.bn1.running_mean.data,
                                  model.bn1.running_mean.data)


def test_adam_state_roundtrip(tmp_path, rng):
    model = M.MLP(in_features=8, hidden=8, rng=np.random.default_rng(3))
    optimizer = E.optim.Adam(model.parameters(), lr=0.01)
    x = E.tensor(rng.standard_normal((4, 8)))
    y = E.tensor(rng.integers(0, 4, 4))
    for _ in range(3):
        optimizer.zero_grad()
        F.cross_entropy(model(x), y).backward()
        optimizer.step()
    path = str(tmp_path / "ckpt.npz")
    save_checkpoint(path, model, optimizer)

    fresh_model = M.MLP(in_features=8, hidden=8, rng=np.random.default_rng(4))
    fresh_opt = E.optim.Adam(fresh_model.parameters(), lr=0.01)
    load_checkpoint(path, fresh_model, fresh_opt)
    assert fresh_opt._step_count == optimizer._step_count
    for a, b in zip(fresh_opt._m, optimizer._m):
        np.testing.assert_array_equal(a, b)

    # identical continued trajectories
    def next_step(model, opt):
        opt.zero_grad()
        F.cross_entropy(model(x), y).backward()
        opt.step()
        return model.state_dict()

    after_original = next_step(model, optimizer)
    after_restored = next_step(fresh_model, fresh_opt)
    for key in after_original:
        np.testing.assert_allclose(after_restored[key], after_original[key],
                                   atol=1e-12)


def test_sgd_momentum_state_roundtrip(tmp_path, rng):
    model = M.MLP(rng=np.random.default_rng(5))
    optimizer = E.optim.SGD(model.parameters(), lr=0.01, momentum=0.9)
    x = E.tensor(rng.standard_normal((4, 16)))
    y = E.tensor(rng.integers(0, 4, 4))
    optimizer.zero_grad()
    F.cross_entropy(model(x), y).backward()
    optimizer.step()
    path = str(tmp_path / "ckpt.npz")
    save_checkpoint(path, model, optimizer)

    fresh_model = M.MLP(rng=np.random.default_rng(6))
    fresh_opt = E.optim.SGD(fresh_model.parameters(), lr=0.01, momentum=0.9)
    load_checkpoint(path, fresh_model, fresh_opt)
    for a, b in zip(fresh_opt._velocity, optimizer._velocity):
        np.testing.assert_array_equal(a, b)


def test_pruned_then_saved_model_stays_pruned(tmp_path, rng):
    """Instrumentation workflow: prune via the hook baseline (weights masked
    in place), checkpoint, reload — sparsity survives serialization."""
    from repro.baselines import ModuleHookPruner
    model = M.MLP(in_features=8, hidden=16, rng=np.random.default_rng(7))
    pruner = ModuleHookPruner(model, sparsity=0.5).attach()
    model(E.tensor(rng.standard_normal((2, 8))))
    pruner.detach()
    path = str(tmp_path / "ckpt.npz")
    save_checkpoint(path, model)
    fresh = M.MLP(in_features=8, hidden=16, rng=np.random.default_rng(8))
    load_checkpoint(path, fresh)
    zeros = sum(int((p.data == 0).sum()) for n, p in fresh.named_parameters()
                if n.endswith("weight"))
    total = sum(p.size for n, p in fresh.named_parameters()
                if n.endswith("weight"))
    assert zeros / total == pytest.approx(0.5, abs=0.05)
