"""Effect signatures and plan-level race detection.

The effect system is what lets the wavefront executor parallelize plans with
stateful ops: every builtin op type must have a registered signature
(CI-enforced completeness, like the schema registry), and ``analyze_plan``
must find exactly the unordered pairs that race on shared state — no more
(lost parallelism) and no less (lost correctness).
"""

import numpy as np
import pytest

import repro.amanda as amanda
import repro.graph as G
from repro.amanda import Tool
from repro.analysis.effects import (GRAPH_EFFECTS, OPAQUE, PURE,
                                    ORDERED_EVENTS_KEY, RNG_KEY, EffectSig,
                                    analyze_plan, check_effects_complete,
                                    effect_signature,
                                    missing_effect_signatures,
                                    normalize_effects,
                                    stale_effect_signatures)
from repro.analysis.lint import lint_contexts
from repro.analysis.liveness import estimate_liveness
from repro.analysis.schemas import GRAPH_SCHEMAS
from repro.graph import builder as gb
from repro.graph.core import plan_levels, topo_plan


class TestRegistryCompleteness:
    """Every schema'd graph op must carry an effect signature (CI gate)."""

    def test_no_missing_signatures(self):
        assert missing_effect_signatures() == set()

    def test_no_stale_signatures(self):
        assert stale_effect_signatures() == set()

    def test_check_passes(self):
        check_effects_complete()  # must not raise

    def test_registry_covers_schema_registry_exactly(self):
        missing_effect_signatures()  # force registration side imports
        assert set(GRAPH_EFFECTS) == set(GRAPH_SCHEMAS)


class TestSignatures:
    def test_matmul_is_pure(self, rng):
        with G.default_graph():
            x = gb.placeholder(name="x")
            w = gb.constant(rng.standard_normal((4, 3)))
            y = gb.matmul(x, w)
        assert effect_signature(y.op) is PURE

    def test_variable_reads_its_store_key(self):
        with G.default_graph():
            v = gb.variable(np.zeros(4), name="v")
        sig = effect_signature(v.op)
        assert sig.reads == {"v"} and not sig.writes and not sig.opaque

    def test_assign_writes_only(self):
        """The current value arrives as a data input, so Assign* only
        *writes* — the read is already ordered by the data edge."""
        with G.default_graph():
            v = gb.variable(np.zeros(4), name="v")
            d = gb.constant(np.ones(4))
            a = gb.assign_sub(v, d)
        sig = effect_signature(a)
        assert sig.writes == {"v"} and not sig.reads

    def test_batch_norm_training_vs_inference(self):
        def bn(training):
            with G.default_graph() as g:
                x = gb.placeholder(name="x")
                gamma = gb.constant(np.ones(3))
                beta = gb.constant(np.zeros(3))
                g.variables.create("m", np.zeros(3))
                g.variables.create("s", np.ones(3))
                y = gb.fused_batch_norm(x, gamma, beta, "m", "s",
                                        training=training)
            return effect_signature(y.op)

        train = bn(True)
        assert train.reads == {"m", "s"} and train.writes == {"m", "s"}
        infer = bn(False)
        assert infer.reads == {"m", "s"} and not infer.writes

    def test_dropout_rng_only_when_unseeded_training(self):
        def drop(**kwargs):
            with G.default_graph():
                x = gb.placeholder(name="x")
                y = gb.dropout(x, **kwargs)
            return effect_signature(y.op)

        unseeded = drop(rate=0.5, training=True, seed=None)
        assert unseeded.reads == {RNG_KEY} and unseeded.writes == {RNG_KEY}
        assert drop(rate=0.5, training=True, seed=7).pure
        assert drop(rate=0.5, training=False).pure
        assert drop(rate=0.0, training=True).pure

    def test_pycall_declarations(self):
        def pycall(tags):
            with G.default_graph():
                x = gb.placeholder(name="x")
                op = gb.py_call(lambda v: v, [x])
            op.tags.update(tags)
            return effect_signature(op)

        assert pycall({}).opaque
        assert pycall({"parallel_safe": True}).pure
        declared = pycall({"effects": {"writes": ["counter"]}})
        assert declared.writes == {"counter"} and not declared.opaque
        assert pycall({"effects": "pure"}).pure

    def test_unregistered_op_type_is_opaque(self):
        with G.default_graph() as g:
            op = g.add_op("SomeCustomOp", [], name="custom")
        assert effect_signature(op) is OPAQUE

    def test_signature_is_memoized_on_the_op(self):
        with G.default_graph():
            v = gb.variable(np.zeros(4), name="v")
        first = effect_signature(v.op)
        assert effect_signature(v.op) is first
        assert v.op.tags["_effect_sig"] is first


class TestNormalizeEffects:
    def test_strings_and_passthrough(self):
        assert normalize_effects("pure") is PURE
        assert normalize_effects("opaque") is OPAQUE
        sig = EffectSig(reads=frozenset(("k",)))
        assert normalize_effects(sig) is sig

    def test_mapping_with_synthetic_flags(self):
        sig = normalize_effects({"reads": ["a"], "writes": ["b"],
                                 "rng": True, "ordered": True})
        assert {"a", RNG_KEY, ORDERED_EVENTS_KEY} <= sig.reads
        assert {"b", RNG_KEY, ORDERED_EVENTS_KEY} <= sig.writes

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown effect declaration"):
            normalize_effects({"mutates": ["a"]})

    def test_uninterpretable_declaration_rejected(self):
        with pytest.raises(ValueError, match="cannot interpret"):
            normalize_effects(42)

    def test_conflicts_with_is_symmetric_on_keys(self):
        w = normalize_effects({"writes": ["k"]})
        r = normalize_effects({"reads": ["k"]})
        assert w.conflicts_with(r) == {"k"}
        assert r.conflicts_with(w) == {"k"}
        assert r.conflicts_with(r) == frozenset()


class TestAnalyzePlan:
    def test_vanilla_training_graph_has_no_conflicts(self):
        import repro.models.graph as GM
        gm = GM.build_mlp(learning_rate=0.1)
        plan = topo_plan([gm.loss.op, gm.train_op.op])
        report = analyze_plan(plan)
        assert report.ok
        assert report.stateful_ops > 0
        assert report.extra_edges == {}
        assert report.serial_only_reason is None
        assert "no conflicting pairs" in str(report)

    def test_write_write_pair_detected_with_edge(self):
        with G.default_graph():
            x = gb.placeholder(name="x")
            v = gb.variable(np.zeros(4), name="v")
            a = gb.assign_add(v, gb.relu(x), name="writer_a")
            b = gb.assign_add(v, gb.tanh(x), name="writer_b")
            step = gb.group([a, b], name="step")
        plan = topo_plan([step])
        report = analyze_plan(plan)
        assert len(report.conflicts) == 1
        conflict = report.conflicts[0]
        assert conflict.kind == "write-write"
        assert conflict.keys == ("v",)
        # the edge points plan-earlier -> plan-later
        position = {op.name: i for i, op in enumerate(plan)}
        assert position[conflict.first] < position[conflict.second]
        assert report.extra_edges == {conflict.second: (conflict.first,)}
        assert not report.ok and report.serial_only_reason is None

    def test_read_write_pair_detected(self):
        """An unordered Variable-store reader races with a writer."""
        with G.default_graph() as g:
            x = gb.placeholder(name="x")
            gamma = gb.constant(np.ones(3))
            beta = gb.constant(np.zeros(3))
            g.variables.create("m", np.zeros(3))
            g.variables.create("s", np.ones(3))
            y = gb.fused_batch_norm(x, gamma, beta, "m", "s", training=False)
            m_var = gb.variable(np.zeros(3), name="m")
            w = gb.assign_add(m_var, gb.constant(np.ones(3)), name="w")
            step = gb.group([y.op, w], name="step")
        report = analyze_plan(topo_plan([step]))
        kinds = {c.kind for c in report.conflicts}
        assert "read-write" in kinds
        pairs = {(c.first, c.second) for c in report.conflicts
                 if c.kind == "read-write"}
        names = {name for pair in pairs for name in pair}
        assert "w" in names

    def test_dependency_path_suppresses_conflict(self):
        """Two writers already ordered by a control edge do not race."""
        with G.default_graph():
            v = gb.variable(np.zeros(4), name="v")
            d = gb.constant(np.ones(4))
            a = gb.assign_add(v, d, name="writer_a")
            b = v.graph.add_op("AssignAdd", [v, d], {"var_name": "v"},
                               name="writer_b", control_inputs=[a])
            step = gb.group([b], name="step")
        report = analyze_plan(topo_plan([step]))
        assert report.conflicts == ()
        assert report.ok

    def test_optimizer_writer_ordered_by_data_edge(self):
        """assign_sub(v, delta) data-depends on the Variable read: no race."""
        with G.default_graph():
            v = gb.variable(np.zeros(4), name="v")
            step = gb.assign_sub(v, gb.relu(v), name="update")
        report = analyze_plan(topo_plan([step]))
        assert report.ok

    def test_opaque_pycall_reported_with_provenance(self):
        with G.default_graph():
            x = gb.placeholder(name="x")
            op = gb.py_call(lambda v: v, [x], name="mystery")
        report = analyze_plan(topo_plan([op]))
        assert not report.ok
        assert report.opaque_ops[0][0] == "mystery"
        assert "PyCall" in report.serial_only_reason
        assert "Tool.effects" in report.serial_only_reason
        assert "opaque" in str(report)


class TestRaceAwareLevels:
    def test_injected_edges_order_the_conflicting_pair(self):
        with G.default_graph():
            x = gb.placeholder(name="x")
            v = gb.variable(np.zeros(4), name="v")
            a = gb.assign_add(v, gb.relu(x), name="writer_a")
            b = gb.assign_add(v, gb.tanh(x), name="writer_b")
            step = gb.group([a, b], name="step")
        plan = topo_plan([step])
        plain = plan_levels(plan)
        report = analyze_plan(plan)
        leveled = plan_levels(plan, extra_deps=report.extra_edges)
        level_of = {op.name: i for i, level in enumerate(leveled)
                    for op in level}
        plain_level_of = {op.name: i for i, level in enumerate(plain)
                          for op in level}
        conflict = report.conflicts[0]
        # without edges the writers share a level; with them they are ordered
        assert plain_level_of["writer_a"] == plain_level_of["writer_b"]
        assert level_of[conflict.first] < level_of[conflict.second]
        assert sum(len(level) for level in leveled) == len(plan)

    def test_wavefront_liveness_respects_injected_edges(self):
        with G.default_graph():
            x = gb.placeholder(name="x")
            v = gb.variable(np.zeros(4), name="v")
            a = gb.assign_add(v, gb.relu(x), name="writer_a")
            b = gb.assign_add(v, gb.tanh(x), name="writer_b")
            out = gb.identity(gb.relu(x), name="out")
            step = gb.group([a, b], name="step")
        g = x.graph
        report = estimate_liveness(g, fetches=[out, step.outputs[0]],
                                   feed_shapes={"x": (4,)},
                                   schedule_mode="wavefront")
        assert set(report.schedule) >= {"writer_a", "writer_b", "out"}
        assert report.peak_bytes >= 0


class TestLintEffectConflict:
    @staticmethod
    def _racing_tools():
        def make(name, effects):
            tool = Tool(name)
            tool.effects = effects
            tool.add_inst_for_op(
                lambda context: context.insert_before_op(lambda a: a)
                if context.get("type") == "Relu" else None)
            return tool
        return (make("incr", {"reads": ["counter"], "writes": ["counter"]}),
                make("decr", {"writes": ["counter"]}))

    @staticmethod
    def _lint(graph, *tools):
        # manager.tools is cleared on context exit, so lint inside the scope
        with amanda.apply(*tools) as mgr:
            driver = next(d for d in mgr._drivers if d.namespace == "graph")
            driver.verify = False
            driver._instrument_graph(graph)
            return lint_contexts(list(driver.last_contexts), manager=mgr)

    def test_racing_declarations_flagged_once(self, rng):
        with G.default_graph() as g:
            x = gb.placeholder(name="x")
            gb.relu(gb.relu(x))  # two sites, but the pair reports once
        t1, t2 = self._racing_tools()
        issues = [i for i in self._lint(g, t1, t2)
                  if i.rule == "effect-conflict"]
        assert len(issues) == 1
        assert set(issues[0].tools) == {"incr", "decr"}
        assert "'counter'" in issues[0].message

    def test_pure_tools_not_flagged(self, rng):
        with G.default_graph() as g:
            x = gb.placeholder(name="x")
            gb.relu(x)
        t1, t2 = self._racing_tools()
        t1.effects = "pure"
        t2.effects = "pure"
        assert not [i for i in self._lint(g, t1, t2)
                    if i.rule == "effect-conflict"]


class TestDeclaredEffectsEndToEnd:
    def test_declared_pycalls_run_parallel_and_serialized(self, rng):
        """Two tools with racing declared effects on *independent branches*
        (insert-before wrappers on the same op would chain, i.e. already be
        ordered) still run wavefronted — their PyCalls are the conflicting
        pair, serialized in plan order."""
        hits = []

        def make(name, op_type):
            tool = Tool(name)
            tool.effects = {"reads": ["log"], "writes": ["log"]}
            tool.add_inst_for_op(
                lambda context: context.insert_before_op(
                    lambda a: (hits.append(name), a)[1])
                if context.get("type") == op_type else None)
            return tool

        with G.default_graph() as g:
            x = gb.placeholder(name="x")
            y = gb.identity(gb.relu(x) + gb.tanh(x), name="y")
        sess = G.Session(g)
        feed = {x: rng.standard_normal(4)}
        baseline = np.asarray(sess.run(y, feed))

        with amanda.num_workers(4), amanda.apply(make("first", "Relu"),
                                                 make("second", "Tanh")):
            got = np.asarray(sess.run(y, feed))
        assert sess.last_run_parallel, sess.last_fallback_reason
        report = sess.last_serialization_report
        assert len(report.conflicts) == 1
        assert report.conflicts[0].kind == "write-write"
        assert report.conflicts[0].keys == ("log",)
        np.testing.assert_array_equal(got, baseline)
        assert sorted(hits) == ["first", "second"]
