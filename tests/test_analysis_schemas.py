"""Schema registry: completeness, arity/attr checks, shape inference rules."""

import numpy as np
import pytest

import repro.graph as G
from repro.analysis import schemas
from repro.analysis.schemas import (InferenceError, SchemaError,
                                    broadcast_shapes, check_op_against_schema,
                                    check_registry_complete,
                                    infer_eager_shapes, missing_eager_schemas,
                                    missing_graph_schemas, validate_mask_shape,
                                    validate_scale)
from repro.eager import ops as eager_ops
from repro.graph import builder as gb


class TestCompleteness:
    def test_every_graph_op_has_a_schema(self):
        assert missing_graph_schemas() == set()

    def test_every_eager_op_has_a_schema(self):
        eager_ops.register_default_ops()
        assert missing_eager_schemas() == set()

    def test_no_stale_graph_schemas(self):
        assert schemas.stale_graph_schemas() == set()

    def test_check_registry_complete_passes(self):
        eager_ops.register_default_ops()
        check_registry_complete()  # must not raise

    def test_missing_schema_is_reported(self):
        # a hypothetical builtin op without a schema must fail the check
        from repro.graph import builder

        def _compute_phantom(op, inputs, runtime):  # pragma: no cover
            return (inputs[0],)

        _compute_phantom.__module__ = "repro.graph.builder"
        builder.COMPUTE["PhantomOp"] = _compute_phantom
        try:
            assert "PhantomOp" in missing_graph_schemas()
            with pytest.raises(SchemaError, match="PhantomOp"):
                check_registry_complete()
        finally:
            del builder.COMPUTE["PhantomOp"]

    def test_third_party_ops_are_exempt(self):
        from repro.graph import builder

        def _compute_external(op, inputs, runtime):  # pragma: no cover
            return (inputs[0],)

        _compute_external.__module__ = "someplugin.ops"
        builder.COMPUTE["ExternalOp"] = _compute_external
        try:
            assert "ExternalOp" not in missing_graph_schemas()
            assert "ExternalOp" in missing_graph_schemas(builtin_only=False)
        finally:
            del builder.COMPUTE["ExternalOp"]


class TestPartialShapeAlgebra:
    def test_broadcast_known(self):
        assert broadcast_shapes((2, 3), (3,)) == (2, 3)
        assert broadcast_shapes((2, 1), (1, 4)) == (2, 4)
        assert broadcast_shapes((5,), ()) == (5,)

    def test_broadcast_unknown_dims(self):
        assert broadcast_shapes((None, 3), (1, 3)) == (None, 3)
        assert broadcast_shapes((None,), (4,)) == (4,)
        assert broadcast_shapes(None, (2, 2)) is None

    def test_broadcast_conflict_raises(self):
        with pytest.raises(InferenceError, match="broadcast"):
            broadcast_shapes((2, 3), (2, 4))


class TestGraphInference:
    def _op(self, op_type, num_inputs=0, attrs=None, num_outputs=1):
        g = G.Graph()
        g._internal_mutation = True
        feeds = [g.add_op("Placeholder") for _ in range(num_inputs)]
        return g.add_op(op_type, [p.outputs[0] for p in feeds], attrs or {},
                        num_outputs=num_outputs)

    def _infer(self, op, in_shapes):
        schema = schemas.GRAPH_SCHEMAS[op.type]
        return schema.infer(op, list(in_shapes), schemas.InferEnv())

    def test_matmul_inner_dim(self):
        op = self._op("MatMul", 2)
        assert self._infer(op, [(8, 16), (16, 32)]) == [(8, 32)]
        with pytest.raises(InferenceError, match="inner"):
            self._infer(op, [(8, 16), (17, 32)])

    def test_matmul_transpose(self):
        op = self._op("MatMul", 2, {"transpose_b": True})
        assert self._infer(op, [(8, 16), (32, 16)]) == [(8, 32)]

    def test_conv2d_nhwc(self):
        op = self._op("Conv2D", 2, {"strides": (2, 2), "padding": (1, 1)})
        assert self._infer(op, [(2, 16, 16, 3), (3, 3, 3, 8)]) \
            == [(2, 8, 8, 8)]
        with pytest.raises(InferenceError, match="channels"):
            self._infer(op, [(2, 16, 16, 4), (3, 3, 3, 8)])

    def test_reshape_fold(self):
        op = self._op("Reshape", 1, {"shape": (-1, 8)})
        assert self._infer(op, [(4, 2, 8)]) == [(8, 8)]
        with pytest.raises(InferenceError, match="element count|fold"):
            self._infer(self._op("Reshape", 1, {"shape": (3, 8)}), [(4, 8)])

    def test_concat(self):
        op = self._op("ConcatV2", 2, {"axis": 1})
        op_inferred = self._infer(op, [(2, 3), (2, 5)])
        assert op_inferred == [(2, 8)]

    def test_fused_batch_norm_gamma_mismatch(self):
        op = self._op("FusedBatchNorm", 3,
                      {"running_mean": "m", "running_var": "v"},
                      num_outputs=3)
        good = self._infer(op, [(2, 4, 4, 8), (8,), (8,)])
        assert good == [(2, 4, 4, 8), (2, 4, 4, 8), (8,)]
        with pytest.raises(InferenceError, match="gamma"):
            self._infer(op, [(2, 4, 4, 8), (7,), (7,)])

    def test_unknown_shapes_never_false_positive(self):
        op = self._op("MatMul", 2)
        assert self._infer(op, [None, (16, 32)]) == [None]
        assert self._infer(op, [(8, None), (None, 32)]) == [(8, 32)]

    def test_pycall_roles(self):
        wrap = self._op("PyCall", 1, {"func": lambda a: a})
        wrap.tags["pycall_role"] = "wrap"
        assert self._infer(wrap, [(2, 3)]) == [(2, 3)]
        replace = self._op("PyCall", 2, {"func": lambda a, b: a})
        replace.tags["pycall_role"] = "replace"
        assert self._infer(replace, [(2, 3), (3,)]) == [None]

    def test_arity_and_attr_violations(self):
        op = self._op("Conv2D", 1, {"strides": "nope"})
        schema = schemas.GRAPH_SCHEMAS["Conv2D"]
        errors = "\n".join(check_op_against_schema(op, schema))
        assert "expects 2 inputs" in errors
        assert "attr 'strides'" in errors
        assert "missing required attr 'padding'" in errors

    def test_undeclared_attr_flagged(self):
        op = self._op("Relu", 1, {"bogus": 1})
        errors = check_op_against_schema(op, schemas.GRAPH_SCHEMAS["Relu"])
        assert any("undeclared attr 'bogus'" in e for e in errors)


class TestEagerInference:
    def test_linear(self):
        assert infer_eager_shapes("linear", [(8, 16), (32, 16)]) == [(8, 32)]
        with pytest.raises(InferenceError):
            infer_eager_shapes("linear", [(8, 16), (32, 17)])

    def test_conv2d_nchw(self):
        out = infer_eager_shapes("conv2d", [(2, 3, 16, 16), (8, 3, 3, 3)],
                                 attrs={"stride": (1, 1), "padding": (1, 1)})
        assert out == [(2, 8, 16, 16)]

    def test_unknown_op_raises(self):
        with pytest.raises(SchemaError):
            infer_eager_shapes("not_an_op", [(1,)])


class TestToolInputValidation:
    def test_mask_shape_ok(self):
        validate_mask_shape(np.ones((3, 4)), np.zeros((3, 4)), "matmul")

    def test_mask_shape_mismatch(self):
        with pytest.raises(InferenceError, match="mask shape"):
            validate_mask_shape(np.ones((4, 3)), np.zeros((3, 4)), "matmul")

    def test_mask_nonfinite(self):
        with pytest.raises(InferenceError, match="non-finite"):
            validate_mask_shape(np.full((2, 2), np.nan), np.zeros((2, 2)))

    def test_scale(self):
        assert validate_scale(0.5) == 0.5
        for bad in (0.0, -1.0, float("nan"), float("inf")):
            with pytest.raises(InferenceError, match="scale"):
                validate_scale(bad, "conv2d")


class TestModelZooCoverage:
    def test_builder_graph_fully_inferred(self, rng):
        # every tensor of a real forward+backward graph gets a known shape
        with G.default_graph() as g:
            x = gb.placeholder(name="x")
            w = gb.variable(rng.standard_normal((4, 3)), name="w")
            loss = gb.reduce_mean(gb.square(gb.relu(gb.matmul(x, w))))
            (grad_w,) = G.gradients(loss, [w])
        from repro.analysis.verify import verify_graph
        report = verify_graph(g, feed_shapes={"x": (2, 4)})
        assert report.ok
        assert report.shapes[grad_w.name] == (4, 3)
        assert all(shape is not None for shape in report.shapes.values())
