"""End-to-end integration: semantic equivalence of Amanda tools vs baselines
(the Tbl. 4 accuracy-parity claim), cross-backend portability, composition.
"""

import numpy as np
import pytest

import repro.amanda as amanda
import repro.eager as E
import repro.models.eager as M
from repro.amanda.tools import (ActivationPruningTool, AttentionPruningTool,
                                ChannelPruningTool, MagnitudePruningTool,
                                VectorWisePruningTool)
from repro.baselines import (APEXStyleSparsity, AttentionPrunedBert,
                             ChannelPrunedLeNet, ModuleHookPruner)
from repro.eager import F


class TestSemanticEquivalence:
    """Amanda tool output == ad-hoc implementation output, bit for bit."""

    def test_channel_pruning_matches_source_modification(self, rng):
        # identical layer creation order + same seed -> identical weights
        baseline = ChannelPrunedLeNet(keep_ratio=0.5,
                                      rng=np.random.default_rng(42))
        clean = M.LeNet(rng=np.random.default_rng(42))

        x = rng.standard_normal((2, 3, 16, 16))
        want = baseline(E.tensor(x)).data
        tool = ChannelPruningTool(keep_ratio=0.5)
        with amanda.apply(tool):
            got = clean(E.tensor(x)).data
        np.testing.assert_allclose(got, want, atol=1e-10)

    def test_magnitude_pruning_matches_module_hook_pruner(self, rng):
        x = rng.standard_normal((4, 8))
        model_a = M.MLP(in_features=8, hidden=16, rng=np.random.default_rng(3))
        model_b = M.MLP(in_features=8, hidden=16, rng=np.random.default_rng(3))
        pruner = ModuleHookPruner(model_a, sparsity=0.5).attach()
        want = model_a(E.tensor(x)).data
        pruner.detach()
        tool = MagnitudePruningTool(sparsity=0.5, op_types=("linear",))
        with amanda.apply(tool):
            got = model_b(E.tensor(x)).data
        np.testing.assert_allclose(got, want, atol=1e-10)

    def test_vector_wise_matches_apex_masks(self, rng):
        model_a = M.MLP(in_features=8, hidden=8, rng=np.random.default_rng(5))
        model_b = M.MLP(in_features=8, hidden=8, rng=np.random.default_rng(5))
        opt = E.optim.SGD(model_a.parameters(), lr=0.0)
        apex = APEXStyleSparsity(model_a, opt)
        apex.init_masks()  # masks applied in place
        x = rng.standard_normal((4, 8))
        want = model_a(E.tensor(x)).data
        tool = VectorWisePruningTool(n=2, m=4, op_types=("linear",))
        with amanda.apply(tool):
            got = model_b(E.tensor(x)).data
        np.testing.assert_allclose(got, want, atol=1e-10)

    def test_attention_pruning_matches_source_modification(self, rng):
        baseline = AttentionPrunedBert(threshold_ratio=0.1,
                                       rng=np.random.default_rng(9))
        clean = M.bert_mini(rng=np.random.default_rng(9))
        tokens = rng.integers(0, 32, (2, 8))
        want = baseline(tokens).data
        tool = AttentionPruningTool(threshold_ratio=0.1)
        with amanda.apply(tool):
            got = clean(tokens).data
        np.testing.assert_allclose(got, want, atol=1e-10)


class TestComposition:
    def test_two_tools_compose(self, rng):
        """Pruning then quantization: both effects visible in the output."""
        from repro.amanda.tools import StaticPTQTool
        lin = E.Linear(8, 4, rng=rng)
        x = E.tensor(rng.standard_normal((3, 8)))
        pruner = MagnitudePruningTool(sparsity=0.5, op_types=("linear",))
        quantizer = StaticPTQTool(bits=4)
        with amanda.apply(pruner, quantizer):
            got = lin(x).data
        from repro.tools.quantization import quantize_dequantize
        mask = next(iter(pruner.masks.values()))
        # tool order: pruner registered first -> mask applied, then quantize
        expected_w = quantize_dequantize(lin.weight.data * mask, bits=4)
        want = x.data @ expected_w.T + lin.bias.data
        np.testing.assert_allclose(got, want, atol=1e-12)

    def test_shared_dependency_instantiated_once_per_tool(self):
        """Each tool carries its own mapping dependency; dedup happens at
        resolve time for shared *instances*."""
        from repro.amanda.tools import standard_mapping_tool
        shared = standard_mapping_tool()
        a, b = amanda.Tool("a"), amanda.Tool("b")
        a.depends_on(shared)
        b.depends_on(shared)
        order = amanda.manager.resolve_tools((a, b))
        assert order.count(shared) == 1


class TestPrunedFineTuning:
    def test_finetuning_recovers_accuracy(self, rng):
        """Static pruning + fine-tuning: the Tbl. 4 workflow end to end."""
        from repro.data import ClassificationDataset
        data = ClassificationDataset(train_n=64, test_n=32, size=8)
        model = M.LeNet(input_size=8, rng=np.random.default_rng(1))
        opt = E.optim.Adam(model.parameters(), lr=0.01)

        def train_epochs(n):
            for _ in range(n):
                opt.zero_grad()
                loss = F.cross_entropy(model(E.tensor(data.train_x)),
                                       E.tensor(data.train_y))
                loss.backward()
                opt.step()

        train_epochs(15)
        dense_acc = data.accuracy(lambda x: model(E.tensor(x)).data)

        tool = MagnitudePruningTool(sparsity=0.5)
        with amanda.apply(tool):
            pruned_acc = data.accuracy(lambda x: model(E.tensor(x)).data)
            train_epochs(15)  # fine-tune under the mask
            finetuned_acc = data.accuracy(lambda x: model(E.tensor(x)).data)
        assert dense_acc > 0.5
        assert finetuned_acc >= pruned_acc
        assert finetuned_acc >= dense_acc - 0.15
