"""Instrumentation lint pass: tool-composition conflicts."""

import numpy as np
import pytest

import repro.amanda as amanda
import repro.graph as G
from repro.analysis.lint import lint_contexts
from repro.amanda import Tool
from repro.graph import builder as gb


@pytest.fixture
def relu_graph(rng):
    with G.default_graph() as g:
        x = gb.placeholder(name="x")
        w = gb.variable(np.abs(rng.standard_normal((4, 3))) + 0.1, name="w")
        logits = gb.relu(gb.matmul(x, w))
        loss = gb.reduce_mean(gb.square(logits))
    return g, x, logits, loss


def _instrument(graph, *tools, feed_shapes=None):
    """Statically instrument the graph and return (driver, manager)."""
    with amanda.apply(*tools) as mgr:
        driver = next(d for d in mgr._drivers if d.namespace == "graph")
        driver.verify = False
        driver._instrument_graph(graph, feed_shapes=feed_shapes)
        contexts = list(driver.last_contexts)
    return contexts, mgr


class TestReplaceConflict:
    def test_two_real_tools_replacing_same_op(self, relu_graph):
        # two SubgraphRewritingTool instances (real tools from repro.tools)
        # each believe they own the relu op
        from repro.tools.subgraph import SubgraphRewritingTool
        t1 = SubgraphRewritingTool(["relu"],
                                   lambda chain: [lambda a: a * 2.0])
        t2 = SubgraphRewritingTool(["relu"], lambda chain: ["identity"])
        t1.name = "double_relu"
        t2.name = "remove_relu"
        contexts, _ = _instrument(relu_graph[0], t1, t2)
        issues = [i for i in lint_contexts(contexts)
                  if i.rule == "replace-conflict"]
        assert issues, "conflict between two replacing tools not detected"
        issue = issues[0]
        assert issue.op_type == "Relu"
        assert set(issue.tools) == {"double_relu", "remove_relu"}
        assert "only the last replacement takes effect" in issue.message

    def test_single_replacement_is_clean(self, relu_graph):
        from repro.tools.subgraph import SubgraphRewritingTool
        t1 = SubgraphRewritingTool(["relu"], lambda chain: ["identity"])
        contexts, _ = _instrument(relu_graph[0], t1)
        assert not [i for i in lint_contexts(contexts)
                    if i.rule == "replace-conflict"]


class TestInsertAfterFetch:
    def test_wrapper_on_fetch_target_flagged(self, relu_graph):
        g, x, logits, loss = relu_graph
        tool = Tool("observer")
        tool.add_inst_for_op(
            lambda context: context.insert_after_op(lambda a: a * 0.5)
            if context["type"] == "Relu" else None)
        contexts, _ = _instrument(g, tool)
        issues = lint_contexts(contexts, fetch_names=[logits.name])
        flagged = [i for i in issues if i.rule == "insert-after-fetch"]
        assert flagged
        assert flagged[0].op_name == logits.op.name
        assert flagged[0].tools == ("observer",)

    def test_non_fetched_op_not_flagged(self, relu_graph):
        g, x, logits, loss = relu_graph
        tool = Tool("observer")
        tool.add_inst_for_op(
            lambda context: context.insert_after_op(lambda a: a)
            if context["type"] == "MatMul" else None)
        contexts, _ = _instrument(g, tool)
        issues = lint_contexts(contexts, fetch_names=[logits.name])
        assert not [i for i in issues if i.rule == "insert-after-fetch"]


class TestBackwardWithoutAD:
    def test_replace_backward_flagged(self, relu_graph, rng):
        g, x, logits, loss = relu_graph
        with G.default_graph(g):
            G.gradients(loss, [g.get_operation("w").outputs[0]])
        tool = Tool("grad_hacker")

        def analysis(context):
            if context.get("backward_type") == "ReluGrad":
                context.replace_backward_op(lambda grad, ref: grad)

        tool.add_inst_for_op(analysis, backward=True)
        contexts, mgr = _instrument(g, tool)
        issues = lint_contexts(contexts, manager=mgr)
        flagged = [i for i in issues if i.rule == "backward-no-ad"]
        assert flagged
        assert "allow_instrumented_ad" in flagged[0].message

    def test_allowed_when_ad_enabled(self, relu_graph):
        g, x, logits, loss = relu_graph
        with G.default_graph(g):
            G.gradients(loss, [g.get_operation("w").outputs[0]])
        tool = Tool("grad_hacker")

        def analysis(context):
            if context.get("backward_type") == "ReluGrad":
                context.replace_backward_op(lambda grad, ref: grad)

        tool.add_inst_for_op(analysis, backward=True)
        contexts, _ = _instrument(g, tool)
        issues = lint_contexts(contexts, allow_instrumented_ad=True)
        assert not [i for i in issues if i.rule == "backward-no-ad"]


class TestCacheUnsafeContext:
    def test_unbaked_user_state_flagged(self, relu_graph):
        g = relu_graph[0]
        tool = Tool("stateful")

        def analysis(context):
            if context["type"] != "MatMul":
                return
            context["per_run_counter"] = [0]  # only reachable via context
            context.insert_before_op(lambda a: a, inputs=[0])

        tool.add_inst_for_op(analysis)
        contexts, mgr = _instrument(g, tool)
        issues = lint_contexts(contexts, manager=mgr)
        flagged = [i for i in issues if i.rule == "cache-unsafe-context"]
        assert flagged
        assert "per_run_counter" in flagged[0].message

    def test_state_baked_into_kwargs_is_safe(self, relu_graph):
        # the pruning-tool pattern: the mask is snapshotted in action kwargs
        g = relu_graph[0]
        tool = Tool("pruner_like")

        def analysis(context):
            if context["type"] != "MatMul":
                return
            mask = np.ones((4, 3))
            context["mask"] = mask
            context.insert_before_op(lambda a, mask: a, inputs=[0], mask=mask)

        tool.add_inst_for_op(analysis)
        contexts, mgr = _instrument(g, tool)
        issues = lint_contexts(contexts, manager=mgr)
        assert not [i for i in issues if i.rule == "cache-unsafe-context"]

    def test_cache_disabled_is_safe(self, relu_graph):
        g = relu_graph[0]
        tool = Tool("stateful")

        def analysis(context):
            if context["type"] == "MatMul":
                context["scratch"] = {}
                context.insert_before_op(lambda a: a, inputs=[0])

        tool.add_inst_for_op(analysis)
        contexts, _ = _instrument(g, tool)
        issues = lint_contexts(contexts, cache_enabled=False)
        assert not [i for i in issues if i.rule == "cache-unsafe-context"]


class TestRealToolsAreClean:
    def test_pruning_and_profiling_lint_clean(self, rng):
        import repro.models.graph.builders as GM
        from repro.tools.profiling import FlopsProfilingTool
        from repro.tools.pruning import MagnitudePruningTool
        gm = GM.build_mlp(learning_rate=0.1)
        contexts, mgr = _instrument(
            gm.graph, MagnitudePruningTool(sparsity=0.5),
            FlopsProfilingTool(),
            feed_shapes={"input": (8, 16), "labels": (8,)})
        issues = lint_contexts(contexts, manager=mgr)
        assert issues == [], [str(i) for i in issues]
