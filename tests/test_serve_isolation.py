"""Multi-tenant isolation matrix for the serving runtime.

Two tenants served concurrently from one process:

* **prune** — an MLP with :class:`ActivationPruningTool` at sample rate 1
  (every request instrumented);
* **faulty** — a different MLP with a :class:`FaultyTool` whose inserted
  instrumentation routine always raises, under the ``"quarantine"`` policy —
  the driver's recovery path quarantines it and its requests must come out
  vanilla-equivalent.

The matrix asserts that at every worker count the concurrent multi-tenant
outputs are **bit-identical** to serial single-tenant references: the prune
tenant's instrumented results never leak into the faulty tenant's vanilla
recovery (and vice versa), across lease swaps and quarantine capture.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.amanda as amanda
from repro.amanda import manager
from repro import serve
from repro.models.graph.builders import build_mlp
from repro.tools.faulty import FaultyTool
from repro.tools.pruning import ActivationPruningTool

REQUESTS = 10


def _feeds(model, rng, n=REQUESTS):
    return [{model.inputs: rng.standard_normal((4, 16))} for _ in range(n)]


@pytest.fixture(scope="module")
def workload():
    """Shared graphs, feeds, and serial single-tenant references."""
    rng = np.random.default_rng(42)
    prune_model = build_mlp(seed=11)
    faulty_model = build_mlp(seed=22, hidden=24)
    prune_feeds = _feeds(prune_model, rng)
    faulty_feeds = _feeds(faulty_model, rng)

    # serial reference 1: the prune tenant as the *only* tenant, every
    # request under its tool (classic amanda.apply usage)
    session = prune_model.session()
    with amanda.apply(ActivationPruningTool(keep_ratio=0.25)):
        prune_refs = [session.run(prune_model.logits, f)
                      for f in prune_feeds]
    session.close()
    manager.reset_health()

    # serial reference 2: the faulty tenant must recover to vanilla, so its
    # reference is the plain uninstrumented run
    session = faulty_model.session()
    faulty_refs = [session.run(faulty_model.logits, f)
                   for f in faulty_feeds]
    session.close()

    return {
        "prune": (prune_model, prune_feeds, prune_refs),
        "faulty": (faulty_model, faulty_feeds, faulty_refs),
    }


@pytest.mark.parametrize("workers", [1, 4])
def test_concurrent_tenants_bit_identical_to_serial(workload, workers):
    prune_model, prune_feeds, prune_refs = workload["prune"]
    faulty_model, faulty_feeds, faulty_refs = workload["faulty"]

    rt = serve.ServeRuntime(f"matrix-w{workers}", workers=workers,
                            batch_size=4, deadline_ms=2.0)
    prune = rt.register(
        "prune", prune_model.graph, prune_model.logits,
        tools=(ActivationPruningTool(keep_ratio=0.25),), sample_rate=1)
    faulty = rt.register(
        "faulty", faulty_model.graph, faulty_model.logits,
        tools=(FaultyTool(mode="instrumentation", always=True),),
        sample_rate=1, error_policy="quarantine")

    with rt:
        # interleave submissions so lease swaps actually happen
        futures = []
        for pf, ff in zip(prune_feeds, faulty_feeds):
            futures.append(("prune", rt.submit(prune, pf)))
            futures.append(("faulty", rt.submit(faulty, ff)))
        results = {"prune": [], "faulty": []}
        for tenant_name, future in futures:
            results[tenant_name].append(future.result(timeout=60.0))

    for out, ref in zip(results["prune"], prune_refs):
        np.testing.assert_array_equal(
            out, ref, err_msg="prune tenant diverged from serial reference")
    for out, ref in zip(results["faulty"], faulty_refs):
        np.testing.assert_array_equal(
            out, ref,
            err_msg="faulty tenant's quarantine recovery is not vanilla")

    snap = rt.snapshot()
    assert snap["tenants"]["prune"]["sampled"] == REQUESTS
    assert snap["tenants"]["faulty"]["sampled"] == REQUESTS
    # the fault was quarantined for the faulty tenant only; the quarantine
    # was captured into the tenant across lease swaps, never global state
    assert faulty.quarantined, "FaultyTool was never quarantined"
    assert not prune.quarantined
    assert not manager.quarantined, "quarantine leaked past runtime stop"
    manager.reset_health()


def test_sampled_lane_routing_with_rate_3(workload):
    """1-in-3 sampling: sampled requests instrumented, the rest vanilla."""
    prune_model, prune_feeds, prune_refs = workload["prune"]

    # vanilla references for the un-sampled 2-in-3
    session = prune_model.session()
    vanilla_refs = [session.run(prune_model.logits, f) for f in prune_feeds]
    session.close()
    # guard against a vacuous test: the tool must actually change outputs
    # (keep_ratio 0.5 on relu outputs is a silent no-op — about half the
    # activations are already zero, so the top-half threshold is 0)
    assert not np.array_equal(prune_refs[0], vanilla_refs[0])

    rt = serve.ServeRuntime("rate3", workers=2, batch_size=4,
                            deadline_ms=2.0)
    tenant = rt.register(
        "prune", prune_model.graph, prune_model.logits,
        tools=(ActivationPruningTool(keep_ratio=0.25),), sample_rate=3)
    with rt:
        futures = [rt.submit(tenant, f) for f in prune_feeds]
        outs = [f.result(timeout=60.0) for f in futures]

    for k, out in enumerate(outs):
        ref = prune_refs[k] if k % 3 == 0 else vanilla_refs[k]
        np.testing.assert_array_equal(
            out, ref, err_msg=f"request {k} ran on the wrong lane")
    snap = rt.snapshot()["tenants"]["prune"]
    assert snap["sampled"] == 4   # k = 0, 3, 6, 9
    assert snap["vanilla"] == 6
