"""Source lint: begin_span()/end_span() exception-safety convention."""

import textwrap

from repro.analysis import (SourceLintIssue, lint_span_safety,
                            lint_span_safety_source)
from repro.analysis.source_lint import RULE_SPAN_NOT_FINALLY


def _lint(source: str) -> list[SourceLintIssue]:
    return lint_span_safety_source(textwrap.dedent(source), path="mod.py")


class TestSpanSafetySource:
    def test_flags_happy_path_only_close(self):
        issues = _lint("""
            def f(self, mgr):
                span = mgr.begin_span()
                do_work()
                mgr.end_span(span)
        """)
        assert len(issues) == 1
        issue = issues[0]
        assert issue.rule == RULE_SPAN_NOT_FINALLY
        assert issue.function == "f"
        assert issue.path == "mod.py"
        assert "finally" in str(issue)

    def test_accepts_close_in_finally(self):
        assert not _lint("""
            def f(self, mgr):
                span = mgr.begin_span()
                try:
                    do_work()
                finally:
                    mgr.end_span(span)
        """)

    def test_accepts_eager_close_plus_finally_safety_net(self):
        # the driver idiom: close mid-body before kernel handoff, close
        # again (idempotently) in the finally
        assert not _lint("""
            def f(self, mgr):
                span = mgr.begin_span()
                try:
                    mgr.end_span(span)
                    result = kernel()
                finally:
                    mgr.end_span(span)
                return result
        """)

    def test_except_handler_close_is_not_enough(self):
        # except-only closes miss the non-matching-exception path
        issues = _lint("""
            def f(self, mgr):
                span = mgr.begin_span()
                try:
                    do_work()
                except ValueError:
                    mgr.end_span(span)
        """)
        assert [i.function for i in issues] == ["f"]

    def test_nested_function_spans_are_attributed_separately(self):
        issues = _lint("""
            def outer(mgr):
                def inner():
                    span = mgr.begin_span()
                    mgr.end_span(span)
                span = mgr.begin_span()
                try:
                    inner()
                finally:
                    mgr.end_span(span)
        """)
        assert [i.function for i in issues] == ["inner"]

    def test_function_without_spans_is_ignored(self):
        assert not _lint("""
            def f():
                return 1
        """)


def test_backend_drivers_are_span_safe():
    """The shipped drivers must satisfy their own convention (also enforced
    by ``python -m repro.analysis`` in CI)."""
    assert lint_span_safety() == []
