"""Transformer-specific instrumentation on the graph backend.

The Tbl. 4 attention-pruning project targets BERT-family models; this module
verifies the same AttentionPruningTool instruments the *graph-mode* BERT —
softmax ops inside attention are reached through graph rewriting, and
training still converges under pruning.
"""

import numpy as np
import pytest

import repro.amanda as amanda
import repro.models.graph as GM
from repro.amanda.tools import (AttentionPruningTool, FlopsProfilingTool,
                                GraphTracingTool)


@pytest.fixture
def bert(rng):
    return GM.build_bert(layers=2, learning_rate=0.1)


def test_attention_pruning_reaches_graph_softmax(rng, bert):
    tokens = rng.integers(0, 32, (2, 16))
    sess = bert.session()
    vanilla = sess.run(bert.logits, {bert.inputs: tokens})
    tool = AttentionPruningTool(threshold_ratio=0.3)
    with amanda.apply(tool):
        pruned = sess.run(bert.logits, {bert.inputs: tokens})
    assert tool.pruned_fraction, "no softmax was instrumented"
    assert not np.allclose(pruned, vanilla)
    restored = sess.run(bert.logits, {bert.inputs: tokens})
    np.testing.assert_allclose(restored, vanilla)


def test_training_under_attention_pruning_converges(rng, bert):
    tokens = rng.integers(2, 32, (8, 16))
    positions = rng.integers(0, 16, 8)
    tokens[np.arange(8), positions] = 1
    labels = np.zeros((8, 16), dtype=int)
    labels[np.arange(8), positions] = 1
    sess = bert.session()
    feed = {bert.inputs: tokens, bert.labels: labels}
    tool = AttentionPruningTool(threshold_ratio=0.1)
    with amanda.apply(tool):
        first = sess.run(bert.loss, feed)
        for _ in range(10):
            sess.run([bert.loss, bert.train_op], feed)
        last = sess.run(bert.loss, feed)
    assert last < first


def test_tracing_sees_attention_ops(rng, bert):
    tracer = GraphTracingTool()
    with amanda.apply(tracer):
        bert.session().run(bert.logits,
                           {bert.inputs: rng.integers(0, 32, (1, 16))})
    types = list(tracer.op_types().values())
    # raw graph-mode op types (the standalone tracer records them unmapped):
    # the functional attention math is all visible
    assert types.count("Softmax") == 2   # one per layer
    assert types.count("MatMul") >= 10   # qkv/out projections + attention
    assert "GatherV2" in types           # embeddings
    assert types.count("Transpose") >= 8  # head split/merge


def test_flops_dominated_by_matmul(rng, bert):
    tool = FlopsProfilingTool()
    with amanda.apply(tool):
        bert.session().run(bert.logits,
                           {bert.inputs: rng.integers(0, 32, (2, 16))})
    by_type = tool.by_op_type()
    assert by_type.get("matmul", 0) == max(by_type.values())
