"""Memory-budgeted execution: static rematerialization schedules.

The planner (``repro.analysis.remat``) turns a compiled plan plus per-op
byte costs into a keep-vs-recompute schedule whenever the liveness bound
exceeds ``amanda.config.memory_budget``; the slot-table executor then runs
recomputes as extra slot entries.  These tests cover the planner in
isolation (chain/ladder graphs with hand-computable byte counts) and the
full lowering: bit-identical outputs at workers {1, 4}, instrumented and
quarantined runs, training steps with in-place optimizer updates, seeded
dropout recompute determinism, and the arena-tracked peak staying within
the budget on InceptionV3 training.
"""

import contextlib

import numpy as np
import pytest

import repro.amanda as amanda
import repro.eager.alloc as alloc
import repro.graph as G
import repro.models.graph.builders as GM
from repro.analysis.remat import plan_remat_for_graph
from repro.graph import builder as gb
from repro.tools.faulty import FaultyTool

FEEDS = {"x": (32, 64)}
ACT = 32 * 64 * 8  # bytes of one (32, 64) float64 activation


def ladder_graph(depth=12, seed=None):
    """Activations read both early and late: eviction genuinely helps.

    Every rung feeds the next relu *and* a final sum, so without remat all
    ``depth`` activations are live at the reduction.  With ``seed`` the
    first rung is a seeded dropout (an eviction candidate whose recompute
    must replay the stashed seed).
    """
    with G.default_graph() as g:
        x = gb.placeholder(name="x")
        h = gb.dropout(x, rate=0.5, seed=seed, name="Drop") \
            if seed is not None else x
        acts = [h] if seed is not None else []
        for _ in range(depth):
            h = gb.relu(h)
            acts.append(h)
        total = acts[0]
        for a in acts[1:]:
            total = total + a
        out = gb.reduce_mean(total)
    return g, x, out


class TestPlanner:
    def test_generous_budget_keeps_base_plan(self):
        g, x, out = ladder_graph()
        sched = plan_remat_for_graph(g, [out], budget=1 << 60,
                                     feed_shapes=FEEDS)
        assert sched.feasible
        assert sched.num_recomputes == 0
        assert sched.evicted == ()
        assert sched.serial_peak == sched.baseline_serial_peak
        # with nothing evicted the instance list is exactly the base plan
        assert sched.instances == sorted(sched.instances)

    def test_ladder_eviction_fits_budget(self):
        g, x, out = ladder_graph()
        base = plan_remat_for_graph(g, [out], budget=1 << 60,
                                    feed_shapes=FEEDS)
        assert base.baseline_serial_peak == 13 * ACT  # 12 rungs + accumulator
        budget = 8 * ACT
        sched = plan_remat_for_graph(g, [out], budget=budget,
                                     feed_shapes=FEEDS)
        assert sched.num_recomputes > 0
        assert sched.serial_peak <= budget
        assert sched.wavefront_peak <= budget
        assert sched.feasible
        assert sched.recompute_flops > 0

    def test_chain_fallback_never_worse_than_baseline(self):
        """A pure chain's peak (producer + consumer) is irreducible; below
        that floor the planner must return the plain last-use-release plan
        rather than an eviction schedule that recomputes for nothing."""
        with G.default_graph() as g:
            x = gb.placeholder(name="x")
            h = x
            for _ in range(8):
                h = gb.relu(h)
            out = gb.reduce_mean(h)
        sched = plan_remat_for_graph(g, [out], budget=ACT,
                                     feed_shapes=FEEDS)
        assert not sched.feasible
        assert sched.num_recomputes == 0
        assert sched.serial_peak == sched.baseline_serial_peak == 2 * ACT

    def test_unseeded_dropout_is_pinned(self):
        """RNG consumers must execute exactly once; only the seeded variant
        may be evicted (its recompute replays the stashed seed)."""
        with G.default_graph() as g:
            x = gb.placeholder(name="x")
            du = gb.dropout(x, rate=0.5, seed=None, name="DropU")
            ds = gb.dropout(x, rate=0.5, seed=7, name="DropS")
            h = du + ds
            for _ in range(6):
                h = gb.relu(h)
            out = gb.reduce_mean(h + du + ds)
        sched = plan_remat_for_graph(g, [out], budget=2 * ACT,
                                     feed_shapes=FEEDS)
        assert "DropU" not in sched.evicted

    def test_schedule_str_reports_verdict(self):
        g, x, out = ladder_graph()
        sched = plan_remat_for_graph(g, [out], budget=8 * ACT,
                                     feed_shapes=FEEDS)
        text = str(sched)
        assert "recomputes" in text and "fits" in text


class TestLadderExecution:
    @pytest.mark.parametrize("workers", [1, 4])
    def test_bit_identical_under_budget(self, rng, workers):
        g, x, out = ladder_graph()
        xv = rng.standard_normal((32, 64))
        with G.Session(g) as sess:
            vanilla = sess.run(out, {x: xv})
            with amanda.num_workers(workers), amanda.memory_budget(8 * ACT):
                budgeted = sess.run(out, {x: xv})
                compiled = sess.last_compiled
        assert compiled.remat is not None
        assert compiled.remat_error is None
        assert compiled.remat.num_recomputes > 0
        np.testing.assert_array_equal(vanilla, budgeted)

    @pytest.mark.parametrize("workers", [1, 4])
    def test_seeded_dropout_recompute_determinism(self, rng, workers):
        """Recomputing a seeded dropout replays the stashed seed: repeated
        budgeted runs and the unbudgeted run all agree bit-for-bit."""
        g, x, out = ladder_graph(depth=10, seed=7)
        xv = rng.standard_normal((32, 64))
        with G.Session(g) as sess:
            vanilla = sess.run(out, {x: xv})
            with amanda.num_workers(workers), amanda.memory_budget(8 * ACT):
                first = sess.run(out, {x: xv})
                second = sess.run(out, {x: xv})
                compiled = sess.last_compiled
        assert compiled.remat is not None and compiled.remat_error is None
        np.testing.assert_array_equal(vanilla, first)
        np.testing.assert_array_equal(first, second)

    def test_instrumented_run_stays_bit_identical(self, rng):
        """PyCall instrumentation points are pinned (never recomputed), so a
        tool observes each op exactly once and outputs stay vanilla."""
        from repro.tools.memory import MemoryProfilingTool

        g, x, out = ladder_graph()
        xv = rng.standard_normal((32, 64))
        with G.Session(g) as sess:
            vanilla = sess.run(out, {x: xv})
            tool = MemoryProfilingTool()
            with amanda.memory_budget(8 * ACT), amanda.apply(tool):
                instrumented = sess.run(out, {x: xv})
        np.testing.assert_array_equal(vanilla, instrumented)
        assert len(tool.order) > 0  # the tool really saw the ops

    def test_quarantined_run_stays_bit_identical(self, rng):
        g, x, out = ladder_graph()
        xv = rng.standard_normal((32, 64))
        with G.Session(g) as sess:
            vanilla = sess.run(out, {x: xv})
            tool = FaultyTool(i_point="after_forward_op",
                              mode="instrumentation", op_type="Relu")
            with amanda.memory_budget(8 * ACT), \
                    amanda.error_policy("quarantine"), \
                    amanda.apply(tool) as mgr:
                out1 = sess.run(out, {x: xv})
                assert tool.name in mgr.quarantined
                out2 = sess.run(out, {x: xv})
        np.testing.assert_array_equal(out1, vanilla)
        np.testing.assert_array_equal(out2, vanilla)


class TestInceptionTraining:
    BUDGET = 3_000_000

    def _train(self, xv, yv, budget=None, workers=1, steps=2):
        gm = GM.build_inception_v3(learning_rate=0.1)
        scope = amanda.memory_budget(budget) if budget \
            else contextlib.nullcontext()
        losses = []
        with gm.session() as sess, amanda.num_workers(workers), scope:
            alloc.tracker.reset()
            for _ in range(steps):
                loss, _ = sess.run([gm.loss, gm.train_op],
                                   {gm.inputs: xv, gm.labels: yv})
                losses.append(np.asarray(loss))
            measured = sum(alloc.tracker.peak.values())
            compiled = sess.last_compiled
        return losses, measured, compiled

    @pytest.fixture(scope="class")
    def batch(self):
        rng = np.random.default_rng(7)
        return (rng.standard_normal((4, 32, 32, 3)),
                rng.integers(0, 4, 4))

    @pytest.fixture(scope="class")
    def vanilla(self, batch):
        return self._train(*batch)

    @pytest.mark.parametrize("workers", [1, 4])
    def test_training_bit_identical_and_within_budget(self, batch, vanilla,
                                                      workers):
        """Two budgeted training steps (in-place AssignSub weight updates)
        match the unbudgeted run bit-for-bit, and the arena-tracked peak
        respects the budget the planner promised."""
        van_losses, van_measured, _ = vanilla
        losses, measured, compiled = self._train(
            *batch, budget=self.BUDGET, workers=workers)
        for expected, got in zip(van_losses, losses):
            np.testing.assert_array_equal(expected, got)
        assert compiled.remat is not None
        assert compiled.remat_error is None
        assert compiled.remat.feasible
        assert compiled.remat.num_recomputes > 0
        assert measured <= self.BUDGET
        # the budget bought a real reduction, not a rounding error
        assert measured < 0.5 * van_measured


class TestPlanCache:
    def test_budget_variants_get_distinct_cache_keys(self, rng):
        g, x, out = ladder_graph()
        xv = rng.standard_normal((32, 64))
        with G.Session(g) as sess:
            sess.run(out, {x: xv})
            assert len(sess._plan_cache) == 1
            with amanda.memory_budget(8 * ACT):
                sess.run(out, {x: xv})
            assert len(sess._plan_cache) == 2
            with amanda.memory_budget(8 * ACT):  # same budget: cache hit
                sess.run(out, {x: xv})
            assert len(sess._plan_cache) == 2
            with amanda.memory_budget(6 * ACT):  # new budget: new plan
                sess.run(out, {x: xv})
            assert len(sess._plan_cache) == 3

    def test_tenant_quota_protects_hot_plans(self, rng):
        """One tenant churning budget variants cannot evict another
        tenant's plan: with two charged tenants each owns half the bound."""
        g, x, out = ladder_graph()
        xv = rng.standard_normal((32, 64))
        with G.Session(g) as sess, amanda.plan_cache_size(4):
            sess.cache_tenant = "steady"
            sess.run(out, {x: xv})
            steady_key = next(iter(sess._plan_cache))
            sess.cache_tenant = "churner"
            for budget in (4, 5, 6, 7, 8, 9):
                with amanda.memory_budget(budget * ACT):
                    sess.run(out, {x: xv})
            assert len(sess._plan_cache) == 4
            assert steady_key in sess._plan_cache
            owners = [sess._plan_owner[k] for k in sess._plan_cache]
            assert owners.count("churner") == 3

    def test_untenanted_churn_falls_back_to_global_lru(self, rng):
        g, x, out = ladder_graph()
        xv = rng.standard_normal((32, 64))
        with G.Session(g) as sess, amanda.plan_cache_size(4):
            sess.run(out, {x: xv})
            first_key = next(iter(sess._plan_cache))
            for budget in (4, 5, 6, 7, 8):
                with amanda.memory_budget(budget * ACT):
                    sess.run(out, {x: xv})
            assert len(sess._plan_cache) == 4
            assert first_key not in sess._plan_cache  # plain LRU evicted it
