"""ONNX-style backend: execution, the third driver, and instrumented export."""

import numpy as np
import pytest

import repro.amanda as amanda
import repro.eager as E
import repro.models.eager as M
from repro.amanda.tools import (FlopsProfilingTool, GraphTracingTool,
                                MagnitudePruningTool, StaticPTQTool)
from repro.onnx import InferenceSession, OnnxBuilder
from repro.tools.export import export_onnx


@pytest.fixture
def tiny_model(rng):
    builder = OnnxBuilder()
    x = builder.input("input")
    h = builder.relu(builder.conv(x, rng.standard_normal((4, 3, 3, 3)),
                                  np.zeros(4), pads=(1, 1)))
    h = builder.max_pool(h)
    h = builder.flatten(h)
    logits = builder.gemm(h, rng.standard_normal((4, 4 * 8 * 8)), np.zeros(4))
    builder.output(logits)
    return builder.model


class TestInferenceSession:
    def test_runs_and_shapes(self, rng, tiny_model):
        session = InferenceSession(tiny_model)
        out = session.run(None, {"input": rng.standard_normal((2, 3, 16, 16))})
        assert out[0].shape == (2, 4)

    def test_missing_feed_raises(self, tiny_model):
        with pytest.raises(KeyError, match="unresolved"):
            InferenceSession(tiny_model).run(None, {})

    def test_unknown_op_raises(self):
        builder = OnnxBuilder()
        x = builder.input()
        builder.output(builder.node("Mystery", [x])[0])
        with pytest.raises(NotImplementedError):
            InferenceSession(builder.model).run(None, {"input": np.zeros(2)})

    def test_deterministic(self, rng, tiny_model):
        session = InferenceSession(tiny_model)
        x = rng.standard_normal((1, 3, 16, 16))
        a = session.run(None, {"input": x})[0]
        b = session.run(None, {"input": x})[0]
        np.testing.assert_array_equal(a, b)


class TestOnnxDriver:
    def test_pruning_tool_unchanged(self, rng, tiny_model):
        session = InferenceSession(tiny_model)
        x = rng.standard_normal((2, 3, 16, 16))
        vanilla = session.run(None, {"input": x})[0]
        tool = MagnitudePruningTool(sparsity=0.5)
        with amanda.apply(tool):
            pruned = session.run(None, {"input": x})[0]
        restored = session.run(None, {"input": x})[0]
        assert len(tool.masks) == 2  # Conv weight + Gemm weight
        assert not np.allclose(pruned, vanilla)
        np.testing.assert_array_equal(restored, vanilla)

    def test_quantization_tool_unchanged(self, rng, tiny_model):
        session = InferenceSession(tiny_model)
        tool = StaticPTQTool(bits=4)
        with amanda.apply(tool):
            session.run(None, {"input": rng.standard_normal((1, 3, 16, 16))})
        assert len(tool.weight_scales) == 2

    def test_flops_profiler_counts(self, rng, tiny_model):
        tool = FlopsProfilingTool()
        with amanda.apply(tool):
            InferenceSession(tiny_model).run(
                None, {"input": rng.standard_normal((1, 3, 16, 16))})
        by_type = tool.by_op_type()
        assert by_type.get("conv2d", 0) > 0
        assert by_type.get("linear", 0) > 0

    def test_tracing_tool_sees_all_nodes(self, rng, tiny_model):
        tool = GraphTracingTool()
        with amanda.apply(tool):
            InferenceSession(tiny_model).run(
                None, {"input": rng.standard_normal((1, 3, 16, 16))})
        assert len(tool.forward_nodes()) == len(tiny_model)

    def test_analysis_cached_across_runs(self, rng, tiny_model):
        calls = []
        tool = amanda.Tool("t")
        tool.add_inst_for_op(lambda ctx: calls.append(ctx["_raw_type"]))
        session = InferenceSession(tiny_model)
        with amanda.apply(tool):
            for _ in range(3):
                session.run(None,
                            {"input": rng.standard_normal((1, 3, 16, 16))})
        assert len(calls) == len(tiny_model)  # analyzed once per node


class TestExport:
    @pytest.mark.parametrize("factory,shape", [
        (lambda: M.MLP(in_features=8, hidden=16), (3, 8)),
        (M.LeNet, (2, 3, 16, 16)),
        (M.resnet18, (2, 3, 16, 16)),
        (M.mobilenet_v2, (1, 3, 16, 16)),
        (M.inception_v3, (1, 3, 16, 16)),
    ])
    def test_export_bit_exact(self, rng, factory, shape):
        model = factory()
        x = E.tensor(rng.standard_normal(shape))
        onnx_model = export_onnx(model, x)
        want = model(x).data
        got = InferenceSession(onnx_model).run(None, {"input": x.data})[0]
        np.testing.assert_array_equal(got, want)

    def test_conv_bias_folded(self, rng):
        model = M.LeNet()
        onnx_model = export_onnx(model,
                                 E.tensor(rng.standard_normal((1, 3, 16, 16))))
        conv_nodes = [n for n in onnx_model.nodes if n.op_type == "Conv"]
        assert all(len(n.inputs) == 3 for n in conv_nodes)  # bias folded in
        assert not any(n.op_type == "Add" for n in onnx_model.nodes)

    def test_exported_model_instrumentable(self, rng):
        """Full circle: export an eager model, then instrument the ONNX copy."""
        model = M.LeNet()
        x = E.tensor(rng.standard_normal((1, 3, 16, 16)))
        onnx_model = export_onnx(model, x)
        tool = MagnitudePruningTool(sparsity=0.5)
        session = InferenceSession(onnx_model)
        with amanda.apply(tool):
            session.run(None, {"input": x.data})
        assert len(tool.masks) == 4  # 2 convs + 2 gemms

    def test_dropout_dropped_in_eval(self, rng):
        model = E.Sequential(E.Linear(4, 4), E.Dropout(0.5), E.ReLU())
        onnx_model = export_onnx(model, E.tensor(rng.standard_normal((2, 4))))
        assert [n.op_type for n in onnx_model.nodes] == ["Gemm", "Relu"]

    def test_training_batch_norm_rejected(self, rng):
        model = M.resnet18()
        x = E.tensor(rng.standard_normal((2, 3, 16, 16)))
        from repro.tools.export import OnnxExportTool
        tool = OnnxExportTool()
        model.train()
        with amanda.apply(tool):
            out = model(x)
        with pytest.raises(NotImplementedError, match="eval-mode"):
            tool.build(x, out)


class TestSerialization:
    def test_roundtrip_bit_exact(self, tmp_path, rng):
        import repro.eager as E2
        from repro.onnx import load_onnx, save_onnx
        model = M.resnet18()
        x = E2.tensor(rng.standard_normal((1, 3, 16, 16)))
        onnx_model = export_onnx(model, x)
        path = str(tmp_path / "resnet18")
        save_onnx(onnx_model, path)
        restored = load_onnx(path)
        want = InferenceSession(onnx_model).run(None, {"input": x.data})[0]
        got = InferenceSession(restored).run(None, {"input": x.data})[0]
        np.testing.assert_array_equal(got, want)

    def test_topology_preserved(self, tmp_path, rng, tiny_model):
        from repro.onnx import load_onnx, save_onnx
        path = str(tmp_path / "tiny")
        save_onnx(tiny_model, path)
        restored = load_onnx(path)
        assert [n.op_type for n in restored.nodes] == \
            [n.op_type for n in tiny_model.nodes]
        assert restored.inputs == tiny_model.inputs
        assert restored.outputs == tiny_model.outputs

    def test_tuple_attrs_survive(self, tmp_path, rng, tiny_model):
        from repro.onnx import load_onnx, save_onnx
        path = str(tmp_path / "tiny")
        save_onnx(tiny_model, path)
        restored = load_onnx(path)
        conv = next(n for n in restored.nodes if n.op_type == "Conv")
        assert conv.attrs["strides"] == (1, 1)
        assert isinstance(conv.attrs["strides"], tuple)
