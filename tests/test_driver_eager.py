"""Eager driver: the six instrumentation actions, caching, AD isolation."""

import numpy as np
import pytest

import repro.amanda as amanda
import repro.eager as E
from repro.amanda import Tool, manager
from repro.eager import F


def run_linear(rng, tool, iterations=1, requires_grad=False):
    lin = E.Linear(3, 2, rng=rng)
    x = E.tensor(rng.standard_normal((4, 3)), requires_grad=requires_grad)
    outputs = []
    with amanda.apply(tool):
        for _ in range(iterations):
            outputs.append(lin(x))
    return lin, x, outputs


class TestForwardActions:
    def test_insert_before_op_modifies_input(self, rng):
        tool = Tool("t")

        def analysis(context):
            if context["type"] == "linear":
                context.insert_before_op(lambda x: x * 0.0, inputs=[0])

        tool.add_inst_for_op(analysis)
        lin, x, outputs = run_linear(rng, tool)
        np.testing.assert_allclose(outputs[0].data,
                                   np.broadcast_to(lin.bias.data, (4, 2)))

    def test_insert_after_op_modifies_output(self, rng):
        tool = Tool("t")

        def analysis(context):
            if context["type"] == "linear":
                context.insert_after_op(lambda y: y + 100.0, outputs=[0])

        tool.add_inst_for_op(analysis)
        lin, x, outputs = run_linear(rng, tool)
        reference = x.data @ lin.weight.data.T + lin.bias.data
        np.testing.assert_allclose(outputs[0].data, reference + 100.0)

    def test_observation_routine_returning_none(self, rng):
        tool = Tool("t")
        seen = []

        def analysis(context):
            if context["type"] == "linear":
                context.insert_before_op(
                    lambda x: seen.append(x.shape), inputs=[0])

        tool.add_inst_for_op(analysis)
        lin, x, outputs = run_linear(rng, tool, iterations=2)
        assert seen == [(4, 3), (4, 3)]
        reference = x.data @ lin.weight.data.T + lin.bias.data
        np.testing.assert_allclose(outputs[0].data, reference)

    def test_replace_op(self, rng):
        tool = Tool("t")

        def analysis(context):
            if context["type"] == "relu":
                context.replace_op(lambda x: np.abs(x))  # relu -> abs

        tool.add_inst_for_op(analysis)
        x = E.tensor(np.array([-2.0, 3.0]))
        with amanda.apply(tool):
            out = F.relu(x)
        np.testing.assert_array_equal(out.data, [2.0, 3.0])

    def test_replace_with_identity_removes_op(self, rng):
        tool = Tool("t")

        def analysis(context):
            if context["type"] == "relu":
                context.replace_op(lambda x: x)

        tool.add_inst_for_op(analysis)
        x = E.tensor(np.array([-2.0, 3.0]))
        with amanda.apply(tool):
            out = F.relu(x)
        np.testing.assert_array_equal(out.data, x.data)

    def test_kwargs_injection(self, rng):
        tool = Tool("t")

        def analysis(context):
            if context["type"] == "linear":
                context.insert_after_op(lambda y, offset: y + offset,
                                        outputs=[0], offset=7.0)

        tool.add_inst_for_op(analysis)
        lin, x, outputs = run_linear(rng, tool)
        reference = x.data @ lin.weight.data.T + lin.bias.data
        np.testing.assert_allclose(outputs[0].data, reference + 7.0)

    def test_after_forward_analysis_sees_outputs(self, rng):
        tool = Tool("t")
        shapes = []

        def analysis(context):
            if context["type"] == "linear":
                shapes.append(tuple(t.shape for t in context.get_outputs()))

        tool.add_inst_for_op(analysis, require_outputs=True)
        run_linear(rng, tool)
        assert shapes == [((4, 2),)]


class TestBackwardActions:
    def test_before_backward_modifies_incoming_grad(self, rng):
        tool = Tool("t")

        def backward_analysis(context):
            if context.get("backward_type") == "linear_backward_input":
                context.insert_before_backward_op(lambda g: g * 0.0)

        tool.add_inst_for_op(backward_analysis, backward=True)
        lin, x, outputs = run_linear(rng, tool, requires_grad=True)
        with amanda.apply(tool):
            out = lin(x)
            out.sum().backward()
        np.testing.assert_allclose(x.grad, 0.0)
        # weight gradient untouched (separate backward op)
        assert np.abs(lin.weight.grad).sum() > 0

    def test_after_backward_modifies_produced_grad(self, rng):
        tool = Tool("t")

        def backward_analysis(context):
            if context.get("backward_type") == "linear_backward_weight":
                context.insert_after_backward_op(lambda g: g * 0.0,
                                                 grad_inputs=[0])

        tool.add_inst_for_op(backward_analysis, backward=True)
        lin = E.Linear(3, 2, rng=rng)
        x = E.tensor(rng.standard_normal((4, 3)), requires_grad=True)
        with amanda.apply(tool):
            lin(x).sum().backward()
        np.testing.assert_allclose(lin.weight.grad, 0.0)
        assert np.abs(x.grad).sum() > 0

    def test_backward_action_registered_from_forward_context(self, rng):
        tool = Tool("t")

        def forward_analysis(context):
            if context["type"] == "linear":
                context.insert_after_backward_op(lambda g: g * 0.0)

        tool.add_inst_for_op(forward_analysis)
        lin = E.Linear(3, 2, rng=rng)
        x = E.tensor(rng.standard_normal((4, 3)), requires_grad=True)
        with amanda.apply(tool):
            lin(x).sum().backward()
        # applies to every backward op of the linear: all grads zeroed
        np.testing.assert_allclose(lin.weight.grad, 0.0)
        np.testing.assert_allclose(x.grad, 0.0)

    def test_forward_context_state_visible_in_backward(self, rng):
        tool = Tool("t")
        seen = []

        def forward_analysis(context):
            if context["type"] == "linear":
                context["token"] = "hello"

        def backward_analysis(context):
            if context.get("backward_type", "").startswith("linear"):
                seen.append(context.get("token"))

        tool.add_inst_for_op(forward_analysis)
        tool.add_inst_for_op(backward_analysis, backward=True)
        lin = E.Linear(3, 2, rng=rng)
        x = E.tensor(rng.standard_normal((4, 3)), requires_grad=True)
        with amanda.apply(tool):
            lin(x).sum().backward()
        assert seen and all(token == "hello" for token in seen)

    def test_accumulate_grad_is_instrumentable(self, rng):
        tool = Tool("t")
        accumulations = []

        def analysis(context):
            if context["type"] == "accumulate_grad":
                context.insert_before_op(
                    lambda param, grad: accumulations.append(grad.shape),
                    inputs=None)

        tool.add_inst_for_op(analysis)
        lin = E.Linear(3, 2, rng=rng)
        x = E.tensor(rng.standard_normal((4, 3)))
        with amanda.apply(tool):
            lin(x).sum().backward()
        # weight and bias leaves each get an accumulate_grad op
        assert len(accumulations) == 2

    def test_replace_backward_op(self, rng):
        tool = Tool("t")

        def backward_analysis(context):
            if context.get("backward_type") == "relu_backward":
                context.replace_backward_op(lambda g: {0: g * 2.0})

        tool.add_inst_for_op(backward_analysis, backward=True)
        x = E.tensor(np.array([1.0, 2.0]), requires_grad=True)
        with amanda.apply(tool):
            F.relu(x).sum().backward()
        np.testing.assert_allclose(x.grad, [2.0, 2.0])

    def test_ad_isolation_grads_flow_to_original_weight(self, rng):
        """Masking a weight input must not cut the weight's gradient path."""
        tool = Tool("t")

        def analysis(context):
            if context["type"] == "linear":
                context.insert_before_op(lambda w: w * 0.5, inputs=[1])

        tool.add_inst_for_op(analysis)
        lin = E.Linear(3, 2, rng=rng)
        x = E.tensor(rng.standard_normal((4, 3)))
        with amanda.apply(tool):
            lin(x).sum().backward()
        assert lin.weight.grad is not None
        assert np.abs(lin.weight.grad).sum() > 0


class TestCaching:
    def test_analysis_runs_once_per_op_with_cache(self, rng):
        tool = Tool("t")
        calls = []
        tool.add_inst_for_op(lambda ctx: calls.append(ctx["type"]))
        lin = E.Linear(3, 2, rng=rng)
        x = E.tensor(rng.standard_normal((4, 3)))
        with amanda.apply(tool):
            for _ in range(5):
                lin(x)
        assert calls.count("linear") == 1

    def test_analysis_reruns_without_cache(self, rng):
        tool = Tool("t")
        calls = []
        tool.add_inst_for_op(lambda ctx: calls.append(ctx["type"]))
        lin = E.Linear(3, 2, rng=rng)
        x = E.tensor(rng.standard_normal((4, 3)))
        with amanda.apply(tool), amanda.cache_disabled():
            for _ in range(5):
                lin(x)
        assert calls.count("linear") == 5

    def test_cached_instrumentation_still_applied(self, rng):
        tool = Tool("t")
        applied = []

        def analysis(context):
            if context["type"] == "linear":
                context.insert_after_op(
                    lambda y: applied.append(1) or y + 1.0, outputs=[0])

        tool.add_inst_for_op(analysis)
        lin = E.Linear(3, 2, rng=rng)
        x = E.tensor(rng.standard_normal((4, 3)))
        with amanda.apply(tool):
            for _ in range(4):
                lin(x)
        assert len(applied) == 4  # instrumentation every run, analysis once

    def test_instrumentation_removed_after_apply_exits(self, rng):
        tool = Tool("t")

        def analysis(context):
            if context["type"] == "linear":
                context.insert_after_op(lambda y: y * 0.0, outputs=[0])

        tool.add_inst_for_op(analysis)
        lin = E.Linear(3, 2, rng=rng)
        x = E.tensor(rng.standard_normal((4, 3)))
        with amanda.apply(tool):
            inside = lin(x)
        outside = lin(x)
        np.testing.assert_allclose(inside.data, 0.0)
        assert np.abs(outside.data).sum() > 0

    def test_vanilla_fast_path_populated(self, rng):
        tool = Tool("t")
        tool.add_inst_for_op(lambda ctx: None)
        lin = E.Linear(3, 2, rng=rng)
        x = E.tensor(rng.standard_normal((4, 3)))
        with amanda.apply(tool):
            lin(x)
            # every op analyzed and cached empty
            assert all(record.empty
                       for record in manager.action_cache.values())
            assert len(manager.action_cache) > 0


class TestIterationBoundaries:
    def test_module_entry_resets_occurrences(self, rng):
        """Two successive model calls must see identical op ids."""
        tool = Tool("t")
        ids = []

        def analysis(context):
            if context["type"] == "linear":
                ids.append(context.get_op_id())

        tool.add_inst_for_op(analysis)
        model = E.Sequential(E.Linear(3, 3, rng=rng), E.ReLU(),
                             E.Linear(3, 2, rng=rng))
        x = E.tensor(rng.standard_normal((2, 3)))
        with amanda.apply(tool), amanda.cache_disabled():
            model(x)
            first = list(ids)
            ids.clear()
            model(x)
        assert ids == first

    def test_explicit_new_iteration(self, rng):
        tool = Tool("t")
        ids = []
        tool.add_inst_for_op(lambda ctx: ids.append(ctx.get_op_id()))
        x = E.tensor(rng.standard_normal(4))
        with amanda.apply(tool), amanda.cache_disabled():
            F.relu(x)
            amanda.new_iteration()
            F.relu(x)
        assert ids[0] == ids[1]
