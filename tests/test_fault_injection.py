"""Fault isolation: the recovery matrix across drivers, points and policies.

One small network — ``y = relu(x @ W)`` — runs on all three backends with a
:class:`~repro.tools.faulty.FaultyTool` injecting a failure at a chosen
instrumentation point, in analysis mode (trace path) or instrumentation mode
(replay path), under each error policy:

* ``"quarantine"`` — the failing tool is disabled and every output stays
  bit-identical to the vanilla run (FaultyTool is observation-only);
* ``"record"`` — the tool keeps running and keeps failing; outputs stay
  vanilla and ``manager.health()`` accumulates the provenance;
* ``"raise"`` — a provenance-carrying :class:`InstrumentationError`
  propagates after a clean unwind: spans closed (``framework + tool <=
  wall``), interceptor patches intact, op ids stable across a
  failed-then-retried iteration.
"""

import time

import numpy as np
import pytest

import repro.amanda as amanda
import repro.eager as E
import repro.eager.functional as F
import repro.graph as G
from repro.amanda import InstrumentationError, Tool, manager
from repro.graph import builder as gb
from repro.onnx import InferenceSession
from repro.onnx.model import OnnxBuilder
from repro.tools.faulty import FaultyTool, ToolFault

RNG = np.random.default_rng(11)
X = RNG.standard_normal((3, 6))
W = RNG.standard_normal((6, 4))

I_POINTS = ["before_forward_op", "after_forward_op",
            "before_backward_op", "after_backward_op"]
MODES = ["analysis", "instrumentation"]


def eager_step():
    """One forward+backward iteration; backward marks the iteration boundary
    so repeated steps replay the cached plans under stable op ids."""
    x = E.tensor(X.copy(), requires_grad=True)
    out = F.relu(F.matmul(x, E.tensor(W.copy())))
    out.sum().backward()
    return np.asarray(out.data), np.asarray(x.grad)


VANILLA_OUT, VANILLA_GRAD = eager_step()


class TestEagerFaultMatrix:
    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("i_point", I_POINTS)
    def test_quarantine_keeps_outputs_vanilla(self, i_point, mode):
        tool = FaultyTool(i_point=i_point, mode=mode, op_type="relu")
        with amanda.error_policy("quarantine"), amanda.apply(tool) as mgr:
            out1, grad1 = eager_step()   # trace path: the fault fires here
            assert tool.faults == 1
            assert tool.name in mgr.quarantined
            out2, grad2 = eager_step()   # tool disabled: vanilla execution
            assert tool.faults == 1
        for out, grad in ((out1, grad1), (out2, grad2)):
            np.testing.assert_array_equal(out, VANILLA_OUT)
            np.testing.assert_array_equal(grad, VANILLA_GRAD)
        health = mgr.health()
        assert health["errors"] == 1
        assert health["by_tool"] == {tool.name: 1}
        assert health["by_i_point"] == {i_point: 1}
        (recent,) = health["recent"]
        assert recent["tool"] == tool.name
        assert recent["i_point"] == i_point
        assert recent["backend"] == "eager"
        # backward instrumentation routines report the backward def's name
        assert recent["op_type"] in ("relu", "relu_backward")
        assert manager.quarantined == set()  # scope exit lifts quarantine

    @pytest.mark.parametrize("i_point", I_POINTS)
    def test_record_policy_keeps_failing_and_counting(self, i_point):
        tool = FaultyTool(i_point=i_point, mode="instrumentation",
                          op_type="relu", always=True)
        with amanda.error_policy("record"), amanda.apply(tool) as mgr:
            for _ in range(3):
                out, grad = eager_step()
                np.testing.assert_array_equal(out, VANILLA_OUT)
                np.testing.assert_array_equal(grad, VANILLA_GRAD)
            assert not mgr.quarantined  # record never disables the tool
            # backend drivers (and their recovery counters) live only while
            # the scope is active, so read health before it exits
            health = mgr.health()
            assert health["backends"]["eager"]["recovered"] == 3
        assert tool.faults == 3
        assert health["errors"] == 3

    @pytest.mark.parametrize("occurrence", [1, 2], ids=["trace", "replay"])
    def test_fault_recovered_on_trace_and_replay_paths(self, occurrence):
        """occurrence=1 fails during the tracing execution, occurrence=2
        during the cached-plan replay of the next iteration."""
        tool = FaultyTool(i_point="before_forward_op", mode="instrumentation",
                          op_type="relu", occurrence=occurrence)
        with amanda.error_policy("quarantine"), amanda.apply(tool):
            out1, grad1 = eager_step()
            out2, grad2 = eager_step()
        assert tool.faults == 1
        assert tool.triggers == occurrence
        for out, grad in ((out1, grad1), (out2, grad2)):
            np.testing.assert_array_equal(out, VANILLA_OUT)
            np.testing.assert_array_equal(grad, VANILLA_GRAD)

    def test_clear_quarantine_reenables_recorded_actions(self):
        # occurrence=2: the trace execution passes (so the action is cached),
        # the first replay faults and quarantines the tool
        tool = FaultyTool(i_point="before_forward_op", mode="instrumentation",
                          op_type="relu", occurrence=2)
        with amanda.error_policy("quarantine"), amanda.apply(tool) as mgr:
            eager_step()
            eager_step()
            assert tool.name in mgr.quarantined and tool.triggers == 2
            eager_step()                      # quarantined: routine excluded
            assert tool.triggers == 2
            mgr.clear_quarantine()
            out, grad = eager_step()          # plans recompile with the tool
            assert tool.triggers == 3 and tool.faults == 1
        np.testing.assert_array_equal(out, VANILLA_OUT)
        np.testing.assert_array_equal(grad, VANILLA_GRAD)


class TestEagerRaisePolicy:
    @pytest.mark.parametrize("mode", MODES)
    def test_propagates_with_provenance_then_unwinds(self, mode):
        tool = FaultyTool(i_point="before_forward_op", mode=mode,
                          op_type="relu")
        with amanda.apply(tool):  # default policy: raise
            with pytest.raises(InstrumentationError) as excinfo:
                eager_step()
            # patches and manager state survived: instrumented execution
            # works again within the same scope
            out, grad = eager_step()
        error = excinfo.value
        assert isinstance(error.original, ToolFault)
        assert error.tool == tool.name
        assert error.provenance.backend == "eager"
        assert error.provenance.op_type == "relu"
        assert error.provenance.i_point == "before_forward_op"
        assert error.phase == ("analysis" if mode == "analysis"
                               else "instrumentation")
        np.testing.assert_array_equal(out, VANILLA_OUT)
        np.testing.assert_array_equal(grad, VANILLA_GRAD)

    def test_op_ids_stable_across_failed_then_retried_iteration(self):
        """An aborted trace retracts the op-id assignment, so retrying the
        iteration derives the same id instead of drifting by one."""
        seen_ids = []
        recorder = Tool("recorder")
        recorder.add_inst_for_op(lambda ctx: seen_ids.append(ctx.get_op_id()))
        tool = FaultyTool(i_point="before_forward_op", mode="analysis",
                          op_type="relu")
        with amanda.apply(recorder, tool) as mgr:
            x = E.tensor(X.copy())
            with pytest.raises(InstrumentationError):
                F.relu(x)                       # first op of the iteration
            assert seen_ids[0] not in mgr.action_cache  # no half-stored trace
            out = F.relu(x)                     # retry, same iteration
            assert seen_ids == [seen_ids[0]] * 2  # identical id both times
            assert seen_ids[0] in mgr.action_cache
        np.testing.assert_array_equal(out.data, np.maximum(X, 0.0))

    def test_span_accounting_survives_failure(self):
        """satellite regression: framework + tool <= wall even after the
        error path, i.e. no span is left open and double-counted."""
        tool = FaultyTool(i_point="after_forward_op", mode="instrumentation",
                          op_type="relu", always=True)
        t0 = time.perf_counter()
        with amanda.apply(tool):
            with pytest.raises(InstrumentationError):
                eager_step()
            with amanda.error_policy("record"):
                eager_step()    # recovered mid-run: spans closed in finally
        wall = time.perf_counter() - t0
        timers = manager.timers
        assert timers["framework"] > 0.0
        assert timers["tool"] > 0.0
        assert timers["framework"] + timers["tool"] <= wall + 1e-9


class TestEagerAttachDetachRoundTrip:
    def test_pending_backward_state_does_not_leak_across_scopes(self):
        """Forward inside one apply scope, backward in the next: detach must
        drop the per-iteration backward-tracking metadata (the eager twin of
        the GraphDriver.detach fix)."""
        t1 = Tool("first")
        t1.add_inst_for_op(lambda ctx: None)
        t1.add_inst_for_op(lambda ctx: None, backward=True)
        x = E.tensor(X.copy(), requires_grad=True)
        with amanda.apply(t1):
            held = F.relu(F.matmul(x, E.tensor(W.copy())))
            # scope exits with backward never run: pending forward metadata
        assert not held.node.op_call.metadata.get("forward_plan")
        assert not held.node.op_call.metadata.get("context")

        seen = []
        t2 = Tool("second")
        t2.add_inst_for_op(
            lambda ctx: seen.append(ctx.get("backward_type")), backward=True)
        with amanda.apply(t2):
            out, grad = eager_step()
        assert "relu_backward" in seen
        np.testing.assert_array_equal(out, VANILLA_OUT)
        np.testing.assert_array_equal(grad, VANILLA_GRAD)

        held.sum().backward()  # the held graph still backprops, vanilla
        np.testing.assert_array_equal(x.grad, VANILLA_GRAD)


# ---------------------------------------------------------------------------
# graph backend
# ---------------------------------------------------------------------------

@pytest.fixture
def graph_net():
    with G.default_graph() as g:
        x = gb.placeholder(name="x")
        w = gb.variable(W.copy(), name="w")
        logits = gb.relu(gb.matmul(x, w))
        loss = gb.reduce_mean(gb.square(logits))
        (grad_w,) = G.gradients(loss, [w])
    sess = G.Session(g)
    vanilla_out = np.asarray(sess.run(logits, {x: X}))
    vanilla_grad = np.asarray(sess.run(grad_w, {x: X}))
    return sess, x, logits, grad_w, vanilla_out, vanilla_grad


class TestGraphFaults:
    def test_rewrite_time_analysis_fault_quarantines(self, graph_net):
        sess, x, logits, grad_w, vanilla_out, _ = graph_net
        tool = FaultyTool(i_point="before_forward_op", mode="analysis",
                          op_type="Relu")
        with amanda.error_policy("quarantine"), amanda.apply(tool) as mgr:
            out1 = sess.run(logits, {x: X})    # fault during the rewrite
            assert tool.name in mgr.quarantined
            out2 = sess.run(logits, {x: X})
        np.testing.assert_array_equal(out1, vanilla_out)
        np.testing.assert_array_equal(out2, vanilla_out)
        health = mgr.health()
        assert health["by_i_point"] == {"before_forward_op": 1}
        assert health["recent"][0]["backend"] == "graph"

    def test_runtime_callback_fault_falls_back_to_vanilla_graph(
            self, graph_net):
        sess, x, logits, grad_w, vanilla_out, _ = graph_net
        tool = FaultyTool(i_point="after_forward_op", mode="instrumentation",
                          op_type="Relu")
        with amanda.error_policy("quarantine"), amanda.apply(tool) as mgr:
            out1 = sess.run(logits, {x: X})    # PyCall raises mid-run
            assert tool.name in mgr.quarantined
            out2 = sess.run(logits, {x: X})    # recompiled without the tool
            assert mgr.health()["backends"]["graph"]["vanilla_fallbacks"] == 1
        np.testing.assert_array_equal(out1, vanilla_out)
        np.testing.assert_array_equal(out2, vanilla_out)

    def test_backward_callback_fault_keeps_gradients_vanilla(self, graph_net):
        sess, x, logits, grad_w, _, vanilla_grad = graph_net
        tool = FaultyTool(i_point="before_backward_op",
                          mode="instrumentation", op_type="Relu")
        with amanda.error_policy("quarantine"), amanda.apply(tool) as mgr:
            gw1 = sess.run(grad_w, {x: X})
            assert tool.name in mgr.quarantined
            gw2 = sess.run(grad_w, {x: X})
        np.testing.assert_array_equal(gw1, vanilla_grad)
        np.testing.assert_array_equal(gw2, vanilla_grad)

    def test_record_policy_serves_vanilla_on_every_failing_run(
            self, graph_net):
        sess, x, logits, grad_w, vanilla_out, _ = graph_net
        tool = FaultyTool(i_point="after_forward_op", mode="instrumentation",
                          op_type="Relu", always=True)
        with amanda.error_policy("record"), amanda.apply(tool) as mgr:
            for _ in range(3):
                np.testing.assert_array_equal(sess.run(logits, {x: X}),
                                              vanilla_out)
            assert not mgr.quarantined
            assert mgr.health()["backends"]["graph"]["vanilla_fallbacks"] == 3
        assert tool.faults == 3

    def test_raise_policy_propagates_from_session_run(self, graph_net):
        sess, x, logits, grad_w, vanilla_out, _ = graph_net
        tool = FaultyTool(i_point="before_forward_op", mode="analysis",
                          op_type="Relu")
        with amanda.apply(tool):
            with pytest.raises(InstrumentationError) as excinfo:
                sess.run(logits, {x: X})
        assert excinfo.value.provenance.backend == "graph"
        assert excinfo.value.provenance.op_type == "Relu"
        # clean unwind: the vanilla session works after the scope
        np.testing.assert_array_equal(sess.run(logits, {x: X}), vanilla_out)


# ---------------------------------------------------------------------------
# onnx backend
# ---------------------------------------------------------------------------

@pytest.fixture
def onnx_net():
    builder = OnnxBuilder()
    x = builder.input("input")
    builder.output(builder.relu(builder.gemm(x, W.T.copy())))
    sess = InferenceSession(builder.model)
    vanilla = np.asarray(sess.run(None, {"input": X})[0])
    return sess, vanilla


class TestOnnxFaults:
    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("i_point",
                             ["before_forward_op", "after_forward_op"])
    def test_quarantine_keeps_outputs_vanilla(self, onnx_net, i_point, mode):
        sess, vanilla = onnx_net
        tool = FaultyTool(i_point=i_point, mode=mode, op_type="Relu")
        with amanda.error_policy("quarantine"), amanda.apply(tool) as mgr:
            out1 = sess.run(None, {"input": X})[0]
            assert tool.name in mgr.quarantined
            out2 = sess.run(None, {"input": X})[0]
        np.testing.assert_array_equal(out1, vanilla)
        np.testing.assert_array_equal(out2, vanilla)
        assert mgr.health()["recent"][0]["backend"] == "onnx"

    def test_raise_unwinds_and_retried_run_reuses_node_ids(self, onnx_net):
        sess, vanilla = onnx_net
        tool = FaultyTool(i_point="before_forward_op", mode="analysis",
                          op_type="Relu")
        with amanda.apply(tool) as mgr:
            with pytest.raises(InstrumentationError) as excinfo:
                sess.run(None, {"input": X})
            out = sess.run(None, {"input": X})[0]  # retry succeeds
            driver = next(d for d in mgr._drivers if d.namespace == "onnx")
            # the aborted node id was retracted and re-derived: one id per
            # node, every one of them traced into the cache
            assert len(driver._node_ids) == 2
            assert set(driver._node_ids.values()) <= set(mgr.action_cache)
        assert excinfo.value.provenance.op_type == "Relu"
        np.testing.assert_array_equal(out, vanilla)

    def test_record_policy_counts_per_node_failures(self, onnx_net):
        sess, vanilla = onnx_net
        tool = FaultyTool(i_point="after_forward_op", mode="instrumentation",
                          op_type="Relu", always=True)
        with amanda.error_policy("record"), amanda.apply(tool) as mgr:
            for _ in range(2):
                np.testing.assert_array_equal(
                    sess.run(None, {"input": X})[0], vanilla)
            assert mgr.health()["backends"]["onnx"]["recovered"] == 2
        assert tool.faults == 2
