"""Synthetic datasets (ImageNet/SQuAD stand-ins — see DESIGN.md substitutions)."""

from .synthetic import (ClassificationDataset, QADataset, batches,
                        synthetic_images, synthetic_tokens)

__all__ = ["ClassificationDataset", "QADataset", "batches",
           "synthetic_images", "synthetic_tokens"]
