"""Synthetic learnable datasets.

Tbl. 4 uses accuracy only to check that an Amanda tool is *semantically
equivalent* to the ad-hoc implementation it replaces; equivalence does not
depend on the dataset, so we substitute small synthetic tasks that tiny
models can actually learn:

* :class:`ClassificationDataset` — images whose class is encoded as a
  localized spatial pattern plus noise (the ImageNet stand-in);
* :class:`QADataset` — token sequences where the answer position is marked by
  a trigger token (the SQuAD-v2 stand-in for BERT-style models).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ClassificationDataset", "QADataset", "batches",
           "synthetic_images", "synthetic_tokens"]


def synthetic_images(n: int, channels: int = 3, size: int = 16,
                     num_classes: int = 4, noise: float = 0.3,
                     seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
    """Images (N, C, H, W) with a class-dependent quadrant pattern."""
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, num_classes, n)
    images = rng.standard_normal((n, channels, size, size)) * noise
    half = size // 2
    quadrants = [(0, 0), (0, half), (half, 0), (half, half)]
    for i, label in enumerate(labels):
        r, c = quadrants[label % len(quadrants)]
        strength = 1.0 + 0.5 * (label // len(quadrants))
        images[i, :, r:r + half, c:c + half] += strength
    return images, labels


def synthetic_tokens(n: int, seq_len: int = 16, vocab: int = 32,
                     seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
    """Token sequences; the label is the position of the trigger token 1."""
    rng = np.random.default_rng(seed)
    tokens = rng.integers(2, vocab, (n, seq_len))
    positions = rng.integers(0, seq_len, n)
    tokens[np.arange(n), positions] = 1
    return tokens, positions


@dataclass
class ClassificationDataset:
    """Train/test split of the synthetic image task."""

    num_classes: int = 4
    channels: int = 3
    size: int = 16
    train_n: int = 128
    test_n: int = 64
    noise: float = 0.3
    seed: int = 0

    def __post_init__(self) -> None:
        self.train_x, self.train_y = synthetic_images(
            self.train_n, self.channels, self.size, self.num_classes,
            noise=self.noise, seed=self.seed)
        self.test_x, self.test_y = synthetic_images(
            self.test_n, self.channels, self.size, self.num_classes,
            noise=self.noise, seed=self.seed + 1)

    def accuracy(self, predict) -> float:
        """Accuracy of ``predict(images) -> logits`` on the test split."""
        logits = predict(self.test_x)
        return float(np.mean(np.argmax(logits, axis=-1) == self.test_y))


@dataclass
class QADataset:
    """Train/test split of the synthetic span-position task."""

    seq_len: int = 16
    vocab: int = 32
    train_n: int = 128
    test_n: int = 64
    seed: int = 0

    def __post_init__(self) -> None:
        self.train_x, self.train_y = synthetic_tokens(
            self.train_n, self.seq_len, self.vocab, seed=self.seed)
        self.test_x, self.test_y = synthetic_tokens(
            self.test_n, self.seq_len, self.vocab, seed=self.seed + 1)

    def accuracy(self, predict) -> float:
        logits = predict(self.test_x)
        return float(np.mean(np.argmax(logits, axis=-1) == self.test_y))


def batches(x: np.ndarray, y: np.ndarray, batch_size: int,
            seed: int | None = None):
    """Yield (x, y) minibatches, optionally shuffled."""
    n = len(x)
    order = np.arange(n)
    if seed is not None:
        np.random.default_rng(seed).shuffle(order)
    for start in range(0, n, batch_size):
        index = order[start:start + batch_size]
        yield x[index], y[index]
