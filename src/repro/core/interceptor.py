"""Lightweight function interceptor (Sec. 5.2, "addressing the language
disparity").

The paper's interceptor dynamically replaces specific Python (or native
binding) functions without scanning the heap for references, and restores them
afterwards.  Here every replacement site is a named attribute on an object or
module; the interceptor records the original value so a driver's ``detach``
restores the backend to its vanilla state exactly.
"""

from __future__ import annotations

from typing import Any

__all__ = ["Interceptor"]

_MISSING = object()


class Interceptor:
    """Tracks attribute patches so they can be reverted in LIFO order."""

    def __init__(self) -> None:
        self._patches: list[tuple[Any, str, Any]] = []

    def patch(self, target: Any, attribute: str, replacement: Any) -> None:
        """Replace ``target.attribute`` with ``replacement`` (restorable)."""
        original = getattr(target, attribute, _MISSING)
        self._patches.append((target, attribute, original))
        setattr(target, attribute, replacement)

    def restore_all(self) -> None:
        while self._patches:
            target, attribute, original = self._patches.pop()
            if original is _MISSING:
                delattr(target, attribute)
            else:
                setattr(target, attribute, original)

    @property
    def active_patch_count(self) -> int:
        return len(self._patches)

    def __enter__(self) -> "Interceptor":
        return self

    def __exit__(self, *exc) -> bool:
        self.restore_all()
        return False
