"""Fault isolation for tool callbacks: structured errors and policies.

Amanda's transparency guarantee (Sec. 5.2/5.3) must also hold when a tool
*fails*: a raising analysis or instrumentation routine may not leak an open
timing span, leave the action cache half-populated, or crash deep inside a
backend with no tool provenance.  This module defines the currency of the
fault-isolation layer:

* :class:`Provenance` — where a routine was running when it failed (tool,
  op id/type, instrumentation point, backend);
* :class:`InstrumentationError` — the structured wrapper the manager raises
  in place of the routine's raw exception, carrying full provenance and the
  original exception as ``original`` (and ``__cause__``);
* :data:`ERROR_POLICIES` — the recovery policies the manager honours:

  - ``"raise"`` (default): propagate the wrapped error after the drivers
    have cleanly unwound their invariants (spans closed, busy flags reset,
    op-id assignment retracted when no cache entry was stored);
  - ``"quarantine"``: disable the offending tool's analysis routines, drop
    its recorded actions from recompiled plans (via the existing
    ``tool_epoch`` invalidation mechanism) and continue executing vanilla;
  - ``"record"``: count the failure in ``manager.health()`` and continue —
    the tool stays active and may fail again on later executions.

See DESIGN.md, "Failure semantics", for the invariant table.
"""

from __future__ import annotations

__all__ = ["Provenance", "InstrumentationError", "ERROR_POLICIES"]

#: valid values of ``manager.error_policy``
ERROR_POLICIES = ("raise", "quarantine", "record")


class Provenance:
    """Where an instrumentation/analysis routine was running when it failed."""

    __slots__ = ("tool", "op_id", "op_type", "i_point", "backend")

    def __init__(self, tool: str | None = None, op_id: int | None = None,
                 op_type: str | None = None, i_point: str | None = None,
                 backend: str | None = None) -> None:
        self.tool = tool
        self.op_id = op_id
        self.op_type = op_type
        self.i_point = i_point
        self.backend = backend

    def with_tool(self, tool: str | None) -> "Provenance":
        """This provenance attributed to ``tool`` (no-op when unchanged)."""
        if tool is None or tool == self.tool:
            return self
        return Provenance(tool, self.op_id, self.op_type, self.i_point,
                          self.backend)

    def as_dict(self) -> dict:
        return {"tool": self.tool, "op_id": self.op_id,
                "op_type": self.op_type, "i_point": self.i_point,
                "backend": self.backend}

    def __repr__(self) -> str:
        parts = ", ".join(f"{k}={v!r}" for k, v in self.as_dict().items()
                          if v is not None)
        return f"Provenance({parts})"


class InstrumentationError(RuntimeError):
    """A tool routine raised; wraps the original exception with provenance.

    Raised by :meth:`InstrumentationManager.run_instrumentation` /
    :meth:`~InstrumentationManager.run_analysis` under the ``"raise"``
    policy (and propagated to driver recovery points under the other
    policies).  ``original`` is the routine's exception; ``phase`` says
    whether it was an ``"analysis"`` routine, an ``"instrumentation"``
    routine, or backend ``"rewrite"`` machinery acting on recorded actions.
    """

    def __init__(self, original: BaseException,
                 provenance: Provenance | None = None,
                 phase: str = "instrumentation") -> None:
        self.original = original
        self.provenance = provenance or Provenance()
        self.phase = phase
        p = self.provenance
        where = f" in tool {p.tool!r}" if p.tool else ""
        point = p.i_point or "?"
        super().__init__(
            f"{phase} routine failed{where} at {point} "
            f"(op {p.op_id} {p.op_type!r}, backend {p.backend or '?'}): "
            f"{type(original).__name__}: {original}")

    @property
    def tool(self) -> str | None:
        return self.provenance.tool

    def summary(self) -> dict:
        """The dict ``manager.health()`` reports for this failure."""
        entry = self.provenance.as_dict()
        entry["phase"] = self.phase
        entry["error"] = f"{type(self.original).__name__}: {self.original}"
        return entry
