"""The user-facing Tool abstraction (Sec. 4).

A tool bundles *analysis routines* (callbacks inspecting an operator's context
and recording instrumentation actions) with the *instrumentation routines*
those actions reference.  Tools declare dependencies on other tools with
:meth:`Tool.depends_on`; the manager resolves the dependency graph, orders
context transformations, and rejects cycles (Sec. 5.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from .context import OpContext

__all__ = ["Tool", "Registration"]


@dataclass(frozen=True)
class Registration:
    """One registered analysis routine and its instrumentation point."""

    callback: Callable[[OpContext], None]
    backward: bool = False
    require_outputs: bool = False

    @property
    def i_point(self) -> str:
        if self.backward:
            return "after_backward_op" if self.require_outputs else "before_backward_op"
        return "after_forward_op" if self.require_outputs else "before_forward_op"


class Tool:
    """Base class for Amanda instrumentation tools.

    Subclass it (stateful tools) or instantiate directly and call
    :meth:`add_inst_for_op` (one-off tools).
    """

    #: optional namespace tag a tool expects contexts in (see MappingTool)
    namespace: str | None = None

    #: context-transform tools (mapping, tracing) normalize/annotate contexts;
    #: their writes do not count as user state for fast-path decisions
    is_context_transform = False

    #: static effect declaration for the ``PyCall`` ops this tool inserts
    #: into graphs, consumed by the race analysis
    #: (:mod:`repro.analysis.effects`): ``None`` (undeclared — the PyCalls
    #: are effect-opaque and force the serial executor), ``"pure"`` (the
    #: instrumentation routines compute from their inputs only), or a
    #: mapping with any of ``reads`` / ``writes`` (iterables of state keys),
    #: ``rng`` / ``ordered`` (booleans).  Declared tools keep wavefront
    #: parallelism; conflicting declarations are serialized pairwise.
    effects = None

    def __init__(self, name: str | None = None) -> None:
        self.name = name or type(self).__name__
        self._dependencies: list[Tool] = []
        self._registrations: list[Registration] = []
        self._iteration_callbacks: list[Callable[[int], None]] = []

    # -- registration APIs (Lst. 2) --------------------------------------------
    def add_inst_for_op(self, callback: Callable[[OpContext], None],
                        backward: bool = False,
                        require_outputs: bool = False) -> None:
        """Register ``callback`` as an analysis routine for all ops.

        ``backward``/``require_outputs`` select among the four instrumentation
        points: before/after x forward/backward.
        """
        self._registrations.append(
            Registration(callback, backward, require_outputs))

    def depends_on(self, *tools: "Tool") -> None:
        """Declare that this tool consumes the given tools' transformations."""
        self._dependencies.extend(tools)

    def add_inst_for_iteration(self, callback: Callable[[int], None]) -> None:
        """Register a callback fired at every iteration boundary.

        Higher-level instrumentation points such as the training iteration
        are derived from the operator-level points plus context (Sec. 3);
        the framework detects boundaries (backward completion / top-level
        module re-entry / explicit ``amanda.new_iteration``).
        """
        self._iteration_callbacks.append(callback)

    @property
    def iteration_callbacks(self) -> list:
        return list(self._iteration_callbacks)

    # -- lifecycle hooks (called by the manager on apply/remove) -----------------
    def on_apply(self) -> None:
        """Called when the tool becomes active inside ``amanda.apply``."""

    def on_remove(self) -> None:
        """Called when the enclosing ``amanda.apply`` scope exits."""

    # -- introspection used by the manager -------------------------------------
    @property
    def dependencies(self) -> list["Tool"]:
        return list(self._dependencies)

    @property
    def registrations(self) -> list[Registration]:
        return list(self._registrations)

    def registrations_at(self, backward: bool, require_outputs: bool):
        return [r for r in self._registrations
                if r.backward == backward and r.require_outputs == require_outputs]

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
