"""OpContext: the instrumentation context handed to analysis routines.

``OpContext`` *is a dict* (Lst. 4): mapping tools and analysis routines store
normalized state in it (``context["type"]``, ``context["mask"]``, ...).  On
top of the dict it offers

* **inspection APIs** (Lst. 4) — operator metadata, input/output tensors, the
  mapped backward operator and its gradient tensors, and the stable op id;
* **instrumentation APIs** (Lst. 3) — the six action-recording methods.

The raw, backend-specific payload lives under reserved keys (``_op`` etc.);
mapping tools translate it into the common namespace the user tool consumes
(Fig. 6).
"""

from __future__ import annotations

from typing import Any, Callable

from .actions import Action, ActionType

__all__ = ["OpContext"]


class OpContext(dict):
    """Instrumentation context for one operator (forward or backward)."""

    RESERVED = ("_op", "_backend", "_inputs", "_outputs", "_grad_outputs",
                "_grad_inputs", "_op_id", "_backward_op", "_backward_op_id",
                "_is_forward", "_namespace", "_namespace_tags", "_module")

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self.actions: list[Action] = []
        #: set by the manager while a specific tool's routine runs
        self._current_tool: str | None = None
        #: True while a context-transform tool (mapping/tracing) is writing;
        #: such writes do not count as user state
        self._transform_write = True
        #: set when a user tool stored state (e.g. a pruning mask) — the
        #: driver must then keep providing this context to backward ops
        self.has_user_state = False
        #: the keys user tools stored (lint pass: cache-safety analysis)
        self.user_keys: set[str] = set()

    def __setitem__(self, key: str, value: Any) -> None:
        if not self._transform_write and key not in self.RESERVED:
            self.has_user_state = True
            self.user_keys.add(key)
        super().__setitem__(key, value)

    # -- inspection APIs (Lst. 4) --------------------------------------------
    def get_op(self):
        """The raw backend operator object/record."""
        return self.get("_op")

    def get_op_id(self) -> int | None:
        return self.get("_op_id")

    def get_inputs(self) -> list:
        return self.get("_inputs", [])

    def get_outputs(self) -> list:
        return self.get("_outputs", [])

    def get_backward_op(self):
        return self.get("_backward_op")

    def get_backward_op_id(self) -> int | None:
        return self.get("_backward_op_id")

    def get_grad_outputs(self) -> list:
        return self.get("_grad_outputs", [])

    def get_grad_inputs(self) -> list:
        return self.get("_grad_inputs", [])

    def is_forward(self) -> bool:
        return self.get("_is_forward", True)

    @property
    def namespace(self) -> str | None:
        """Backend namespace name, e.g. ``"eager"`` or ``"graph"``."""
        return self.get("_namespace")

    @property
    def namespace_tags(self) -> str | None:
        """Full namespace tag group ``"name/version/mode"`` (Sec. 5.2)."""
        return self.get("_namespace_tags")

    def get_module(self):
        """The module that issued this operator, if any (eager mode)."""
        return self.get("_module")

    # -- instrumentation APIs (Lst. 3) ----------------------------------------
    def _record(self, action_type: ActionType, func: Callable,
                indices, kwargs: dict) -> Action:
        action = Action(
            type=action_type,
            func=func,
            tensor_indices=None if indices is None else tuple(indices),
            kwargs=dict(kwargs),
            tool=self._current_tool,
            backward_op=None if self.is_forward() else self.get("backward_type",
                                                                self.get("_backward_name")),
        )
        self.actions.append(action)
        return action

    def insert_before_op(self, func: Callable, inputs=None, **kwargs) -> Action:
        """Run ``func`` on the selected input tensors before the op executes.

        ``func(*selected_inputs, **kwargs)`` returns replacement values for
        those inputs (a single value when one index is selected).
        """
        return self._record(ActionType.INSERT_BEFORE_OP, func, inputs, kwargs)

    def insert_after_op(self, func: Callable, outputs=None, **kwargs) -> Action:
        """Run ``func`` on the selected output tensors after the op executes."""
        return self._record(ActionType.INSERT_AFTER_OP, func, outputs, kwargs)

    def insert_before_backward_op(self, func: Callable, grad_outputs=None,
                                  **kwargs) -> Action:
        """Run ``func`` on incoming gradients before the backward op."""
        return self._record(ActionType.INSERT_BEFORE_BACKWARD_OP, func,
                            grad_outputs, kwargs)

    def insert_after_backward_op(self, func: Callable, grad_inputs=None,
                                 **kwargs) -> Action:
        """Run ``func`` on produced gradients after the backward op."""
        return self._record(ActionType.INSERT_AFTER_BACKWARD_OP, func,
                            grad_inputs, kwargs)

    def replace_op(self, func: Callable, inputs=None, **kwargs) -> Action:
        """Replace the op's computation with ``func(*input_arrays, **kwargs)``.

        Replacing with an identity yields operator-removal semantics.
        """
        return self._record(ActionType.REPLACE_OP, func, inputs, kwargs)

    def replace_backward_op(self, func: Callable, grad_outputs=None,
                            **kwargs) -> Action:
        """Replace the backward op's computation."""
        return self._record(ActionType.REPLACE_BACKWARD_OP, func,
                            grad_outputs, kwargs)

    def __repr__(self) -> str:
        op_type = self.get("type", self.get("_raw_type", "?"))
        kind = "forward" if self.is_forward() else "backward"
        return f"OpContext({kind} {op_type!r}, actions={len(self.actions)})"
