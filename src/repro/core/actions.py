"""Instrumentation actions — the currency between Amanda core and drivers.

An :class:`Action` is one recorded modification of the target DNN (Fig. 7):
its :class:`ActionType` matches the six instrumentation APIs of Lst. 3, its
``func`` is the user's instrumentation routine, and ``tensor_indices`` selects
which computation-state tensors the routine consumes/produces.  Analysis
routines *record* actions; drivers *evaluate* them during subsequent
executions.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["ActionType", "Action", "IPoint"]


class ActionType(enum.Enum):
    INSERT_BEFORE_OP = "insert_before_op"
    INSERT_AFTER_OP = "insert_after_op"
    INSERT_BEFORE_BACKWARD_OP = "insert_before_backward_op"
    INSERT_AFTER_BACKWARD_OP = "insert_after_backward_op"
    REPLACE_OP = "replace_op"
    REPLACE_BACKWARD_OP = "replace_backward_op"

    @property
    def is_backward(self) -> bool:
        return self in (ActionType.INSERT_BEFORE_BACKWARD_OP,
                        ActionType.INSERT_AFTER_BACKWARD_OP,
                        ActionType.REPLACE_BACKWARD_OP)


class IPoint(enum.Enum):
    """Instrumentation points, the dispatching key of trigger_callback."""

    BEFORE_FORWARD = "before_forward_op"
    AFTER_FORWARD = "after_forward_op"
    BEFORE_BACKWARD = "before_backward_op"
    AFTER_BACKWARD = "after_backward_op"


@dataclass
class Action:
    """One recorded instrumentation of a specific operator."""

    type: ActionType
    func: Callable
    #: indices of the tensors the routine consumes (inputs / outputs /
    #: grad_outputs / grad_inputs depending on the action type);
    #: None selects all tensors, an empty tuple selects none (observation
    #: routines that only need to be triggered)
    tensor_indices: tuple[int, ...] | None = None
    #: extra keyword parameters injected into the routine at evaluation time
    kwargs: dict[str, Any] = field(default_factory=dict)
    #: name of the tool that recorded the action (diagnostics / breakdowns)
    tool: str | None = None
    #: for backward actions recorded from a *backward* analysis routine:
    #: restricts the action to that backward op; None applies to all
    backward_op: str | None = None

    def __repr__(self) -> str:
        return (f"Action({self.type.value}, func={getattr(self.func, '__name__', self.func)!r}, "
                f"indices={self.tensor_indices})")
