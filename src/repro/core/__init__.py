"""Amanda core: the backend-independent instrumentation layer (Fig. 3)."""

from .actions import Action, ActionType, IPoint
from .context import OpContext
from .ids import LinearCongruentialGenerator, OpIdAssigner
from .interceptor import Interceptor
from .manager import (InstrumentationManager, allow_instrumented_ad, apply,
                      cache_disabled, cache_enabled, disabled, enabled,
                      manager, new_iteration)
from .tool import Registration, Tool

__all__ = [
    "Action", "ActionType", "IPoint", "OpContext", "Tool", "Registration",
    "Interceptor", "LinearCongruentialGenerator", "OpIdAssigner",
    "InstrumentationManager", "manager", "apply", "disabled", "enabled",
    "cache_disabled", "cache_enabled", "allow_instrumented_ad", "new_iteration",
]
