"""Amanda core: tool management, callback management, caching, control APIs.

The manager is the backend-independent layer (Fig. 3).  It

* resolves the tool dependency graph (topological order, cycle detection) so
  mapping/transformation tools run before the tools that consume them;
* triggers analysis routines at the four instrumentation points and records
  the actions they produce;
* owns the **action cache**: per stable op-id, the actions recorded the first
  time an operator is analyzed are replayed on later executions without
  re-running analysis routines (Sec. 5.2/5.3, evaluated in Fig. 12);
* evaluates instrumentation routines with AD isolation (instrumented code does
  not alter the backward graph unless explicitly enabled) and tool-scoped
  memory accounting;
* exposes the control APIs of Lst. 5 (``apply``/``disabled``/``enabled``/
  ``cache_disabled``/``cache_enabled``).
"""

from __future__ import annotations

import copy
import threading
import time
from contextlib import contextmanager
from typing import Callable

from ..eager import alloc
from ..eager.dispatch import enable_grad, no_grad
from .actions import Action, IPoint
from .context import OpContext
from .faults import ERROR_POLICIES, InstrumentationError, Provenance
from .ids import OpIdAssigner
from .plans import ExecutionPlan, PlanKind, compile_plan
from .tool import Tool

__all__ = ["InstrumentationManager", "manager", "apply", "disabled", "enabled",
           "cache_disabled", "cache_enabled", "allow_instrumented_ad",
           "new_iteration", "register_driver_factory", "error_policy",
           "InstrumentationError", "Provenance"]


class Span:
    """An open framework-time span (Fig. 11 accounting).

    Created by :meth:`InstrumentationManager.begin_span`; closing is
    idempotent so drivers can close eagerly on the happy path *and*
    unconditionally in a ``finally`` block — the error path can then never
    leak an open span (which would permanently skew the framework/tool
    breakdown).
    """

    __slots__ = ("start", "tool_before", "framework_before", "closed")

    def __init__(self, start: float, tool_before: float,
                 framework_before: float) -> None:
        self.start = start
        self.tool_before = tool_before
        self.framework_before = framework_before
        self.closed = False


class CachedOpRecord:
    """Per-op-id cache entry: recorded actions plus the analyzed context."""

    __slots__ = ("forward_actions", "backward_actions", "context", "user_state",
                 "plan")

    def __init__(self) -> None:
        self.forward_actions: list[Action] = []
        self.backward_actions: list[Action] = []
        self.context: OpContext | None = None
        #: True when analysis stored user keys in the context (e.g. a pruning
        #: mask) that backward contexts must still see — disables the vanilla
        #: fast path even with no forward actions
        self.user_state = False
        #: compiled execution plan; attached by the manager at cache-store
        #: time and recompiled on epoch change / ``cache_append``
        self.plan: ExecutionPlan | None = None

    @property
    def empty(self) -> bool:
        return (not self.forward_actions and not self.backward_actions
                and not self.user_state)


_driver_factories: list[Callable[["InstrumentationManager"], object]] = []


def register_driver_factory(factory) -> None:
    """Backends register a driver factory at import time (Fig. 7)."""
    _driver_factories.append(factory)


class InstrumentationManager:
    """Singleton coordinating tools, drivers, ids and caches."""

    def __init__(self) -> None:
        self.tools: list[Tool] = []
        self.enabled = True
        self.cache_enabled = True
        self.instrumented_ad = False
        self.ids = OpIdAssigner()
        self.backward_ids = OpIdAssigner(seed=0xB5EED)
        #: eager-mode action cache: op_id -> CachedOpRecord
        self.action_cache: dict[int, CachedOpRecord] = {}
        #: bumped whenever the active toolset changes; drivers key their own
        #: caches (e.g. instrumented graphs) by this epoch
        self.tool_epoch = 0
        self._drivers: list = []
        self._depth = 0
        # Fig. 11 breakdown accounting
        self.timers = {"framework": 0.0, "tool": 0.0}
        # plan-layer observability (plan_stats)
        self._plans_compiled = 0
        self._plans_recompiled = 0
        # fault-isolation layer (health)
        #: what happens when a tool routine raises: "raise" | "quarantine"
        #: | "record" (see repro.core.faults)
        self.error_policy = "raise"
        #: names of tools disabled after a failure under "quarantine"
        self.quarantined: set[str] = set()
        #: most recent failures (full provenance), capped
        self.errors: list[InstrumentationError] = []
        self._error_total = 0
        self._errors_by_tool: dict[str, int] = {}
        self._errors_by_i_point: dict[str, int] = {}
        self._errors_by_op: dict[str, int] = {}
        #: guards the failure counters, error log and quarantine set: tools
        #: fail from concurrent serving workers, and unlocked
        #: read-modify-writes would lose increments (and ``health()`` would
        #: return torn snapshots)
        self._health_lock = threading.RLock()

    #: how many recent failures ``errors`` retains (counters stay complete)
    MAX_RECORDED_ERRORS = 100

    # -- tool management ------------------------------------------------------
    @staticmethod
    def resolve_tools(tools: tuple[Tool, ...]) -> list[Tool]:
        """Dependency-closure topological order; raises on cycles."""
        order: list[Tool] = []
        state: dict[int, str] = {}

        def visit(tool: Tool, chain: list[Tool]) -> None:
            mark = state.get(id(tool))
            if mark == "done":
                return
            if mark == "visiting":
                cycle = " -> ".join(t.name for t in chain + [tool])
                raise ValueError(f"instrumentation tool dependency cycle: {cycle}")
            state[id(tool)] = "visiting"
            for dependency in tool.dependencies:
                visit(dependency, chain + [tool])
            state[id(tool)] = "done"
            order.append(tool)

        for tool in tools:
            visit(tool, [])
        return order

    @property
    def active(self) -> bool:
        return self.enabled and bool(self.tools)

    # -- lifecycle -------------------------------------------------------------
    def activate(self, tools: tuple[Tool, ...]) -> None:
        previous = list(self.tools)
        if self._depth == 0:
            self.tools = self.resolve_tools(tools)
        else:
            self.tools = self.tools + [
                t for t in self.resolve_tools(tools) if t not in self.tools]
        self._depth += 1
        self._invalidate()
        if not self._drivers:
            for factory in _driver_factories:
                driver = factory(self)
                driver.attach()
                self._drivers.append(driver)
        for tool in self.tools:
            if tool not in previous:
                tool.on_apply()

    def deactivate(self) -> None:
        self._depth -= 1
        if self._depth <= 0:
            self._depth = 0
            removed = list(self.tools)
            self.tools = []
            for driver in self._drivers:
                driver.detach()
            self._drivers = []
            for tool in removed:
                tool.on_remove()
            # quarantine is scoped to the apply scope that observed the
            # failure; the error log survives for post-mortem (reset_health)
            self.quarantined.clear()
        self._invalidate()

    def _invalidate(self) -> None:
        self.tool_epoch += 1
        self.action_cache.clear()
        self.ids.reset()
        self.backward_ids.reset()

    def new_iteration(self) -> None:
        self.ids.new_iteration()
        self.backward_ids.new_iteration()
        for tool in self.tools:
            for callback in tool.iteration_callbacks:
                callback(self.ids.iteration)

    # -- analysis-routine triggering -------------------------------------------
    def run_analysis(self, context: OpContext, i_point: IPoint) -> None:
        """Trigger the analysis routines registered at ``i_point``.

        Tools run in dependency order; each may transform the context for the
        tools after it (context transformation, Fig. 6).  A raising routine
        is handled per :attr:`error_policy`: ``"raise"`` propagates a
        provenance-carrying :class:`InstrumentationError` (after the context
        write-state is restored), ``"quarantine"`` disables the tool and
        drops the actions it recorded into this context, ``"record"`` counts
        the failure and moves on to the next routine.
        """
        backward = i_point in (IPoint.BEFORE_BACKWARD, IPoint.AFTER_BACKWARD)
        require_outputs = i_point in (IPoint.AFTER_FORWARD, IPoint.AFTER_BACKWARD)
        start = time.perf_counter()
        tool_before = self.timers["tool"]
        try:
            for tool in self.tools:
                if tool.name in self.quarantined:
                    continue
                registrations = tool.registrations_at(backward, require_outputs)
                if not registrations:
                    continue
                context._current_tool = tool.name
                context._transform_write = tool.is_context_transform
                for registration in registrations:
                    t0 = time.perf_counter()
                    try:
                        registration.callback(context)
                    except Exception as exc:
                        self.timers["tool"] += time.perf_counter() - t0
                        error = InstrumentationError(
                            exc, self._context_provenance(tool.name, context,
                                                          i_point),
                            phase="analysis")
                        self.record_failure(error)
                        if self.error_policy == "raise":
                            raise error from exc
                        if self.error_policy == "quarantine":
                            self.quarantine(tool.name)
                            context.actions = [a for a in context.actions
                                               if a.tool != tool.name]
                            break  # skip the tool's remaining registrations
                    else:
                        self.timers["tool"] += time.perf_counter() - t0
        finally:
            context._current_tool = None
            context._transform_write = True
            total = time.perf_counter() - start
            # framework share = dispatch minus the callback time already
            # accrued to timers["tool"] inside this call (Fig. 11 breakdown)
            tool_this_call = self.timers["tool"] - tool_before
            self.timers["framework"] += max(0.0, total - tool_this_call)

    @staticmethod
    def _context_provenance(tool: str | None, context: OpContext,
                            i_point: IPoint) -> Provenance:
        return Provenance(
            tool=tool,
            op_id=(context.get_op_id() if context.is_forward()
                   else context.get_backward_op_id()),
            op_type=context.get("_raw_type", context.get("type")),
            i_point=i_point.value,
            backend=context.namespace)

    # -- instrumentation-routine evaluation --------------------------------------
    def run_instrumentation(self, func: Callable, args: tuple, kwargs: dict,
                            provenance: Provenance | None = None):
        """Evaluate one instrumentation routine with AD/memory isolation.

        A raising routine is recorded in :meth:`health` (and its tool
        quarantined under the ``"quarantine"`` policy), then an
        :class:`InstrumentationError` carrying ``provenance`` propagates —
        always, regardless of policy: recovery (substituting the vanilla
        computation) needs backend knowledge, so it lives at the drivers'
        recovery points, which consult :attr:`error_policy`.
        """
        t0 = time.perf_counter()
        guard = enable_grad() if self.instrumented_ad else no_grad()
        try:
            with guard, alloc.scope("tool"):
                result = func(*args, **kwargs)
        except InstrumentationError:
            raise  # already wrapped/recorded by a nested evaluation
        except Exception as exc:
            error = InstrumentationError(exc, provenance,
                                         phase="instrumentation")
            self.record_failure(error)
            if self.error_policy == "quarantine" and error.tool:
                self.quarantine(error.tool)
            raise error from exc
        finally:
            self.timers["tool"] += time.perf_counter() - t0
        return result

    def record_framework_time(self, seconds: float) -> None:
        self.timers["framework"] += seconds

    def begin_span(self) -> Span:
        """Open a framework-time span (Fig. 11 accounting).

        Pairs with :meth:`end_span`, which attributes the wall time of the
        span *minus* any tool/framework time accrued inside it — so nested
        ``run_analysis``/``run_instrumentation`` calls are never counted
        twice and ``framework + tool <= wall`` holds structurally.  Closing
        is idempotent (see :class:`Span`): drivers close eagerly before
        handing off to kernel execution and again in a ``finally`` block, so
        error paths cannot leak an open span.
        """
        return Span(time.perf_counter(), self.timers["tool"],
                    self.timers["framework"])

    def end_span(self, span: Span) -> None:
        if span.closed:
            return
        span.closed = True
        elapsed = time.perf_counter() - span.start
        inner = (self.timers["tool"] - span.tool_before
                 + self.timers["framework"] - span.framework_before)
        self.timers["framework"] += max(0.0, elapsed - inner)

    def reset_timers(self) -> None:
        self.timers = {"framework": 0.0, "tool": 0.0}

    # -- fault isolation -----------------------------------------------------------
    def set_error_policy(self, policy: str) -> None:
        if policy not in ERROR_POLICIES:
            raise ValueError(f"unknown error policy {policy!r} "
                             f"(choose from {', '.join(ERROR_POLICIES)})")
        self.error_policy = policy

    def record_failure(self, error: InstrumentationError) -> None:
        """Count a routine failure (full provenance) for :meth:`health`."""
        p = error.provenance
        with self._health_lock:
            self._error_total += 1
            for counts, key in ((self._errors_by_tool, p.tool or "<unknown>"),
                                (self._errors_by_i_point,
                                 p.i_point or "<unknown>"),
                                (self._errors_by_op,
                                 f"{p.op_type or '?'}:{p.op_id}")):
                counts[key] = counts.get(key, 0) + 1
            self.errors.append(error)
            if len(self.errors) > self.MAX_RECORDED_ERRORS:
                del self.errors[0]

    def quarantine(self, tool_name: str) -> None:
        """Disable ``tool_name``'s routines and recorded actions.

        Reuses the epoch invalidation mechanism: bumping ``tool_epoch``
        (without clearing caches or ids) forces every compiled plan — and
        every graph-mode instrumented graph — to recompile, and plan
        compilation excludes quarantined tools' actions, so subsequent
        execution is vanilla with respect to the tool.
        """
        with self._health_lock:
            if tool_name in self.quarantined:
                return
            self.quarantined.add(tool_name)
            self.tool_epoch += 1

    def clear_quarantine(self) -> None:
        """Re-enable all quarantined tools (plans recompile via the epoch)."""
        with self._health_lock:
            if self.quarantined:
                self.quarantined.clear()
                self.tool_epoch += 1

    def health(self) -> dict:
        """Fault-isolation observability (pairs with :meth:`plan_stats`).

        Error counters per tool / op / instrumentation point, the
        quarantined-tool list, the most recent failures with full
        provenance, and per-backend recovery counters under ``"backends"``.
        The report is a consistent, deep-copied snapshot: it is assembled
        under the same lock the failure counters mutate under, so a reader
        concurrent with failing tools never sees totals that disagree with
        the per-key breakdowns — and later mutations never reach into a
        report a caller already holds.
        """
        with self._health_lock:
            report = {
                "policy": self.error_policy,
                "errors": self._error_total,
                "by_tool": dict(self._errors_by_tool),
                "by_i_point": dict(self._errors_by_i_point),
                "by_op": dict(self._errors_by_op),
                "quarantined": sorted(self.quarantined),
                "recent": [error.summary() for error in self.errors],
                "backends": {},
            }
            for driver in self._drivers:
                backend_health = getattr(driver, "health", None)
                if backend_health is not None:
                    report["backends"][driver.namespace] = backend_health()
            return copy.deepcopy(report)

    def reset_health(self) -> None:
        with self._health_lock:
            self.errors = []
            self._error_total = 0
            self._errors_by_tool = {}
            self._errors_by_i_point = {}
            self._errors_by_op = {}

    # -- cache -------------------------------------------------------------------
    def cache_lookup(self, op_id: int) -> CachedOpRecord | None:
        if not self.cache_enabled:
            return None
        return self.action_cache.get(op_id)

    def cache_store(self, op_id: int, record: CachedOpRecord) -> None:
        # compile the plan even when caching is disabled: the record's own
        # execution this call still replays through it
        self.plan_for(record, op_id=op_id, count_hit=False)
        if self.cache_enabled:
            self.action_cache[op_id] = record

    def cache_append(self, op_id: int, action: Action) -> bool:
        """Late-register an action on an already-cached operator.

        Used by tools (e.g. subgraph rewriting) whose analysis of a *later*
        operator retroactively instruments an earlier one; in eager mode the
        action takes effect from the next execution of that operator.
        Invalidates the record's compiled plan so a stale fast-path
        classification (e.g. a record promoted to ``VANILLA``) cannot
        survive the append.
        """
        record = self.action_cache.get(op_id)
        if record is None:
            return False
        if action.type.is_backward:
            record.backward_actions.append(action)
        else:
            record.forward_actions.append(action)
        if record.plan is not None:
            record.plan.invalidate()
        return True

    # -- execution plans ----------------------------------------------------------
    def plan_for(self, record: CachedOpRecord, op_id: int | None = None,
                 count_hit: bool = True) -> ExecutionPlan:
        """The record's compiled plan, recompiling when stale.

        A plan is stale when it predates the current ``tool_epoch`` or was
        explicitly invalidated (``cache_append``).
        """
        plan = record.plan
        if plan is None or plan.epoch != self.tool_epoch:
            plan = compile_plan(record, epoch=self.tool_epoch,
                                op_id=op_id if op_id is not None
                                else (plan.op_id if plan else None),
                                prior=plan,
                                exclude_tools=self.quarantined)
            record.plan = plan
            if plan.recompiles:
                self._plans_recompiled += 1
            self._plans_compiled += 1
        if count_hit:
            plan.hits += 1
        return plan

    def plan_stats(self) -> dict:
        """Observability for the plan layer (pair with the Fig. 12 benchmark).

        Returns per-op plan counters for every cached record, aggregate
        totals by :class:`PlanKind`, compile/recompile counts, and any
        backend-specific plan stats (e.g. graph-mode instrumented-graph
        plans) under ``"backends"``.
        """
        ops = {}
        by_kind = {kind.value: 0 for kind in PlanKind}
        for op_id, record in self.action_cache.items():
            if record.plan is None:
                continue
            ops[op_id] = record.plan.stats()
            by_kind[record.plan.kind.value] += 1
        stats = {
            "ops": ops,
            "by_kind": by_kind,
            "compiled": self._plans_compiled,
            "recompiled": self._plans_recompiled,
            "backends": {},
        }
        for driver in self._drivers:
            backend_stats = getattr(driver, "plan_stats", None)
            if backend_stats is not None:
                stats["backends"][driver.namespace] = backend_stats()
        return stats


#: process-global manager instance
manager = InstrumentationManager()


# ---------------------------------------------------------------------------
# control APIs (Lst. 5)
# ---------------------------------------------------------------------------

@contextmanager
def apply(*tools: Tool):
    """Apply instrumentation tools to all DNN execution inside the block."""
    manager.activate(tools)
    try:
        yield manager
    finally:
        manager.deactivate()


@contextmanager
def disabled():
    """Temporarily disable instrumentation inside an ``apply`` scope."""
    previous = manager.enabled
    manager.enabled = False
    try:
        yield
    finally:
        manager.enabled = previous


@contextmanager
def enabled():
    previous = manager.enabled
    manager.enabled = True
    try:
        yield
    finally:
        manager.enabled = previous


@contextmanager
def cache_disabled():
    """Disable the action cache (every execution re-runs analysis routines)."""
    previous = manager.cache_enabled
    manager.cache_enabled = False
    manager.action_cache.clear()
    try:
        yield
    finally:
        manager.cache_enabled = previous


@contextmanager
def cache_enabled():
    previous = manager.cache_enabled
    manager.cache_enabled = True
    try:
        yield
    finally:
        manager.cache_enabled = previous


@contextmanager
def allow_instrumented_ad():
    """Let inserted instrumentation routines participate in backward (expert)."""
    previous = manager.instrumented_ad
    manager.instrumented_ad = True
    try:
        yield
    finally:
        manager.instrumented_ad = previous


@contextmanager
def error_policy(policy: str):
    """Select what happens when a tool routine raises inside the block.

    ``"raise"`` (default) propagates a provenance-carrying
    :class:`InstrumentationError` after the drivers have cleanly unwound;
    ``"quarantine"`` disables the failing tool and continues vanilla;
    ``"record"`` counts the failure in ``manager.health()`` and continues.
    """
    previous = manager.error_policy
    manager.set_error_policy(policy)
    try:
        yield
    finally:
        manager.error_policy = previous


def new_iteration() -> None:
    """Explicitly mark an iteration boundary (resets occurrence counters)."""
    manager.new_iteration()
