"""Consistent operator identity via a linear congruential generator (Sec. 5.2).

Amanda assigns each executed operator a stable ID so that analysis results and
instrumentation actions cached in one iteration can be reused in later
iterations ("consistent attribute ID ... with linear congruential generator
(LCG) to track their execution between iterations").

We key an operator by ``(op name, occurrence index within the iteration)`` —
for a static model this pair is identical across iterations — and map the pair
to an ID drawn from an LCG stream, like a program counter value for
instructions.  Occurrence counters reset at iteration boundaries (backward
completion, top-level module entry, or an explicit ``new_iteration`` call).
"""

from __future__ import annotations

__all__ = ["LinearCongruentialGenerator", "OpIdAssigner"]


class LinearCongruentialGenerator:
    """The classic 32-bit Numerical-Recipes LCG."""

    MULTIPLIER = 1664525
    INCREMENT = 1013904223
    MODULUS = 2 ** 32

    def __init__(self, seed: int = 0x5EED) -> None:
        self._state = seed % self.MODULUS

    def next(self) -> int:
        self._state = (self.MULTIPLIER * self._state + self.INCREMENT) % self.MODULUS
        return self._state


class OpIdAssigner:
    """Stable (op name, occurrence) -> LCG id mapping with iteration resets."""

    def __init__(self, seed: int = 0x5EED) -> None:
        self._lcg = LinearCongruentialGenerator(seed)
        self._ids: dict[tuple[str, int], int] = {}
        self._occurrences: dict[str, int] = {}
        self.iteration = 0

    def assign(self, name: str) -> int:
        occurrence = self._occurrences.get(name, 0)
        self._occurrences[name] = occurrence + 1
        key = (name, occurrence)
        op_id = self._ids.get(key)
        if op_id is None:
            op_id = self._lcg.next()
            self._ids[key] = op_id
        return op_id

    def retract(self, name: str) -> None:
        """Undo the most recent :meth:`assign` for ``name``.

        Used on instrumentation error paths: when an op's trace aborts
        before a cache entry is stored, the occurrence counter must look
        like the op never executed, so a retried iteration re-derives the
        same id instead of drifting.  The ``(name, occurrence) -> id``
        mapping itself stays (ids are stable by construction).
        """
        count = self._occurrences.get(name, 0)
        if count > 0:
            self._occurrences[name] = count - 1

    def peek(self, name: str, occurrence: int) -> int | None:
        return self._ids.get((name, occurrence))

    def new_iteration(self) -> None:
        """Reset occurrence counters; previously assigned IDs stay stable."""
        self._occurrences.clear()
        self.iteration += 1

    def reset(self) -> None:
        """Full reset, forgetting all assigned IDs (toolset changed)."""
        self._ids.clear()
        self._occurrences.clear()
        self.iteration = 0
