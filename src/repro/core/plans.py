"""Compiled per-op execution plans — the cached-path fast lane.

The action cache (Sec. 5.2/5.3, Fig. 12) makes steady-state instrumentation
cheap by replaying recorded actions instead of re-running analysis routines.
Replaying used to mean *re-interpreting* the action list on every call: each
driver filtered by :class:`~repro.core.actions.ActionType`, rebuilt replace
closures and re-resolved tensor selectors per execution.  This module compiles
a :class:`~repro.core.manager.CachedOpRecord` once, at cache-store time, into
an :class:`ExecutionPlan`:

* **pre-partitioned action lists** — before/replace/after, forward and
  backward, as tuples of :class:`ActionStep`;
* **pre-resolved selectors** — explicit ``tensor_indices`` are frozen into the
  step; ``None`` ("all tensors") resolves through a memoized range table;
* **a pre-bound replace closure** — ``kwargs`` are bound when the plan is
  compiled, not per call;
* **a tri-state classification** (:class:`PlanKind`) so drivers can pick the
  cheapest sound path: ``VANILLA`` (no instrumentation at all),
  ``OBSERVE_ONLY`` (forward insert routines only — no replace, no backward
  actions, no user context state, so no autograd metadata wiring is needed)
  and ``MUTATING`` (everything else).

The manager owns plan compilation and invalidation (``tool_epoch`` bumps and
``cache_append`` both force a recompile); drivers own only a per-backend
:class:`TensorAdapter` that says how to unwrap/wrap/assign the backend's
tensor values.  Action evaluation itself — partitioning, selector resolution,
routine invocation, replacement write-back — lives here and nowhere else.
"""

from __future__ import annotations

import enum
from typing import Callable, Iterable, Sequence

import numpy as np

from .actions import Action, ActionType

__all__ = [
    "PlanKind", "TensorAdapter", "NDARRAY_ADAPTER", "ActionStep",
    "ReplaceStep", "PlanSlice", "EMPTY_SLICE", "ExecutionPlan",
    "compile_forward_slice", "compile_backward_slice", "compile_plan",
    "compile_actions", "run_steps",
]


class PlanKind(enum.Enum):
    """Fast-path classification of a compiled plan."""

    #: no actions and no user context state: skip instrumentation entirely
    VANILLA = "vanilla"
    #: forward insert routines only — evaluated without autograd/backward
    #: metadata wiring (routines may still return replacements; write-back
    #: stays sound, the classification only drops the wiring)
    OBSERVE_ONLY = "observe_only"
    #: replaces, backward actions or user state: full evaluation path
    MUTATING = "mutating"


# ---------------------------------------------------------------------------
# tensor adapters (the only backend-specific seam of plan evaluation)
# ---------------------------------------------------------------------------

class TensorAdapter:
    """How a backend's tensor-slot values cross the instrumentation boundary.

    ``unwrap`` turns a stored value into the ndarray a routine consumes,
    ``wrap`` turns a routine's return value into a storable value, and
    ``assign`` writes a replacement back into the value list (override it for
    in-place semantics, e.g. mutating an eager tensor's ``.data``).
    """

    def unwrap(self, value):
        return np.asarray(value)

    def wrap(self, value):
        return np.asarray(value)

    def read(self, values: Sequence, index: int):
        return self.unwrap(values[index])

    def assign(self, values: list, index: int, value) -> None:
        values[index] = self.wrap(value)


#: plain ndarray-in/ndarray-out adapter (gradients, ONNX node values)
NDARRAY_ADAPTER = TensorAdapter()


# memoized ``None``-selector resolution: arity -> (0, 1, ..., arity-1)
_RANGES: dict[int, tuple[int, ...]] = {}


def _range(n: int) -> tuple[int, ...]:
    indices = _RANGES.get(n)
    if indices is None:
        indices = _RANGES[n] = tuple(range(n))
    return indices


# ---------------------------------------------------------------------------
# compiled steps
# ---------------------------------------------------------------------------

class ActionStep:
    """One insert action, compiled: resolved selector + bound routine."""

    __slots__ = ("action", "func", "kwargs", "indices")

    def __init__(self, action: Action) -> None:
        self.action = action
        self.func = action.func
        self.kwargs = action.kwargs
        self.indices = action.tensor_indices

    def resolve(self, arity: int, clamp: bool = False) -> tuple[int, ...]:
        """The tensor indices this step touches for a slot list of ``arity``.

        With ``clamp`` (gradient / ONNX value lists whose arity may be
        smaller than the recorded selector), out-of-range indices are
        dropped; a selector that clamps to nothing returns ``()``.
        """
        if self.indices is None:
            return _range(arity)
        if clamp:
            return tuple(i for i in self.indices if i < arity)
        return self.indices

    def pycall(self, runner: Callable, passthrough_count: int,
               provenance=None) -> Callable:
        """Bind the step into a graph-mode ``PyCall`` body.

        Observation routines (returning ``None``) pass their inputs through
        unchanged, matching the runtime write-back semantics.
        """
        func, kwargs = self.func, self.kwargs

        def run(*arrays):
            result = runner(func, arrays, kwargs, provenance)
            if result is None:
                return arrays if passthrough_count > 1 else arrays[0]
            return result

        return run

    def __repr__(self) -> str:
        return f"ActionStep({self.action!r})"


class ReplaceStep:
    """A replace action, compiled: the closure is bound once, at compile."""

    __slots__ = ("action", "func", "kwargs", "indices", "forward_override")

    def __init__(self, action: Action) -> None:
        self.action = action
        self.func = action.func
        self.kwargs = action.kwargs
        self.indices = action.tensor_indices
        if action.kwargs:
            func, kwargs = action.func, action.kwargs
            self.forward_override = lambda *arrays, **a: func(*arrays, **kwargs)
        else:
            self.forward_override = action.func

    def select(self, values: Sequence) -> list:
        """The values the replacement routine consumes."""
        if self.indices is None:
            return list(values)
        return [values[i] for i in self.indices]

    def invoke(self, runner: Callable, arrays: tuple, provenance=None):
        return runner(self.func, arrays, self.kwargs, provenance)

    def pycall(self, runner: Callable, num_outputs: int,
               provenance=None) -> Callable:
        func, kwargs = self.func, self.kwargs

        def run(*arrays):
            return runner(func, arrays, kwargs, provenance)

        return run

    def guarded_override(self, runner: Callable, provenance=None) -> Callable:
        """A ``forward_override`` routed through ``run_instrumentation``.

        Unlike the raw :attr:`forward_override` closure, failures surface as
        :class:`~repro.core.faults.InstrumentationError` with provenance and
        the routine runs under AD/memory isolation, matching how replace
        routines already execute in graph mode.  Call-time semantics match
        ``forward_override``: recorded kwargs win over op attrs when present.
        """
        func, kwargs = self.func, self.kwargs
        if kwargs:
            def run(*arrays, **attrs):
                return runner(func, arrays, kwargs, provenance)
        else:
            def run(*arrays, **attrs):
                return runner(func, arrays, attrs, provenance)
        return run

    def __repr__(self) -> str:
        return f"ReplaceStep({self.action!r})"


class PlanSlice:
    """Pre-partitioned steps for one phase (forward, or one backward op)."""

    __slots__ = ("before", "after", "replace")

    def __init__(self, before: tuple[ActionStep, ...] = (),
                 after: tuple[ActionStep, ...] = (),
                 replace: ReplaceStep | None = None) -> None:
        self.before = before
        self.after = after
        self.replace = replace

    @property
    def empty(self) -> bool:
        return not self.before and not self.after and self.replace is None

    @staticmethod
    def concat(first: "PlanSlice", second: "PlanSlice") -> "PlanSlice":
        """Inherited-then-own composition; the later replace wins."""
        if first.empty:
            return second
        if second.empty:
            return first
        return PlanSlice(first.before + second.before,
                         first.after + second.after,
                         second.replace if second.replace is not None
                         else first.replace)

    def __repr__(self) -> str:
        return (f"PlanSlice(before={len(self.before)}, after={len(self.after)}, "
                f"replace={self.replace is not None})")


EMPTY_SLICE = PlanSlice()


def _partition(actions: Iterable[Action]) -> PlanSlice:
    before: list[ActionStep] = []
    after: list[ActionStep] = []
    replace: ReplaceStep | None = None
    for action in actions:
        action_type = action.type
        if action_type in (ActionType.INSERT_BEFORE_OP,
                           ActionType.INSERT_BEFORE_BACKWARD_OP):
            before.append(ActionStep(action))
        elif action_type in (ActionType.INSERT_AFTER_OP,
                             ActionType.INSERT_AFTER_BACKWARD_OP):
            after.append(ActionStep(action))
        else:
            # multiple replacements compose as "last recorded wins" (see the
            # replace-conflict lint); earlier ones are intentionally dropped
            replace = ReplaceStep(action)
    if not before and not after and replace is None:
        return EMPTY_SLICE
    return PlanSlice(tuple(before), tuple(after), replace)


def compile_forward_slice(actions: Iterable[Action]) -> PlanSlice:
    """Partition the forward-type actions of an action stream."""
    return _partition(a for a in actions if not a.type.is_backward)


def compile_backward_slice(actions: Iterable[Action],
                           backward_op=None) -> PlanSlice:
    """Partition the backward-type actions applicable to ``backward_op``.

    ``backward_op`` may be a single name or a tuple of acceptable names (a
    backward operator can be addressed by its raw backend type or by the
    normalized name a mapping tool wrote into the context).
    """
    if backward_op is None:
        names = None
    elif isinstance(backward_op, str):
        names = (backward_op,)
    else:
        names = tuple(backward_op)
    return _partition(
        a for a in actions
        if a.type.is_backward
        and (a.backward_op is None or names is None
             or a.backward_op in names))


# ---------------------------------------------------------------------------
# the shared step executor
# ---------------------------------------------------------------------------

def run_steps(steps: tuple[ActionStep, ...], values: list,
              adapter: TensorAdapter, runner: Callable,
              clamp: bool = False, provenance=None) -> bool:
    """Evaluate insert steps over a mutable list of tensor-slot values.

    ``runner`` is :meth:`InstrumentationManager.run_instrumentation` (AD and
    memory isolation).  Routines returning ``None`` are observations; a
    non-``None`` return replaces the selected values through the adapter.
    ``provenance`` (if given) is re-attributed to each step's recording tool
    so a failing routine surfaces with full provenance.  Returns whether any
    value was replaced.
    """
    mutated = False
    for step in steps:
        indices = step.resolve(len(values), clamp)
        if clamp and not indices and step.indices != ():
            continue  # selector clamped to nothing: routine not applicable
            # (an explicit empty selector is a pure trigger and still runs)
        arrays = tuple(adapter.read(values, i) for i in indices)
        result = runner(step.func, arrays, step.kwargs,
                        provenance.with_tool(step.action.tool)
                        if provenance is not None else None)
        if result is None:
            continue
        mutated = True
        replacements = result if isinstance(result, tuple) else (result,)
        for index, value in zip(indices, replacements):
            adapter.assign(values, index, value)
    return mutated


# ---------------------------------------------------------------------------
# the plan
# ---------------------------------------------------------------------------

class ExecutionPlan:
    """Everything the cached path needs, compiled once per record."""

    __slots__ = ("op_id", "kind", "epoch", "forward", "backward_actions",
                 "context", "user_state", "hits", "replays", "mutations",
                 "recompiles", "_backward_slices")

    def __init__(self, *, op_id: int | None, kind: PlanKind, epoch: int | None,
                 forward: PlanSlice, backward_actions: tuple[Action, ...],
                 user_state: bool, context=None) -> None:
        self.op_id = op_id
        self.kind = kind
        self.epoch = epoch
        self.forward = forward
        self.backward_actions = backward_actions
        self.context = context
        self.user_state = user_state
        self.hits = 0
        self.replays = 0
        self.mutations = 0
        self.recompiles = 0
        self._backward_slices: dict[str | None, PlanSlice] = {}

    @property
    def has_backward(self) -> bool:
        return bool(self.backward_actions)

    def backward_slice(self, backward_op=None) -> PlanSlice:
        """The (memoized) slice applicable to one backward operator.

        ``backward_op`` is a name or tuple of acceptable names (see
        :func:`compile_backward_slice`).
        """
        plan_slice = self._backward_slices.get(backward_op)
        if plan_slice is None:
            plan_slice = compile_backward_slice(self.backward_actions,
                                                backward_op)
            self._backward_slices[backward_op] = plan_slice
        return plan_slice

    def invalidate(self) -> None:
        """Force a recompile on the next lookup (``cache_append``)."""
        self.epoch = None

    def stats(self) -> dict:
        return {"kind": self.kind.value, "hits": self.hits,
                "replays": self.replays, "mutations": self.mutations,
                "recompiles": self.recompiles}

    def __repr__(self) -> str:
        return (f"ExecutionPlan(op_id={self.op_id}, kind={self.kind.value}, "
                f"replays={self.replays})")


def _classify(forward: PlanSlice, backward_actions: tuple[Action, ...],
              user_state: bool) -> PlanKind:
    if forward.empty and not backward_actions and not user_state:
        return PlanKind.VANILLA
    if (forward.replace is None and not backward_actions and not user_state):
        return PlanKind.OBSERVE_ONLY
    return PlanKind.MUTATING


def compile_actions(forward_actions: Iterable[Action],
                    backward_actions: Iterable[Action] = (),
                    *, epoch: int | None = None, op_id: int | None = None,
                    user_state: bool = False, context=None,
                    prior: ExecutionPlan | None = None,
                    exclude_tools=()) -> ExecutionPlan:
    """Compile an execution plan from raw action lists.

    Actions may arrive on either list regardless of direction (backward
    records historically store their actions on ``forward_actions``); the
    compiler re-partitions by :attr:`ActionType.is_backward`.

    ``exclude_tools`` drops actions recorded by the named tools — the
    quarantine mechanism: a quarantined tool's actions survive in the cached
    record but never reach a compiled plan, so replay is vanilla w.r.t. it.
    """
    pool = tuple(forward_actions) + tuple(backward_actions)
    if exclude_tools:
        pool = tuple(a for a in pool if a.tool not in exclude_tools)
    forward = compile_forward_slice(pool)
    backward = tuple(a for a in pool if a.type.is_backward)
    plan = ExecutionPlan(op_id=op_id, epoch=epoch,
                         kind=_classify(forward, backward, user_state),
                         forward=forward, backward_actions=backward,
                         user_state=user_state, context=context)
    if prior is not None:
        plan.hits = prior.hits
        plan.replays = prior.replays
        plan.mutations = prior.mutations
        plan.recompiles = prior.recompiles + 1
    return plan


def compile_plan(record, *, epoch: int | None, op_id: int | None = None,
                 prior: ExecutionPlan | None = None,
                 exclude_tools=()) -> ExecutionPlan:
    """Compile a :class:`~repro.core.manager.CachedOpRecord` into a plan."""
    return compile_actions(record.forward_actions, record.backward_actions,
                           epoch=epoch, op_id=op_id,
                           user_state=record.user_state,
                           context=record.context, prior=prior,
                           exclude_tools=exclude_tools)
