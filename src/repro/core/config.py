"""Runtime configuration knobs (``amanda.config``).

The knobs here tune *how* the framework executes without changing *what* it
computes.  Each knob reads its default from an ``AMANDA_*`` environment
variable at import time so deployments can flip behavior without touching
code, and exposes a scoped context manager for tests and per-run overrides.

Current knobs:

* ``num_workers`` (env ``AMANDA_NUM_WORKERS``, default ``1`` = serial) — how
  many threads the graph-backend :class:`~repro.graph.session.Session` may
  use for wavefront-parallel plan execution.  ``"auto"`` resolves to the
  host's CPU count.  Values ``<= 1`` keep the classic serial executor.  The
  executor falls back to serial regardless of this knob whenever the plan is
  not provably parallel-safe (see DESIGN.md, "Parallel execution").
* ``effect_analysis`` (env ``AMANDA_EFFECT_ANALYSIS``, default on) — decide
  parallel eligibility with the static effect system / race detector
  (:mod:`repro.analysis.effects`), serializing only the conflicting op
  pairs.  Off restores the legacy all-or-nothing classification (any store
  writer, training batch norm or non-``parallel_safe`` PyCall forces the
  whole plan serial) — an escape hatch and the A/B benchmarking baseline.
* ``arena_reuse`` (env ``AMANDA_ARENA``, default off) — recycle executor
  intermediates through a size-bucketed buffer arena
  (:class:`repro.eager.alloc.Arena`): each buffer is released at its
  statically-computed last use and reused by later ops, so steady-state
  runs stop churning fresh numpy arrays.  Results are bit-identical;
  tools that *retain* raw references to intermediate arrays across run
  boundaries should copy them while the arena is on.
* ``plan_cache_size`` (env ``AMANDA_PLAN_CACHE_SIZE``, default 64) — LRU
  bound on the per-session compiled-plan cache.  Long-lived sessions that
  cycle through many distinct fetch sets evict the least recently used
  plan instead of accumulating entries without bound.
* ``capture`` (env ``AMANDA_CAPTURE``, default on) — kill switch for
  symbolic capture (:mod:`repro.capture`).  A module wrapped with
  ``capture()`` traces its eager ops into the graph IR and replays them
  through the compiled :class:`~repro.graph.session.Session`; with the
  knob off the wrapper becomes a transparent pass-through to plain eager
  dispatch (no tracing, no guards), which is the safe rollback if a
  captured workload misbehaves in production.
* ``serve_workers`` (env ``AMANDA_SERVE_WORKERS``, default ``2``) — worker
  threads of a :class:`repro.serve.ServeRuntime`.  Each worker pulls sealed
  micro-batches off the shared request queue and executes them on pooled
  sessions; ``"auto"`` resolves to the host CPU count.
* ``sample_rate`` (env ``AMANDA_SAMPLE_RATE``, default ``1``) — sampled
  instrumentation for the serving runtime: instrument 1-in-N requests per
  tenant and route the rest through the vanilla fast path (an
  instrumentation-exempt pooled session the graph driver never intercepts).
  ``1`` instruments every request; ``0`` disables instrumentation entirely.
* ``batch_deadline_ms`` (env ``AMANDA_BATCH_DEADLINE_MS``, default ``2.0``)
  — how long the serving queue holds an open micro-batch waiting for it to
  fill before flushing it anyway (tail-latency bound on batching).
* ``serve_batch`` (env ``AMANDA_SERVE_BATCH``, default ``8``) — micro-batch
  size at which the serving queue seals a batch immediately (flush on
  batch-size; the deadline above flushes partial batches).
* ``memory_budget`` (env ``AMANDA_MEMORY_BUDGET``, default ``0`` = off) —
  activation-memory budget in bytes for the graph executor.  Accepts plain
  integers or ``K``/``M``/``G`` suffixes (``"512M"``).  With a budget set,
  plan compilation runs the static rematerialization pass
  (:mod:`repro.analysis.remat`): when the liveness bound exceeds the budget,
  effect-pure intermediates are evicted at their scheduled last use and
  recomputed before later consumers, trading FLOPs for peak memory.  ``0``
  disables budgeting entirely (no remat lowering, no per-step releases in
  the serial executor without the arena).
"""

from __future__ import annotations

import os
from contextlib import contextmanager

__all__ = ["Config", "config", "num_workers", "effect_analysis",
           "arena_reuse", "plan_cache_size", "capture_enabled",
           "serve_workers", "sample_rate", "batch_deadline_ms",
           "serve_batch", "memory_budget"]


def _parse_workers(value: str | int | None, default: int = 1) -> int:
    """Parse a worker-count setting; invalid or missing values mean serial."""
    if value is None:
        return default
    if isinstance(value, str):
        value = value.strip().lower()
        if not value:
            return default
        if value == "auto":
            return max(1, os.cpu_count() or 1)
    try:
        workers = int(value)
    except (TypeError, ValueError):
        return default
    return max(1, workers)


def _parse_flag(value: str | bool | None, default: bool = True) -> bool:
    """Parse an on/off setting; unrecognized values keep the default."""
    if value is None:
        return default
    if isinstance(value, bool):
        return value
    text = value.strip().lower()
    if text in ("1", "true", "on", "yes"):
        return True
    if text in ("0", "false", "off", "no"):
        return False
    return default


def _parse_bound(value: str | int | None, default: int) -> int:
    """Parse a positive cache bound; invalid or missing keeps the default."""
    if value is None:
        return default
    try:
        bound = int(value)
    except (TypeError, ValueError):
        return default
    return max(1, bound)


def _parse_rate(value: str | int | None, default: int) -> int:
    """Parse a non-negative 1-in-N sampling rate (0 = never sample)."""
    if value is None:
        return default
    try:
        rate = int(value)
    except (TypeError, ValueError):
        return default
    return max(0, rate)


def _parse_bytes(value: str | int | None, default: int = 0) -> int:
    """Parse a byte count with optional K/M/G suffix; 0 (or junk) = off."""
    if value is None:
        return default
    if isinstance(value, str):
        text = value.strip().lower()
        if not text:
            return default
        scale = 1
        if text[-1] in "kmg":
            scale = {"k": 1 << 10, "m": 1 << 20, "g": 1 << 30}[text[-1]]
            text = text[:-1]
        try:
            return max(0, int(float(text) * scale))
        except (TypeError, ValueError):
            return default
    try:
        return max(0, int(value))
    except (TypeError, ValueError):
        return default


def _parse_ms(value: str | float | None, default: float) -> float:
    """Parse a non-negative duration in milliseconds."""
    if value is None:
        return default
    try:
        ms = float(value)
    except (TypeError, ValueError):
        return default
    return max(0.0, ms)


class Config:
    """Process-global runtime knobs, env-seeded and scope-overridable."""

    def __init__(self) -> None:
        self.refresh_from_env()

    def refresh_from_env(self) -> None:
        """Re-read every knob from its environment variable."""
        self.num_workers = _parse_workers(os.environ.get("AMANDA_NUM_WORKERS"))
        self.effect_analysis = _parse_flag(
            os.environ.get("AMANDA_EFFECT_ANALYSIS"))
        self.arena_reuse = _parse_flag(os.environ.get("AMANDA_ARENA"),
                                       default=False)
        self.plan_cache_size = _parse_bound(
            os.environ.get("AMANDA_PLAN_CACHE_SIZE"), default=64)
        self.capture = _parse_flag(os.environ.get("AMANDA_CAPTURE"))
        self.serve_workers = _parse_workers(
            os.environ.get("AMANDA_SERVE_WORKERS"), default=2)
        self.sample_rate = _parse_rate(
            os.environ.get("AMANDA_SAMPLE_RATE"), default=1)
        self.batch_deadline_ms = _parse_ms(
            os.environ.get("AMANDA_BATCH_DEADLINE_MS"), default=2.0)
        self.serve_batch = _parse_bound(
            os.environ.get("AMANDA_SERVE_BATCH"), default=8)
        self.memory_budget = _parse_bytes(
            os.environ.get("AMANDA_MEMORY_BUDGET"), default=0)

    def set_num_workers(self, workers: int | str) -> None:
        self.num_workers = _parse_workers(workers)

    def __repr__(self) -> str:
        return (f"Config(num_workers={self.num_workers}, "
                f"effect_analysis={self.effect_analysis}, "
                f"arena_reuse={self.arena_reuse}, "
                f"plan_cache_size={self.plan_cache_size}, "
                f"capture={self.capture}, "
                f"serve_workers={self.serve_workers}, "
                f"sample_rate={self.sample_rate}, "
                f"batch_deadline_ms={self.batch_deadline_ms}, "
                f"serve_batch={self.serve_batch}, "
                f"memory_budget={self.memory_budget})")


#: process-global configuration instance (``amanda.config``)
config = Config()


@contextmanager
def num_workers(workers: int | str):
    """Scope-override the executor worker count (``amanda.num_workers(4)``)."""
    previous = config.num_workers
    config.set_num_workers(workers)
    try:
        yield config
    finally:
        config.num_workers = previous


@contextmanager
def effect_analysis(enabled: bool):
    """Scope-override the effect-analysis knob (``amanda.effect_analysis``)."""
    previous = config.effect_analysis
    config.effect_analysis = _parse_flag(enabled)
    try:
        yield config
    finally:
        config.effect_analysis = previous


@contextmanager
def arena_reuse(enabled: bool):
    """Scope-override the buffer-arena knob (``amanda.arena_reuse(True)``)."""
    previous = config.arena_reuse
    config.arena_reuse = _parse_flag(enabled, default=False)
    try:
        yield config
    finally:
        config.arena_reuse = previous


@contextmanager
def plan_cache_size(bound: int):
    """Scope-override the plan-cache LRU bound."""
    previous = config.plan_cache_size
    config.plan_cache_size = _parse_bound(bound, default=previous)
    try:
        yield config
    finally:
        config.plan_cache_size = previous


@contextmanager
def capture_enabled(enabled: bool):
    """Scope-override the symbolic-capture knob (``amanda.capture_enabled``)."""
    previous = config.capture
    config.capture = _parse_flag(enabled)
    try:
        yield config
    finally:
        config.capture = previous


@contextmanager
def serve_workers(workers: int | str):
    """Scope-override the serving worker count (``amanda.serve_workers``)."""
    previous = config.serve_workers
    config.serve_workers = _parse_workers(workers, default=previous)
    try:
        yield config
    finally:
        config.serve_workers = previous


@contextmanager
def sample_rate(rate: int):
    """Scope-override the 1-in-N instrumentation sampling rate."""
    previous = config.sample_rate
    config.sample_rate = _parse_rate(rate, default=previous)
    try:
        yield config
    finally:
        config.sample_rate = previous


@contextmanager
def batch_deadline_ms(deadline: float):
    """Scope-override the micro-batch flush deadline (milliseconds)."""
    previous = config.batch_deadline_ms
    config.batch_deadline_ms = _parse_ms(deadline, default=previous)
    try:
        yield config
    finally:
        config.batch_deadline_ms = previous


@contextmanager
def memory_budget(budget: int | str):
    """Scope-override the executor memory budget (``amanda.memory_budget``).

    Accepts bytes or a ``K``/``M``/``G``-suffixed string; ``0`` disables
    budgeting for the scope.
    """
    previous = config.memory_budget
    config.memory_budget = _parse_bytes(budget, default=previous)
    try:
        yield config
    finally:
        config.memory_budget = previous


@contextmanager
def serve_batch(size: int):
    """Scope-override the micro-batch size bound."""
    previous = config.serve_batch
    config.serve_batch = _parse_bound(size, default=previous)
    try:
        yield config
    finally:
        config.serve_batch = previous
