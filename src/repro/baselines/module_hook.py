"""Module-hook-based ad-hoc instrumentation (the PyTorch-hooks baseline).

These implementations only see *module boundaries*: functional ops (residual
adds, attention math, gradient accumulation) are invisible to them — the
coverage deficit quantified in Fig. 9.  They are deliberately written in the
style of real community code (iterate ``named_modules``, register hooks,
clean up handles).
"""

from __future__ import annotations

import numpy as np

from ..eager.layers import Conv2d, Linear
from ..eager.module import Module

__all__ = ["ModuleHookTracer", "ModuleHookFlopsProfiler", "ModuleHookPruner"]

#: module class name -> the canonical op types its forward issues, used to
#: credit module hooks with the ops they *can* observe indirectly
_LEAF_MODULES = ("Linear", "Conv2d", "BatchNorm2d", "BatchNorm1d", "LayerNorm",
                 "Embedding", "ReLU", "GELU", "Tanh", "Sigmoid", "Softmax",
                 "MaxPool2d", "AvgPool2d", "AdaptiveAvgPool2d", "Dropout",
                 "Flatten", "Identity")


class ModuleHookTracer:
    """Counts instrumentation points reachable through module hooks.

    One forward hook fires per leaf-module call; one full-backward hook fires
    per leaf module during backward — regardless of how many operators the
    module actually launched.
    """

    def __init__(self, model: Module) -> None:
        self.model = model
        self.forward_events: list[str] = []
        self.backward_events: list[str] = []
        self._handles = []

    def attach(self) -> "ModuleHookTracer":
        for name, module in self.model.named_modules():
            if type(module).__name__ not in _LEAF_MODULES:
                continue
            self._handles.append(module.register_forward_hook(
                self._make_forward_hook(name)))
            self._handles.append(module.register_full_backward_hook(
                self._make_backward_hook(name)))
        return self

    def detach(self) -> None:
        for handle in self._handles:
            handle.remove()
        self._handles.clear()

    def _make_forward_hook(self, name: str):
        def hook(module, inputs, output):
            self.forward_events.append(name)
        return hook

    def _make_backward_hook(self, name: str):
        def hook(module, grad_inputs, grad_outputs):
            self.backward_events.append(name)
        return hook

    def reset(self) -> None:
        self.forward_events.clear()
        self.backward_events.clear()


class ModuleHookFlopsProfiler:
    """FLOPs profiling through forward hooks (torchprofile-style).

    Misses every functional op: residual adds, attention matmuls/softmax,
    functional activations.
    """

    def __init__(self, model: Module) -> None:
        self.model = model
        self.flops: dict[str, int] = {}
        self._handles = []

    def attach(self) -> "ModuleHookFlopsProfiler":
        for name, module in self.model.named_modules():
            if isinstance(module, (Linear, Conv2d)):
                self._handles.append(module.register_forward_hook(
                    self._make_hook(name, module)))
        return self

    def detach(self) -> None:
        for handle in self._handles:
            handle.remove()
        self._handles.clear()

    def _make_hook(self, name: str, module):
        def hook(mod, inputs, output):
            out_shape = output.shape
            if isinstance(module, Conv2d):
                cin_khkw = (module.in_channels * module.kernel_size[0]
                            * module.kernel_size[1])
                self.flops[name] = 2 * int(np.prod(out_shape)) * cin_khkw
            else:
                self.flops[name] = (2 * int(np.prod(out_shape))
                                    * module.in_features)
        return hook

    def total_flops(self) -> int:
        return sum(self.flops.values())


class ModuleHookPruner:
    """Static magnitude pruning via module traversal + hooks.

    Masks parameters in place before each forward (pre-hook) and re-masks
    after optimizer steps via a gradient hook on the parameters.  Only works
    for models whose prunable computation lives in ``Linear``/``Conv2d``
    modules — functional matmuls escape it.
    """

    def __init__(self, model: Module, sparsity: float = 0.5) -> None:
        self.model = model
        self.sparsity = sparsity
        self.masks: dict[str, np.ndarray] = {}
        self._handles = []

    def attach(self) -> "ModuleHookPruner":
        from ..tools.pruning import magnitude_mask
        for name, module in self.model.named_modules():
            if not isinstance(module, (Linear, Conv2d)):
                continue
            mask = magnitude_mask(module.weight.data, self.sparsity)
            self.masks[name] = mask
            module.weight.data *= mask
            self._handles.append(module.register_forward_pre_hook(
                self._make_pre_hook(module, mask)))
            module.weight.register_hook(self._make_grad_hook(mask))
        return self

    def detach(self) -> None:
        for handle in self._handles:
            handle.remove()
        self._handles.clear()

    @staticmethod
    def _make_pre_hook(module, mask):
        def hook(mod, inputs):
            module.weight.data *= mask
            return None
        return hook

    @staticmethod
    def _make_grad_hook(mask):
        def hook(grad):
            return grad * mask
        return hook

    def overall_sparsity(self) -> float:
        zeros = sum(int((m == 0).sum()) for m in self.masks.values())
        total = sum(m.size for m in self.masks.values())
        return zeros / total if total else 0.0
