"""Session-hook / graph-mode ad-hoc baselines (Tbl. 3/4, Sec. 7).

TensorFlow-1 users instrument training through ``SessionRunHook``: extra
fetches can be attached before a run and observed after, and variables can be
mutated between runs.  Both capabilities (and their limits — no graph
rewriting, so no operator insertion) are reproduced here against the graph
backend.
"""

from __future__ import annotations

import numpy as np

from ..graph.core import Graph
from ..graph.session import RunContext, SessionRunHook
from ..tools.pruning import magnitude_mask, tile_mask

__all__ = ["TracingSessionHook", "WeightPruningSessionHook"]


class TracingSessionHook(SessionRunHook):
    """Traces op outputs by attaching extra fetches (TF session-hook tracing).

    Limitation mirrored from TF: only *existing* graph tensors can be fetched;
    no operators can be inserted, and the graph seals after first submission.
    """

    def __init__(self, tensors) -> None:
        self.tensors = list(tensors)
        self.traces: list[dict[str, np.ndarray]] = []

    def before_run(self, run_context: RunContext):
        return self.tensors

    def after_run(self, run_context: RunContext, run_values) -> None:
        self.traces.append(dict(run_context.extra_results))


class WeightPruningSessionHook(SessionRunHook):
    """Static weight pruning by mutating variables around each session run.

    The classic TF-1 recipe (as in the tile-wise pruning project of Tbl. 4):
    compute masks from the variable store, re-apply them after every training
    step so the optimizer update cannot resurrect pruned weights.
    """

    def __init__(self, graph: Graph, sparsity: float = 0.5,
                 tile_shape: tuple[int, int] | None = None,
                 variable_filter=None) -> None:
        self.graph = graph
        self.sparsity = sparsity
        self.tile_shape = tile_shape
        self.variable_filter = variable_filter or (
            lambda name: name.endswith("_w") or "conv_w" in name or "fc_w" in name)
        self.masks: dict[str, np.ndarray] = {}

    def initialize_masks(self) -> None:
        for name in self.graph.variables.names():
            if not self.variable_filter(name):
                continue
            value = self.graph.variables.read(name)
            if value.ndim < 2:
                continue
            if self.tile_shape is not None:
                mask = tile_mask(value, self.tile_shape, self.sparsity)
            else:
                mask = magnitude_mask(value, self.sparsity)
            self.masks[name] = mask
        self._apply()

    def before_run(self, run_context: RunContext):
        if not self.masks:
            self.initialize_masks()
        self._apply()
        return None

    def after_run(self, run_context: RunContext, run_values) -> None:
        self._apply()

    def _apply(self) -> None:
        for name, mask in self.masks.items():
            self.graph.variables.update_in_place(name, lambda v, m=mask: v * m)

    def overall_sparsity(self) -> float:
        zeros = sum(int((m == 0).sum()) for m in self.masks.values())
        total = sum(m.size for m in self.masks.values())
        return zeros / total if total else 0.0
