"""Ad-hoc instrumentation baselines the paper compares Amanda against."""

from .module_hook import (ModuleHookFlopsProfiler, ModuleHookPruner,
                          ModuleHookTracer)
from .optimizer_wrap import APEXStyleSparsity
from .session_hook import TracingSessionHook, WeightPruningSessionHook
from .source_mod import (ActivationPrunedResNet, ActivationPrunedResNetBlock,
                         AttentionPrunedBert, ChannelPrunedLeNet)

__all__ = [
    "ModuleHookTracer", "ModuleHookFlopsProfiler", "ModuleHookPruner",
    "APEXStyleSparsity", "TracingSessionHook", "WeightPruningSessionHook",
    "ChannelPrunedLeNet", "ActivationPrunedResNet",
    "ActivationPrunedResNetBlock", "AttentionPrunedBert",
]
