"""Source-modification ad-hoc baselines (Tbl. 3/4 "Source Modification").

Community dynamic-pruning projects commonly copy a model's source and weave
the pruning logic into ``forward`` — per supported model.  These classes do
exactly that for the reproduction's model zoo: each is a full model rewrite
with the pruning math inlined, non-portable by construction (supporting a new
model means writing another class).
"""

from __future__ import annotations

import numpy as np

from ..eager import (AdaptiveAvgPool2d, BatchNorm2d, Conv2d, Flatten, Linear,
                     MaxPool2d, Module, ReLU, Sequential, Tensor)
from ..eager import functional as F

__all__ = ["ChannelPrunedLeNet", "ActivationPrunedResNetBlock",
           "ActivationPrunedResNet", "AttentionPrunedBert"]


def _gate_channels(x: Tensor, keep_ratio: float) -> Tensor:
    """FBS-style dynamic channel gating, woven directly into forward."""
    data = x.data
    channels = data.shape[1]
    keep = max(1, int(round(channels * keep_ratio)))
    saliency = np.abs(data).mean(axis=(0, 2, 3))
    kept = np.argsort(saliency)[-keep:]
    mask = np.zeros(channels)
    mask[kept] = 1.0
    return x * Tensor(mask.reshape(1, channels, 1, 1))


class ChannelPrunedLeNet(Module):
    """LeNet with dynamic channel pruning written into the source."""

    def __init__(self, num_classes: int = 4, in_channels: int = 3,
                 input_size: int = 16, keep_ratio: float = 0.75,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.keep_ratio = keep_ratio
        self.conv1 = Conv2d(in_channels, 6, 5, padding=2, rng=rng)
        self.pool1 = MaxPool2d(2)
        self.conv2 = Conv2d(6, 16, 5, padding=2, rng=rng)
        self.pool2 = MaxPool2d(2)
        spatial = input_size // 4
        self.flatten = Flatten()
        self.fc1 = Linear(16 * spatial * spatial, 32, rng=rng)
        self.fc2 = Linear(32, num_classes, rng=rng)

    def forward(self, x):
        x = _gate_channels(x, self.keep_ratio)       # pruning woven in
        x = self.pool1(F.relu(self.conv1(x)))
        x = _gate_channels(x, self.keep_ratio)       # pruning woven in
        x = self.pool2(F.relu(self.conv2(x)))
        x = F.relu(self.fc1(self.flatten(x)))
        return self.fc2(x)


def _prune_activation(x: Tensor, keep_ratio: float) -> Tensor:
    data = x.data
    k = int(round(data.size * (1.0 - keep_ratio)))
    if k <= 0:
        return x
    flat = np.abs(data).reshape(-1)
    threshold = np.partition(flat, k - 1)[k - 1]
    return x * Tensor((np.abs(data) > threshold).astype(data.dtype))


class ActivationPrunedResNetBlock(Module):
    """A ResNet basic block with activation pruning inlined after each ReLU."""

    def __init__(self, in_channels: int, channels: int, stride: int = 1,
                 keep_ratio: float = 0.5,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        self.keep_ratio = keep_ratio
        self.conv1 = Conv2d(in_channels, channels, 3, stride=stride,
                            padding=1, bias=False, rng=rng)
        self.bn1 = BatchNorm2d(channels)
        self.conv2 = Conv2d(channels, channels, 3, padding=1, bias=False,
                            rng=rng)
        self.bn2 = BatchNorm2d(channels)
        self.downsample = None
        if stride != 1 or in_channels != channels:
            self.downsample = Sequential(
                Conv2d(in_channels, channels, 1, stride=stride, bias=False,
                       rng=rng),
                BatchNorm2d(channels))

    def forward(self, x):
        identity = x if self.downsample is None else self.downsample(x)
        out = _prune_activation(F.relu(self.bn1(self.conv1(x))),
                                self.keep_ratio)
        out = self.bn2(self.conv2(out))
        return _prune_activation(F.relu(out + identity), self.keep_ratio)


class ActivationPrunedResNet(Module):
    """ResNet-18-style network with activation pruning woven into the source."""

    def __init__(self, num_classes: int = 4, in_channels: int = 3,
                 width: int = 4, keep_ratio: float = 0.5,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.conv1 = Conv2d(in_channels, width, 3, padding=1, bias=False,
                            rng=rng)
        self.bn1 = BatchNorm2d(width)
        self.maxpool = MaxPool2d(2)
        blocks = []
        in_planes = width
        for planes, stride in ((width, 1), (width, 1), (width * 2, 2),
                               (width * 2, 1)):
            blocks.append(ActivationPrunedResNetBlock(
                in_planes, planes, stride, keep_ratio, rng=rng))
            in_planes = planes
        self.blocks = Sequential(*blocks)
        self.pool = AdaptiveAvgPool2d()
        self.flatten = Flatten()
        self.fc = Linear(in_planes, num_classes, rng=rng)

    def forward(self, x):
        x = self.maxpool(F.relu(self.bn1(self.conv1(x))))
        x = self.blocks(x)
        return self.fc(self.flatten(self.pool(x)))


class AttentionPrunedBert(Module):
    """BERT-mini with Block-Skim-style attention pruning inlined.

    A full reimplementation of the encoder: the attention-weight thresholding
    happens inside ``forward``, so supporting RoBERTa/ALBERT/... would each
    require another copy (the Tbl. 4 pain point).
    """

    def __init__(self, vocab: int = 32, hidden: int = 16, layers: int = 2,
                 heads: int = 2, intermediate: int = 32, max_len: int = 32,
                 num_labels: int = 2, threshold_ratio: float = 0.1,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        from ..eager import Embedding, GELU, LayerNorm, MultiheadAttention
        rng = rng or np.random.default_rng(0)
        self.threshold_ratio = threshold_ratio
        self.token_embedding = Embedding(vocab, hidden, rng=rng)
        self.position_embedding = Embedding(max_len, hidden, rng=rng)
        self.embedding_norm = LayerNorm(hidden)
        self.hidden, self.heads = hidden, heads
        self.head_dim = hidden // heads
        self.layers = layers
        for i in range(layers):
            setattr(self, f"q_{i}", Linear(hidden, hidden, rng=rng))
            setattr(self, f"k_{i}", Linear(hidden, hidden, rng=rng))
            setattr(self, f"v_{i}", Linear(hidden, hidden, rng=rng))
            setattr(self, f"o_{i}", Linear(hidden, hidden, rng=rng))
            setattr(self, f"norm1_{i}", LayerNorm(hidden))
            setattr(self, f"ffn1_{i}", Linear(hidden, intermediate, rng=rng))
            setattr(self, f"ffn2_{i}", Linear(intermediate, hidden, rng=rng))
            setattr(self, f"norm2_{i}", LayerNorm(hidden))
        self.classifier = Linear(hidden, num_labels, rng=rng)

    def _prune_attention(self, weights: Tensor) -> Tensor:
        data = weights.data
        threshold = data.max(axis=-1, keepdims=True) * self.threshold_ratio
        mask = data >= threshold
        pruned = data * mask
        denominator = pruned.sum(axis=-1, keepdims=True)
        denominator[denominator == 0] = 1.0
        return Tensor(pruned / denominator)

    def forward(self, tokens):
        tokens = tokens if isinstance(tokens, Tensor) else Tensor(tokens)
        batch, seq = tokens.shape
        positions = Tensor(np.arange(seq))
        x = self.token_embedding(tokens) + self.position_embedding(positions)
        x = self.embedding_norm(x)
        h, d = self.heads, self.head_dim
        for i in range(self.layers):
            q = getattr(self, f"q_{i}")(x).reshape(batch, seq, h, d) \
                .transpose(0, 2, 1, 3)
            k = getattr(self, f"k_{i}")(x).reshape(batch, seq, h, d) \
                .transpose(0, 2, 1, 3)
            v = getattr(self, f"v_{i}")(x).reshape(batch, seq, h, d) \
                .transpose(0, 2, 1, 3)
            scores = F.matmul(q, k.transpose(0, 1, 3, 2)) * (1.0 / np.sqrt(d))
            weights = F.softmax(scores, axis=-1)
            weights = self._prune_attention(weights)  # pruning woven in
            attended = F.matmul(weights, v).transpose(0, 2, 1, 3) \
                .reshape(batch, seq, self.hidden)
            x = getattr(self, f"norm1_{i}")(getattr(self, f"o_{i}")(attended) + x)
            inner = F.gelu(getattr(self, f"ffn1_{i}")(x))
            x = getattr(self, f"norm2_{i}")(getattr(self, f"ffn2_{i}")(inner) + x)
        return self.classifier(x)

    def span_logits(self, tokens):
        return self.forward(tokens)[:, :, 0]
