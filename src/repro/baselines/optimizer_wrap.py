"""Optimizer-wrapping ad-hoc baseline (APEX-style, Fig. 1 / Tbl. 4).

NVIDIA APEX's automatic sparsity masks weights/gradients by wrapping the
optimizer: masks are computed once from module parameters, applied to every
parameter before each ``step`` and to the gradients.  Like APEX it only
supports networks built from the module API — parameters used by functional
ops would be invisible.
"""

from __future__ import annotations

import numpy as np

from ..eager.layers import Conv2d, Linear
from ..eager.module import Module
from ..eager.optim import Optimizer
from ..tools.pruning import n_m_mask

__all__ = ["APEXStyleSparsity"]


class APEXStyleSparsity:
    """n:m (default 2:4) structured sparsity by optimizer wrapping."""

    def __init__(self, model: Module, optimizer: Optimizer, n: int = 2,
                 m: int = 4) -> None:
        self.model = model
        self.optimizer = optimizer
        self.n, self.m = n, m
        self.masks: dict[int, np.ndarray] = {}
        self._original_step = None

    def init_masks(self) -> None:
        """Compute masks from the module tree (module-API-only, like APEX)."""
        for name, module in self.model.named_modules():
            if isinstance(module, Linear):
                weight = module.weight
                self.masks[id(weight)] = n_m_mask(weight.data, self.n, self.m)
            elif isinstance(module, Conv2d):
                weight = module.weight
                flat = weight.data.reshape(weight.data.shape[0], -1)
                mask = n_m_mask(flat, self.n, self.m).reshape(weight.data.shape)
                self.masks[id(weight)] = mask
        self._apply_masks()

    def wrap(self) -> None:
        """Monkey-patch ``optimizer.step`` to re-mask after every update."""
        if self._original_step is not None:
            return
        self._original_step = self.optimizer.step

        def masked_step():
            self._mask_gradients()
            self._original_step()
            self._apply_masks()

        self.optimizer.step = masked_step

    def unwrap(self) -> None:
        if self._original_step is not None:
            # drop the instance attribute so the class method shows through
            del self.optimizer.__dict__["step"]
            self._original_step = None

    def _apply_masks(self) -> None:
        for param in self.optimizer.params:
            mask = self.masks.get(id(param))
            if mask is not None:
                param.data *= mask

    def _mask_gradients(self) -> None:
        for param in self.optimizer.params:
            mask = self.masks.get(id(param))
            if mask is not None and param.grad is not None:
                param.grad = param.grad * mask

    def overall_sparsity(self) -> float:
        zeros = sum(int((m == 0).sum()) for m in self.masks.values())
        total = sum(m.size for m in self.masks.values())
        return zeros / total if total else 0.0
