"""Op schema registry: arity, attribute types, shape/dtype inference rules.

Every operator implemented by the graph backend (``graph/builder.py`` plus
``graph/gradients.py`` / ``graph/fusion.py``) and by the eager backend
(``eager/ops.py``) has a registered :class:`OpSchema`.  The schemas drive the
static verifier (:mod:`repro.analysis.verify`) and double as machine-checked
documentation of each op's contract.

Shapes are *partial*: a dimension may be ``None`` (unknown, e.g. fed through
an un-annotated ``Placeholder``) and a whole shape may be ``None`` (fully
unknown, e.g. the output of a user ``PyCall``).  Inference rules propagate
what is known and raise :class:`InferenceError` only on a provable
inconsistency, so unknown shapes never produce false positives.

Completeness is enforced: :func:`missing_graph_schemas` /
:func:`missing_eager_schemas` diff the schema tables against the live op
registries, and a unit test (plus ``python -m repro.analysis``) fails when an
op implementation has no schema — new ops cannot land without one.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping

import numpy as np

__all__ = [
    "Shape", "OpSchema", "SchemaError", "InferenceError", "InferEnv",
    "GRAPH_SCHEMAS", "EAGER_SCHEMAS",
    "register_graph_schema", "register_eager_schema",
    "missing_graph_schemas", "missing_eager_schemas",
    "check_registry_complete", "check_op_against_schema",
    "broadcast_shapes", "validate_mask_shape", "validate_scale",
]

#: a partial shape: tuple of dims (``None`` = unknown dim) or ``None`` entirely
Shape = "tuple[int | None, ...] | None"


class SchemaError(RuntimeError):
    """An op registry / schema registry inconsistency (missing schema...)."""


class InferenceError(ValueError):
    """A provable shape/dtype inconsistency found during static inference."""


@dataclass(frozen=True)
class InferEnv:
    """Read-only lookup state handed to shape-inference rules."""

    #: the graph's VariableStore (graph backend) or None
    variables: Any = None
    #: placeholder/op name -> example shape, e.g. from a feed dict
    feed_shapes: Mapping[str, tuple] = field(default_factory=dict)


@dataclass(frozen=True)
class OpSchema:
    """Static contract of one operator type."""

    op_type: str
    min_inputs: int = 0
    #: None = variadic
    max_inputs: int | None = None
    #: None = dynamic (checked via ``num_outputs_fn`` when given)
    num_outputs: int | None = 1
    #: attr name -> tuple of accepted python types
    attrs: Mapping[str, tuple] = field(default_factory=dict)
    required_attrs: tuple[str, ...] = ()
    #: ``infer(op, in_shapes, env) -> [out_shape, ...]``; None = all unknown
    infer: Callable[[Any, list, InferEnv], list] | None = None
    #: ops whose attrs may carry keys beyond the declared set (PyCall)
    allow_extra_attrs: bool = False
    #: expected number of outputs as a function of the op (variadic outputs)
    num_outputs_fn: Callable[[Any], int] | None = None
    #: dtype kind constraints per input index ('i' = integer-valued)
    input_dtype_kinds: Mapping[int, str] = field(default_factory=dict)


GRAPH_SCHEMAS: dict[str, OpSchema] = {}
EAGER_SCHEMAS: dict[str, OpSchema] = {}


def register_graph_schema(schema: OpSchema) -> OpSchema:
    if schema.op_type in GRAPH_SCHEMAS:
        raise SchemaError(f"duplicate graph schema for {schema.op_type!r}")
    GRAPH_SCHEMAS[schema.op_type] = schema
    return schema


def register_eager_schema(schema: OpSchema) -> OpSchema:
    if schema.op_type in EAGER_SCHEMAS:
        raise SchemaError(f"duplicate eager schema for {schema.op_type!r}")
    EAGER_SCHEMAS[schema.op_type] = schema
    return schema


# ---------------------------------------------------------------------------
# partial-shape algebra
# ---------------------------------------------------------------------------

def is_known(shape) -> bool:
    return shape is not None and all(d is not None for d in shape)


def numel(shape) -> int | None:
    if not is_known(shape):
        return None
    return int(math.prod(shape))


def broadcast_shapes(a, b, what: str = "operands"):
    """Numpy-style broadcast of two partial shapes; None dims stay unknown."""
    if a is None or b is None:
        return None
    out = []
    # missing leading dims broadcast as implicit 1s (numpy semantics)
    for da, db in zip(((1,) * (len(b) - len(a))) + tuple(a),
                      ((1,) * (len(a) - len(b))) + tuple(b)):
        if da is None or db is None:
            # an unknown dim against a known dim d>1 still yields d: the
            # unknown must be either d or 1 for the program to be valid
            known = db if da is None else da
            out.append(known if known is not None and known != 1 else None)
        elif da == db or db == 1:
            out.append(da)
        elif da == 1:
            out.append(db)
        else:
            raise InferenceError(
                f"cannot broadcast {what} of shapes {tuple(a)} and {tuple(b)}")
    return tuple(out)


def _same_dims(a, b) -> bool:
    """True unless the two partial shapes provably differ."""
    if a is None or b is None:
        return True
    if len(a) != len(b):
        return False
    return all(da is None or db is None or da == db for da, db in zip(a, b))


def require_same(a, b, what: str):
    if not _same_dims(a, b):
        raise InferenceError(f"{what}: shapes {a} and {b} are incompatible")
    if a is None:
        return b
    if b is None:
        return a
    return tuple(da if da is not None else db for da, db in zip(a, b))


def _dim(shape, index):
    if shape is None:
        return None
    return shape[index]


def _conv_hw(size, kernel, stride, pad):
    if size is None:
        return None
    out = (size + 2 * pad - kernel) // stride + 1
    if out < 1:
        raise InferenceError(
            f"spatial size {size} too small for kernel {kernel} "
            f"(stride {stride}, padding {pad})")
    return out


# ---------------------------------------------------------------------------
# shared inference rules
# ---------------------------------------------------------------------------

def _infer_elementwise(op, in_shapes, env):
    return [in_shapes[0]]


def _infer_broadcast_binary(op, in_shapes, env):
    return [broadcast_shapes(in_shapes[0], in_shapes[1],
                             what=f"{op.type} inputs")]


def _infer_like(index):
    def rule(op, in_shapes, env):
        return [in_shapes[index]]
    return rule


def _infer_grad_pair(op, in_shapes, env):
    # (incoming grad, reference) -> gradient shaped like both
    return [require_same(in_shapes[0], in_shapes[1],
                         f"{op.type} gradient vs. reference")]


def _infer_matmul(op, in_shapes, env, transpose_a=False, transpose_b=False):
    a, b = in_shapes[0], in_shapes[1]
    if a is None or b is None:
        return [None]
    if len(a) < 2 or len(b) < 2:
        raise InferenceError(
            f"{op.type} needs rank>=2 operands, got {a} and {b}")
    am, ak = (a[-1], a[-2]) if transpose_a else (a[-2], a[-1])
    bk, bn = (b[-1], b[-2]) if transpose_b else (b[-2], b[-1])
    if ak is not None and bk is not None and ak != bk:
        raise InferenceError(
            f"{op.type} inner dimensions disagree: "
            f"{a} (k={ak}) x {b} (k={bk})")
    batch = broadcast_shapes(a[:-2], b[:-2], what=f"{op.type} batch dims")
    if batch is None:
        batch = (None,) * max(len(a), len(b) - 2)
    return [tuple(batch) + (am, bn)]


def _graph_matmul(op, in_shapes, env):
    return _infer_matmul(op, in_shapes, env,
                         op.attrs.get("transpose_a", False),
                         op.attrs.get("transpose_b", False))


def _infer_conv2d_nhwc(op, in_shapes, env):
    x, w = in_shapes[0], in_shapes[1]
    strides = tuple(op.attrs["strides"])
    padding = tuple(op.attrs["padding"])
    if w is not None and len(w) != 4:
        raise InferenceError(f"{op.type} weight must be HWIO rank-4, got {w}")
    if x is not None and len(x) != 4:
        raise InferenceError(f"{op.type} input must be NHWC rank-4, got {x}")
    ci_x, ci_w = _dim(x, 3), _dim(w, 2)
    if ci_x is not None and ci_w is not None and ci_x != ci_w:
        raise InferenceError(
            f"{op.type} input channels {ci_x} != weight in-channels {ci_w} "
            f"(x={x}, w={w})")
    oh = _conv_hw(_dim(x, 1), _dim(w, 0) or 0, strides[0], padding[0]) \
        if _dim(w, 0) is not None else None
    ow = _conv_hw(_dim(x, 2), _dim(w, 1) or 0, strides[1], padding[1]) \
        if _dim(w, 1) is not None else None
    return [(_dim(x, 0), oh, ow, _dim(w, 3))]


def _infer_pool_nhwc(op, in_shapes, env):
    x = in_shapes[0]
    if x is not None and len(x) != 4:
        raise InferenceError(f"{op.type} input must be NHWC rank-4, got {x}")
    kh, kw = op.attrs["ksize"]
    sh, sw = op.attrs["strides"]
    ph, pw = op.attrs["padding"]
    return [(_dim(x, 0), _conv_hw(_dim(x, 1), kh, sh, ph),
             _conv_hw(_dim(x, 2), kw, sw, pw), _dim(x, 3))]


def _infer_bias_add(op, in_shapes, env):
    x, b = in_shapes[0], in_shapes[1]
    if b is not None and len(b) != 1:
        raise InferenceError(f"BiasAdd bias must be rank-1, got {b}")
    cx, cb = (_dim(x, -1) if x else None), _dim(b, 0)
    if cx is not None and cb is not None and cx != cb:
        raise InferenceError(
            f"BiasAdd channel mismatch: input {x} has {cx} channels, "
            f"bias {b} has {cb}")
    return [x]


def _infer_reshape(op, in_shapes, env):
    target = tuple(op.attrs["shape"])
    total = numel(in_shapes[0])
    negatives = [i for i, d in enumerate(target) if d == -1]
    if len(negatives) > 1:
        raise InferenceError(f"Reshape target {target} has multiple -1 dims")
    if negatives:
        if total is None:
            return [tuple(None if d == -1 else d for d in target)]
        rest = math.prod(d for d in target if d != -1)
        if rest == 0 or total % rest:
            raise InferenceError(
                f"Reshape cannot fold {in_shapes[0]} ({total} elements) "
                f"into {target}")
        out = tuple(total // rest if d == -1 else d for d in target)
    else:
        out = target
        if total is not None and math.prod(out) != total:
            raise InferenceError(
                f"Reshape element count mismatch: {in_shapes[0]} has {total} "
                f"elements, target {target} has {math.prod(out)}")
    return [out]


def _infer_transpose(op, in_shapes, env):
    x = in_shapes[0]
    perm = tuple(op.attrs["perm"])
    if x is None:
        return [None]
    if sorted(perm) != list(range(len(x))):
        raise InferenceError(
            f"Transpose perm {perm} is not a permutation of rank {len(x)}")
    return [tuple(x[p] for p in perm)]


def _infer_concat(op, in_shapes, env):
    axis = op.attrs["axis"]
    if any(s is None for s in in_shapes):
        return [None]
    rank = len(in_shapes[0])
    if any(len(s) != rank for s in in_shapes):
        raise InferenceError(f"ConcatV2 rank mismatch across inputs: {in_shapes}")
    out = list(in_shapes[0])
    total = 0
    for s in in_shapes:
        for d in range(rank):
            if d == axis % rank:
                continue
            if s[d] is not None and out[d] is not None and s[d] != out[d]:
                raise InferenceError(
                    f"ConcatV2 non-axis dim {d} mismatch: {in_shapes}")
            out[d] = out[d] if out[d] is not None else s[d]
        total = None if (total is None or s[axis % rank] is None) \
            else total + s[axis % rank]
    out[axis % rank] = total
    return [tuple(out)]


def _infer_reduce(op, in_shapes, env):
    x = in_shapes[0]
    axis = op.attrs.get("axis")
    keepdims = op.attrs.get("keepdims", False)
    if x is None:
        return [None]
    if axis is None:
        return [tuple(1 for _ in x) if keepdims else ()]
    axes = axis if isinstance(axis, tuple) else (axis,)
    axes = {a % len(x) for a in axes}
    if keepdims:
        return [tuple(1 if i in axes else d for i, d in enumerate(x))]
    return [tuple(d for i, d in enumerate(x) if i not in axes)]


def _infer_gather(op, in_shapes, env):
    params, indices = in_shapes[0], in_shapes[1]
    if params is None or indices is None:
        return [None]
    return [tuple(indices) + tuple(params[1:])]


def _infer_batch_norm(op, in_shapes, env):
    x = in_shapes[0]
    channels = _dim(x, -1) if x else None
    gamma = in_shapes[1]
    if gamma is not None and channels is not None and len(gamma) == 1 \
            and gamma[0] != channels:
        raise InferenceError(
            f"FusedBatchNorm gamma {gamma} does not match input channels "
            f"{channels} (x={x})")
    return [x, x, (channels,)]


def _infer_layer_norm(op, in_shapes, env):
    x = in_shapes[0]
    inv_std = None if x is None else tuple(x[:-1]) + (1,)
    return [x, x, inv_std]


def _infer_pycall(op, in_shapes, env):
    # a pass-through wrapper (insert-before / insert-after) returns
    # replacements for exactly the tensors it received, so shapes carry over;
    # a replacement or user PyCall can return anything -> unknown.
    if op.tags.get("pycall_role") == "wrap" \
            and len(op.outputs) == len(op.inputs):
        return list(in_shapes)
    return [None] * len(op.outputs)


def _infer_variable(op, in_shapes, env):
    if env.variables is not None and op.name in env.variables:
        return [tuple(np.asarray(env.variables.read(op.name)).shape)]
    return [None]


def _infer_placeholder(op, in_shapes, env):
    fed = env.feed_shapes.get(op.name)
    if fed is not None:
        return [tuple(fed)]
    declared = op.attrs.get("shape")
    return [tuple(declared) if declared is not None else None]


def _infer_const(op, in_shapes, env):
    return [tuple(np.asarray(op.attrs["value"]).shape)]


def _infer_addn(op, in_shapes, env):
    out = in_shapes[0]
    for s in in_shapes[1:]:
        out = require_same(out, s, "AddN contributions")
    return [out]


def _infer_fused_conv(op, in_shapes, env):
    out = _infer_conv2d_nhwc(op, in_shapes, env)
    if op.attrs.get("has_bias") and len(in_shapes) >= 3:
        _infer_bias_add(op, [out[0], in_shapes[2]], env)
    return out


def _infer_fused_matmul(op, in_shapes, env):
    out = _graph_matmul(op, in_shapes, env)
    if op.attrs.get("has_bias") and len(in_shapes) >= 3:
        _infer_bias_add(op, [out[0], in_shapes[2]], env)
    return out


#: binary elementwise op types a FusedElementwise chain may contain
#: (mirrors ``repro.graph.fusion._EWISE_BINARY``)
_FUSED_EWISE_BINARY = frozenset({"Add", "Sub", "Mul", "RealDiv"})


def _infer_fused_elementwise(op, in_shapes, env):
    """Replay the absorbed chain's shape flow: head, then broadcast links."""
    chain = op.attrs["chain"]
    head_type, _ = chain[0]
    if head_type in _FUSED_EWISE_BINARY:
        shape = broadcast_shapes(in_shapes[0], in_shapes[1],
                                 what=f"{op.name} head {head_type} inputs")
        pos = 2
    else:
        shape = in_shapes[0]
        pos = 1
    for op_type, _side in chain[1:]:
        if op_type in _FUSED_EWISE_BINARY:
            if pos >= len(in_shapes):
                raise InferenceError(
                    f"{op.name}: chain expects more inputs than provided "
                    f"({len(in_shapes)})")
            shape = broadcast_shapes(shape, in_shapes[pos],
                                     what=f"{op.name} link {op_type}")
            pos += 1
    if pos != len(in_shapes):
        raise InferenceError(
            f"{op.name}: chain consumes {pos} inputs but the op has "
            f"{len(in_shapes)}")
    return [shape]


def _infer_xent(op, in_shapes, env):
    logits = in_shapes[0]
    return [(), logits]


# ---------------------------------------------------------------------------
# graph-backend schemas (TF-style op types, NHWC/HWIO layouts)
# ---------------------------------------------------------------------------

_TUPLEY = (tuple, list)
_AXISY = (int, tuple, list, type(None))


def _g(op_type, min_inputs=0, max_inputs=None, num_outputs=1, attrs=None,
       required=(), infer=None, **kw):
    if max_inputs is None and min_inputs is not None:
        max_inputs = min_inputs
    return register_graph_schema(OpSchema(
        op_type, min_inputs, max_inputs, num_outputs, attrs or {},
        tuple(required), infer, **kw))


_g("Placeholder", 0, attrs={"shape": _TUPLEY + (type(None),)},
   infer=_infer_placeholder)
_g("Const", 0, attrs={"value": (np.ndarray, np.generic, float, int)},
   required=("value",), infer=_infer_const)
_g("Variable", 0, attrs={"trainable": (bool,)}, infer=_infer_variable)
_g("Identity", 1, infer=_infer_elementwise)

for _name in ("Add", "Sub", "Mul", "RealDiv"):
    _g(_name, 2, infer=_infer_broadcast_binary)
for _name in ("Neg", "Square", "Sqrt", "Relu", "Gelu", "Sigmoid", "Tanh",
              "Softmax", "LogSoftmax", "OnesLike"):
    _g(_name, 1, infer=_infer_elementwise)
_g("BroadcastGradient", 2, infer=_infer_like(1))

_g("MatMul", 2, attrs={"transpose_a": (bool,), "transpose_b": (bool,)},
   infer=_graph_matmul)
_g("Conv2D", 2, attrs={"strides": _TUPLEY, "padding": _TUPLEY},
   required=("strides", "padding"), infer=_infer_conv2d_nhwc)
_g("Conv2DBackpropInput", 3, attrs={"strides": _TUPLEY, "padding": _TUPLEY},
   required=("strides", "padding"), infer=_infer_like(0))
_g("Conv2DBackpropFilter", 3, attrs={"strides": _TUPLEY, "padding": _TUPLEY},
   required=("strides", "padding"), infer=_infer_like(1))
_g("BiasAdd", 2, infer=_infer_bias_add)
_g("BiasAddGrad", 1,
   infer=lambda op, s, env: [(_dim(s[0], -1),) if s[0] else None])

for _name in ("ReluGrad", "GeluGrad"):
    _g(_name, 2, infer=_infer_grad_pair)
for _name in ("SigmoidGrad", "TanhGrad", "SoftmaxGrad", "LogSoftmaxGrad"):
    _g(_name, 2, infer=_infer_grad_pair)

_POOL_ATTRS = {"ksize": _TUPLEY, "strides": _TUPLEY, "padding": _TUPLEY}
_g("MaxPool", 1, attrs=_POOL_ATTRS, required=tuple(_POOL_ATTRS),
   infer=_infer_pool_nhwc)
_g("AvgPool", 1, attrs=_POOL_ATTRS, required=tuple(_POOL_ATTRS),
   infer=_infer_pool_nhwc)
_g("MaxPoolGrad", 3, attrs=_POOL_ATTRS, required=tuple(_POOL_ATTRS),
   infer=_infer_like(0))
_g("AvgPoolGrad", 2, attrs=_POOL_ATTRS, required=tuple(_POOL_ATTRS),
   infer=_infer_like(0))

_g("FusedBatchNorm", 3, num_outputs=3,
   attrs={"training": (bool,), "momentum": (float,), "eps": (float,),
          "running_mean": (str,), "running_var": (str,)},
   required=("running_mean", "running_var"), infer=_infer_batch_norm)
_g("FusedBatchNormGrad", 4, num_outputs=3, attrs={"training": (bool,)},
   infer=lambda op, s, env: [s[0], s[3], s[3]])
_g("LayerNorm", 3, num_outputs=3, attrs={"eps": (float,)},
   infer=_infer_layer_norm)
_g("LayerNormGrad", 4, num_outputs=3,
   infer=lambda op, s, env: [s[0], s[3], s[3]])

_g("Reshape", 1, attrs={"shape": _TUPLEY}, required=("shape",),
   infer=_infer_reshape)
_g("ReshapeGrad", 2, infer=_infer_like(1))
_g("Transpose", 1, attrs={"perm": _TUPLEY}, required=("perm",),
   infer=_infer_transpose)
_g("ConcatV2", 1, max_inputs=2 ** 30, attrs={"axis": (int,)},
   required=("axis",), infer=_infer_concat)
_g("ConcatGrad", 2, max_inputs=2 ** 30, num_outputs=None,
   attrs={"axis": (int,)}, required=("axis",),
   num_outputs_fn=lambda op: len(op.inputs) - 1,
   infer=lambda op, s, env: list(s[1:]))

for _name in ("Mean", "Sum"):
    _g(_name, 1, attrs={"axis": _AXISY, "keepdims": (bool,)},
       infer=_infer_reduce)
_g("ReduceGrad", 2,
   attrs={"axis": _AXISY, "keepdims": (bool,), "mean": (bool,)},
   required=("mean",), infer=_infer_like(1))

_g("GatherV2", 2, infer=_infer_gather)
_g("GatherGrad", 3, infer=_infer_like(1))
_g("SparseSoftmaxCrossEntropyWithLogits", 2, num_outputs=2, infer=_infer_xent)
_g("XentGrad", 2, infer=_infer_like(1))
_g("Dropout", 1, num_outputs=2,
   attrs={"rate": (float,), "training": (bool,), "seed": (int, type(None))},
   infer=lambda op, s, env: [s[0], s[0]])

for _name in ("AssignSub", "AssignAdd", "AssignVar"):
    _g(_name, 2, attrs={"var_name": (str,)}, required=("var_name",),
       infer=_infer_like(0))
_g("NoOp", 0, infer=lambda op, s, env: [()])
_g("PyCall", 0, max_inputs=2 ** 30, num_outputs=None,
   attrs={"func": (object,)}, required=("func",), allow_extra_attrs=True,
   num_outputs_fn=lambda op: len(op.outputs), infer=_infer_pycall)
_g("AddN", 1, max_inputs=2 ** 30, infer=_infer_addn)

_g("FusedConv2D", 2, max_inputs=3,
   attrs={"strides": _TUPLEY, "padding": _TUPLEY, "has_bias": (bool,),
          "has_relu": (bool,), "transpose_a": (bool,), "transpose_b": (bool,)},
   required=("strides", "padding"), infer=_infer_fused_conv)
_g("FusedMatMul", 2, max_inputs=3,
   attrs={"has_bias": (bool,), "has_relu": (bool,),
          "transpose_a": (bool,), "transpose_b": (bool,)},
   infer=_infer_fused_matmul)
_g("FusedElementwise", 1, max_inputs=64, attrs={"chain": (tuple,)},
   required=("chain",), infer=_infer_fused_elementwise)


# ---------------------------------------------------------------------------
# eager-backend schemas (canonical lowercase names, NCHW/OIHW layouts)
# ---------------------------------------------------------------------------

class _EagerOpView:
    """Adapts (name, attrs, n_outputs) to the op interface infer rules use."""

    __slots__ = ("type", "name", "attrs", "inputs", "outputs", "tags")

    def __init__(self, name: str, attrs: Mapping[str, Any],
                 num_inputs: int, num_outputs: int) -> None:
        self.type = name
        self.name = name
        self.attrs = dict(attrs)
        self.inputs = [None] * num_inputs
        self.outputs = [None] * num_outputs
        self.tags = {}


def infer_eager_shapes(name: str, in_shapes: Iterable, attrs=None,
                       env: InferEnv | None = None) -> list:
    """Run the eager op's schema inference over partial input shapes."""
    schema = EAGER_SCHEMAS.get(name)
    in_shapes = list(in_shapes)
    if schema is None:
        raise SchemaError(f"no eager schema registered for {name!r}")
    if schema.infer is None:
        return [None] * (schema.num_outputs or 1)
    view = _EagerOpView(name, attrs or {}, len(in_shapes),
                        schema.num_outputs or 1)
    return schema.infer(view, in_shapes, env or InferEnv())


def _infer_conv2d_nchw(op, in_shapes, env):
    x, w = in_shapes[0], in_shapes[1]
    stride = tuple(op.attrs.get("stride", (1, 1)))
    padding = tuple(op.attrs.get("padding", (0, 0)))
    if x is not None and len(x) != 4:
        raise InferenceError(f"conv2d input must be NCHW rank-4, got {x}")
    if w is not None and len(w) != 4:
        raise InferenceError(f"conv2d weight must be OIHW rank-4, got {w}")
    ci_x, ci_w = _dim(x, 1), _dim(w, 1)
    if ci_x is not None and ci_w is not None and ci_x != ci_w:
        raise InferenceError(
            f"conv2d input channels {ci_x} != weight in-channels {ci_w}")
    oh = _conv_hw(_dim(x, 2), _dim(w, 2) or 0, stride[0], padding[0]) \
        if _dim(w, 2) is not None else None
    ow = _conv_hw(_dim(x, 3), _dim(w, 3) or 0, stride[1], padding[1]) \
        if _dim(w, 3) is not None else None
    return [(_dim(x, 0), _dim(w, 0), oh, ow)]


def _infer_linear(op, in_shapes, env):
    x, w = in_shapes[0], in_shapes[1]
    if x is None or w is None:
        return [None]
    if _dim(x, -1) is not None and _dim(w, 1) is not None \
            and x[-1] != w[1]:
        raise InferenceError(
            f"linear input features {x[-1]} != weight in-features {w[1]}")
    return [tuple(x[:-1]) + (_dim(w, 0),)]


def _infer_eager_matmul(op, in_shapes, env):
    return _infer_matmul(op, in_shapes, env)


def _e(name, min_inputs, max_inputs=None, num_outputs=1, attrs=None,
       infer=None):
    if max_inputs is None:
        max_inputs = min_inputs
    return register_eager_schema(OpSchema(
        name, min_inputs, max_inputs, num_outputs, attrs or {}, (), infer))


for _name in ("add", "sub", "mul", "div"):
    _e(_name, 2, infer=_infer_broadcast_binary)
for _name in ("neg", "exp", "log", "sqrt", "abs", "relu", "sigmoid", "tanh",
              "gelu"):
    _e(_name, 1, infer=_infer_elementwise)
_e("pow", 1, attrs={"exponent": (float, int)}, infer=_infer_elementwise)
_e("clip", 1, attrs={"minimum": (float, int, type(None)),
                     "maximum": (float, int, type(None))},
   infer=_infer_elementwise)
_e("where", 3, infer=lambda op, s, env: [broadcast_shapes(
    broadcast_shapes(s[0], s[1], "where operands"), s[2], "where operands")])

_e("matmul", 2, infer=_infer_eager_matmul)
_e("linear", 2, max_inputs=3, infer=_infer_linear)
_e("conv2d", 2,
   attrs={"stride": _TUPLEY, "padding": _TUPLEY, "algorithm": (str,)},
   infer=_infer_conv2d_nchw)
_e("bias_add", 2, infer=lambda op, s, env: [s[0]])

_POOL_E = {"kernel": _TUPLEY, "stride": _TUPLEY + (type(None),),
           "padding": _TUPLEY}


def _infer_pool_nchw(op, in_shapes, env):
    x = in_shapes[0]
    if x is not None and len(x) != 4:
        raise InferenceError(f"{op.type} input must be NCHW rank-4, got {x}")
    kernel = tuple(op.attrs.get("kernel", (2, 2)))
    stride = tuple(op.attrs.get("stride") or kernel)
    padding = tuple(op.attrs.get("padding", (0, 0)))
    return [(_dim(x, 0), _dim(x, 1),
             _conv_hw(_dim(x, 2), kernel[0], stride[0], padding[0]),
             _conv_hw(_dim(x, 3), kernel[1], stride[1], padding[1]))]


_e("max_pool2d", 1, attrs=_POOL_E, infer=_infer_pool_nchw)
_e("avg_pool2d", 1, attrs=_POOL_E, infer=_infer_pool_nchw)

_e("batch_norm", 5,
   attrs={"training": (bool,), "momentum": (float,), "eps": (float,)},
   infer=lambda op, s, env: [s[0]])
_e("layer_norm", 3, attrs={"eps": (float,)}, infer=lambda op, s, env: [s[0]])

_e("softmax", 1, attrs={"axis": (int,)}, infer=_infer_elementwise)
_e("log_softmax", 1, attrs={"axis": (int,)}, infer=_infer_elementwise)
_e("dropout", 1, attrs={"p": (float,), "training": (bool,),
                        "seed": (int, type(None))},
   infer=_infer_elementwise)

_e("reshape", 1, attrs={"shape": _TUPLEY},
   infer=lambda op, s, env: _infer_reshape(
       _EagerOpView("Reshape", {"shape": op.attrs.get("shape", ())}, 1, 1)
       if op.attrs.get("shape") is not None else op, s, env)
   if op.attrs.get("shape") is not None else [None])
_e("transpose", 1, attrs={"axes": _TUPLEY + (type(None),)},
   infer=lambda op, s, env: [tuple(reversed(s[0]))]
   if s[0] is not None and op.attrs.get("axes") is None
   else _infer_transpose(
       _EagerOpView("Transpose", {"perm": op.attrs["axes"]}, 1, 1), s, env)
   if op.attrs.get("axes") is not None else [None])
_e("slice", 1, attrs={"index": (object,)})
_e("concat", 1, max_inputs=2 ** 30, attrs={"axis": (int,)},
   infer=lambda op, s, env: _infer_concat(
       _EagerOpView("ConcatV2", {"axis": op.attrs.get("axis", 0)},
                    len(s), 1), s, env))
_e("stack", 1, max_inputs=2 ** 30, attrs={"axis": (int,)})
_e("split", 1, num_outputs=2, attrs={"sections": (int,), "axis": (int,)})
_e("pad", 1, attrs={"pad_width": _TUPLEY})

for _name in ("sum", "mean"):
    _e(_name, 1, attrs={"axis": _AXISY, "keepdims": (bool,)},
       infer=lambda op, s, env: _infer_reduce(op, s, env))

# registered by eager/autograd.py, not eager/ops.py: (param, grad) -> grad
_e("accumulate_grad", 2, infer=lambda op, s, env: [
    require_same(s[0], s[1], "accumulate_grad param vs. grad")])

_e("embedding", 2, infer=lambda op, s, env: [
    (tuple(s[0]) + (s[1][-1],)) if s[0] is not None and s[1] is not None
    else None])
_e("cross_entropy", 2, infer=lambda op, s, env: [()])
_e("mse_loss", 2, infer=lambda op, s, env: [()])


# ---------------------------------------------------------------------------
# completeness + per-op validation
# ---------------------------------------------------------------------------

def _builtin(fn) -> bool:
    return getattr(fn, "__module__", "").startswith("repro.")


def missing_graph_schemas(builtin_only: bool = True) -> set[str]:
    """Graph op types with a COMPUTE implementation but no schema."""
    from ..graph import builder, fusion, gradients  # noqa: F401 (register)
    return {op_type for op_type, fn in builder.COMPUTE.items()
            if op_type not in GRAPH_SCHEMAS
            and (not builtin_only or _builtin(fn))}


def missing_eager_schemas(builtin_only: bool = True) -> set[str]:
    """Eager op names with a registered OpDef but no schema."""
    from ..eager.dispatch import registry
    return {opdef.name for opdef in registry.all_ops()
            if opdef.name not in EAGER_SCHEMAS
            and (not builtin_only or _builtin(opdef.forward))}


def stale_graph_schemas() -> set[str]:
    """Schemas whose op type has no COMPUTE implementation (dead schema)."""
    from ..graph import builder, fusion, gradients  # noqa: F401
    return set(GRAPH_SCHEMAS) - set(builder.COMPUTE)


def check_registry_complete() -> None:
    """Raise :class:`SchemaError` if any implemented op lacks a schema."""
    problems = []
    missing = missing_graph_schemas()
    if missing:
        problems.append(f"graph ops without a schema: {sorted(missing)}")
    missing = missing_eager_schemas()
    if missing:
        problems.append(f"eager ops without a schema: {sorted(missing)}")
    stale = stale_graph_schemas()
    if stale:
        problems.append(f"graph schemas without an implementation: "
                        f"{sorted(stale)}")
    if problems:
        raise SchemaError("; ".join(problems))


def check_op_against_schema(op, schema: OpSchema) -> list[str]:
    """Arity / output-count / attribute-type violations for one graph op."""
    errors = []
    n = len(op.inputs)
    if n < schema.min_inputs or \
            (schema.max_inputs is not None and n > schema.max_inputs):
        want = (str(schema.min_inputs) if schema.max_inputs == schema.min_inputs
                else f"{schema.min_inputs}..{schema.max_inputs}")
        errors.append(f"expects {want} inputs, has {n}")
    expected_out = (schema.num_outputs_fn(op) if schema.num_outputs_fn
                    else schema.num_outputs)
    if expected_out is not None and len(op.outputs) != expected_out:
        errors.append(f"expects {expected_out} outputs, has {len(op.outputs)}")
    for attr in schema.required_attrs:
        if attr not in op.attrs:
            errors.append(f"missing required attr {attr!r}")
    for key, value in op.attrs.items():
        spec = schema.attrs.get(key)
        if spec is None:
            if not schema.allow_extra_attrs:
                errors.append(f"undeclared attr {key!r}")
            continue
        if object in spec:
            continue
        if not isinstance(value, spec):
            names = "/".join(t.__name__ for t in spec)
            errors.append(
                f"attr {key!r} should be {names}, got "
                f"{type(value).__name__} ({value!r})")
    return errors


# ---------------------------------------------------------------------------
# tool-input validation helpers (used by pruning / quantization before rewrite)
# ---------------------------------------------------------------------------

def validate_mask_shape(mask, weight, op_type: str = "?") -> None:
    """Raise if a pruning mask cannot elementwise-multiply the weight."""
    mask = np.asarray(mask)
    weight_shape = tuple(np.asarray(weight).shape)
    if tuple(mask.shape) != weight_shape:
        raise InferenceError(
            f"pruning mask shape {tuple(mask.shape)} does not match "
            f"{op_type} weight shape {weight_shape}; applying it would "
            f"broadcast or fail at run time")
    if not np.all(np.isfinite(mask)):
        raise InferenceError(f"pruning mask for {op_type} contains "
                             "non-finite values")


def validate_scale(scale, op_type: str = "?") -> float:
    """Raise if a quantization scale is unusable; return it as float."""
    value = float(scale)
    if not math.isfinite(value) or value <= 0.0:
        raise InferenceError(
            f"quantization scale for {op_type} must be a positive finite "
            f"number, got {value!r}")
    return value
