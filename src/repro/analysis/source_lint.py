"""Source-level lint: span accounting must be exception-safe.

The Fig. 11 framework/tool time breakdown only stays truthful if every
``begin_span()`` is eventually matched by an ``end_span()`` — including on
the error path.  A driver function that opens a span and closes it only on
the happy path permanently skews the breakdown the first time a tool routine
raises.  Spans are idempotent to close, so the convention is cheap: any
function that calls ``begin_span()`` must also call ``end_span()`` inside a
``finally`` block (eager mid-body closes for kernel handoff are fine — the
``finally`` close is the safety net).

This is a *source* lint (AST-based), complementing the action-stream lint in
:mod:`repro.analysis.lint`: it runs over the backend driver sources, not over
recorded instrumentation actions.  Wired into ``python -m repro.analysis``
so CI catches a regressed span pairing before any test exercises the error
path.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

__all__ = ["SourceLintIssue", "lint_span_safety", "lint_span_safety_source"]

RULE_SPAN_NOT_FINALLY = "span-not-finally"


@dataclass(frozen=True)
class SourceLintIssue:
    """One source-lint finding, pointing at the offending function."""

    rule: str
    path: str
    line: int
    function: str
    message: str

    def __str__(self) -> str:
        return (f"{self.path}:{self.line}: [{self.rule}] {self.function}: "
                f"{self.message}")


def _call_name(node: ast.AST) -> str | None:
    """The called name for ``f(...)`` / ``obj.f(...)``, else None."""
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _own_nodes(function: ast.AST) -> Iterable[ast.AST]:
    """Walk a function body without descending into nested functions."""
    stack = list(ast.iter_child_nodes(function))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _calls_in(nodes: Iterable[ast.AST], name: str) -> bool:
    return any(_call_name(node) == name for node in nodes)


def _finally_nodes(function: ast.AST) -> Iterable[ast.AST]:
    """Every node lexically inside a ``finally`` block of the function."""
    for node in _own_nodes(function):
        if isinstance(node, ast.Try) and node.finalbody:
            for stmt in node.finalbody:
                yield stmt
                yield from ast.walk(stmt)


def lint_span_safety_source(source: str,
                            path: str = "<string>") -> list[SourceLintIssue]:
    """Lint one module's source text for span-safety violations."""
    issues: list[SourceLintIssue] = []
    tree = ast.parse(source, filename=path)
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        body = list(_own_nodes(node))
        if not _calls_in(body, "begin_span"):
            continue
        if _calls_in(_finally_nodes(node), "end_span"):
            continue
        issues.append(SourceLintIssue(
            rule=RULE_SPAN_NOT_FINALLY,
            path=path, line=node.lineno, function=node.name,
            message="begin_span() without an end_span() in a finally block "
                    "— a raising tool routine would leak the open span"))
    return issues


def _default_paths() -> list[Path]:
    backends = Path(__file__).resolve().parent.parent / "backends"
    return sorted(backends.glob("*.py"))


def lint_span_safety(paths: Iterable[str | Path] | None = None
                     ) -> list[SourceLintIssue]:
    """Lint the backend driver sources (or ``paths``) for span safety."""
    issues: list[SourceLintIssue] = []
    for path in (_default_paths() if paths is None
                 else [Path(p) for p in paths]):
        issues.extend(lint_span_safety_source(path.read_text(), str(path)))
    return issues
