"""Static liveness and peak-activation-memory estimation.

Replays the session's scheduling model symbolically: ops execute in the same
depth-first topological order ``Session._plan`` would produce for the given
fetches (both share :func:`repro.graph.core.topo_plan`), every op's outputs
are allocated when it runs, and they are freed right after their last
consumer runs (fetched tensors live until the end).  Tensor sizes come from
the schema shape inference (:mod:`repro.analysis.verify`), so the whole
estimate needs no kernel execution — checkmate-style static dataflow analysis
over the DNN graph.

Two schedule modes mirror the session's two executors:

* ``schedule_mode="serial"`` (default) frees each intermediate right after
  its last consuming *op* — the classic estimate;
* ``schedule_mode="wavefront"`` partitions the plan with
  :func:`repro.graph.core.plan_levels` — including the serialization edges
  the race analysis (:mod:`repro.analysis.effects`) injects between
  effect-conflicting op pairs, mirroring ``CompiledPlan`` — and frees each
  intermediate after its last consuming *level*, which is exactly what the
  parallel executor does at its level barriers — so the wavefront estimate
  is a sound upper bound on the parallel runtime's activation peak.

A third mode, ``schedule_mode="remat"``, runs the static rematerialization
planner (:mod:`repro.analysis.remat`) against ``budget`` and reports the
*budgeted* schedule: the instance order (recomputes repeated), its simulated
peak, and the :class:`~repro.analysis.remat.RematSchedule` itself on
``report.remat``.  With ``budget=0`` it reports the planner's floor — the
smallest peak maximal eviction can reach.

The result is directly comparable to the *dynamic* activation-liveness peak
measured by :class:`repro.tools.memory.MemoryProfilingTool` (same
alloc-at-producer / free-after-last-consumer model); a unit test cross-checks
the two on the same workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from ..graph.core import (SKIP_TYPES, Graph, GraphTensor, Operation,
                          plan_levels, topo_plan)
from .effects import analyze_plan
from .schemas import numel
from .verify import GraphVerifier

__all__ = ["LivenessReport", "estimate_liveness"]

#: every value in the reproduction is float64
_DTYPE_BYTES = 8


@dataclass
class LivenessReport:
    """Static schedule, lifetimes, and the resulting memory peak."""

    #: op names in symbolic execution order
    schedule: list[str] = field(default_factory=list)
    #: op name -> total bytes of its outputs (0 when the shape is unknown)
    output_bytes: dict[str, int] = field(default_factory=dict)
    #: op name -> (birth step, free step): outputs live on [birth, free]
    lifetime: dict[str, tuple[int, int]] = field(default_factory=dict)
    peak_bytes: int = 0
    #: schedule step / op name at which the peak occurs
    peak_step: int = -1
    peak_op: str | None = None
    #: ops whose output shapes could not be inferred (counted as 0 bytes)
    unknown_ops: list[str] = field(default_factory=list)
    #: static arena simulation (idealized full-reuse bound): the pool
    #: capacity a size-bucketed arena would grow to over one run if every
    #: counted tensor were pooled and freed at its computed last use —
    #: steady-state runs then perform zero growths against this capacity
    arena_capacity_bytes: int = 0
    arena_growths: int = 0
    arena_reuses: int = 0
    #: remat mode only: the budget the planner targeted and the resulting
    #: :class:`repro.analysis.remat.RematSchedule` (None in other modes)
    budget: int = 0
    remat: object | None = None

    @property
    def total_bytes(self) -> int:
        return sum(self.output_bytes.values())

    def __str__(self) -> str:
        return (f"LivenessReport({len(self.schedule)} ops, "
                f"peak={self.peak_bytes}B at step {self.peak_step} "
                f"({self.peak_op}), total={self.total_bytes}B, "
                f"{len(self.unknown_ops)} unknown)")


def _schedule(graph: Graph, fetches) -> list[Operation]:
    """Depth-first topo order over fetch ancestors — Session._plan's order."""
    if fetches is None:
        roots = list(graph.operations)
    else:
        roots = []
        for fetch in fetches:
            if isinstance(fetch, GraphTensor):
                roots.append(fetch.op)
            elif isinstance(fetch, Operation):
                roots.append(fetch)
            else:
                roots.append(graph.get_operation(
                    str(fetch).partition(":")[0]))
    return topo_plan(roots)


def estimate_liveness(graph: Graph, fetches=None,
                      feed_shapes: Mapping[str, tuple] | None = None,
                      include_types: Iterable[str] | None = None,
                      exclude_types: Iterable[str] = ("Variable", "Const",
                                                      "Placeholder"),
                      dtype_bytes: int = _DTYPE_BYTES,
                      schedule_mode: str = "serial",
                      budget: int = 0) -> LivenessReport:
    """Estimate the activation-liveness memory peak without executing.

    ``exclude_types`` removes parameter/input storage from the accounting so
    the number matches the *activation* peak the dynamic profiler reports;
    pass ``exclude_types=()`` to count everything.  Ops with uninferrable
    shapes contribute 0 bytes and are listed in ``unknown_ops``.

    ``schedule_mode="wavefront"`` models the parallel executor instead: frees
    happen at level barriers (after an intermediate's last consuming *level*),
    so the reported peak upper-bounds what ``Session`` can reach with any
    worker count.

    ``schedule_mode="remat"`` simulates the memory-budgeted executor: the
    rematerialization planner schedules evictions and recomputes against
    ``budget`` (bytes, using this report's own byte accounting), the
    instance order lands in ``report.schedule`` (recomputed ops repeat) and
    the schedule itself in ``report.remat``.  The arena simulation is
    skipped in this mode (lifetimes are per instance, not per op).
    """
    if schedule_mode not in ("serial", "wavefront", "remat"):
        raise ValueError(f"unknown schedule_mode {schedule_mode!r}; "
                         "expected 'serial', 'wavefront' or 'remat'")
    verifier = GraphVerifier(graph, feed_shapes=feed_shapes)
    verifier.run()
    shapes = verifier.report.shapes

    plan = _schedule(graph, fetches)
    include = set(include_types) if include_types is not None else None
    exclude = set(exclude_types) | set(SKIP_TYPES)
    report = LivenessReport()
    position = {op.name: i for i, op in enumerate(plan)}
    report.schedule = [op.name for op in plan]

    # bytes per op (sum over outputs); None shape -> unknown, counted 0
    for op in plan:
        if (include is not None and op.type not in include) \
                or (include is None and op.type in exclude):
            report.output_bytes[op.name] = 0
            continue
        total = 0
        unknown = False
        for tensor in op.outputs:
            count = numel(shapes.get(tensor.name))
            if count is None:
                unknown = True
            else:
                total += count * dtype_bytes
        if unknown:
            report.unknown_ops.append(op.name)
        report.output_bytes[op.name] = total

    # last consumer within the schedule; fetched ops live to the end
    fetched = set() if fetches is None else {
        (fetch.op.name if isinstance(fetch, GraphTensor)
         else fetch.name if isinstance(fetch, Operation)
         else str(fetch).partition(":")[0])
        for fetch in fetches}
    if schedule_mode == "remat":
        _sweep_remat(report, plan, fetched, budget)
        return report
    if schedule_mode == "wavefront":
        _sweep_wavefront(report, plan, position, fetched)
        _simulate_arena(report, plan, shapes, dtype_bytes)
        return report

    last: dict[str, int] = {}
    for op in plan:
        last[op.name] = len(plan) - 1 if op.name in fetched \
            else position[op.name]
    for op in plan:
        for edge in op.inputs:
            if edge.op.name in position:
                last[edge.op.name] = max(last[edge.op.name],
                                         position[op.name])
    for op in plan:
        report.lifetime[op.name] = (position[op.name], last[op.name])

    # sweep: alloc at producer, free after last consumer
    frees: dict[int, list[str]] = {}
    for name, (_, end) in report.lifetime.items():
        frees.setdefault(end, []).append(name)
    live = 0
    for step, op in enumerate(plan):
        live += report.output_bytes[op.name]
        if live > report.peak_bytes:
            report.peak_bytes = live
            report.peak_step = step
            report.peak_op = op.name
        for name in frees.get(step, ()):
            live -= report.output_bytes[name]
    _simulate_arena(report, plan, shapes, dtype_bytes)
    return report


def _simulate_arena(report: LivenessReport, plan: list[Operation],
                    shapes, dtype_bytes: int) -> None:
    """Replay the schedule against a simulated size-bucketed buffer arena.

    Mirrors :class:`repro.eager.alloc.Arena`: each counted tensor acquires a
    power-of-two bucket at its producer's step and returns it right after
    the op's computed last use (``report.lifetime``).  The resulting
    ``arena_capacity_bytes`` is the static capacity bound the runtime pool
    converges to — an *idealized* bound, since the executor only pools
    elementwise float64 outputs — and a steady-state run against a pool of
    this capacity performs zero fresh growths.
    """
    free: dict[int, int] = {}  # bucket numel -> available buffers
    frees_at: dict[int, list[str]] = {}
    by_name: dict[str, Operation] = {op.name: op for op in plan}
    for name, (_, end) in report.lifetime.items():
        frees_at.setdefault(end, []).append(name)

    def buckets_of(op: Operation) -> list[int]:
        if not report.output_bytes.get(op.name):
            return []  # excluded, unknown-shape, or zero-byte op
        out = []
        for tensor in op.outputs:
            count = numel(shapes.get(tensor.name))
            if count:
                out.append(1 << max(0, count - 1).bit_length()
                           if count > 1 else 1)
        return out

    for step, op in enumerate(plan):
        for bucket in buckets_of(op):
            if free.get(bucket, 0) > 0:
                free[bucket] -= 1
                report.arena_reuses += 1
            else:
                report.arena_growths += 1
                report.arena_capacity_bytes += bucket * dtype_bytes
        for name in frees_at.get(step, ()):
            for bucket in buckets_of(by_name[name]):
                free[bucket] = free.get(bucket, 0) + 1


def _sweep_remat(report: LivenessReport, plan: list[Operation],
                 fetched: set[str], budget: int) -> None:
    """Budgeted sweep: replay the rematerialization planner's schedule.

    The planner consumes this report's own per-op byte accounting (so the
    include/exclude knobs apply), plus the race analysis' serialization
    edges — the same inputs ``CompiledPlan`` hands it at lowering time.
    ``lifetime`` maps each op to (first birth, last release) across all of
    its incarnations.
    """
    from .remat import plan_remat  # local: liveness is imported by remat CLI
    schedule = plan_remat(plan, sorted(fetched), budget, report.output_bytes,
                          extra_deps=analyze_plan(plan).extra_edges)
    report.budget = budget
    report.remat = schedule
    report.schedule = [plan[j].name for j in schedule.instances]
    live = 0
    for t, j in enumerate(schedule.instances):
        live += report.output_bytes[plan[j].name]
        if live > report.peak_bytes:
            report.peak_bytes = live
            report.peak_step = t
            report.peak_op = plan[j].name
        for u in schedule.release_after_step[t]:
            live -= report.output_bytes[plan[schedule.instances[u]].name]
    births: dict[str, int] = {}
    ends: dict[str, int] = {}
    for t, j in enumerate(schedule.instances):
        name = plan[j].name
        births.setdefault(name, t)
        ends[name] = t
    for t, released in enumerate(schedule.release_after_step):
        for u in released:
            name = plan[schedule.instances[u]].name
            ends[name] = max(ends[name], t)
    for name in report.schedule:
        if name in fetched:
            ends[name] = len(schedule.instances) - 1
    for op in plan:
        report.lifetime[op.name] = (births[op.name], ends[op.name])


def _sweep_wavefront(report: LivenessReport, plan: list[Operation],
                     position: dict[str, int], fetched: set[str]) -> None:
    """Level-barrier sweep: frees happen after the last consuming *level*.

    Matches ``Session._run_wavefront`` exactly — the levels include the race
    analysis' serialization edges (so the static bound respects the same
    barriers the executor honors), within a level the ops allocate one by
    one in plan order (the session's bookkeeping loop), then the level's
    expired intermediates are freed at the barrier.
    """
    levels = plan_levels(plan, extra_deps=analyze_plan(plan).extra_edges)
    level_of = {op.name: i for i, level in enumerate(levels) for op in level}
    last_level: dict[str, int] = {}
    for op in plan:
        last_level[op.name] = len(levels) - 1 if op.name in fetched \
            else level_of[op.name]
    for op in plan:
        for edge in op.inputs:
            if edge.op.name in last_level:
                last_level[edge.op.name] = max(last_level[edge.op.name],
                                               level_of[op.name])
    # lifetimes in plan positions: freed after the last op of the free level
    level_end = [position[level[-1].name] for level in levels]
    for op in plan:
        report.lifetime[op.name] = (position[op.name],
                                    level_end[last_level[op.name]])
    frees: dict[int, list[str]] = {}
    for name, end_level in last_level.items():
        frees.setdefault(end_level, []).append(name)
    live = 0
    for index, level in enumerate(levels):
        for op in level:
            live += report.output_bytes[op.name]
            if live > report.peak_bytes:
                report.peak_bytes = live
                report.peak_step = position[op.name]
                report.peak_op = op.name
        for name in frees.get(index, ()):
            live -= report.output_bytes[name]
