"""Static analysis over both IRs: schemas, verification, lint, liveness.

The Amanda graph driver rewrites a *copied* graph statically at submission
time (Sec. 5.3), so a buggy tool can produce a malformed or shape-inconsistent
instrumented graph that only explodes deep inside ``Session.run`` — or, worse,
runs and silently computes the wrong thing.  This package catches those bugs
*before* any kernel executes:

* :mod:`repro.analysis.schemas` — per-op-type schemas (arity, attribute
  types, shape/dtype inference rules) for every operator of the graph backend
  and the eager backend, with completeness checks so a new op cannot be added
  without a schema;
* :mod:`repro.analysis.verify` — structural graph verification (dangling
  inputs, duplicate names, cycles, orphaned ``PyCall`` wrappers,
  fetch-redirect consistency) plus full shape/dtype propagation with
  op-level provenance on the first inconsistency;
* :mod:`repro.analysis.lint` — lint rules over the instrumentation action
  stream (tool conflicts, fetch-shadowing wrappers, backward mutation without
  ``allow_instrumented_ad``, cache-unsafe context mutation);
* :mod:`repro.analysis.liveness` — a static liveness / peak-activation-memory
  estimator cross-checkable against the dynamic
  :class:`repro.tools.memory.MemoryProfilingTool`;
* :mod:`repro.analysis.effects` — per-op effect signatures (pure /
  reads-state / writes-state / rng / ordered-event / opaque) and the
  plan-level race detector the wavefront executor uses to serialize only
  the genuinely conflicting op pairs.

Run ``python -m repro.analysis`` to verify and lint the graphs built by the
``examples/`` model zoo.
"""

from .effects import (GRAPH_EFFECTS, Conflict, EffectSig, RaceReport,
                      analyze_plan, check_effects_complete, effect_signature,
                      missing_effect_signatures, normalize_effects,
                      register_graph_effect)
from .lint import LintIssue, lint_contexts
from .liveness import LivenessReport, estimate_liveness
from .source_lint import (SourceLintIssue, lint_span_safety,
                          lint_span_safety_source)
from .schemas import (EAGER_SCHEMAS, GRAPH_SCHEMAS, InferenceError, OpSchema,
                      SchemaError, check_registry_complete,
                      missing_eager_schemas, missing_graph_schemas,
                      validate_mask_shape, validate_scale)
from .verify import (GraphVerifier, Issue, VerificationError,
                     VerificationReport, verify_graph)

__all__ = [
    "OpSchema", "SchemaError", "InferenceError",
    "GRAPH_SCHEMAS", "EAGER_SCHEMAS",
    "missing_graph_schemas", "missing_eager_schemas",
    "check_registry_complete", "validate_mask_shape", "validate_scale",
    "GraphVerifier", "VerificationReport", "VerificationError", "Issue",
    "verify_graph",
    "EffectSig", "Conflict", "RaceReport", "GRAPH_EFFECTS",
    "effect_signature", "normalize_effects", "register_graph_effect",
    "analyze_plan", "missing_effect_signatures", "check_effects_complete",
    "LintIssue", "lint_contexts",
    "LivenessReport", "estimate_liveness",
    "SourceLintIssue", "lint_span_safety", "lint_span_safety_source",
]
