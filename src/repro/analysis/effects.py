"""Static effect system and plan-level race detection.

The wavefront executor (see DESIGN.md, "Parallel execution") needs to know
which ops of a plan may run concurrently.  Until this module existed the
session answered with a whole-plan guess: one variable-store writer, one
training batch norm or one undeclared ``PyCall`` forced the *entire* plan
serial.  The effect system replaces the guess with an analysis:

* every builtin graph op type has a registered **effect signature** —
  :data:`PURE` (a function of its inputs only), ``reads-state(key)`` /
  ``writes-state(key)`` over named variable-store keys, ``rng`` (consumes
  nondeterministic generator state, modeled as the synthetic key
  :data:`RNG_KEY`), or ``ordered-event`` (:data:`ORDERED_EVENTS_KEY`);
* tool-inserted ``PyCall`` ops carry explicit declarations
  (``Tool.effects`` → the ``effects`` tag the graph driver attaches); an
  undeclared ``PyCall`` is **opaque** and keeps the conservative whole-plan
  serial fallback;
* :func:`analyze_plan` enumerates the *conflicting pairs* — two ops with no
  dependency path between them where one writes a state key the other reads
  or writes — and emits serialization edges (earlier plan position → later)
  that the session injects into :func:`repro.graph.core.plan_levels`.

Ordering conflicting pairs by plan position reproduces the serial executor's
per-key access sequence exactly, so a wavefront run with injected edges is
bit-identical to a serial run; everything not involved in a conflict keeps
its parallelism.

Completeness is enforced like the op-schema registry:
:func:`missing_effect_signatures` diffs the effect table against
``GRAPH_SCHEMAS`` and a unit test (plus ``python -m repro.analysis races``)
fails when an op type has a schema but no effect signature.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Callable, Mapping, Sequence

from ..graph.core import SKIP_TYPES, Operation
from .schemas import GRAPH_SCHEMAS, SchemaError

__all__ = [
    "EffectSig", "PURE", "OPAQUE", "RNG_KEY", "ORDERED_EVENTS_KEY",
    "GRAPH_EFFECTS", "register_graph_effect", "effect_signature",
    "recomputable", "normalize_effects", "Conflict", "RaceReport",
    "analyze_plan", "missing_effect_signatures", "stale_effect_signatures",
    "check_effects_complete",
]

#: synthetic state key modeling nondeterministic RNG stream consumption
RNG_KEY = "<rng>"
#: synthetic state key modeling externally observable event ordering
ORDERED_EVENTS_KEY = "<ordered-events>"

#: op tag caching the computed signature; ``copy_graph`` copies tags, so the
#: memo survives the driver's clone/rewrite cycle and plan recompilation
#: after ``tool_epoch`` bumps never redoes the per-op classification.  Safe
#: because signatures depend only on op type / attrs / declaration tags, all
#: fixed at op construction, and ``Graph.fingerprint`` ignores tags.
_MEMO_TAG = "_effect_sig"


@dataclass(frozen=True)
class EffectSig:
    """Static effect signature of one operation.

    ``reads``/``writes`` are variable-store keys (plus the synthetic
    :data:`RNG_KEY` / :data:`ORDERED_EVENTS_KEY`).  ``opaque`` marks an op
    whose effects are unknown — the analysis cannot bound it, so its plan
    falls back to the serial executor.
    """

    reads: frozenset = frozenset()
    writes: frozenset = frozenset()
    opaque: bool = False

    @property
    def pure(self) -> bool:
        return not (self.reads or self.writes or self.opaque)

    @property
    def stateful(self) -> bool:
        return bool(self.reads or self.writes)

    def conflicts_with(self, other: "EffectSig") -> frozenset:
        """State keys on which the two signatures race when unordered."""
        return (self.writes & (other.reads | other.writes)) \
            | (other.writes & self.reads)

    def __str__(self) -> str:
        if self.opaque:
            return "opaque"
        if self.pure:
            return "pure"
        parts = []
        if self.reads:
            parts.append(f"reads={sorted(self.reads)}")
        if self.writes:
            parts.append(f"writes={sorted(self.writes)}")
        return " ".join(parts)


PURE = EffectSig()
OPAQUE = EffectSig(opaque=True)
_RNG = EffectSig(reads=frozenset((RNG_KEY,)), writes=frozenset((RNG_KEY,)))


def normalize_effects(declaration) -> EffectSig:
    """Normalize a user/tool effect declaration into an :class:`EffectSig`.

    Accepts an :class:`EffectSig`, the strings ``"pure"`` / ``"opaque"``, or
    a mapping with any of ``reads`` / ``writes`` (iterables of state keys)
    and ``rng`` / ``ordered`` (booleans, expanded to the synthetic keys).
    """
    if isinstance(declaration, EffectSig):
        return declaration
    if declaration == "pure":
        return PURE
    if declaration == "opaque":
        return OPAQUE
    if isinstance(declaration, Mapping):
        unknown = set(declaration) - {"reads", "writes", "rng", "ordered"}
        if unknown:
            raise ValueError(
                f"unknown effect declaration keys {sorted(unknown)}; "
                "expected reads/writes/rng/ordered")
        reads = frozenset(declaration.get("reads", ()))
        writes = frozenset(declaration.get("writes", ()))
        if declaration.get("rng"):
            reads |= {RNG_KEY}
            writes |= {RNG_KEY}
        if declaration.get("ordered"):
            reads |= {ORDERED_EVENTS_KEY}
            writes |= {ORDERED_EVENTS_KEY}
        return EffectSig(reads=reads, writes=writes)
    raise ValueError(f"cannot interpret effect declaration {declaration!r}")


# ---------------------------------------------------------------------------
# signature registry (graph backend)
# ---------------------------------------------------------------------------

#: op type -> rule computing the signature from the concrete Operation
GRAPH_EFFECTS: dict[str, Callable[[Operation], EffectSig]] = {}


def register_graph_effect(op_type: str,
                          rule: Callable[[Operation], EffectSig]) -> None:
    if op_type in GRAPH_EFFECTS:
        raise SchemaError(f"duplicate graph effect rule for {op_type!r}")
    GRAPH_EFFECTS[op_type] = rule


def _pure_rule(op: Operation) -> EffectSig:
    return PURE


#: builtin op types that are pure functions of their inputs.  Listed
#: explicitly (not defaulted) so that adding a new op forces a conscious
#: effect classification — the completeness check below enforces it.
_PURE_OPS = (
    "Placeholder", "Const", "Identity", "NoOp",
    "Add", "Sub", "Mul", "RealDiv", "Neg", "Square", "Sqrt",
    "Relu", "Gelu", "Sigmoid", "Tanh", "Softmax", "LogSoftmax", "OnesLike",
    "ReluGrad", "GeluGrad", "SigmoidGrad", "TanhGrad", "SoftmaxGrad",
    "LogSoftmaxGrad", "BroadcastGradient",
    "MatMul", "Conv2D", "Conv2DBackpropInput", "Conv2DBackpropFilter",
    "BiasAdd", "BiasAddGrad", "MaxPool", "AvgPool", "MaxPoolGrad",
    "AvgPoolGrad", "FusedBatchNormGrad", "LayerNorm", "LayerNormGrad",
    "Reshape", "ReshapeGrad", "Transpose", "ConcatV2", "ConcatGrad",
    "Mean", "Sum", "ReduceGrad", "GatherV2", "GatherGrad",
    "SparseSoftmaxCrossEntropyWithLogits", "XentGrad",
    "AddN", "FusedConv2D", "FusedMatMul", "FusedElementwise",
)
for _name in _PURE_OPS:
    register_graph_effect(_name, _pure_rule)


def _variable_rule(op: Operation) -> EffectSig:
    # compute reads the store under the op's own name
    return EffectSig(reads=frozenset((op.name,)))


def _assign_rule(op: Operation) -> EffectSig:
    # the current value arrives as a data input (the Variable output), so the
    # compute only *writes* the store; the read is ordered by the data edge
    return EffectSig(writes=frozenset((op.attrs["var_name"],)))


def _batch_norm_rule(op: Operation) -> EffectSig:
    keys = frozenset((op.attrs["running_mean"], op.attrs["running_var"]))
    if op.attrs.get("training"):
        return EffectSig(reads=keys, writes=keys)
    return EffectSig(reads=keys)


def _dropout_rule(op: Operation) -> EffectSig:
    # a fixed seed makes the mask a pure function of the attrs; a None seed
    # in training mode draws fresh OS entropy per execution
    if op.attrs.get("training") and op.attrs.get("rate", 0.0) > 0 \
            and op.attrs.get("seed") is None:
        return _RNG
    return PURE


def _pycall_rule(op: Operation) -> EffectSig:
    declaration = op.tags.get("effects")
    if declaration is not None:
        return normalize_effects(declaration)
    if op.tags.get("parallel_safe"):
        # legacy observe-only tag from the graph driver: no declared state
        return PURE
    return OPAQUE


register_graph_effect("Variable", _variable_rule)
register_graph_effect("AssignSub", _assign_rule)
register_graph_effect("AssignAdd", _assign_rule)
register_graph_effect("AssignVar", _assign_rule)
register_graph_effect("FusedBatchNorm", _batch_norm_rule)
register_graph_effect("Dropout", _dropout_rule)
register_graph_effect("PyCall", _pycall_rule)


def effect_signature(op: Operation) -> EffectSig:
    """The (memoized) effect signature of one graph operation.

    Unregistered op types (e.g. a user-registered compute without an effect
    rule) are conservatively opaque.
    """
    memo = op.tags.get(_MEMO_TAG)
    if memo is not None:
        return memo
    rule = GRAPH_EFFECTS.get(op.type)
    sig = rule(op) if rule is not None else OPAQUE
    op.tags[_MEMO_TAG] = sig
    return sig


def recomputable(op: Operation) -> bool:
    """Whether the rematerialization pass may re-execute ``op``.

    Only effect-*pure* ops qualify: re-running a state reader could observe a
    later write, a writer/RNG op would apply its effect twice, and an opaque
    op cannot be bounded at all.  ``PyCall`` is pinned even when declared
    pure — its callback is an externally observable tool routine (a profiler
    counting invocations must not see instrumentation points fire twice) —
    and ``NoOp`` anchors carry no value worth evicting.  Seeded dropout *is*
    recomputable (:func:`_dropout_rule` classifies it pure): the recompute
    reseeds ``default_rng(seed)`` and replays the identical mask.
    """
    if op.type in SKIP_TYPES:
        return False
    return effect_signature(op).pure


# ---------------------------------------------------------------------------
# registry completeness (CI-enforced, like the schema registry)
# ---------------------------------------------------------------------------

def missing_effect_signatures() -> set[str]:
    """Graph op types with a schema but no effect signature rule."""
    from ..graph import builder, fusion, gradients  # noqa: F401 (register)
    return set(GRAPH_SCHEMAS) - set(GRAPH_EFFECTS)


def stale_effect_signatures() -> set[str]:
    """Effect rules whose op type has no schema (dead rule)."""
    from ..graph import builder, fusion, gradients  # noqa: F401
    return set(GRAPH_EFFECTS) - set(GRAPH_SCHEMAS)


def check_effects_complete() -> None:
    """Raise :class:`SchemaError` if any schema'd op lacks an effect rule."""
    problems = []
    missing = missing_effect_signatures()
    if missing:
        problems.append(f"graph ops without an effect signature: "
                        f"{sorted(missing)}")
    stale = stale_effect_signatures()
    if stale:
        problems.append(f"effect signatures without a schema: "
                        f"{sorted(stale)}")
    if problems:
        raise SchemaError("; ".join(problems))


# ---------------------------------------------------------------------------
# plan-level race detection
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Conflict:
    """One unordered op pair racing on shared state, with provenance."""

    kind: str                 # "write-write" | "read-write"
    keys: tuple[str, ...]     # the contested state keys
    first: str                # plan-earlier op name (runs first when ordered)
    first_type: str
    second: str               # plan-later op name (serialized after `first`)
    second_type: str

    def describe(self, op_name: str) -> str:
        """Per-op serialization reason, as listed by the session report."""
        keys = ", ".join(repr(k) for k in self.keys)
        if op_name == self.second:
            return (f"serialized after {self.first!r}: {self.kind} "
                    f"conflict on state key(s) {keys}")
        return (f"ordered before {self.second!r}: {self.kind} "
                f"conflict on state key(s) {keys}")

    def __str__(self) -> str:
        keys = ", ".join(repr(k) for k in self.keys)
        return (f"[{self.kind}] {self.first} ({self.first_type}) ~ "
                f"{self.second} ({self.second_type}) on state key(s) {keys}")


@dataclass
class RaceReport:
    """Race-analysis result for one execution plan.

    Mirrors the verifier's report shape: ``ok`` plus per-finding provenance.
    ``extra_edges`` maps each conflict's plan-later op to the plan-earlier
    ops it must wait for — exactly the serialization edges
    :func:`repro.graph.core.plan_levels` accepts as ``extra_deps``.
    """

    num_ops: int
    conflicts: tuple = ()
    #: (op name, op type, message) for every effect-opaque op in the plan
    opaque_ops: tuple = ()
    extra_edges: dict = field(default_factory=dict)
    #: number of ops with a non-pure (stateful) signature
    stateful_ops: int = 0

    @property
    def ok(self) -> bool:
        return not self.conflicts and not self.opaque_ops

    @property
    def serial_only_reason(self) -> str | None:
        """Why the whole plan must stay serial, or None (conflicts alone
        never force serial — they are resolved by injected edges)."""
        if self.opaque_ops:
            return self.opaque_ops[0][2]
        return None

    def __str__(self) -> str:
        if self.ok:
            return (f"race analysis OK ({self.num_ops} ops, "
                    f"{self.stateful_ops} stateful, no conflicting pairs)")
        lines = [f"race analysis found {len(self.conflicts)} conflicting "
                 f"pair(s), {len(self.opaque_ops)} opaque op(s) "
                 f"({self.num_ops} ops, {self.stateful_ops} stateful):"]
        lines += [f"  {conflict}" for conflict in self.conflicts]
        lines += [f"  [opaque] {name} ({op_type}): {message}"
                  for name, op_type, message in self.opaque_ops]
        return "\n".join(lines)


def analyze_plan(plan: Sequence[Operation]) -> RaceReport:
    """Detect state races between unordered op pairs of a topological plan.

    Two ops conflict when no dependency path (data or control) connects them
    and one writes a state key the other reads or writes.  For every
    conflicting pair the report carries a serialization edge from the
    plan-earlier op to the plan-later op: ordering by plan position
    reproduces the serial executor's per-key access sequence, so executing
    with the edges injected is bit-identical to a serial run.
    """
    readers: dict[str, list[int]] = {}
    writers: dict[str, list[int]] = {}
    opaque: list[tuple[str, str, str]] = []
    stateful = 0
    for i, op in enumerate(plan):
        sig = effect_signature(op)
        if sig.opaque:
            if op.type == "PyCall":
                message = (f"PyCall op {op.name!r} without declared effects "
                           "(no Tool.effects declaration)")
            else:
                message = (f"op {op.name!r} ({op.type}) has no registered "
                           "effect signature")
            opaque.append((op.name, op.type, message))
            continue
        if sig.stateful:
            stateful += 1
            for key in sig.reads:
                readers.setdefault(key, []).append(i)
            for key in sig.writes:
                writers.setdefault(key, []).append(i)

    # candidate pairs per contested key: write-write and write-read
    pairs: dict[tuple[int, int], dict] = {}

    def _candidate(a: int, b: int, kind: str, key: str) -> None:
        if a == b:
            return
        if a > b:
            a, b = b, a
        entry = pairs.setdefault((a, b), {"kinds": set(), "keys": set()})
        entry["kinds"].add(kind)
        entry["keys"].add(key)

    for key, key_writers in writers.items():
        writer_set = set(key_writers)
        for a, b in combinations(key_writers, 2):
            _candidate(a, b, "write-write", key)
        for w in key_writers:
            for r in readers.get(key, ()):
                if r not in writer_set:
                    _candidate(w, r, "read-write", key)

    if not pairs:
        return RaceReport(len(plan), opaque_ops=tuple(opaque),
                          stateful_ops=stateful)

    # ancestor reachability over the plan as per-op bitsets: plan order is
    # topological, so op j can only descend from i < j and one linear pass
    # suffices.  reach[i] has bit k set iff k is i or an ancestor of i.
    index = {op.name: i for i, op in enumerate(plan)}
    reach: list[int] = [0] * len(plan)
    for i, op in enumerate(plan):
        mask = 1 << i
        for edge in op.inputs:
            j = index.get(edge.op.name)
            if j is not None:
                mask |= reach[j]
        for dep in op.control_inputs:
            j = index.get(dep.name)
            if j is not None:
                mask |= reach[j]
        reach[i] = mask

    conflicts: list[Conflict] = []
    extra_edges: dict[str, list[str]] = {}
    for (a, b), entry in sorted(pairs.items()):
        if (reach[b] >> a) & 1:
            continue  # a dependency path already orders the pair
        kind = "write-write" if "write-write" in entry["kinds"] \
            else "read-write"
        conflicts.append(Conflict(kind, tuple(sorted(entry["keys"])),
                                  plan[a].name, plan[a].type,
                                  plan[b].name, plan[b].type))
        extra_edges.setdefault(plan[b].name, []).append(plan[a].name)

    return RaceReport(len(plan), tuple(conflicts), tuple(opaque),
                      {name: tuple(deps)
                       for name, deps in extra_edges.items()},
                      stateful)
