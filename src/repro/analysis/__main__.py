"""CLI: statically verify + lint the example model graphs.

Usage::

    python -m repro.analysis                # all examples
    python -m repro.analysis resnet bert    # a subset
    python -m repro.analysis --strict       # lint warnings fail the run
    python -m repro.analysis races          # effect/race analysis only

For every example model the tool

1. checks schema-registry completeness (every implemented op has a schema);
2. builds the model's forward+backward graph and verifies it;
3. instruments the graph statically with real tools (pruning + profiling —
   no kernel executes) and verifies the instrumented copy, including
   fetch-redirect consistency;
4. lints the recorded action stream for tool-composition problems;
5. prints the static liveness/peak-memory estimate.

Exit status is non-zero on verification failures or missing schemas (and on
lint findings with ``--strict``) — suitable as a CI gate.

The ``races`` subcommand runs the static effect/race analysis
(:mod:`repro.analysis.effects`) instead: it checks effect-signature
completeness against the schema registry and reports every conflicting op
pair of each example's training plan.  The vanilla model zoo must report
zero conflicts (every variable writer is ordered behind its read by a data
edge), so any finding is a regression and fails the run.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _build_examples():
    from ..models.graph import builders as GM
    return {
        "mlp": (lambda: GM.build_mlp(learning_rate=0.1),
                {"input": (8, 16), "labels": (8,)}),
        "vgg": (lambda: GM.build_vgg("vgg16", learning_rate=0.1),
                {"input": (2, 16, 16, 3), "labels": (2,)}),
        "resnet": (lambda: GM.build_resnet(learning_rate=0.1),
                   {"input": (2, 16, 16, 3), "labels": (2,)}),
        "mobilenet": (lambda: GM.build_mobilenet_v2(learning_rate=0.1),
                      {"input": (2, 16, 16, 3), "labels": (2,)}),
        "inception": (lambda: GM.build_inception_v3(learning_rate=0.1),
                      {"input": (2, 16, 16, 3), "labels": (2,)}),
        "bert": (lambda: GM.build_bert(learning_rate=0.1),
                 {"input": (2, 16), "labels": (2, 16)}),
    }


def _check_schemas() -> int:
    from . import schemas
    from ..eager import ops as eager_ops
    eager_ops.register_default_ops()
    try:
        schemas.check_registry_complete()
    except schemas.SchemaError as exc:
        print(f"FAIL schema registry incomplete: {exc}")
        return 1
    print(f"ok   schema registry complete "
          f"({len(schemas.GRAPH_SCHEMAS)} graph ops, "
          f"{len(schemas.EAGER_SCHEMAS)} eager ops)")
    return 0


def _check_span_safety() -> int:
    from .source_lint import lint_span_safety
    issues = lint_span_safety()
    for issue in issues:
        print(f"FAIL {issue}")
    if not issues:
        print("ok   span accounting exception-safe in backend drivers")
    return len(issues)


def _analyze_example(name: str, build, feeds, strict: bool) -> int:
    from .. import amanda
    from ..tools.profiling import FlopsProfilingTool
    from ..tools.pruning import MagnitudePruningTool
    from .lint import lint_contexts
    from .liveness import estimate_liveness
    from .verify import verify_graph

    failures = 0
    gm = build()
    fetches = [gm.loss] + ([gm.train_op] if gm.train_op is not None else [])

    report = verify_graph(gm.graph, feed_shapes=feeds)
    status = "ok  " if report.ok else "FAIL"
    print(f"{status} {name}: vanilla graph — {report}")
    failures += 0 if report.ok else 1

    # static instrumentation: the driver rewrites a copy, no kernel runs
    tools = [MagnitudePruningTool(sparsity=0.5), FlopsProfilingTool()]
    with amanda.apply(*tools) as mgr:
        driver = next(d for d in mgr._drivers if d.namespace == "graph")
        driver.verify = False  # we want the report, not an exception
        instrumented, redirects = driver._instrument_graph(
            gm.graph, feed_shapes=feeds)
        contexts = list(driver.last_contexts)
        ireport = verify_graph(instrumented, feed_shapes=feeds,
                               redirects=redirects, source_graph=gm.graph)
        lints = lint_contexts(contexts,
                              fetch_names=[t.name for t in fetches],
                              manager=mgr)
    status = "ok  " if ireport.ok else "FAIL"
    print(f"{status} {name}: instrumented graph "
          f"(+{len(instrumented.operations) - len(gm.graph.operations)} "
          f"wrapper ops, {len(redirects)} redirects) — {ireport}")
    failures += 0 if ireport.ok else 1

    for issue in lints:
        print(f"warn {name}: {issue}")
    if strict and lints:
        failures += 1

    live = estimate_liveness(gm.graph, fetches=fetches, feed_shapes=feeds)
    print(f"     {name}: static peak activations "
          f"{live.peak_bytes / 1024:.1f} KiB at {live.peak_op} "
          f"({len(live.schedule)} scheduled ops, "
          f"{len(live.unknown_ops)} unknown shapes)")
    return failures


def _check_effects() -> int:
    from . import effects, schemas
    try:
        effects.check_effects_complete()
    except schemas.SchemaError as exc:
        print(f"FAIL effect registry incomplete: {exc}")
        return 1
    print(f"ok   effect registry complete "
          f"({len(effects.GRAPH_EFFECTS)} graph op signatures)")
    return 0


def _races_example(name: str, build, feeds) -> int:
    from ..graph.core import GraphTensor, topo_plan
    from .effects import analyze_plan

    gm = build()
    fetches = [gm.loss] + ([gm.train_op] if gm.train_op is not None else [])
    roots = [f.op if isinstance(f, GraphTensor) else f for f in fetches]
    report = analyze_plan(topo_plan(roots))
    status = "ok  " if report.ok else "FAIL"
    print(f"{status} {name}: {report}")
    return 0 if report.ok else 1


def _races_main(argv: list[str]) -> int:
    examples = _build_examples()
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis races",
        description="static effect/race analysis over the example models")
    parser.add_argument("examples", nargs="*", metavar="example",
                        help=f"examples to analyze (default: all of "
                             f"{', '.join(sorted(examples))})")
    args = parser.parse_args(argv)
    unknown = sorted(set(args.examples) - set(examples))
    if unknown:
        parser.error(f"unknown example(s): {', '.join(unknown)} "
                     f"(choose from {', '.join(sorted(examples))})")

    np.seterr(all="ignore")
    failures = _check_effects()
    for name in args.examples or sorted(examples):
        build, feeds = examples[name]
        failures += _races_example(name, build, feeds)
    print("PASS" if failures == 0 else f"FAIL ({failures} failing checks)")
    return 0 if failures == 0 else 1


def _remat_example(name: str, build, feeds, budget: int | None) -> int:
    from .remat import plan_remat_for_graph

    gm = build()
    fetches = [gm.loss] + ([gm.train_op] if gm.train_op is not None else [])
    unbudgeted = plan_remat_for_graph(gm.graph, fetches, budget=1 << 62,
                                      feed_shapes=feeds)
    baseline = unbudgeted.peak_bytes
    target = budget if budget is not None else int(baseline * 0.6)
    schedule = plan_remat_for_graph(gm.graph, fetches, budget=target,
                                    feed_shapes=feeds)
    verdict = "fits" if schedule.feasible else "EXCEEDS"
    print(f"{'ok  ' if schedule.feasible else 'over'} {name}: "
          f"budget {target / 1024:.1f} KiB, "
          f"baseline {baseline / 1024:.1f} KiB -> "
          f"peak {schedule.peak_bytes / 1024:.1f} KiB ({verdict}, "
          f"{schedule.num_recomputes} recomputes over "
          f"{len(schedule.evicted)} evicted ops, "
          f"+{schedule.recompute_flops} FLOPs)")
    return 0


def _remat_main(argv: list[str]) -> int:
    from ..core.config import _parse_bytes

    examples = _build_examples()
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis remat",
        description="static rematerialization schedules for the example "
                    "models: budget vs simulated peak")
    parser.add_argument("examples", nargs="*", metavar="example",
                        help=f"examples to analyze (default: all of "
                             f"{', '.join(sorted(examples))})")
    parser.add_argument("--budget", default=None, metavar="BYTES",
                        help="memory budget (accepts suffixes, e.g. 3M); "
                             "default: 60%% of each model's liveness bound")
    args = parser.parse_args(argv)
    unknown = sorted(set(args.examples) - set(examples))
    if unknown:
        parser.error(f"unknown example(s): {', '.join(unknown)} "
                     f"(choose from {', '.join(sorted(examples))})")
    budget = _parse_bytes(args.budget) if args.budget is not None else None

    np.seterr(all="ignore")
    failures = 0
    for name in args.examples or sorted(examples):
        build, feeds = examples[name]
        try:
            failures += _remat_example(name, build, feeds, budget)
        except Exception as exc:  # planning must never crash on the zoo
            print(f"FAIL {name}: {type(exc).__name__}: {exc}")
            failures += 1
    print("PASS" if failures == 0 else f"FAIL ({failures} failing checks)")
    return 0 if failures == 0 else 1


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "races":
        return _races_main(argv[1:])
    if argv and argv[0] == "remat":
        return _remat_main(argv[1:])
    examples = _build_examples()
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="statically verify + lint the example model graphs")
    parser.add_argument("examples", nargs="*", metavar="example",
                        help=f"examples to analyze (default: all of "
                             f"{', '.join(sorted(examples))})")
    parser.add_argument("--strict", action="store_true",
                        help="treat lint warnings as failures")
    args = parser.parse_args(argv)
    unknown = sorted(set(args.examples) - set(examples))
    if unknown:
        parser.error(f"unknown example(s): {', '.join(unknown)} "
                     f"(choose from {', '.join(sorted(examples))})")

    np.seterr(all="ignore")
    selected = args.examples or sorted(examples)
    failures = _check_schemas()
    failures += _check_span_safety()
    for name in selected:
        build, feeds = examples[name]
        failures += _analyze_example(name, build, feeds, args.strict)
    print("PASS" if failures == 0 else f"FAIL ({failures} failing checks)")
    return 0 if failures == 0 else 1


if __name__ == "__main__":
    sys.exit(main())
