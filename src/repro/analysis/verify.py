"""Static graph verifier: structural invariants + shape propagation.

Runs entirely at rewrite time — no kernel executes.  Checks, in order:

1. **naming** — every op is uniquely named and indexed in the graph;
2. **dangling references** — every input edge and control dependency points
   at an operation that is actually part of this graph, at a valid output
   index;
3. **acyclicity** — the data/control dependency relation is a DAG (the
   session's planner would recurse forever otherwise);
4. **orphaned PyCall wrappers** — an instrumentation wrapper whose outputs
   nothing consumes (and that no fetch redirect points at) signals a rewrite
   that lost its rewiring step;
5. **fetch-redirect consistency** — every redirect recorded by the graph
   driver maps a tensor of the *vanilla* graph onto a live wrapper output of
   the instrumented copy;
6. **schema conformance + shape propagation** — each op is checked against
   its :class:`~repro.analysis.schemas.OpSchema` (arity, output count,
   attribute types) and partial shapes are propagated through the full
   forward+backward graph; the first inconsistency is reported with an
   op-level provenance trail of the producer chain that fed it.

Every problem is an :class:`Issue` carrying the offending op's name/type and
a provenance trail.  :func:`verify_graph` is the one-call entry point; the
graph driver invokes it on every freshly instrumented graph when verification
is enabled (opt-in ``verify=True``, on by default under pytest).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from ..graph.core import SKIP_TYPES, Graph, GraphTensor, Operation
from .schemas import (GRAPH_SCHEMAS, InferenceError, InferEnv,
                      check_op_against_schema)

__all__ = ["Issue", "VerificationReport", "VerificationError",
           "GraphVerifier", "verify_graph"]


@dataclass(frozen=True)
class Issue:
    """One verification finding, anchored to a specific operation."""

    kind: str          # dangling-input | duplicate-name | cycle | ...
    op_name: str
    op_type: str
    message: str
    #: producer-chain provenance: outermost entry is the offending op
    trail: tuple[str, ...] = ()

    def __str__(self) -> str:
        text = f"[{self.kind}] {self.op_name} ({self.op_type}): {self.message}"
        if self.trail:
            text += "\n  provenance:\n    " + "\n    ".join(self.trail)
        return text


class VerificationError(RuntimeError):
    """Raised when a verified graph has issues and raising was requested."""

    def __init__(self, report: "VerificationReport") -> None:
        super().__init__(str(report))
        self.report = report


@dataclass
class VerificationReport:
    graph: Graph
    issues: list[Issue] = field(default_factory=list)
    #: tensor name -> inferred partial shape (filled by shape propagation)
    shapes: dict[str, tuple] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.issues

    def issues_of_kind(self, kind: str) -> list[Issue]:
        return [issue for issue in self.issues if issue.kind == kind]

    def raise_if_failed(self) -> "VerificationReport":
        if self.issues:
            raise VerificationError(self)
        return self

    def __str__(self) -> str:
        if self.ok:
            return (f"graph OK ({len(self.graph.operations)} ops, "
                    f"{len(self.shapes)} tensor shapes inferred)")
        header = (f"graph verification failed with {len(self.issues)} "
                  f"issue(s):")
        return "\n".join([header] + [str(issue) for issue in self.issues])


class GraphVerifier:
    """Verifies one graph; see the module docstring for the invariant list."""

    def __init__(self, graph: Graph,
                 feed_shapes: Mapping[str, tuple] | None = None,
                 redirects: Mapping[str, GraphTensor] | None = None,
                 source_graph: Graph | None = None) -> None:
        self.graph = graph
        self.feed_shapes = {
            name.partition(":")[0]: tuple(shape)
            for name, shape in (feed_shapes or {}).items()}
        self.redirects = dict(redirects or {})
        self.source_graph = source_graph
        self.report = VerificationReport(graph)
        self._member_ids = {id(op) for op in graph.operations}

    # -- public ----------------------------------------------------------------
    def run(self) -> VerificationReport:
        self._check_names()
        self._check_dangling()
        has_cycle = self._check_cycles()
        self._check_orphan_pycalls()
        self._check_redirects()
        if not has_cycle:
            self._propagate_shapes()
        return self.report

    # -- helpers ----------------------------------------------------------------
    def _issue(self, kind: str, op: Operation, message: str,
               trail: Iterable[str] = ()) -> None:
        self.report.issues.append(
            Issue(kind, op.name, op.type, message, tuple(trail)))

    def _provenance(self, op: Operation, depth: int = 4) -> list[str]:
        """Producer-chain trail: the op, then what fed it, a few levels up."""
        trail = []
        frontier: list[tuple[Operation, int]] = [(op, 0)]
        seen: set[int] = set()
        while frontier:
            node, level = frontier.pop(0)
            if id(node) in seen or level > depth:
                continue
            seen.add(id(node))
            shapes = [self.report.shapes.get(t.name, "?") for t in node.outputs]
            indent = "  " * level
            trail.append(f"{indent}{node.name} ({node.type}) -> "
                         f"{', '.join(map(str, shapes))}")
            for edge in node.inputs:
                frontier.append((edge.op, level + 1))
        return trail

    # -- structural checks -------------------------------------------------------
    def _check_names(self) -> None:
        seen: dict[str, Operation] = {}
        for op in self.graph.operations:
            if op.name in seen:
                self._issue("duplicate-name", op,
                            f"name collides with earlier op of type "
                            f"{seen[op.name].type}")
                continue
            seen[op.name] = op
            if self.graph._by_name.get(op.name) is not op:
                self._issue("duplicate-name", op,
                            "operation is not indexed in the graph's name "
                            "table")

    def _check_dangling(self) -> None:
        for op in self.graph.operations:
            for position, edge in enumerate(op.inputs):
                if id(edge.op) not in self._member_ids:
                    self._issue(
                        "dangling-input", op,
                        f"input #{position} is tensor {edge.name!r} of op "
                        f"{edge.op.name!r} ({edge.op.type}), which is not "
                        f"part of this graph",
                        self._provenance(op, depth=1))
                elif edge.index >= len(edge.op.outputs):
                    self._issue(
                        "dangling-input", op,
                        f"input #{position} references output {edge.index} "
                        f"of {edge.op.name!r}, which only has "
                        f"{len(edge.op.outputs)} output(s)")
            for control in op.control_inputs:
                if id(control) not in self._member_ids:
                    self._issue(
                        "dangling-input", op,
                        f"control dependency on {control.name!r}, which is "
                        f"not part of this graph")

    def _check_cycles(self) -> bool:
        WHITE, GRAY, BLACK = 0, 1, 2
        color: dict[int, int] = {}
        found = False
        for root in self.graph.operations:
            if color.get(id(root), WHITE) != WHITE:
                continue
            # iterative DFS with an explicit path for cycle provenance
            stack: list[tuple[Operation, Iterable]] = [(root, iter(
                self._dependencies(root)))]
            color[id(root)] = GRAY
            path = [root]
            while stack:
                node, deps = stack[-1]
                dep = next(deps, None)
                if dep is None:
                    color[id(node)] = BLACK
                    stack.pop()
                    path.pop()
                    continue
                if id(dep) not in self._member_ids:
                    continue  # reported as dangling already
                state = color.get(id(dep), WHITE)
                if state == GRAY:
                    start = next(i for i, p in enumerate(path)
                                 if p is dep)
                    cycle = path[start:] + [dep]
                    self._issue(
                        "cycle", dep,
                        "dependency cycle: " + " -> ".join(
                            f"{p.name} ({p.type})" for p in cycle),
                        tuple(f"{p.name} ({p.type})" for p in cycle))
                    found = True
                elif state == WHITE:
                    color[id(dep)] = GRAY
                    stack.append((dep, iter(self._dependencies(dep))))
                    path.append(dep)
        return found

    @staticmethod
    def _dependencies(op: Operation) -> list[Operation]:
        return [edge.op for edge in op.inputs] + list(op.control_inputs)

    def _check_orphan_pycalls(self) -> None:
        consumed: set[str] = set()
        for op in self.graph.operations:
            for edge in op.inputs:
                consumed.add(edge.name)
        redirect_targets = {tensor.name
                            for tensor in self.redirects.values()}
        for op in self.graph.operations:
            if op.type != "PyCall" or "pycall_role" not in op.tags:
                continue
            live = any(t.name in consumed or t.name in redirect_targets
                       for t in op.outputs)
            if not live:
                self._issue(
                    "orphan-pycall", op,
                    f"instrumentation wrapper ({op.tags['pycall_role']}) "
                    "has no consumers and no fetch redirect points at it — "
                    "the rewrite lost its rewiring step",
                    self._provenance(op, depth=1))

    def _check_redirects(self) -> None:
        for original_name, target in self.redirects.items():
            op = target.op
            if id(op) not in self._member_ids:
                self._issue(
                    "redirect", op,
                    f"fetch redirect {original_name!r} -> {target.name!r} "
                    "points outside the instrumented graph")
                continue
            if op.type != "PyCall":
                self._issue(
                    "redirect", op,
                    f"fetch redirect {original_name!r} -> {target.name!r} "
                    "does not target an instrumentation wrapper")
            # identity check: an empty source graph is falsy, and falling
            # back to the instrumented graph would hide missing sources
            source = (self.source_graph if self.source_graph is not None
                      else self.graph)
            base = original_name.partition(":")[0]
            if base not in source._by_name:
                self._issue(
                    "redirect", op,
                    f"fetch redirect source tensor {original_name!r} does "
                    "not exist in the vanilla graph")

    # -- shape propagation ---------------------------------------------------------
    def _topological_order(self) -> list[Operation]:
        order: list[Operation] = []
        state: dict[int, int] = {}
        for root in self.graph.operations:
            if state.get(id(root)):
                continue
            stack = [(root, iter(self._dependencies(root)))]
            state[id(root)] = 1
            while stack:
                node, deps = stack[-1]
                dep = next(deps, None)
                if dep is None:
                    state[id(node)] = 2
                    order.append(node)
                    stack.pop()
                elif id(dep) in self._member_ids \
                        and not state.get(id(dep)):
                    state[id(dep)] = 1
                    stack.append((dep, iter(self._dependencies(dep))))
        return order

    def _propagate_shapes(self) -> None:
        env = InferEnv(variables=self.graph.variables,
                       feed_shapes=self.feed_shapes)
        shapes = self.report.shapes
        for op in self._topological_order():
            schema = GRAPH_SCHEMAS.get(op.type)
            if schema is None:
                self._issue("unknown-op", op,
                            "no schema registered for this op type "
                            "(see analysis/schemas.py)")
                for tensor in op.outputs:
                    shapes[tensor.name] = None
                continue
            for problem in check_op_against_schema(op, schema):
                self._issue("schema", op, problem)
            in_shapes = [shapes.get(edge.name) for edge in op.inputs]
            out_shapes = [None] * len(op.outputs)
            if schema.infer is not None:
                try:
                    inferred = schema.infer(op, in_shapes, env)
                except InferenceError as exc:
                    self._issue("shape-mismatch", op, str(exc),
                                self._provenance(op))
                except Exception as exc:  # schema bug: degrade, keep going
                    self._issue("shape-mismatch", op,
                                f"shape inference crashed: {exc!r}",
                                self._provenance(op))
                else:
                    for index, shape in enumerate(inferred[:len(out_shapes)]):
                        out_shapes[index] = shape
            for tensor, shape in zip(op.outputs, out_shapes):
                shapes[tensor.name] = shape


def verify_graph(graph: Graph,
                 feed_shapes: Mapping[str, tuple] | None = None,
                 redirects: Mapping[str, GraphTensor] | None = None,
                 source_graph: Graph | None = None,
                 raise_on_error: bool = False) -> VerificationReport:
    """Verify structural + shape invariants of ``graph``.

    ``feed_shapes`` seeds placeholder shapes (op name -> shape).
    ``redirects`` / ``source_graph`` enable the fetch-redirect consistency
    check for instrumented copies produced by the graph driver.
    """
    report = GraphVerifier(graph, feed_shapes=feed_shapes,
                           redirects=redirects,
                           source_graph=source_graph).run()
    if raise_on_error:
        report.raise_if_failed()
    return report


# re-exported so the verifier and the driver share one skip list
assert "PyCall" in SKIP_TYPES and "NoOp" in SKIP_TYPES
