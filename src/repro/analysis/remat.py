"""Static rematerialization schedules for the slot-table executor.

The paper's capability matrix (Tbl. 1, DTR row) treats rematerialization as
an instrumentation workload; this module turns the repo's static
infrastructure — per-op byte costs from :mod:`repro.analysis.liveness`'s
shape inference, topo plans from :func:`repro.graph.core.topo_plan`, effect
signatures from :mod:`repro.analysis.effects` — into something the executor
can *run*: a compile-time keep-vs-recompute schedule for a memory budget
(``amanda.config.memory_budget``, env ``AMANDA_MEMORY_BUDGET``).

The planner is checkmate-flavoured static scheduling seeded with Chen's
:math:`\\sqrt{n}` segment checkpointing:

1. **Candidates** are the effect-pure ops (:func:`repro.analysis.effects
   .recomputable`) that are not fetched and produce known, non-zero bytes.
   State readers/writers, RNG consumers (unseeded dropout), opaque ops and
   ``PyCall`` instrumentation points are *pinned*: they execute exactly once
   and their outputs are only freed after their last (possibly recompute)
   reader.  Seeded dropout is a candidate — its recompute replays the
   stashed seed.
2. **Seed**: evict every candidate, materialize the instance schedule with a
   read-locality window of :math:`\\lceil\\sqrt{n}\\rceil` base steps (reads
   closer than the window share one incarnation; a farther read triggers a
   recompute — exactly segment checkpointing when consumers are contiguous).
   A few window sizes around :math:`\\sqrt{n}` are tried and the best
   simulated peak wins.
3. **Greedy refinement**: while the simulated peak stays within budget,
   un-evict the candidates with the highest recompute cost (estimated FLOPs
   x times recomputed) — the survivors are the cheap evictions that actually
   buy the memory.

Materialization is *lazy*: the base plan is replayed in order and, before an
op runs, every dead input producer is re-emitted together with its dead
ancestor closure (ascending base order, which is valid because the base plan
is topological).  Releases are then derived **post hoc** from the finished
instance schedule — each incarnation is freed right after its last actual
reader — so pinned ancestors needed by a recompute automatically live long
enough, and the serial/wavefront simulations mirror the executors'
accounting exactly (see ``Session._run_serial`` / ``_run_wavefront``).

The resulting :class:`RematSchedule` lowers directly onto the slot table:
``instances`` duplicates plan positions (a recompute is an extra slot-table
entry republishing the same slots), ``release_after_step`` drives the serial
executor's per-step frees, and ``levels``/``release_levels`` are wavefront
levels over the *instance* DAG — including write-after-read serialization
edges that keep a recompute instance behind every reader of the incarnation
it replaces, the same ``plan_levels``-style edge injection the race detector
uses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..graph.core import SKIP_TYPES, Graph, GraphTensor, Operation, topo_plan
from .effects import analyze_plan, recomputable
from .schemas import numel
from .verify import GraphVerifier

__all__ = ["RematSchedule", "plan_remat", "plan_remat_for_graph",
           "op_costs"]

#: every value in the reproduction is float64
_DTYPE_BYTES = 8

#: greedy-refinement trial bound: only the costliest evictions are
#: reconsidered, so pathological plans cannot make compilation quadratic
_MAX_REFINE_TRIALS = 256


# ---------------------------------------------------------------------------
# cost model
# ---------------------------------------------------------------------------

def _shape_numel(shape) -> int | None:
    count = numel(shape)
    return None if count is None else int(count)


def _op_flops(op: Operation, shapes: Mapping[str, tuple]) -> int:
    """Rough recompute cost of one op in FLOPs (drives eviction ordering).

    Matrix multiplies and convolutions get their real arithmetic counts;
    everything else is approximated by its output element count (one fused
    elementwise pass).  Unknown shapes cost 0 — such ops also carry 0 bytes,
    so they are never eviction candidates anyway.
    """
    out = 0
    for tensor in op.outputs:
        count = _shape_numel(shapes.get(tensor.name))
        if count:
            out += count
    kind = op.type.lower()
    if "matmul" in kind and len(op.inputs) >= 2:
        a = shapes.get(op.inputs[0].name)
        if a is not None and len(a) >= 1 and out:
            return 2 * out * int(a[-1])
    if "conv2d" in kind and len(op.inputs) >= 2:
        w = shapes.get(op.inputs[1].name)
        if w is not None and len(w) == 4 and out:
            kh, kw, cin = int(w[0]), int(w[1]), int(w[2])
            return 2 * out * kh * kw * cin
    return out


def op_costs(plan: Sequence[Operation], graph: Graph,
             feed_shapes: Mapping[str, tuple] | None = None,
             dtype_bytes: int = _DTYPE_BYTES):
    """``(bytes_of, flops_of, unknown)`` per op name for a compiled plan.

    Byte accounting mirrors the executor's allocation tracker: ``Variable``
    reads alias the store (never counted as fresh), ``PyCall``/``NoOp``
    wrappers alias or carry nothing, and everything else — placeholders,
    constants, activations — counts its full output bytes.  Ops with
    uninferrable shapes contribute 0 bytes and are listed in ``unknown``.
    """
    verifier = GraphVerifier(graph, feed_shapes=feed_shapes)
    verifier.run()
    shapes = verifier.report.shapes
    bytes_of: dict[str, int] = {}
    flops_of: dict[str, int] = {}
    unknown: list[str] = []
    for op in plan:
        flops_of[op.name] = _op_flops(op, shapes)
        if op.type == "Variable" or op.type in SKIP_TYPES:
            bytes_of[op.name] = 0
            continue
        total = 0
        missing = False
        for tensor in op.outputs:
            count = _shape_numel(shapes.get(tensor.name))
            if count is None:
                missing = True
            else:
                total += count * dtype_bytes
        if missing:
            unknown.append(op.name)
        bytes_of[op.name] = total
    return bytes_of, flops_of, unknown


# ---------------------------------------------------------------------------
# schedule container
# ---------------------------------------------------------------------------

@dataclass
class RematSchedule:
    """A lowered keep-vs-recompute schedule for one compiled plan.

    ``instances[t]`` is the base-plan position executed at instance step
    ``t`` (positions of evicted ops repeat); all other per-instance arrays
    are parallel to it.  ``feasible`` reports whether the simulated peak fits
    the budget — the executor runs the schedule either way (best effort).
    """

    budget: int
    #: base-plan position per executed instance (recomputes repeat positions)
    instances: list[int] = field(default_factory=list)
    #: True for every instance that re-executes an already-run op
    is_recompute: list[bool] = field(default_factory=list)
    #: per instance step -> instance ids whose slots free after that step
    release_after_step: list[tuple[int, ...]] = field(default_factory=list)
    #: wavefront levels over the instance DAG (instance ids per level)
    levels: list[tuple[int, ...]] = field(default_factory=list)
    #: per level -> instance ids released at that level's barrier
    release_levels: list[tuple[int, ...]] = field(default_factory=list)
    #: names of ops evicted (and re-executed) at least once
    evicted: tuple[str, ...] = ()
    recompute_flops: int = 0
    #: bytes a serial run would hold with *no* frees (reference semantics)
    serial_unreleased_bytes: int = 0
    #: liveness bounds of the unbudgeted plan (free at last use / at barrier)
    baseline_serial_peak: int = 0
    baseline_wavefront_peak: int = 0
    #: simulated peaks of this schedule under the two executors
    serial_peak: int = 0
    wavefront_peak: int = 0
    feasible: bool = True

    @property
    def num_recomputes(self) -> int:
        return sum(1 for flag in self.is_recompute if flag)

    @property
    def peak_bytes(self) -> int:
        return max(self.serial_peak, self.wavefront_peak)

    def __str__(self) -> str:
        verdict = "fits" if self.feasible else "EXCEEDS"
        return (f"RematSchedule({len(self.instances)} instances, "
                f"{self.num_recomputes} recomputes over "
                f"{len(self.evicted)} evicted ops, "
                f"peak {self.peak_bytes}B {verdict} budget {self.budget}B, "
                f"+{self.recompute_flops} FLOPs)")


# ---------------------------------------------------------------------------
# materialization: eviction set -> instance schedule
# ---------------------------------------------------------------------------

def _materialize(n: int, data_inputs: list[tuple[int, ...]],
                 readers: list[list[int]], evicted: set[int],
                 window: int) -> tuple[list[int], list[int]]:
    """Replay the base plan with ``evicted`` values dropped between reads.

    ``window`` is the read-locality window in base steps: an evicted value
    whose next read is farther than ``window`` past its last read dies and
    is recomputed (with its dead ancestor closure) right before that read.
    Returns the instance list (base positions, recomputes repeated) plus the
    base step each instance was emitted at — recompute closures share their
    consumer's step, which is how the lowering ties them to their trigger.
    """
    instances: list[int] = []
    emit_steps: list[int] = []
    cur: list[int | None] = [None] * n          # live incarnation per op
    last_read = [0] * n                         # base step of the last read
    deaths: dict[int, list[int]] = {}           # base step -> ops to check

    def _register_death(op: int, step: int) -> None:
        if step < n:
            deaths.setdefault(step, []).append(op)
        # values still live at the end are freed post hoc at their last
        # reader; no construction-time death needed

    def _emit(op: int, step: int) -> None:
        instances.append(op)
        emit_steps.append(step)
        cur[op] = len(instances) - 1
        last_read[op] = step
        if op in evicted:
            _register_death(op, step + window)

    def _ensure(op: int, step: int) -> None:
        """Make op's value live at base step ``step`` (recompute closure)."""
        if cur[op] is not None:
            last_read[op] = step
            return
        need: list[int] = []
        stack = [op]
        seen: set[int] = set()
        while stack:
            j = stack.pop()
            if j in seen or cur[j] is not None:
                continue
            seen.add(j)
            need.append(j)
            for dep in data_inputs[j]:
                if cur[dep] is None:
                    stack.append(dep)
        # ascending base order is a valid topological order of the closure
        for j in sorted(need):
            for dep in data_inputs[j]:
                if cur[dep] is not None:
                    last_read[dep] = step
            _emit(j, step)

    for i in range(n):
        for dep in data_inputs[i]:
            _ensure(dep, i)
        _emit(i, i)
        for op in deaths.pop(i, ()):
            if cur[op] is None:
                continue
            due = last_read[op] + window
            if due <= i:
                cur[op] = None  # no nearby future read: drop the value
            else:
                _register_death(op, due)  # refreshed since: re-arm
    return instances, emit_steps


def _lower(instances: list[int], emit_steps: list[int], n: int,
           ops: Sequence[Operation],
           data_inputs: list[tuple[int, ...]],
           order_inputs: list[tuple[int, ...]],
           bytes_of: list[int], fetched: set[int],
           budget: int) -> RematSchedule:
    """Derive releases, wavefront levels and simulated peaks post hoc."""
    m = len(instances)
    cur: list[int | None] = [None] * n
    reads: list[list[int]] = [[] for _ in range(m)]       # value deps
    orders: list[list[int]] = [[] for _ in range(m)]      # ordering-only deps
    readers_of: list[list[int]] = [[] for _ in range(m)]
    prev_inst: list[int | None] = [None] * m
    last_reader = list(range(m))
    # the last instance emitted at a base step is that step's original op;
    # everything before it at the same step is its recompute closure
    consumer_at = {step: t for t, step in enumerate(emit_steps)}
    for t, j in enumerate(instances):
        step = emit_steps[t]
        if t != consumer_at[step]:
            # trigger edges: a recompute instance additionally waits for
            # everything *else* its consumer needs, so the wavefront
            # executor recomputes as late as the serial one does instead of
            # as soon as the checkpoints allow (which would keep the
            # republished value live across the whole gap again)
            trigger = instances[consumer_at[step]]
            for dep in data_inputs[trigger]:
                u = cur[dep]
                if u is not None and emit_steps[u] != step:
                    orders[t].append(u)
            for dep in order_inputs[trigger]:
                u = cur[dep]
                if u is not None and emit_steps[u] != step:
                    orders[t].append(u)
        for dep in data_inputs[j]:
            u = cur[dep]
            assert u is not None, "materialized schedule broke liveness"
            reads[t].append(u)
            readers_of[u].append(t)
            last_reader[u] = t
        for dep in order_inputs[j]:
            u = cur[dep]
            if u is not None:
                orders[t].append(u)
        prev_inst[t] = cur[j]
        cur[j] = t

    # -- serial lowering: free each incarnation after its last reader --------
    release_after_step: list[list[int]] = [[] for _ in range(m)]
    for t, j in enumerate(instances):
        if j not in fetched:
            release_after_step[last_reader[t]].append(t)
    serial_peak = live = 0
    for t, j in enumerate(instances):
        live += bytes_of[j]
        if live > serial_peak:
            serial_peak = live
        for u in release_after_step[t]:
            live -= bytes_of[instances[u]]

    # -- wavefront lowering: levels over the instance DAG -------------------
    # a recompute instance additionally waits for the incarnation it replaces
    # and for all of that incarnation's readers (write-after-read edges), so
    # the barrier that releases the old value strictly precedes the barrier
    # publishing the new one
    depth = [0] * m
    for t in range(m):
        d = 0
        for u in reads[t]:
            if depth[u] >= d:
                d = depth[u] + 1
        for u in orders[t]:
            if depth[u] >= d:
                d = depth[u] + 1
        old = prev_inst[t]
        if old is not None:
            if depth[old] >= d:
                d = depth[old] + 1
            for r in readers_of[old]:
                if depth[r] >= d:
                    d = depth[r] + 1
        depth[t] = d
    num_levels = (max(depth) + 1) if m else 0
    level_lists: list[list[int]] = [[] for _ in range(num_levels)]
    for t in range(m):
        level_lists[depth[t]].append(t)
    release_level_lists: list[list[int]] = [[] for _ in range(num_levels)]
    for t, j in enumerate(instances):
        if j in fetched:
            continue
        last = depth[t]
        for r in readers_of[t]:
            if depth[r] > last:
                last = depth[r]
        release_level_lists[last].append(t)
    wavefront_peak = live = 0
    for index, level in enumerate(level_lists):
        for t in level:
            live += bytes_of[instances[t]]
            if live > wavefront_peak:
                wavefront_peak = live
        for t in release_level_lists[index]:
            live -= bytes_of[instances[t]]

    seen: set[int] = set()
    is_recompute = []
    for j in instances:
        is_recompute.append(j in seen)
        seen.add(j)
    return RematSchedule(
        budget=budget,
        instances=instances,
        is_recompute=is_recompute,
        release_after_step=[tuple(step) for step in release_after_step],
        levels=[tuple(level) for level in level_lists],
        release_levels=[tuple(level) for level in release_level_lists],
        evicted=tuple(sorted({ops[j].name
                              for t, j in enumerate(instances)
                              if is_recompute[t]})),
        serial_peak=serial_peak,
        wavefront_peak=wavefront_peak,
    )


# ---------------------------------------------------------------------------
# planner
# ---------------------------------------------------------------------------

def plan_remat(plan: Sequence[Operation], fetch_ops: Sequence[str],
               budget: int, bytes_of: Mapping[str, int],
               flops_of: Mapping[str, int] | None = None,
               extra_deps: Mapping[str, Sequence[str]] | None = None,
               ) -> RematSchedule:
    """Compute a budgeted keep-vs-recompute schedule for ``plan``.

    ``bytes_of``/``flops_of`` map op names to output bytes and recompute
    FLOPs (see :func:`op_costs`); ``extra_deps`` carries the race detector's
    serialization edges so wavefront levels respect the same barriers the
    unbudgeted plan honors.  Always returns a schedule: with a generous
    budget it degenerates to the base plan with last-use releases (zero
    recomputes), which is what makes the serial executor free intermediates
    at all under a budget.
    """
    ops = list(plan)
    n = len(ops)
    index = {op.name: i for i, op in enumerate(ops)}
    fetched = {index[name] for name in fetch_ops if name in index}
    b = [int(bytes_of.get(op.name, 0)) for op in ops]
    flops = [int((flops_of or {}).get(op.name, 0)) for op in ops]
    data_inputs: list[tuple[int, ...]] = []
    order_inputs: list[tuple[int, ...]] = []
    readers: list[list[int]] = [[] for _ in range(n)]
    for i, op in enumerate(ops):
        deps = []
        for edge in op.inputs:
            j = index.get(edge.op.name)
            if j is not None and j not in deps:
                deps.append(j)
                readers[j].append(i)
        data_inputs.append(tuple(deps))
        orders = []
        for dep in op.control_inputs:
            j = index.get(dep.name)
            if j is not None and j not in orders:
                orders.append(j)
        for name in (extra_deps or {}).get(op.name, ()):
            j = index.get(name)
            if j is not None and j not in orders:
                orders.append(j)
        order_inputs.append(tuple(orders))

    def lower(materialized: tuple[list[int], list[int]]) -> RematSchedule:
        instances, emit_steps = materialized
        return _lower(instances, emit_steps, n, ops, data_inputs,
                      order_inputs, b, fetched, budget)

    def finish(schedule: RematSchedule,
               baseline: RematSchedule) -> RematSchedule:
        schedule.serial_unreleased_bytes = sum(b)
        schedule.baseline_serial_peak = baseline.serial_peak
        schedule.baseline_wavefront_peak = baseline.wavefront_peak
        schedule.recompute_flops = sum(
            flops[j] for t, j in enumerate(schedule.instances)
            if schedule.is_recompute[t])
        schedule.feasible = schedule.peak_bytes <= budget
        return schedule

    baseline = lower((list(range(n)), list(range(n))))
    if baseline.peak_bytes <= budget:
        return finish(baseline, baseline)

    candidates = [i for i, op in enumerate(ops)
                  if i not in fetched and b[i] > 0 and recomputable(op)]
    if not candidates:
        return finish(baseline, baseline)

    # Chen seed: evict everything, pick the best read-locality window near
    # sqrt(n) (window == n degenerates to the no-eviction baseline)
    root = max(1, math.isqrt(n))
    evicted = set(candidates)
    best: RematSchedule | None = None
    for window in sorted({max(1, root // 2), root, 2 * root}):
        schedule = lower(_materialize(n, data_inputs, readers, evicted,
                                      window))
        if best is None or (schedule.peak_bytes, len(schedule.instances)) \
                < (best.peak_bytes, len(best.instances)):
            best, best_window = schedule, window
    assert best is not None

    # drop evictions that never materialized a recompute (free), then
    # greedily un-evict the costliest survivors while the budget still holds
    recompute_counts: dict[int, int] = {}
    for t, j in enumerate(best.instances):
        if best.is_recompute[t]:
            recompute_counts[j] = recompute_counts.get(j, 0) + 1
    evicted = set(recompute_counts)
    trials = sorted(evicted,
                    key=lambda j: flops[j] * recompute_counts[j],
                    reverse=True)[:_MAX_REFINE_TRIALS]
    current = best
    if current.peak_bytes <= budget:
        for j in trials:
            attempt = lower(_materialize(n, data_inputs, readers,
                                         evicted - {j}, best_window))
            if attempt.peak_bytes <= budget:
                evicted.discard(j)
                current = attempt
    if current.peak_bytes >= baseline.peak_bytes:
        # eviction bought nothing (or made it worse — recompute instances
        # extend pinned ancestors): fall back to plain last-use releases
        return finish(baseline, baseline)
    return finish(current, baseline)


def plan_remat_for_graph(graph: Graph, fetches, budget: int,
                         feed_shapes: Mapping[str, tuple] | None = None,
                         ) -> RematSchedule:
    """Convenience wrapper: plan + costs + races from a graph and fetches."""
    roots = []
    for fetch in fetches:
        if isinstance(fetch, GraphTensor):
            roots.append(fetch.op)
        elif isinstance(fetch, Operation):
            roots.append(fetch)
        else:
            roots.append(graph.get_operation(str(fetch).partition(":")[0]))
    plan = topo_plan(roots)
    bytes_of, flops_of, _ = op_costs(plan, graph, feed_shapes=feed_shapes)
    races = analyze_plan(plan)
    return plan_remat(plan, [op.name for op in roots], budget,
                      bytes_of, flops_of, extra_deps=races.extra_edges)
