"""Lint pass over the instrumentation action stream.

The graph driver's phase-1 analysis produces one :class:`OpContext` per
operator, each carrying the :class:`~repro.core.actions.Action` list the
active tools recorded for it.  The actions compose blindly — two tools can
each believe they own an operator — so this pass inspects the whole stream
and flags compositions that are legal individually but wrong together:

* ``replace-conflict`` — two different tools both replace the same operator;
  only the last replacement wins silently at realization time;
* ``insert-after-fetch`` — an ``insert_after_op`` on an operator whose output
  is a fetch target: the fetch is redirected to the wrapper's output, so the
  user observes the *instrumented* value instead of the model's;
* ``backward-no-ad`` — a backward-graph mutation recorded while the manager
  was not created with ``allow_instrumented_ad``;
* ``cache-unsafe-context`` — a tool stored per-run state in the context
  (``has_user_state``) while graph-level caching is enabled: analysis will
  not rerun for cached graphs, so that state silently goes stale;
* ``plan-unsafe-kwargs`` — an action's kwargs capture a mutable container
  (list/dict/set/bytearray) that is *aliased* elsewhere: stored as context
  user state, or shared by other actions.  Kwargs are frozen into the
  compiled execution plan's closure at cache-store time, so mutating such
  shared per-iteration state later changes replay behavior without
  invalidating the plan.  Private single-use snapshots (a dict built inside
  the analysis routine) and ndarrays are exempt — snapshotting into kwargs
  is the established cache-safe idiom (see ``cache-unsafe-context``);
* ``effect-conflict`` — two tools acting on the same operator declare
  effects (``Tool.effects``) that race: one writes a state key the other
  reads or writes.  The composition still runs (the race analysis
  serializes the conflicting PyCalls pairwise), but the tools observe each
  other's state mutations in plan order — usually a sign the composition
  was not designed together.

Lints are warnings, not errors — :func:`lint_contexts` returns the issue list
and never raises.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Iterable, Mapping

from ..core.actions import ActionType
from ..core.context import OpContext

__all__ = ["LintIssue", "lint_contexts"]

_REPLACE_TYPES = (ActionType.REPLACE_OP, ActionType.REPLACE_BACKWARD_OP)


@dataclass(frozen=True)
class LintIssue:
    """One composition problem found in the action stream."""

    rule: str           # replace-conflict | insert-after-fetch | ...
    op_name: str
    op_type: str
    message: str
    tools: tuple[str, ...] = ()

    def __str__(self) -> str:
        tools = f" [tools: {', '.join(self.tools)}]" if self.tools else ""
        return f"[{self.rule}] {self.op_name} ({self.op_type}): " \
               f"{self.message}{tools}"


def _op_identity(context: OpContext) -> tuple[str, str]:
    op = context.get_op()
    name = getattr(op, "name", None) or str(context.get_op_id())
    op_type = context.get("_raw_type", context.get("type", "?"))
    return name, op_type


def _tool_name(action) -> str:
    return action.tool or "<anonymous tool>"


def lint_contexts(contexts: Iterable[OpContext],
                  fetch_names: Iterable[str] = (),
                  allow_instrumented_ad: bool = False,
                  cache_enabled: bool = True,
                  manager=None) -> list[LintIssue]:
    """Lint the recorded action stream of one instrumentation pass.

    ``contexts`` is the per-op context list the driver produced (e.g.
    ``GraphDriver.last_contexts``).  ``fetch_names`` are tensor or op names
    the user fetches (``"loss"`` and ``"loss:0"`` both work).  When
    ``manager`` is given, ``allow_instrumented_ad`` / ``cache_enabled`` are
    read from it instead.
    """
    if manager is not None:
        allow_instrumented_ad = getattr(manager, "instrumented_ad",
                                        allow_instrumented_ad)
        cache_enabled = getattr(manager, "cache_enabled", cache_enabled)
    fetch_ops = {name.partition(":")[0] for name in fetch_names}
    issues: list[LintIssue] = []
    contexts = list(contexts)

    # tool name -> normalized declared effect signature (Tool.effects)
    declared_effects = {}
    if manager is not None:
        from .effects import normalize_effects
        for tool in getattr(manager, "tools", ()):
            declaration = getattr(tool, "effects", None)
            if declaration is not None:
                declared_effects[tool.name] = normalize_effects(declaration)
    reported_pairs: set[frozenset] = set()

    # identity-count every mutable kwargs container across the whole stream:
    # a container referenced by more than one action is shared state whose
    # mutation would silently desynchronize the compiled plans replaying it
    kwarg_refs: dict[int, int] = {}
    for context in contexts:
        for action in context.actions:
            for value in action.kwargs.values():
                if isinstance(value, (list, dict, set, bytearray)):
                    kwarg_refs[id(value)] = kwarg_refs.get(id(value), 0) + 1

    for context in contexts:
        name, op_type = _op_identity(context)
        actions = list(context.actions)

        replacements: Mapping[ActionType, list] = {}
        for action in actions:
            if action.type in _REPLACE_TYPES:
                replacements.setdefault(action.type, []).append(action)
        for action_type, group in replacements.items():
            owners = [_tool_name(a) for a in group]
            if len(group) > 1:
                issues.append(LintIssue(
                    "replace-conflict", name, op_type,
                    f"{len(group)} {action_type.value} actions target this "
                    "operator; only the last replacement takes effect and "
                    "the others are silently discarded",
                    tuple(dict.fromkeys(owners))))

        if name in fetch_ops:
            wrappers = [a for a in actions
                        if a.type == ActionType.INSERT_AFTER_OP]
            for action in wrappers:
                issues.append(LintIssue(
                    "insert-after-fetch", name, op_type,
                    "insert_after_op on a fetch target: the session fetch "
                    "is redirected to the wrapper output, so the fetched "
                    "value is the instrumented one, not the model's",
                    (_tool_name(action),)))

        if not allow_instrumented_ad:
            for action in actions:
                if action.type == ActionType.REPLACE_BACKWARD_OP:
                    issues.append(LintIssue(
                        "backward-no-ad", name, op_type,
                        "backward-graph replacement recorded without "
                        "allow_instrumented_ad; gradients will silently "
                        "diverge from the autodiff of the forward graph",
                        (_tool_name(action),)))

        if cache_enabled:
            user_values = [context.get(key) for key in context.user_keys]
            for action in actions:
                mutable = sorted(
                    key for key, value in action.kwargs.items()
                    if isinstance(value, (list, dict, set, bytearray))
                    and (kwarg_refs.get(id(value), 0) > 1
                         or any(value is uv for uv in user_values)))
                if mutable:
                    issues.append(LintIssue(
                        "plan-unsafe-kwargs", name, op_type,
                        f"action kwargs {mutable} hold mutable containers "
                        "aliased outside this action; kwargs are frozen into "
                        "the compiled execution plan at cache-store time, so "
                        "mutating them later changes replay behavior without "
                        "invalidating the plan — snapshot into an ndarray or "
                        "pass immutable values",
                        (_tool_name(action),)))

        if declared_effects:
            acting = sorted({_tool_name(a) for a in actions
                             if _tool_name(a) in declared_effects})
            for first, second in combinations(acting, 2):
                pair = frozenset((first, second))
                if pair in reported_pairs:
                    continue
                contested = declared_effects[first].conflicts_with(
                    declared_effects[second])
                if contested:
                    reported_pairs.add(pair)
                    keys = ", ".join(repr(k) for k in sorted(contested))
                    issues.append(LintIssue(
                        "effect-conflict", name, op_type,
                        f"tools declare racing effects on state key(s) "
                        f"{keys}; their PyCalls will be serialized in plan "
                        "order and each observes the other's mutations",
                        (first, second)))

        if cache_enabled and context.has_user_state and actions:
            # state baked into an action's kwargs is snapshotted at rewrite
            # time and therefore cache-safe (e.g. a static pruning mask);
            # state only reachable through the context is not — analysis
            # will not rerun for cached graphs to refresh it.
            baked = [value for action in actions
                     for value in action.kwargs.values()]
            stale_keys = sorted(
                key for key in context.user_keys
                if not any(context.get(key) is value for value in baked))
            if stale_keys:
                issues.append(LintIssue(
                    "cache-unsafe-context", name, op_type,
                    f"tool stored context state {stale_keys} that no "
                    "recorded action snapshots; with graph-level caching on, "
                    "analysis does not rerun for cached graphs, so that "
                    "state silently goes stale",
                    tuple(sorted({_tool_name(a) for a in actions}))))

    return issues
