"""Reproduction of "Amanda: Unified Instrumentation Framework for Deep Neural
Networks" (ASPLOS 2024).

Subpackages
-----------
``repro.amanda``
    The public instrumentation API (Tool, OpContext, apply, control APIs).
``repro.eager`` / ``repro.graph``
    The two from-scratch execution backends (PyTorch / TensorFlow analogs).
``repro.tools``
    Built-in and evaluated instrumentation tools.
``repro.baselines``
    Ad-hoc implementations (module hooks, source modification, session hooks)
    the paper compares against.
``repro.models`` / ``repro.data`` / ``repro.kernels``
    Model zoos, synthetic datasets, and the simulated kernel runtime.
``repro.serve``
    Multi-tenant serving runtime with sampled instrumentation.
"""

__version__ = "1.0.0"

__all__ = ["amanda", "eager", "graph", "onnx", "tools", "kernels", "models",
           "data", "baselines", "core", "backends", "train", "capture",
           "serve"]
