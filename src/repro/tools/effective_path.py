"""Effective-path extraction tool (Qiu et al., CVPR'19 / Tbl. 1, Tbl. 3).

The effective path of an inference is the sparse sub-network of neurons and
weights that actually determined the prediction.  Extracting it needs, per
operator, (a) the runtime activations, (b) the weights, and (c) the *global
graph structure* to walk backwards from the logits — which is why the paper
lists it as the task requiring the instrumentation-context graph (Tbl. 1) and
why this tool ``depends_on`` the built-in :class:`GraphTracingTool`.

The extraction criterion follows the original work: walking backward from the
predicted class, for every active output neuron keep the minimal set of
inputs whose contributions reach a ``theta`` fraction of the total
contribution.  Linear ops are resolved at neuron granularity, convolutions at
channel granularity; shape/elementwise ops propagate masks through.
"""

from __future__ import annotations

import numpy as np

from ..core.context import OpContext
from ..core.tool import Tool
from .mapping import standard_mapping_tool
from .tracing import GraphTracingTool

__all__ = ["EffectivePathTool"]

_PASSTHROUGH = ("relu", "gelu", "sigmoid", "tanh", "bias_add", "dropout",
                "batch_norm", "layer_norm", "identity", "softmax",
                "log_softmax")


class EffectivePathTool(Tool):
    """Records activations/weights during execution; extracts paths offline."""

    effects = "pure"  # records per-op-id snapshots, extraction is offline

    def __init__(self) -> None:
        super().__init__()
        self.tracer = GraphTracingTool()
        self.depends_on(standard_mapping_tool(), self.tracer)
        self.add_inst_for_op(self.analysis)
        #: op_id -> latest output activation
        self.activations: dict[int, np.ndarray] = {}
        #: op_id -> weight array (for linear/conv ops)
        self.weights: dict[int, np.ndarray] = {}
        #: op_id -> canonical type
        self.types: dict[int, str] = {}

    # -- analysis --------------------------------------------------------------
    def analysis(self, context: OpContext) -> None:
        op_id = context.get_op_id()
        op_type = context.get("type")
        self.types[op_id] = op_type
        if op_type in ("linear", "conv2d", "matmul"):
            inputs = context.get_inputs()
            if len(inputs) > 1:
                value = getattr(inputs[1], "data", None)
                if value is not None:
                    weight = np.asarray(value)
                    if op_type == "conv2d" and context.get("weight_layout") == "HWIO":
                        weight = weight.transpose(3, 2, 0, 1)
                    self.weights[op_id] = weight
        context.insert_after_op(self._record_activation, outputs=[0],
                                op_id=op_id)

    def _record_activation(self, activation, op_id=None):
        self.activations[op_id] = np.asarray(activation)
        return None

    # -- extraction --------------------------------------------------------------
    def extract(self, theta: float = 0.5) -> dict[int, np.ndarray]:
        """Return per-op boolean masks of effective neurons (sample 0)."""
        graph = self.tracer.graph
        forward = [n for n, d in graph.nodes(data=True) if not d["backward"]
                   and n in self.activations]
        subgraph = graph.subgraph(forward)
        order = self._topo_order(subgraph)
        active: dict[int, np.ndarray] = {}

        # seed: sinks (no forward successors) activate their argmax neuron
        for node in order:
            if subgraph.out_degree(node) == 0:
                out = self._sample(self.activations[node])
                mask = np.zeros_like(out, dtype=bool)
                mask.reshape(-1)[np.argmax(out.reshape(-1))] = True
                active[node] = mask

        for node in reversed(order):
            mask = active.get(node)
            if mask is None or not mask.any():
                continue
            preds = [p for p in subgraph.predecessors(node)]
            if not preds:
                continue
            for pred in preds:
                pred_mask = self._propagate(node, pred, mask)
                if pred_mask is None:
                    continue
                if pred in active:
                    active[pred] |= pred_mask
                else:
                    active[pred] = pred_mask
        return active

    def path_density(self, theta: float = 0.5) -> float:
        """Fraction of neurons on the effective path (lower = sparser path)."""
        active = self.extract(theta)
        self._last_theta = theta
        total = sum(self._sample(self.activations[n]).size for n in active)
        on_path = sum(int(m.sum()) for m in active.values())
        return on_path / total if total else 0.0

    # -- propagation rules --------------------------------------------------------
    def _propagate(self, node: int, pred: int, mask: np.ndarray,
                   theta: float = 0.5) -> np.ndarray | None:
        op_type = self.types.get(node)
        pred_act = self._sample(self.activations.get(pred))
        if pred_act is None:
            return None
        if op_type in ("linear", "matmul") and node in self.weights:
            return self._propagate_linear(node, pred_act, mask, theta)
        if op_type == "conv2d" and node in self.weights:
            return self._propagate_conv(node, pred_act, mask, theta)
        if op_type in _PASSTHROUGH or op_type in ("add", "sub", "mul", "mean",
                                                  "max_pool2d", "avg_pool2d",
                                                  "reshape", "transpose",
                                                  "concat", "sum", "flatten"):
            if pred_act.shape == mask.shape:
                return mask.copy()
            if op_type in ("max_pool2d", "avg_pool2d", "mean") and \
                    pred_act.ndim == mask.ndim == 3:
                # propagate channel-level activity through pooling (C,H,W)
                channel = mask.any(axis=(1, 2))
                out = np.zeros(pred_act.shape, dtype=bool)
                out[channel] = True
                return out
            if pred_act.size and mask.size:
                # shape-changing op: propagate by flattened prefix fill
                out = np.zeros(pred_act.size, dtype=bool)
                flat = mask.reshape(-1)
                out[:flat.size][flat[:out.size]] = True
                return out.reshape(pred_act.shape)
        # unknown op: conservative full propagation of any activity
        return np.ones(pred_act.shape, dtype=bool)

    def _propagate_linear(self, node, pred_act, mask, theta):
        weight = self.weights[node]  # (out, in)
        flat_in = pred_act.reshape(-1)
        active_out = np.nonzero(mask.reshape(-1))[0]
        in_mask = np.zeros(flat_in.shape, dtype=bool)
        for j in active_out:
            if j >= weight.shape[0]:
                continue
            contributions = np.abs(weight[j, :flat_in.size] * flat_in)
            total = contributions.sum()
            if total <= 0:
                continue
            order = np.argsort(contributions)[::-1]
            cumulative = np.cumsum(contributions[order])
            needed = int(np.searchsorted(cumulative, theta * total)) + 1
            in_mask[order[:needed]] = True
        return in_mask.reshape(pred_act.shape)

    def _propagate_conv(self, node, pred_act, mask, theta):
        weight = self.weights[node]  # (O, I, KH, KW)
        # channel-level: which input channels matter for the active output chans
        if mask.ndim == 3:
            active_channels = np.nonzero(mask.any(axis=(1, 2)))[0]
        else:
            active_channels = np.nonzero(mask.reshape(-1))[0]
        if pred_act.ndim != 3:
            return np.ones(pred_act.shape, dtype=bool)
        channel_strength = np.abs(pred_act).mean(axis=(1, 2))
        in_mask = np.zeros(pred_act.shape, dtype=bool)
        for o in active_channels:
            if o >= weight.shape[0]:
                continue
            contributions = np.abs(weight[o]).sum(axis=(1, 2))[:pred_act.shape[0]] \
                * channel_strength
            total = contributions.sum()
            if total <= 0:
                continue
            order = np.argsort(contributions)[::-1]
            cumulative = np.cumsum(contributions[order])
            needed = int(np.searchsorted(cumulative, theta * total)) + 1
            in_mask[order[:needed]] = True
        return in_mask

    # -- helpers --------------------------------------------------------------------
    @staticmethod
    def _sample(array: np.ndarray | None) -> np.ndarray | None:
        """First sample of a batched activation (N, ...) -> (...)."""
        if array is None:
            return None
        return array[0] if array.ndim > 1 else array

    @staticmethod
    def _topo_order(graph) -> list[int]:
        import networkx as nx
        return list(nx.topological_sort(graph))

    def reset(self) -> None:
        self.activations.clear()
        self.weights.clear()
        self.types.clear()
        self.tracer.reset()
