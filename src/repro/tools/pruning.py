"""Network pruning tools — the Tbl. 4 project family as Amanda tools.

Each class reproduces one community pruning project's semantics with the
operator instrumentation abstraction (compare the ad-hoc versions in
:mod:`repro.baselines`):

* :class:`MagnitudePruningTool` — classic static unstructured weight pruning
  (Han et al.), masking weights in forward and weight gradients in backward
  so fine-tuning keeps pruned weights at zero.
* :class:`TileWisePruningTool` — tile-wise structured sparsity (Guo et al.,
  the Tbl. 4 "Tile Wise Pruning" row): whole weight tiles are kept/dropped by
  tile L1 norm.
* :class:`VectorWisePruningTool` — APEX-style n:m fine-grained structured
  sparsity (2:4 by default) along the input dimension.
* :class:`ChannelPruningTool` — dynamic channel gating (FBS-style): input
  channels with the lowest runtime saliency are zeroed per batch.
* :class:`ActivationPruningTool` — dynamic activation pruning: only the
  top-k fraction of each activation tensor (by magnitude) survives.
* :class:`AttentionPruningTool` — Block-Skim-style attention pruning: low
  attention weights are dropped after the softmax inside attention blocks.

All tools consume canonical contexts (they depend on the standard mapping
tool) and therefore run unmodified on both backends.
"""

from __future__ import annotations

import numpy as np

from ..core.context import OpContext
from ..core.tool import Tool
from .mapping import standard_mapping_tool

__all__ = [
    "MagnitudePruningTool", "TileWisePruningTool", "VectorWisePruningTool",
    "ChannelPruningTool", "ActivationPruningTool", "AttentionPruningTool",
    "magnitude_mask", "tile_mask", "n_m_mask",
]


# ---------------------------------------------------------------------------
# mask construction (pure functions, unit-testable)
# ---------------------------------------------------------------------------

def magnitude_mask(weight: np.ndarray, sparsity: float) -> np.ndarray:
    """Keep the largest-|w| fraction ``1 - sparsity`` of elements."""
    if sparsity <= 0.0:
        return np.ones_like(weight)
    if sparsity >= 1.0:
        return np.zeros_like(weight)
    k = int(round(weight.size * sparsity))
    if k == 0:
        return np.ones_like(weight)
    flat = np.abs(weight).reshape(-1)
    threshold = np.partition(flat, k - 1)[k - 1]
    return (np.abs(weight) > threshold).astype(weight.dtype)


def tile_mask(weight: np.ndarray, tile_shape: tuple[int, int],
              sparsity: float) -> np.ndarray:
    """Keep/drop whole 2-D tiles of the (flattened-to-2D) weight by L1 norm."""
    mat = weight.reshape(weight.shape[0], -1)
    th, tw = tile_shape
    rows = -(-mat.shape[0] // th)
    cols = -(-mat.shape[1] // tw)
    padded = np.zeros((rows * th, cols * tw), dtype=mat.dtype)
    padded[:mat.shape[0], :mat.shape[1]] = np.abs(mat)
    tiles = padded.reshape(rows, th, cols, tw).sum(axis=(1, 3))
    k = int(round(tiles.size * sparsity))
    if k <= 0:
        keep = np.ones_like(tiles, dtype=bool)
    else:
        threshold = np.partition(tiles.reshape(-1), k - 1)[k - 1]
        keep = tiles > threshold
    expanded = np.repeat(np.repeat(keep, th, axis=0), tw, axis=1)
    return expanded[:mat.shape[0], :mat.shape[1]].astype(weight.dtype) \
        .reshape(weight.shape)


def n_m_mask(weight: np.ndarray, n: int = 2, m: int = 4) -> np.ndarray:
    """n:m structured sparsity: keep the n largest of every m consecutive
    elements along the last (input) dimension."""
    mat = weight.reshape(-1, weight.shape[-1])
    cols = mat.shape[1]
    groups = cols // m
    mask = np.ones_like(mat)
    if groups:
        usable = groups * m
        grouped = np.abs(mat[:, :usable]).reshape(mat.shape[0], groups, m)
        order = np.argsort(grouped, axis=2)
        drop = order[:, :, :m - n]
        group_mask = np.ones_like(grouped)
        np.put_along_axis(group_mask, drop, 0.0, axis=2)
        mask[:, :usable] = group_mask.reshape(mat.shape[0], usable)
    return mask.reshape(weight.shape)


# ---------------------------------------------------------------------------
# static weight pruning
# ---------------------------------------------------------------------------

class _StaticWeightPruningTool(Tool):
    """Shared machinery: mask weights forward, mask weight grads backward."""

    effects = "pure"  # mask multiply is a function of weight + baked mask

    PRUNED_TYPES = ("conv2d", "linear", "matmul")
    PRUNED_BACKWARD = ("conv2d_backward_weight", "linear_backward_weight",
                       "matmul_backward")

    def __init__(self, op_types: tuple[str, ...] | None = None) -> None:
        super().__init__()
        if op_types:
            self.PRUNED_TYPES = tuple(op_types)
        self.masks: dict[int, np.ndarray] = {}
        self.depends_on(standard_mapping_tool())
        self.add_inst_for_op(self.forward_analysis)
        self.add_inst_for_op(self.backward_analysis, backward=True)

    # subclasses implement the pruning pattern
    def compute_mask(self, weight: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def forward_analysis(self, context: OpContext) -> None:
        if context.get("type") not in self.PRUNED_TYPES:
            return
        inputs = context.get_inputs()
        if len(inputs) < 2:
            return
        weight = inputs[1]
        value = getattr(weight, "data", None)
        if value is None:
            return  # symbolic (non-variable) weight: nothing to prune
        mask = self.compute_mask(np.asarray(value))
        # static check before any rewrite: a mis-shaped mask would silently
        # broadcast (or explode) inside the instrumented graph
        from ..analysis.schemas import validate_mask_shape
        validate_mask_shape(mask, value, context.get("type"))
        context["mask"] = mask
        self.masks[context.get_op_id()] = mask
        context.insert_before_op(self.mask_forward_weight, inputs=[1], mask=mask)

    def backward_analysis(self, context: OpContext) -> None:
        if context.get("backward_type") not in self.PRUNED_BACKWARD:
            return
        mask = context.get("mask")
        if mask is None:
            return
        context.insert_after_backward_op(self.mask_backward_gradient,
                                         grad_inputs=[0], mask=mask)

    # instrumentation routines
    @staticmethod
    def mask_forward_weight(weight, mask):
        return weight * mask

    @staticmethod
    def mask_backward_gradient(weight_grad, mask):
        if weight_grad.shape != mask.shape:
            return weight_grad  # e.g. matmul grad for the non-weight operand
        return weight_grad * mask

    def overall_sparsity(self) -> float:
        if not self.masks:
            return 0.0
        zeros = sum(int((m == 0).sum()) for m in self.masks.values())
        total = sum(m.size for m in self.masks.values())
        return zeros / total


class MagnitudePruningTool(_StaticWeightPruningTool):
    """Static unstructured magnitude pruning (Han et al. / Lst. 1)."""

    def __init__(self, sparsity: float = 0.5, op_types=None) -> None:
        self.sparsity = sparsity
        super().__init__(op_types)

    def compute_mask(self, weight: np.ndarray) -> np.ndarray:
        return magnitude_mask(weight, self.sparsity)


class TileWisePruningTool(_StaticWeightPruningTool):
    """Tile-wise structured pruning (Guo et al., SC'20)."""

    def __init__(self, tile_shape=(4, 4), sparsity: float = 0.5,
                 op_types=None) -> None:
        self.tile_shape = tuple(tile_shape)
        self.sparsity = sparsity
        super().__init__(op_types)

    def compute_mask(self, weight: np.ndarray) -> np.ndarray:
        return tile_mask(weight, self.tile_shape, self.sparsity)


class VectorWisePruningTool(_StaticWeightPruningTool):
    """APEX-style n:m (default 2:4) vector-wise structured sparsity."""

    def __init__(self, n: int = 2, m: int = 4, op_types=None) -> None:
        self.n, self.m = n, m
        super().__init__(op_types)

    def compute_mask(self, weight: np.ndarray) -> np.ndarray:
        return n_m_mask(weight, self.n, self.m)


# ---------------------------------------------------------------------------
# dynamic pruning
# ---------------------------------------------------------------------------

class ChannelPruningTool(Tool):
    """Dynamic channel gating (FBS-style): per batch, the conv input channels
    with the lowest mean |x| saliency are zeroed at runtime."""

    effects = "pure"  # gating is a function of the batch's own activations

    def __init__(self, keep_ratio: float = 0.75) -> None:
        super().__init__()
        self.keep_ratio = keep_ratio
        self.gate_counts: dict[int, int] = {}
        self.depends_on(standard_mapping_tool())
        self.add_inst_for_op(self.analysis)

    def analysis(self, context: OpContext) -> None:
        if context.get("type") != "conv2d":
            return
        context.insert_before_op(
            self.gate_channels, inputs=[0],
            keep_ratio=self.keep_ratio,
            channel_axis=1 if context.get("data_layout", "NCHW") == "NCHW" else 3,
            op_id=context.get_op_id(), counts=self.gate_counts)

    @staticmethod
    def gate_channels(x, keep_ratio=0.75, channel_axis=1, op_id=None, counts=None):
        channels = x.shape[channel_axis]
        keep = max(1, int(round(channels * keep_ratio)))
        reduce_axes = tuple(a for a in range(x.ndim) if a != channel_axis)
        saliency = np.abs(x).mean(axis=reduce_axes)
        kept = np.argsort(saliency)[-keep:]
        mask_shape = [1] * x.ndim
        mask_shape[channel_axis] = channels
        mask = np.zeros(channels)
        mask[kept] = 1.0
        if counts is not None and op_id is not None:
            counts[op_id] = counts.get(op_id, 0) + int(channels - keep)
        return x * mask.reshape(mask_shape)


class ActivationPruningTool(Tool):
    """Dynamic activation pruning: keep the top-k fraction by magnitude."""

    effects = "pure"  # top-k mask is a function of the activation itself

    def __init__(self, keep_ratio: float = 0.5,
                 op_types=("relu",)) -> None:
        super().__init__()
        self.keep_ratio = keep_ratio
        self.op_types = tuple(op_types)
        self.depends_on(standard_mapping_tool())
        self.add_inst_for_op(self.analysis)

    def analysis(self, context: OpContext) -> None:
        if context.get("type") not in self.op_types:
            return
        context.insert_after_op(self.prune_activation, outputs=[0],
                                keep_ratio=self.keep_ratio)

    @staticmethod
    def prune_activation(activation, keep_ratio=0.5):
        k = int(round(activation.size * (1.0 - keep_ratio)))
        if k <= 0:
            return activation
        flat = np.abs(activation).reshape(-1)
        threshold = np.partition(flat, k - 1)[k - 1]
        return activation * (np.abs(activation) > threshold)


class AttentionPruningTool(Tool):
    """Block-Skim-style attention pruning: zero attention weights below a
    per-row relative threshold after softmax ops."""

    effects = "pure"  # thresholding is a function of the attention weights

    def __init__(self, threshold_ratio: float = 0.1) -> None:
        super().__init__()
        self.threshold_ratio = threshold_ratio
        self.pruned_fraction: list[float] = []
        self.depends_on(standard_mapping_tool())
        self.add_inst_for_op(self.analysis)

    def analysis(self, context: OpContext) -> None:
        if context.get("type") != "softmax":
            return
        context.insert_after_op(self.prune_attention, outputs=[0],
                                ratio=self.threshold_ratio,
                                stats=self.pruned_fraction)

    @staticmethod
    def prune_attention(weights, ratio=0.1, stats=None):
        threshold = weights.max(axis=-1, keepdims=True) * ratio
        mask = weights >= threshold
        pruned = weights * mask
        denominator = pruned.sum(axis=-1, keepdims=True)
        denominator[denominator == 0] = 1.0
        if stats is not None:
            stats.append(float(1.0 - mask.mean()))
        return pruned / denominator
