"""Subgraph rewriting tool (built-in, Sec. 5.2).

Modifies the DNN at subgraph granularity: the user supplies *patterns* —
linear chains of canonical op types — and a rewrite callback.  The tool uses
the built-in :class:`GraphTracingTool` to know each operator's producers, so
it works identically in eager mode (where no explicit graph exists) and graph
mode.

A matched chain is rewritten by replacing its ops: the rewrite callback
returns, per position in the chain, either ``None`` (keep the op), a callable
(replace the op's computation), or the string ``"identity"`` (remove the op —
replace-with-identity semantics).
"""

from __future__ import annotations

from typing import Callable

from ..core.context import OpContext
from ..core.tool import Tool
from .mapping import standard_mapping_tool
from .tracing import GraphTracingTool

__all__ = ["SubgraphRewritingTool"]


def _identity(*arrays):
    """Removal semantics: forward the op's first (data) input unchanged."""
    return arrays[0]


class SubgraphRewritingTool(Tool):
    """Pattern-matched rewriting of operator chains."""

    effects = "pure"  # rewrites compute from their inputs only

    def __init__(self, pattern: list[str],
                 rewrite: Callable[[list[OpContext]], list]) -> None:
        """``pattern`` is a chain of canonical op types, matched along data
        edges; ``rewrite(chain_contexts)`` returns one entry per position."""
        super().__init__()
        self.pattern = list(pattern)
        self.rewrite = rewrite
        self.matches: list[list[int]] = []
        self.tracer = GraphTracingTool()
        self.depends_on(standard_mapping_tool(), self.tracer)
        #: op_id -> (context, type); pending contexts of potential chain heads
        self._contexts: dict[int, OpContext] = {}
        # before-forward: the tracer (a dependency) has already added the
        # current op and its input edges, and a replace action registered now
        # still applies to this very execution
        self.add_inst_for_op(self.analysis)

    def analysis(self, context: OpContext) -> None:
        op_id = context.get_op_id()
        op_type = context.get("type")
        self._contexts[op_id] = context
        if op_type != self.pattern[-1]:
            return
        chain = self._match_chain(op_id)
        if chain is None:
            return
        self.matches.append(chain)
        contexts = [self._contexts[node] for node in chain]
        replacements = self.rewrite(contexts)
        from ..core.manager import manager
        for node_context, replacement in zip(contexts, replacements):
            if replacement is None:
                continue
            func = _identity if replacement == "identity" else replacement
            action = node_context.replace_op(func)
            if node_context is not context:
                # the earlier op's actions were already evaluated/cached this
                # iteration; back-patch its cache record so the replacement
                # applies from the next execution (eager) — the graph driver
                # applies all actions after the full analysis pass instead
                manager.cache_append(node_context.get_op_id(), action)

    def _match_chain(self, tail_id: int) -> list[int] | None:
        """Walk producers backwards matching the pattern right-to-left."""
        graph = self.tracer.graph
        chain = [tail_id]
        current = tail_id
        for expected in reversed(self.pattern[:-1]):
            preds = [p for p in graph.predecessors(current)
                     if not graph.nodes[p].get("backward")]
            matching = [p for p in preds
                        if graph.nodes[p].get("type") == expected]
            if len(matching) != 1:
                return None
            current = matching[0]
            chain.append(current)
        chain.reverse()
        # all chain contexts must still be pending (same iteration)
        if any(node not in self._contexts for node in chain):
            return None
        return chain
