"""ONNX export as an instrumentation tool.

A showcase of the instrumentation abstraction's reach: exporting a model is
"just" a tracing task — observe every operator execution with its attributes,
weights and dataflow, then serialize.  The tool records one execution of any
eager model (no model-source cooperation needed) and builds an
:class:`~repro.onnx.model.OnnxModel` that the ONNX-style backend executes
with bit-identical results (inference mode).

Supported canonical ops: conv2d (+folded bias_add), linear, matmul, relu,
sigmoid, softmax, max_pool2d, global mean pooling, add, concat,
reshape/flatten, batch_norm (eval), dropout (eval: dropped).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.context import OpContext
from ..core.tool import Tool
from ..eager.module import Parameter
from ..eager.tensor import Tensor
from ..onnx.model import Node, OnnxModel
from .mapping import standard_mapping_tool

__all__ = ["OnnxExportTool", "export_onnx"]


@dataclass
class _OpRecord:
    op_type: str
    attrs: dict
    input_ids: list[int]
    output_ids: list[int]
    #: strong refs keep tensor ids unique for the lifetime of the export
    tensors: list = field(default_factory=list)
    #: leaf input values captured at record time (potential initializers)
    leaf_values: dict = field(default_factory=dict)
    leaf_is_param: dict = field(default_factory=dict)


class OnnxExportTool(Tool):
    """Records one eager execution; ``build()`` emits the ONNX model."""

    is_context_transform = True  # observation only: keep the fast path alive
    effects = "pure"

    def __init__(self) -> None:
        super().__init__()
        self.records: list[_OpRecord] = []
        self.depends_on(standard_mapping_tool())
        self.add_inst_for_op(self.analysis, require_outputs=True)

    # -- recording ---------------------------------------------------------------
    def analysis(self, context: OpContext) -> None:
        if context.namespace != "eager":
            return
        inputs = [t for t in context.get_inputs()]
        outputs = [t for t in context.get_outputs()]
        record = _OpRecord(
            op_type=context.get("type"),
            attrs=dict(context.get("_attrs", {})),
            input_ids=[id(t) for t in inputs],
            output_ids=[id(t) for t in outputs],
            tensors=inputs + outputs,
        )
        for t in inputs:
            if isinstance(t, Tensor) and t.node is None:
                record.leaf_values[id(t)] = np.array(t.data)
                record.leaf_is_param[id(t)] = isinstance(t, Parameter)
        self.records.append(record)

    def reset(self) -> None:
        self.records.clear()

    # -- model construction ---------------------------------------------------------
    def build(self, input_tensor, output_tensor) -> OnnxModel:
        """Build the ONNX model; ``input_tensor``/``output_tensor`` mark the
        graph boundary (the tensors passed to / returned by the module)."""
        model = OnnxModel()
        names: dict[int, str] = {id(input_tensor): "input"}
        model.inputs.append("input")
        counter = [0]

        def fresh(base: str) -> str:
            counter[0] += 1
            return f"{base}_{counter[0]}"

        def initializer(tensor_id: int, value: np.ndarray, base: str) -> str:
            name = names.get(tensor_id)
            if name is None:
                name = fresh(base)
                model.initializers[name] = value
                names[tensor_id] = name
            return name

        def resolve(record: _OpRecord, index: int, base: str = "const") -> str:
            tensor_id = record.input_ids[index]
            if tensor_id in names:
                return names[tensor_id]
            if tensor_id in record.leaf_values:
                return initializer(tensor_id, record.leaf_values[tensor_id],
                                   base)
            raise ValueError(
                f"cannot export: input {index} of {record.op_type!r} is an "
                "intermediate tensor produced by an unsupported operator")

        records = self._fold_conv_bias(self.records)
        for record in records:
            emit = _EMITTERS.get(record.op_type)
            if emit is None:
                raise NotImplementedError(
                    f"ONNX export does not support op {record.op_type!r}")
            emit(model, record, names, resolve, fresh)

        output_name = names.get(id(output_tensor))
        if output_name is None:
            raise ValueError("output tensor was not produced by a recorded op")
        model.outputs.append(output_name)
        return model

    @staticmethod
    def _fold_conv_bias(records: list[_OpRecord]) -> list[_OpRecord]:
        """Fold a bias_add whose data input comes from a conv2d into the conv
        (ONNX Conv carries its bias)."""
        conv_outputs = {}
        for record in records:
            if record.op_type == "conv2d":
                conv_outputs[record.output_ids[0]] = record
        folded: list[_OpRecord] = []
        for record in records:
            if (record.op_type == "bias_add"
                    and record.input_ids[0] in conv_outputs
                    and record.input_ids[1] in record.leaf_values):
                conv = conv_outputs[record.input_ids[0]]
                conv.input_ids.append(record.input_ids[1])
                conv.leaf_values[record.input_ids[1]] = \
                    record.leaf_values[record.input_ids[1]]
                conv.output_ids = record.output_ids  # bias output replaces
                conv.tensors += record.tensors
                continue
            folded.append(record)
        return folded


# ---------------------------------------------------------------------------
# per-op emitters: record -> ONNX node(s)
# ---------------------------------------------------------------------------

def _emit_simple(onnx_type: str, attr_map=None):
    def emit(model, record, names, resolve, fresh):
        inputs = [resolve(record, i) for i in range(len(record.input_ids))]
        name = fresh(onnx_type)
        output = f"{name}:0"
        attrs = attr_map(record.attrs) if attr_map else {}
        model.add_node(Node(onnx_type, inputs, [output], attrs, name))
        names[record.output_ids[0]] = output
    return emit


def _emit_conv(model, record, names, resolve, fresh):
    inputs = [resolve(record, 0), resolve(record, 1, "conv_w")]
    if len(record.input_ids) > 2:
        inputs.append(resolve(record, 2, "conv_b"))
    name = fresh("Conv")
    output = f"{name}:0"
    model.add_node(Node("Conv", inputs, [output],
                        {"strides": tuple(record.attrs.get("stride", (1, 1))),
                         "pads": tuple(record.attrs.get("padding", (0, 0)))},
                        name))
    names[record.output_ids[0]] = output


def _emit_linear(model, record, names, resolve, fresh):
    inputs = [resolve(record, 0), resolve(record, 1, "gemm_w")]
    if len(record.input_ids) > 2:
        inputs.append(resolve(record, 2, "gemm_b"))
    name = fresh("Gemm")
    output = f"{name}:0"
    model.add_node(Node("Gemm", inputs, [output], {"transB": 1}, name))
    names[record.output_ids[0]] = output


def _emit_mean(model, record, names, resolve, fresh):
    axis = record.attrs.get("axis")
    if tuple(axis or ()) == (2, 3) and record.attrs.get("keepdims"):
        name = fresh("GlobalAveragePool")
        output = f"{name}:0"
        model.add_node(Node("GlobalAveragePool", [resolve(record, 0)],
                            [output], {}, name))
        names[record.output_ids[0]] = output
        return
    raise NotImplementedError(f"mean over axis {axis!r} has no ONNX mapping")


def _emit_reshape(model, record, names, resolve, fresh):
    shape = tuple(record.attrs.get("shape", ()))
    name = fresh("Flatten" if len(shape) == 2 and shape[-1] == -1 else "Reshape")
    output = f"{name}:0"
    if name.startswith("Flatten"):
        model.add_node(Node("Flatten", [resolve(record, 0)], [output], {}, name))
    else:
        model.add_node(Node("Reshape", [resolve(record, 0)], [output],
                            {"shape": shape}, name))
    names[record.output_ids[0]] = output


def _emit_batch_norm(model, record, names, resolve, fresh):
    if record.attrs.get("training"):
        raise NotImplementedError("export requires eval-mode batch norm")
    inputs = [resolve(record, 0)] + [resolve(record, i, "bn")
                                     for i in range(1, 5)]
    name = fresh("BatchNormalization")
    output = f"{name}:0"
    model.add_node(Node("BatchNormalization", inputs, [output],
                        {"eps": record.attrs.get("eps", 1e-5)}, name))
    names[record.output_ids[0]] = output


def _emit_dropout(model, record, names, resolve, fresh):
    if record.attrs.get("training"):
        raise NotImplementedError("export requires eval-mode dropout")
    # identity: route the name through
    names[record.output_ids[0]] = resolve(record, 0)


_EMITTERS = {
    "conv2d": _emit_conv,
    "bias_add": _emit_simple("Add"),
    "linear": _emit_linear,
    "matmul": _emit_simple("MatMul"),
    "relu": _emit_simple("Relu"),
    "sigmoid": _emit_simple("Sigmoid"),
    "softmax": _emit_simple("Softmax"),
    "max_pool2d": _emit_simple(
        "MaxPool", lambda attrs: {"kernel_shape": tuple(attrs.get("kernel", (2, 2))),
                                  "strides": tuple(attrs.get("stride")
                                                   or attrs.get("kernel", (2, 2)))}),
    "avg_pool2d": _emit_simple(
        "AveragePool",
        lambda attrs: {"kernel_shape": tuple(attrs.get("kernel", (2, 2))),
                       "strides": tuple(attrs.get("stride")
                                        or attrs.get("kernel", (2, 2))),
                       "pads": tuple(attrs.get("padding", (0, 0)))}),
    "add": _emit_simple("Add"),
    "concat": _emit_simple("Concat",
                           lambda attrs: {"axis": attrs.get("axis", 1)}),
    "mean": _emit_mean,
    "reshape": _emit_reshape,
    "batch_norm": _emit_batch_norm,
    "dropout": _emit_dropout,
}


def export_onnx(module, sample_input) -> OnnxModel:
    """Export an eager module to an :class:`OnnxModel` by traced execution."""
    from .. import backends  # noqa: F401  (ensures drivers are registered)
    from ..core.manager import apply as amanda_apply

    module.eval()
    tool = OnnxExportTool()
    with amanda_apply(tool):
        output = module(sample_input)
    return tool.build(sample_input, output)
