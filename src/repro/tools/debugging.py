"""Training-debugging tools: numerical guards and gradient monitoring.

The paper motivates instrumentation with analysis tasks that "monitor the
execution process of an existing DNN model" (Sec. 1/2).  These two tools are
the everyday debugging instances of that category:

* :class:`NaNGuardTool` — watches every operator's outputs (and produced
  gradients) for NaN/Inf and reports the *first* offending operator with its
  stable id and type — the information a module-level hook cannot give for
  functional ops.
* :class:`GradientMonitorTool` — per-operator gradient-norm statistics across
  iterations: detects vanishing/exploding gradients at operator granularity.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from ..core.context import OpContext
from ..core.tool import Tool
from .mapping import standard_mapping_tool

__all__ = ["NaNGuardTool", "NumericalAnomaly", "GradientMonitorTool",
           "GradientClippingTool"]


@dataclass
class NumericalAnomaly:
    op_id: int | None
    op_type: str
    phase: str  # "forward" | "backward"
    kind: str   # "nan" | "inf"
    tensor_index: int


class NaNGuardError(FloatingPointError):
    """Raised by :class:`NaNGuardTool` in ``raise_on_anomaly`` mode."""

    def __init__(self, anomaly: NumericalAnomaly) -> None:
        super().__init__(
            f"{anomaly.kind} detected in {anomaly.phase} of operator "
            f"{anomaly.op_type!r} (id={anomaly.op_id}, "
            f"tensor {anomaly.tensor_index})")
        self.anomaly = anomaly


class NaNGuardTool(Tool):
    """Detects the first operator producing NaN/Inf values."""

    effects = "pure"  # inspects values, never rewrites them

    def __init__(self, raise_on_anomaly: bool = False,
                 check_gradients: bool = True) -> None:
        super().__init__()
        self.raise_on_anomaly = raise_on_anomaly
        self.anomalies: list[NumericalAnomaly] = []
        self.depends_on(standard_mapping_tool())
        self.add_inst_for_op(self.forward_analysis)
        if check_gradients:
            self.add_inst_for_op(self.backward_analysis, backward=True)

    def forward_analysis(self, context: OpContext) -> None:
        context.insert_after_op(self._check, outputs=None,
                                op_id=context.get_op_id(),
                                op_type=context.get("type"), phase="forward")

    def backward_analysis(self, context: OpContext) -> None:
        context.insert_after_backward_op(
            self._check, grad_inputs=None,
            op_id=context.get_op_id(),
            op_type=context.get("backward_type", "?"), phase="backward")

    def _check(self, *arrays, op_id=None, op_type=None, phase=None):
        for index, array in enumerate(arrays):
            array = np.asarray(array)
            if np.isnan(array).any():
                self._report(op_id, op_type, phase, "nan", index)
            elif np.isinf(array).any():
                self._report(op_id, op_type, phase, "inf", index)
        return None

    def _report(self, op_id, op_type, phase, kind, index) -> None:
        anomaly = NumericalAnomaly(op_id, op_type, phase, kind, index)
        self.anomalies.append(anomaly)
        if self.raise_on_anomaly:
            raise NaNGuardError(anomaly)

    @property
    def clean(self) -> bool:
        return not self.anomalies

    def first_anomaly(self) -> NumericalAnomaly | None:
        return self.anomalies[0] if self.anomalies else None

    def reset(self) -> None:
        self.anomalies.clear()


class GradientMonitorTool(Tool):
    """Per-operator gradient-norm statistics across training iterations."""

    effects = "pure"  # per-op-id statistics, order-independent

    def __init__(self, vanish_threshold: float = 1e-8,
                 explode_threshold: float = 1e3) -> None:
        super().__init__()
        self.vanish_threshold = vanish_threshold
        self.explode_threshold = explode_threshold
        #: backward op id -> list of grad L2 norms, one per execution
        self.norms: dict[int, list[float]] = defaultdict(list)
        self.types: dict[int, str] = {}
        self.depends_on(standard_mapping_tool())
        self.add_inst_for_op(self.backward_analysis, backward=True)

    def backward_analysis(self, context: OpContext) -> None:
        bwd_id = context.get_backward_op_id()
        self.types[bwd_id] = context.get("backward_type", "?")
        context.insert_after_backward_op(self._record, grad_inputs=None,
                                         bwd_id=bwd_id)

    def _record(self, *grads, bwd_id=None):
        total = float(np.sqrt(sum(float((np.asarray(g) ** 2).sum())
                                  for g in grads)))
        self.norms[bwd_id].append(total)
        return None

    # -- reporting --------------------------------------------------------------
    def vanishing(self) -> list[int]:
        """Backward ops whose latest gradient norm is ~zero."""
        return [bwd_id for bwd_id, norms in self.norms.items()
                if norms and norms[-1] < self.vanish_threshold]

    def exploding(self) -> list[int]:
        return [bwd_id for bwd_id, norms in self.norms.items()
                if norms and norms[-1] > self.explode_threshold]

    def summary(self) -> list[tuple[str, float, float]]:
        """(backward type, mean norm, max norm), largest mean first."""
        rows = [(self.types.get(bwd_id, "?"), float(np.mean(norms)),
                 float(np.max(norms)))
                for bwd_id, norms in self.norms.items() if norms]
        return sorted(rows, key=lambda r: -r[1])

    def reset(self) -> None:
        self.norms.clear()
        self.types.clear()


class GradientClippingTool(Tool):
    """Clips every parameter gradient as it is accumulated.

    Classic training stabilization implemented at the instrumentation level:
    the tool intercepts the explicit ``accumulate_grad`` operator (one per
    trainable leaf, Sec. 5.3 — invisible to module hooks) and clips either by
    value or to a maximum L2 norm per parameter.
    """

    effects = "pure"  # clipping is a function of the incoming gradient

    def __init__(self, max_norm: float | None = None,
                 clip_value: float | None = None) -> None:
        if (max_norm is None) == (clip_value is None):
            raise ValueError("specify exactly one of max_norm / clip_value")
        super().__init__()
        self.max_norm = max_norm
        self.clip_value = clip_value
        self.clip_events = 0
        self.depends_on(standard_mapping_tool())
        self.add_inst_for_op(self.analysis)

    def analysis(self, context: OpContext) -> None:
        if context.get("type") != "accumulate_grad":
            return
        context.insert_before_op(self._clip, inputs=[1])

    def _clip(self, grad):
        grad = np.asarray(grad)
        if self.clip_value is not None:
            clipped = np.clip(grad, -self.clip_value, self.clip_value)
            if not np.array_equal(clipped, grad):
                self.clip_events += 1
            return clipped
        norm = float(np.sqrt((grad ** 2).sum()))
        if norm <= self.max_norm or norm == 0.0:
            return grad
        self.clip_events += 1
        return grad * (self.max_norm / norm)
