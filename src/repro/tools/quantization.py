"""Quantization tools: static PTQ, dynamic PTQ, and QAT (Tbl. 1, Sec. 6.1).

The three methods need exactly the computation states Tbl. 1 lists:

* **static PTQ** quantizes weights only, with scales fixed at analysis time;
* **dynamic PTQ** additionally fake-quantizes activations with per-batch
  runtime scales;
* **QAT** fake-quantizes weights and activations during *training*.  Because
  the eager driver substitutes instrumented input values while keeping
  autograd wired to the original tensors (AD isolation), gradients flow
  straight through the quantizer — the straight-through estimator falls out
  of the instrumentation model, and weight gradients can additionally be
  clipped by a backward instrumentation routine.

All tools are portable across backends via the standard mapping tool.
"""

from __future__ import annotations

import numpy as np

from ..core.context import OpContext
from ..core.tool import Tool
from .mapping import standard_mapping_tool

__all__ = ["quantize_dequantize", "StaticPTQTool", "DynamicPTQTool", "QATTool",
           "ActivationCalibrationTool", "CalibratedPTQTool"]


def quantize_dequantize(array: np.ndarray, bits: int = 8,
                        scale: float | None = None) -> np.ndarray:
    """Symmetric uniform fake quantization: round(x/s) clipped to the signed
    ``bits``-bit range, then dequantized back to float."""
    qmax = 2 ** (bits - 1) - 1
    if scale is None:
        max_abs = float(np.max(np.abs(array))) if array.size else 0.0
        scale = max_abs / qmax if max_abs > 0 else 1.0
    q = np.clip(np.round(array / scale), -qmax - 1, qmax)
    return q * scale


class _QuantizationToolBase(Tool):
    effects = "pure"  # quantize/dequantize is a function of the tensor
    QUANTIZED_TYPES = ("conv2d", "linear", "matmul")

    def __init__(self, bits: int = 8) -> None:
        super().__init__()
        self.bits = bits
        self.weight_scales: dict[int, float] = {}
        self.depends_on(standard_mapping_tool())
        self.add_inst_for_op(self.analysis)

    def _weight_scale(self, context: OpContext) -> float | None:
        inputs = context.get_inputs()
        if len(inputs) < 2:
            return None
        value = getattr(inputs[1], "data", None)
        if value is None:
            return None
        qmax = 2 ** (self.bits - 1) - 1
        max_abs = float(np.max(np.abs(value)))
        scale = max_abs / qmax if max_abs > 0 else 1.0
        # static check before any rewrite: NaN weights yield a NaN scale that
        # would silently poison every instrumented forward pass
        from ..analysis.schemas import validate_scale
        return validate_scale(scale, context.get("type"))

    @staticmethod
    def quantize_weight(weight, bits=8, scale=None):
        return quantize_dequantize(weight, bits=bits, scale=scale)

    @staticmethod
    def quantize_activation(activation, bits=8):
        # dynamic per-batch scale
        return quantize_dequantize(activation, bits=bits, scale=None)

    def analysis(self, context: OpContext) -> None:
        raise NotImplementedError


class StaticPTQTool(_QuantizationToolBase):
    """Post-training quantization of weights with analysis-time scales."""

    def analysis(self, context: OpContext) -> None:
        if context.get("type") not in self.QUANTIZED_TYPES:
            return
        scale = self._weight_scale(context)
        if scale is None:
            return
        self.weight_scales[context.get_op_id()] = scale
        context.insert_before_op(self.quantize_weight, inputs=[1],
                                 bits=self.bits, scale=scale)


class DynamicPTQTool(_QuantizationToolBase):
    """PTQ of weights plus runtime dynamic quantization of activations."""

    def analysis(self, context: OpContext) -> None:
        if context.get("type") not in self.QUANTIZED_TYPES:
            return
        scale = self._weight_scale(context)
        if scale is not None:
            self.weight_scales[context.get_op_id()] = scale
            context.insert_before_op(self.quantize_weight, inputs=[1],
                                     bits=self.bits, scale=scale)
        context.insert_before_op(self.quantize_activation, inputs=[0],
                                 bits=self.bits)


class QATTool(_QuantizationToolBase):
    """Quantization-aware training: fake-quant in forward, STE in backward.

    Weight scales are recomputed inside the instrumentation routine (the
    weights move during training), and weight gradients are clipped where the
    quantizer saturated, mirroring LSQ-style QAT recipes.
    """

    def __init__(self, bits: int = 8, clip_gradients: bool = True,
                 quantize_activations: bool = True) -> None:
        super().__init__(bits)
        self.clip_gradients = clip_gradients
        self.quantize_activations = quantize_activations
        self.add_inst_for_op(self.backward_analysis, backward=True)

    def analysis(self, context: OpContext) -> None:
        if context.get("type") not in self.QUANTIZED_TYPES:
            return
        inputs = context.get_inputs()
        if len(inputs) >= 2 and getattr(inputs[1], "data", None) is not None:
            context["qat_weight"] = True
            context.insert_before_op(self.quantize_weight, inputs=[1],
                                     bits=self.bits)  # dynamic scale: weights train
        if self.quantize_activations:
            context.insert_before_op(self.quantize_activation, inputs=[0],
                                     bits=self.bits)

    def backward_analysis(self, context: OpContext) -> None:
        if not self.clip_gradients or not context.get("qat_weight"):
            return
        if context.get("backward_type") not in (
                "conv2d_backward_weight", "linear_backward_weight"):
            return
        weight = context.get_inputs()[1]
        value = getattr(weight, "data", None)
        if value is None:
            return
        context.insert_after_backward_op(
            self.clip_saturated_gradient, grad_inputs=[0],
            bits=self.bits, weight_ref=weight)

    @staticmethod
    def clip_saturated_gradient(weight_grad, bits=8, weight_ref=None):
        """STE clipping: zero gradients where |w| exceeds the quantizer range."""
        if weight_ref is None:
            return weight_grad
        value = np.asarray(getattr(weight_ref, "data", weight_ref))
        if value.shape != weight_grad.shape:
            return weight_grad
        qmax = 2 ** (bits - 1) - 1
        max_abs = float(np.max(np.abs(value)))
        scale = max_abs / qmax if max_abs > 0 else 1.0
        inside = np.abs(value) <= (qmax + 0.5) * scale
        return weight_grad * inside


class ActivationCalibrationTool(Tool):
    """Collects per-operator activation ranges over calibration batches.

    Real PTQ pipelines run a calibration pass before quantizing activations
    (the |max| of one batch is an unreliable scale).  The tool records the
    ``percentile`` of |activation| per quantized operator, in encounter
    order, which :class:`CalibratedPTQTool` then consumes.
    """

    effects = "pure"  # per-op-id range collection, order-independent

    def __init__(self, percentile: float = 99.9,
                 op_types=("conv2d", "linear", "matmul")) -> None:
        super().__init__()
        self.percentile = percentile
        self.op_types = tuple(op_types)
        #: per encounter-order index: running list of observed percentiles
        self.observations: list[list[float]] = []
        self._encounter: dict[int, int] = {}
        self.depends_on(standard_mapping_tool())
        self.add_inst_for_op(self.analysis)

    def analysis(self, context: OpContext) -> None:
        if context.get("type") not in self.op_types:
            return
        index = len(self._encounter)
        self._encounter[context.get_op_id()] = index
        self.observations.append([])
        context.insert_before_op(self._observe, inputs=[0], slot=index)

    def _observe(self, activation, slot=None):
        value = float(np.percentile(np.abs(activation), self.percentile))
        self.observations[slot].append(value)
        return None

    def scales(self, bits: int) -> list[float]:
        """One activation scale per quantized op, in encounter order."""
        qmax = 2 ** (bits - 1) - 1
        scales = []
        for values in self.observations:
            bound = float(np.median(values)) if values else 0.0
            scales.append(bound / qmax if bound > 0 else 1.0)
        return scales


class CalibratedPTQTool(_QuantizationToolBase):
    """Static PTQ of weights *and* activations with calibrated scales.

    Consumes the scales of a prior :class:`ActivationCalibrationTool` pass
    over the same (static) model: quantized operators are matched by
    encounter order.
    """

    def __init__(self, calibration: ActivationCalibrationTool,
                 bits: int = 8) -> None:
        super().__init__(bits)
        self._activation_scales = calibration.scales(bits)
        self._next_slot = 0

    def analysis(self, context: OpContext) -> None:
        if context.get("type") not in self.QUANTIZED_TYPES:
            return
        weight_scale = self._weight_scale(context)
        if weight_scale is not None:
            self.weight_scales[context.get_op_id()] = weight_scale
            context.insert_before_op(self.quantize_weight, inputs=[1],
                                     bits=self.bits, scale=weight_scale)
        if self._next_slot < len(self._activation_scales):
            scale = self._activation_scales[self._next_slot]
            self._next_slot += 1
            context.insert_before_op(quantize_dequantize, inputs=[0],
                                     bits=self.bits, scale=scale)
