"""Profiling tools: FLOPs, sparsity, and kernel-level GPU profiling (Sec. 6.1/6.3).

All three are portable Amanda tools: they depend on the standard mapping tool
and consume canonical op types, so the same tool instance profiles models on
either backend.

* :class:`FlopsProfilingTool` — the classic FLOPs counter (torchprofile /
  ptflops analog).  Shapes are captured at runtime by lightweight
  instrumentation routines, FLOPs derived per canonical op type.
* :class:`SparsityProfilingTool` — weight/activation zero-fraction profiling
  (the workload of Guo et al. used as the Sec. 2 running example).
* :class:`KernelProfilingTool` — subscribes to the simulated CUPTI interface
  of :mod:`repro.kernels` and aggregates kernel events at operator
  granularity: the Fig. 8 operator/kernel time breakdown.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

from ..core.context import OpContext
from ..core.tool import Tool
from ..kernels.runtime import KernelEvent, runtime as kernel_runtime
from .mapping import standard_mapping_tool

__all__ = ["FlopsProfilingTool", "SparsityProfilingTool", "KernelProfilingTool",
           "LatencyProfilingTool", "flops_for"]


def flops_for(op_type: str, input_shapes: list[tuple], output_shapes: list[tuple],
              attrs: dict | None = None) -> int:
    """FLOPs of one canonical operator execution (multiply-add = 2 FLOPs)."""
    attrs = attrs or {}
    if op_type == "conv2d":
        # output elements each cost Cin*KH*KW MACs; weight passed as OIHW
        out = output_shapes[0]
        w = input_shapes[1]
        cin_khkw = int(np.prod(w)) // _out_channels(w)
        return 2 * int(np.prod(out)) * cin_khkw
    if op_type in ("linear", "matmul"):
        out = output_shapes[0]
        a = input_shapes[0]
        inner = a[-1]
        return 2 * int(np.prod(out)) * int(inner)
    if op_type in ("batch_norm", "layer_norm"):
        return 4 * int(np.prod(output_shapes[0]))
    if op_type in ("relu", "gelu", "sigmoid", "tanh", "add", "sub", "mul",
                   "div", "bias_add", "softmax", "log_softmax", "dropout"):
        return int(np.prod(output_shapes[0]))
    if op_type in ("max_pool2d", "avg_pool2d"):
        ksize = tuple(attrs.get("kernel", attrs.get("ksize", (2, 2))))
        return int(np.prod(output_shapes[0])) * int(np.prod(ksize))
    return 0


def _out_channels(w_shape: tuple) -> int:
    if len(w_shape) != 4:
        return 1
    # OIHW has O first; HWIO has O last — take the larger-of guess resolved by
    # the layout key when available; callers pass attrs-normalized shapes.
    return w_shape[0]


@dataclass
class OpProfile:
    op_type: str
    input_shapes: list = field(default_factory=list)
    output_shapes: list = field(default_factory=list)
    calls: int = 0
    flops: int = 0
    attrs: dict = field(default_factory=dict)


class FlopsProfilingTool(Tool):
    """Counts per-operator FLOPs with runtime shape capture."""

    effects = "pure"  # observation only: no graph-visible state

    COUNTED = ("conv2d", "linear", "matmul", "batch_norm", "layer_norm",
               "relu", "gelu", "max_pool2d", "avg_pool2d", "bias_add",
               "softmax", "add")

    def __init__(self, op_types: tuple[str, ...] | None = None) -> None:
        super().__init__()
        self.op_types = op_types or self.COUNTED
        self.profiles: dict[int, OpProfile] = {}
        self.depends_on(standard_mapping_tool())
        self.add_inst_for_op(self.analysis)

    def analysis(self, context: OpContext) -> None:
        op_type = context.get("type")
        if op_type not in self.op_types:
            return
        weight_layout = context.get("weight_layout", "OIHW")
        attrs = dict(context.get("_attrs", {}))
        context.insert_before_op(
            self._record_inputs, inputs=None,
            op_id=context.get_op_id(), op_type=op_type,
            weight_layout=weight_layout, attrs=attrs)
        context.insert_after_op(
            self._record_outputs, outputs=None, op_id=context.get_op_id())

    def _profile(self, op_id: int, op_type: str | None = None) -> OpProfile:
        profile = self.profiles.get(op_id)
        if profile is None:
            profile = OpProfile(op_type=op_type or "?")
            self.profiles[op_id] = profile
        return profile

    def _record_inputs(self, *arrays, op_id=None, op_type=None,
                       weight_layout="OIHW", attrs=None):
        profile = self._profile(op_id, op_type)
        shapes = [np.asarray(a).shape for a in arrays]
        if op_type == "conv2d" and len(shapes) > 1 and weight_layout == "HWIO":
            kh, kw, ci, co = shapes[1]
            shapes[1] = (co, ci, kh, kw)
        profile.input_shapes = shapes
        profile.calls += 1
        profile.op_type = op_type
        profile.attrs = attrs or {}
        return None

    def _record_outputs(self, *arrays, op_id=None):
        profile = self._profile(op_id)
        profile.output_shapes = [np.asarray(a).shape for a in arrays]
        profile.flops = flops_for(profile.op_type, profile.input_shapes,
                                   profile.output_shapes, profile.attrs)
        return None

    # -- reporting --------------------------------------------------------------
    def total_flops(self) -> int:
        return sum(p.flops for p in self.profiles.values())

    def by_op_type(self) -> dict[str, int]:
        totals: dict[str, int] = defaultdict(int)
        for profile in self.profiles.values():
            totals[profile.op_type] += profile.flops
        return dict(totals)

    def report(self) -> list[tuple[str, int, int]]:
        """Rows of (op type, ops counted, total FLOPs), largest first."""
        by_type: dict[str, list[OpProfile]] = defaultdict(list)
        for profile in self.profiles.values():
            by_type[profile.op_type].append(profile)
        rows = [(t, len(ps), sum(p.flops for p in ps))
                for t, ps in by_type.items()]
        return sorted(rows, key=lambda r: -r[2])

    def reset(self) -> None:
        self.profiles.clear()


class SparsityProfilingTool(Tool):
    """Profiles the zero fraction of weights and activations per operator."""

    effects = "pure"  # observation only: no graph-visible state

    def __init__(self, op_types=("conv2d", "linear", "matmul", "relu")) -> None:
        super().__init__()
        self.op_types = tuple(op_types)
        #: op_id -> {"weight": [fractions...], "activation": [fractions...]}
        self.records: dict[int, dict[str, list[float]]] = {}
        self.depends_on(standard_mapping_tool())
        self.add_inst_for_op(self.analysis)

    def analysis(self, context: OpContext) -> None:
        op_type = context.get("type")
        if op_type not in self.op_types:
            return
        op_id = context.get_op_id()
        if op_type in ("conv2d", "linear", "matmul") and len(context.get_inputs()) > 1:
            context.insert_before_op(self._record, inputs=[1],
                                     op_id=op_id, kind="weight")
        context.insert_after_op(self._record, outputs=[0],
                                op_id=op_id, kind="activation")

    def _record(self, array, op_id=None, kind=None):
        entry = self.records.setdefault(op_id, {"weight": [], "activation": []})
        array = np.asarray(array)
        entry[kind].append(float(np.mean(array == 0.0)))
        return None

    def mean_sparsity(self, kind: str = "activation") -> float:
        values = [v for entry in self.records.values() for v in entry[kind]]
        return float(np.mean(values)) if values else 0.0

    def reset(self) -> None:
        self.records.clear()


class KernelProfilingTool(Tool):
    """Operator-level aggregation of kernel events (CUPTI synergy, Fig. 8).

    The tool subscribes to the simulated kernel runtime while applied; the
    backends stamp a correlation tag (op type + identity) around each
    operator's execution, so every kernel launch can be attributed to the
    operator that issued it.
    """

    effects = "pure"  # observation only: no graph-visible state

    def __init__(self) -> None:
        super().__init__()
        #: op tag -> kernel name -> [durations]
        self.kernel_times: dict[str, dict[str, list[float]]] = {}
        self.kernel_bytes: dict[str, int] = defaultdict(int)
        self.depends_on(standard_mapping_tool())
        # registering an (empty) analysis routine keeps the framework engaged
        # so correlation tags are pushed for every op
        self.add_inst_for_op(self._noop_analysis)

    def _noop_analysis(self, context: OpContext) -> None:
        return None

    def on_apply(self) -> None:
        kernel_runtime.subscribe(self._on_kernel_event)

    def on_remove(self) -> None:
        kernel_runtime.unsubscribe(self._on_kernel_event)

    def _on_kernel_event(self, event: KernelEvent) -> None:
        tag = event.correlation_tag or "(untagged)"
        op = tag.split("|")[0]
        per_kernel = self.kernel_times.setdefault(op, {})
        per_kernel.setdefault(event.name, []).append(event.duration)
        self.kernel_bytes[event.name] += event.bytes_accessed

    # -- reporting ------------------------------------------------------------
    def op_level_breakdown(self) -> dict[str, float]:
        """Total kernel seconds per operator type."""
        return {op: sum(sum(v) for v in kernels.values())
                for op, kernels in self.kernel_times.items()}

    def kernel_level_breakdown(self, op: str | None = None) -> dict[str, float]:
        """Total seconds per kernel, optionally restricted to one op type."""
        totals: dict[str, float] = defaultdict(float)
        for op_tag, kernels in self.kernel_times.items():
            if op is not None and op_tag != op:
                continue
            for kernel, durations in kernels.items():
                totals[kernel] += sum(durations)
        return dict(totals)

    def conv_algorithm_mix(self) -> dict[str, int]:
        """Launch counts of each convolution algorithm kernel."""
        mix: dict[str, int] = defaultdict(int)
        for kernels in self.kernel_times.values():
            for kernel, durations in kernels.items():
                if kernel.startswith("conv2d_") or kernel == "im2col":
                    mix[kernel] += len(durations)
        return dict(mix)

    def reset(self) -> None:
        self.kernel_times.clear()
        self.kernel_bytes.clear()


class LatencyProfilingTool(Tool):
    """Per-operator wall-clock latency, bracketing each execution.

    The torch-profiler-style workload of Tbl. 1: a before-op routine stamps
    the start time and an after-op routine accumulates the elapsed time per
    stable op id — including functional operators integrated profilers only
    report in aggregate.
    """

    effects = "pure"  # observation only: no graph-visible state

    def __init__(self) -> None:
        super().__init__()
        import time as _time
        self._clock = _time.perf_counter
        self._starts: dict[int, float] = {}
        #: op_id -> (op type, [latencies in seconds])
        self.latencies: dict[int, tuple[str, list[float]]] = {}
        self.depends_on(standard_mapping_tool())
        self.add_inst_for_op(self.analysis)

    def analysis(self, context: OpContext) -> None:
        op_id = context.get_op_id()
        op_type = context.get("type")
        self.latencies.setdefault(op_id, (op_type, []))
        context.insert_before_op(self._start, inputs=[], op_id=op_id)
        context.insert_after_op(self._stop, outputs=[], op_id=op_id)

    def _start(self, *arrays, op_id=None):
        self._starts[op_id] = self._clock()
        return None

    def _stop(self, *arrays, op_id=None):
        started = self._starts.pop(op_id, None)
        if started is not None:
            self.latencies[op_id][1].append(self._clock() - started)
        return None

    def by_op_type(self) -> dict[str, float]:
        """Total seconds per canonical op type."""
        totals: dict[str, float] = defaultdict(float)
        for op_type, samples in self.latencies.values():
            totals[op_type] += sum(samples)
        return dict(totals)

    def report(self, top: int = 10) -> list[tuple[str, float]]:
        rows = sorted(self.by_op_type().items(), key=lambda kv: -kv[1])
        return rows[:top]

    def reset(self) -> None:
        self._starts.clear()
        self.latencies.clear()
