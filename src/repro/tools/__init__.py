"""Amanda instrumentation tools: built-in tools and the evaluated use cases."""

from . import (debugging, effective_path, export, faulty, mapping, memory,
               profiling, pruning, quantization, subgraph, tracing)
from .debugging import (GradientClippingTool, GradientMonitorTool,
                        NaNGuardTool)
from .effective_path import EffectivePathTool
from .export import OnnxExportTool, export_onnx
from .faulty import FaultyTool, ToolFault
from .mapping import MappingTool, standard_mapping_tool
from .memory import MemoryProfilingTool, RematerializationPlan
from .profiling import (FlopsProfilingTool, KernelProfilingTool,
                        LatencyProfilingTool, SparsityProfilingTool)
from .pruning import (ActivationPruningTool, AttentionPruningTool,
                      ChannelPruningTool, MagnitudePruningTool,
                      TileWisePruningTool, VectorWisePruningTool)
from .quantization import (ActivationCalibrationTool, CalibratedPTQTool,
                           DynamicPTQTool, QATTool, StaticPTQTool)
from .subgraph import SubgraphRewritingTool
from .tracing import ExecutionTraceTool, GraphTracingTool

__all__ = [
    "mapping", "tracing", "subgraph", "profiling", "pruning", "quantization",
    "effective_path", "export", "memory", "OnnxExportTool", "export_onnx",
    "MemoryProfilingTool", "RematerializationPlan",
    "MappingTool", "standard_mapping_tool", "GraphTracingTool",
    "ExecutionTraceTool", "SubgraphRewritingTool", "FlopsProfilingTool",
    "SparsityProfilingTool", "KernelProfilingTool", "MagnitudePruningTool",
    "TileWisePruningTool", "VectorWisePruningTool", "ChannelPruningTool",
    "ActivationPruningTool", "AttentionPruningTool", "StaticPTQTool",
    "DynamicPTQTool", "QATTool", "EffectivePathTool", "debugging",
    "NaNGuardTool", "GradientMonitorTool", "GradientClippingTool",
    "LatencyProfilingTool", "ActivationCalibrationTool",
    "CalibratedPTQTool", "faulty", "FaultyTool", "ToolFault",
]
