"""Memory profiling and DTR-style rematerialization analysis (Tbl. 1, DTR row).

Dynamic tensor rematerialization (Kirisame et al., cited as [50]) needs the
same instrumentation states the paper's Tbl. 1 lists for DTR: weights,
activations and the *graph structure* — which operator produced each live
tensor and who still consumes it.  This tool gathers those states through the
standard operator instrumentation points (it ``depends_on`` the built-in
graph tracer) and provides:

* :meth:`MemoryProfilingTool.peak_memory` — the activation-liveness peak of
  the recorded execution (alloc at producer, free after last consumer);
* :meth:`MemoryProfilingTool.rematerialization_plan` — a DTR-flavoured greedy
  plan: evict the activations with the best bytes-per-recompute-FLOP ratio
  until the peak fits a budget, and report the recompute overhead.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.context import OpContext
from ..core.tool import Tool
from .mapping import standard_mapping_tool
from .profiling import flops_for
from .tracing import GraphTracingTool

__all__ = ["MemoryProfilingTool", "RematerializationPlan"]

#: mapped op types whose outputs cannot be rematerialized: sources have no
#: recomputable producer (weights would be *lost*, not respilled), matching
#: the static scheduler's ``repro.analysis.effects.recomputable`` pinning.
_NON_RECOMPUTABLE = frozenset({"variable", "placeholder", "constant"})

#: store-owned state: excluded from the activation byte model (the slot-table
#: executor's arena tracker and ``repro.analysis.remat.op_costs`` both give
#: Variable reads zero bytes because the VariableStore owns that memory).
_PERSISTENT = frozenset({"variable"})


@dataclass
class RematerializationPlan:
    budget: int
    baseline_peak: int
    achieved_peak: int
    evicted: list[int] = field(default_factory=list)
    recompute_flops: int = 0

    @property
    def feasible(self) -> bool:
        return self.achieved_peak <= self.budget


class MemoryProfilingTool(Tool):
    """Records per-operator activation footprints and execution order."""

    effects = "pure"  # observation only: no graph-visible state

    def __init__(self) -> None:
        super().__init__()
        self.tracer = GraphTracingTool()
        self.depends_on(standard_mapping_tool(), self.tracer)
        self.add_inst_for_op(self.analysis)
        #: op_id -> output bytes
        self.output_bytes: dict[int, int] = {}
        #: op_id -> recompute cost (FLOPs of the producing op)
        self.recompute_cost: dict[int, int] = {}
        #: execution order of forward ops
        self.order: list[int] = []
        #: op_id -> mapped op type (e.g. ``"matmul"``, ``"variable"``)
        self.op_types: dict[int, str] = {}
        self._input_shapes: dict[int, list] = {}

    # -- recording ----------------------------------------------------------------
    def analysis(self, context: OpContext) -> None:
        op_id = context.get_op_id()
        op_type = context.get("type")
        context.insert_before_op(self._record_inputs, inputs=None,
                                 op_id=op_id)
        context.insert_after_op(self._record_outputs, outputs=None,
                                op_id=op_id, op_type=op_type)

    def _record_inputs(self, *arrays, op_id=None):
        self._input_shapes[op_id] = [np.asarray(a).shape for a in arrays]
        return None

    def _record_outputs(self, *arrays, op_id=None, op_type=None):
        if op_id not in self.output_bytes:
            self.order.append(op_id)
        self.output_bytes[op_id] = sum(np.asarray(a).nbytes for a in arrays)
        self.op_types[op_id] = op_type
        shapes = [np.asarray(a).shape for a in arrays]
        self.recompute_cost[op_id] = flops_for(
            op_type, self._input_shapes.get(op_id, []), shapes)
        return None

    # -- liveness analysis ------------------------------------------------------------
    def _last_consumer_index(self) -> dict[int, int]:
        """Execution index after which each op's output can be freed."""
        graph = self.tracer.graph
        position = {op_id: i for i, op_id in enumerate(self.order)}
        last: dict[int, int] = {}
        for op_id in self.order:
            consumers = [position[s] for s in graph.successors(op_id)
                         if s in position]
            last[op_id] = max(consumers) if consumers else position[op_id]
        return last

    def _bytes(self, op_id: int, activations_only: bool) -> int:
        if activations_only and self.op_types.get(op_id) in _PERSISTENT:
            return 0
        return self.output_bytes.get(op_id, 0)

    def peak_memory(self, evicted: set[int] | None = None, *,
                    activations_only: bool = False) -> int:
        """Peak live activation bytes; ``evicted`` tensors free immediately.

        With ``activations_only`` variable reads count zero bytes, matching
        the byte model of the static scheduler (``repro.analysis.remat``) and
        the executor's arena tracker, where that memory is store-owned.
        """
        evicted = evicted or set()
        last = self._last_consumer_index()
        peak = live = 0
        for index, op_id in enumerate(self.order):
            if op_id not in evicted:
                live += self._bytes(op_id, activations_only)
            peak = max(peak, live)
            # free everything whose last consumer just executed
            live -= sum(self._bytes(other, activations_only)
                        for other in self.order
                        if other not in evicted and last[other] == index)
        return peak

    def rematerialization_plan(self, budget: int, *,
                               activations_only: bool = False,
                               ) -> RematerializationPlan:
        """Greedy DTR-style eviction: best bytes-per-recompute-FLOP first.

        Source ops (variables, placeholders, constants) are never eviction
        candidates — they have no recomputable producer, so dropping them
        would lose state rather than trade memory for FLOPs.  This mirrors
        the static scheduler's ``recomputable`` pinning, which lets the two
        planners be cross-checked on the same recorded execution.
        """
        baseline = self.peak_memory(activations_only=activations_only)
        plan = RematerializationPlan(budget=budget, baseline_peak=baseline,
                                     achieved_peak=baseline)
        if baseline <= budget:
            return plan
        candidates = sorted(
            (op_id for op_id in self.order
             if self._bytes(op_id, activations_only)
             and self.op_types.get(op_id) not in _NON_RECOMPUTABLE),
            key=lambda op_id: -(self.output_bytes[op_id]
                                / (1 + self.recompute_cost.get(op_id, 0))))
        evicted: set[int] = set()
        for op_id in candidates:
            evicted.add(op_id)
            plan.evicted.append(op_id)
            plan.recompute_flops += self.recompute_cost.get(op_id, 0)
            plan.achieved_peak = self.peak_memory(
                evicted, activations_only=activations_only)
            if plan.achieved_peak <= budget:
                break
        return plan

    def reset(self) -> None:
        self.output_bytes.clear()
        self.recompute_cost.clear()
        self.order.clear()
        self.op_types.clear()
        self._input_shapes.clear()
        self.tracer.reset()
