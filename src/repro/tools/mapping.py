"""Context mapping tool (Sec. 5.2, Fig. 6, Lst. 6).

Raw instrumentation contexts are backend-specific: the graph backend reports
TF-style op types (``Conv2D``/``Conv2DBackpropFilter``) and NHWC/HWIO layouts,
the eager backend reports its own names and NCHW/OIHW layouts.  A
:class:`MappingTool` holds *rules* — ``[namespace, transformation_fn]`` pairs —
that translate the raw context into a common namespace, so one high-level tool
ports across backends.  :func:`standard_mapping_tool` bundles the rules that
normalize both built-in backends to the canonical namespace used by every tool
in :mod:`repro.tools`.
"""

from __future__ import annotations

from typing import Callable

from ..core.context import OpContext
from ..core.tool import Tool

__all__ = ["MappingTool", "standard_mapping_tool", "CANONICAL_NAMESPACE"]

CANONICAL_NAMESPACE = "amanda/canonical"


class MappingTool(Tool):
    """Applies namespace-filtered transformation rules to every context."""

    is_context_transform = True
    effects = "pure"  # context annotation only, never inserts PyCalls

    def __init__(self, rules: list) -> None:
        super().__init__()
        self.rules: list[tuple[str, Callable[[OpContext], None]]] = [
            (namespace, fn) for namespace, fn in rules]
        # mapping must run at every instrumentation point so dependent tools
        # always see the normalized context
        self.add_inst_for_op(self._transform)
        self.add_inst_for_op(self._transform, require_outputs=True)
        self.add_inst_for_op(self._transform, backward=True)
        self.add_inst_for_op(self._transform, backward=True, require_outputs=True)

    def _transform(self, context: OpContext) -> None:
        namespace = context.namespace
        tags = context.namespace_tags or namespace or ""
        for rule_namespace, fn in self.rules:
            # a rule matches its namespace name exactly or any more specific
            # tag group, so "eager" applies to "eager/1.0/eager" while
            # "eager/2.0" would only apply to that version
            if (rule_namespace == namespace or rule_namespace == tags
                    or tags.startswith(rule_namespace + "/")):
                fn(context)


# ---------------------------------------------------------------------------
# canonical rules for the two built-in backends
# ---------------------------------------------------------------------------

#: graph-backend (TF-style) op type -> canonical type
_GRAPH_TYPE_MAP = {
    "Conv2D": "conv2d",
    "MatMul": "matmul",
    "BiasAdd": "bias_add",
    "Relu": "relu",
    "Gelu": "gelu",
    "Sigmoid": "sigmoid",
    "Tanh": "tanh",
    "Softmax": "softmax",
    "LogSoftmax": "log_softmax",
    "MaxPool": "max_pool2d",
    "AvgPool": "avg_pool2d",
    "FusedBatchNorm": "batch_norm",
    "LayerNorm": "layer_norm",
    "Reshape": "reshape",
    "Transpose": "transpose",
    "ConcatV2": "concat",
    "Mean": "mean",
    "Sum": "sum",
    "GatherV2": "embedding",
    "SparseSoftmaxCrossEntropyWithLogits": "cross_entropy",
    "Dropout": "dropout",
    "Add": "add",
    "Sub": "sub",
    "Mul": "mul",
    "RealDiv": "div",
    "Neg": "neg",
    "Square": "square",
    "Sqrt": "sqrt",
    "AddN": "accumulate_grad",
    "Identity": "identity",
    "Placeholder": "placeholder",
    "Const": "constant",
    "Variable": "variable",
}

#: graph-backend backward op type -> canonical backward type
_GRAPH_BACKWARD_MAP = {
    "Conv2DBackpropInput": "conv2d_backward_input",
    "Conv2DBackpropFilter": "conv2d_backward_weight",
    "BiasAddGrad": "bias_add_backward",
    "ReluGrad": "relu_backward",
    "GeluGrad": "gelu_backward",
    "SigmoidGrad": "sigmoid_backward",
    "TanhGrad": "tanh_backward",
    "SoftmaxGrad": "softmax_backward",
    "LogSoftmaxGrad": "log_softmax_backward",
    "MaxPoolGrad": "max_pool2d_backward",
    "AvgPoolGrad": "avg_pool2d_backward",
    "FusedBatchNormGrad": "batch_norm_backward",
    "LayerNormGrad": "layer_norm_backward",
    "ReshapeGrad": "reshape_backward",
    "ConcatGrad": "concat_backward",
    "ReduceGrad": "reduce_backward",
    "GatherGrad": "embedding_backward",
    "XentGrad": "cross_entropy_backward",
    "BroadcastGradient": "broadcast_backward",
    "AddN": "accumulate_grad",
    "OnesLike": "grad_seed",
}

#: eager matmul-as-linear: the eager backend's raw names are already canonical
_EAGER_BACKWARD_ALIASES = {
    "matmul_backward": "matmul_backward",
}


#: fused compiler ops -> the canonical type of their head op (Sec. 7:
#: the intermediate level relating remaining points to original ones)
_GRAPH_FUSED_MAP = {"FusedConv2D": "conv2d", "FusedMatMul": "matmul"}


def _graph_rule(context: OpContext) -> None:
    raw = context.get("_raw_type")
    op = context.get_op()
    if getattr(op, "tags", {}).get("captured"):
        # symbolic capture (repro.capture): the graph holds *eager* op types
        # in eager layouts, so it normalizes like the eager backend — TF-name
        # translation or NHWC/HWIO annotations would mislabel every op
        context["type"] = raw
        context["weight_layout"] = "OIHW"
        context["data_layout"] = "NCHW"
        if not context.is_forward():
            raw_backward = context.get("_backward_name")
            context["backward_type"] = _EAGER_BACKWARD_ALIASES.get(
                raw_backward, raw_backward)
        return
    context["type"] = _GRAPH_TYPE_MAP.get(raw, raw)
    context["weight_layout"] = "HWIO"
    context["data_layout"] = "NHWC"
    if raw in _GRAPH_FUSED_MAP:
        context["type"] = _GRAPH_FUSED_MAP[raw]
        op = context.get_op()
        fused_from = getattr(op, "tags", {}).get("fused_from", [])
        context["fused_types"] = [
            _GRAPH_TYPE_MAP.get(t, t) for t in fused_from]
    if not context.is_forward():
        raw_backward = context.get("_backward_name")
        context["backward_type"] = _GRAPH_BACKWARD_MAP.get(
            raw_backward, _GRAPH_TYPE_MAP.get(raw_backward, raw_backward))
    # graph-mode MatMul grads reuse the MatMul op type; distinguish them by
    # their position in the backward graph
    if (not context.is_forward()
            and context.get("_backward_name") == "MatMul"):
        context["backward_type"] = "matmul_backward"


def _eager_rule(context: OpContext) -> None:
    context["type"] = context.get("_raw_type")
    context["weight_layout"] = "OIHW"
    context["data_layout"] = "NCHW"
    if not context.is_forward():
        raw_backward = context.get("_backward_name")
        context["backward_type"] = _EAGER_BACKWARD_ALIASES.get(
            raw_backward, raw_backward)


#: ONNX-backend op type -> canonical type (ONNX is NCHW like the eager
#: backend; Gemm carries its bias like the eager linear op)
_ONNX_TYPE_MAP = {
    "Conv": "conv2d",
    "Gemm": "linear",
    "MatMul": "matmul",
    "Relu": "relu",
    "Sigmoid": "sigmoid",
    "Softmax": "softmax",
    "MaxPool": "max_pool2d",
    "AveragePool": "avg_pool2d",
    "GlobalAveragePool": "mean",
    "Add": "add",
    "Concat": "concat",
    "Flatten": "reshape",
    "Reshape": "reshape",
    "BatchNormalization": "batch_norm",
}


def _onnx_rule(context: OpContext) -> None:
    raw = context.get("_raw_type")
    context["type"] = _ONNX_TYPE_MAP.get(raw, raw)
    context["weight_layout"] = "OIHW"
    context["data_layout"] = "NCHW"


def standard_mapping_tool() -> MappingTool:
    """The mapping tool normalizing all built-in backends (Lst. 6 analog)."""
    return MappingTool(rules=[
        ["graph", _graph_rule],
        ["eager", _eager_rule],
        ["onnx", _onnx_rule],
    ])
