"""Graph tracing tools (built-in, Sec. 5.2 / 6.1).

:class:`GraphTracingTool` reconstructs the computation graph *during eager
execution* (in graph mode it reads the static graph) and publishes it in the
instrumentation context under ``context["graph"]``, enabling tools that need a
global view or must look back from the current operator (effective path,
DTR-style analyses).

:class:`ExecutionTraceTool` records a per-execution operator timeline and can
dump it as a Chrome-trace JSON (viewable in TensorBoard/chrome://tracing).
"""

from __future__ import annotations

import json
import sys
import time

import networkx as nx

from ..eager import alloc

from ..core.context import OpContext
from ..core.tool import Tool

__all__ = ["GraphTracingTool", "ExecutionTraceTool"]


class GraphTracingTool(Tool):
    """Builds a networkx DiGraph of the instrumented model's operators.

    Nodes are stable op ids with ``type``/``name`` attributes (forward and
    backward ops; backward nodes link to their forward node).  Edges follow
    tensor data flow.
    """

    is_context_transform = True
    effects = "pure"  # observation only: no graph-visible state

    def __init__(self) -> None:
        super().__init__()
        self.graph = nx.DiGraph()
        #: tensor identity -> producing node id (eager mode)
        self._producers: dict[int, int] = {}
        # node + input edges are known *before* the op runs; output producers
        # are registered after — so dependent tools already see the graph up
        # to (and including) the current op at the before-forward point
        self.add_inst_for_op(self.trace_forward_pre)
        self.add_inst_for_op(self.trace_forward_post, require_outputs=True)
        self.add_inst_for_op(self.trace_backward, backward=True)

    # -- analysis routines -------------------------------------------------------
    def trace_forward_pre(self, context: OpContext) -> None:
        op_id = context.get_op_id()
        if op_id is None:
            return
        op_type = context.get("type", context.get("_raw_type"))
        self.graph.add_node(op_id, type=op_type, backward=False,
                            namespace=context.namespace)
        if context.namespace == "graph":
            self._trace_graph_edges(context, op_id)
        else:
            for tensor in context.get_inputs():
                producer = self._producers.get(id(tensor))
                if producer is not None:
                    self.graph.add_edge(producer, op_id, kind="data")
        context["graph"] = self.graph
        context["trace_node"] = op_id

    def trace_forward_post(self, context: OpContext) -> None:
        op_id = context.get_op_id()
        if op_id is None or context.namespace == "graph":
            return
        for tensor in context.get_outputs():
            self._producers[id(tensor)] = op_id
        context["graph"] = self.graph

    def trace_backward(self, context: OpContext) -> None:
        bwd_id = context.get_backward_op_id()
        if bwd_id is None:
            return
        self.graph.add_node(bwd_id,
                            type=context.get("backward_type",
                                             context.get("_backward_name")),
                            backward=True, namespace=context.namespace)
        forward_id = context.get_op_id()
        if forward_id is not None and forward_id in self.graph:
            self.graph.add_edge(forward_id, bwd_id, kind="forward_backward")
        context["graph"] = self.graph

    # -- edge reconstruction -------------------------------------------------------
    def _trace_graph_edges(self, context: OpContext, op_id: int) -> None:
        op = context.get_op()
        for edge in op.inputs:
            producer_id = edge.op.op_id
            if producer_id is not None and producer_id in self.graph:
                self.graph.add_edge(producer_id, op_id, kind="data")

    # -- queries -------------------------------------------------------------------
    def forward_nodes(self) -> list[int]:
        return [n for n, d in self.graph.nodes(data=True) if not d["backward"]]

    def backward_nodes(self) -> list[int]:
        return [n for n, d in self.graph.nodes(data=True) if d["backward"]]

    def op_types(self) -> dict[int, str]:
        return {n: d["type"] for n, d in self.graph.nodes(data=True)}

    def reset(self) -> None:
        self.graph = nx.DiGraph()
        self._producers.clear()


class ExecutionTraceTool(Tool):
    """Records one event per operator execution; dumps Chrome trace JSON."""

    effects = "pure"  # observation only: events carry their own timestamps

    def __init__(self) -> None:
        super().__init__()
        self.events: list[dict] = []
        self._origin = time.perf_counter()
        self.add_inst_for_op(self.analysis)
        self.add_inst_for_op(self.analysis_backward, backward=True)

    def analysis(self, context: OpContext) -> None:
        context.insert_before_op(
            self._record, inputs=[],
            op_type=context.get("type"), op_id=context.get_op_id(),
            phase="forward")

    def analysis_backward(self, context: OpContext) -> None:
        context.insert_before_backward_op(
            self._record, grad_outputs=[],
            op_type=context.get("backward_type"),
            op_id=context.get_backward_op_id(), phase="backward")

    def _record(self, *arrays, op_type=None, op_id=None, phase=None):
        event_bytes = 360  # dict + strings, approximated for accounting
        alloc.tracker.allocate(event_bytes, scope="tool")
        self.events.append({
            "name": str(op_type),
            "ph": "X",
            "ts": (time.perf_counter() - self._origin) * 1e6,
            "dur": 1,
            "pid": 0,
            "tid": 0 if phase == "forward" else 1,
            "args": {"op_id": op_id, "phase": phase},
        })
        return None  # observation only

    def dump(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump({"traceEvents": self.events}, fh)

    def reset(self) -> None:
        self.events.clear()
