"""Fault-injection harness: a tool that raises on purpose.

``FaultyTool`` exercises the fault-isolation layer across all three drivers
the same way chaos tooling exercises a service mesh: it registers a normal
analysis routine at a chosen instrumentation point and makes it (or an
instrumentation routine it records) blow up on a chosen trigger occurrence.
Paired with ``amanda.error_policy`` it drives the recovery matrix in
``tests/test_fault_injection.py``:

* ``mode="analysis"`` — the analysis routine itself raises, which exercises
  the *trace* path (analysis runs once per op instance, at first execution
  in eager/ONNX mode and at rewrite time in graph mode);
* ``mode="instrumentation"`` — the analysis routine records an insert action
  whose routine raises, which exercises the *replay* path (the action fires
  on every execution, including cached ones and graph callback ops).

The raised :class:`ToolFault` is deliberately a plain ``RuntimeError``
subclass: the fault layer must handle arbitrary user exceptions, not a
cooperative type.
"""

from __future__ import annotations

from ..core.context import OpContext
from ..core.tool import Tool

__all__ = ["FaultyTool", "ToolFault"]

#: (backward, require_outputs) per instrumentation point name
_I_POINTS = {
    "before_forward_op": (False, False),
    "after_forward_op": (False, True),
    "before_backward_op": (True, False),
    "after_backward_op": (True, True),
}


class ToolFault(RuntimeError):
    """The deliberate failure a :class:`FaultyTool` injects."""


class FaultyTool(Tool):
    """A tool that fails at a chosen i_point on a chosen occurrence.

    ``occurrence`` counts matching triggers (1-based): ``occurrence=1``
    fails the first time the routine fires, ``occurrence=3`` lets two
    executions pass and fails the third.  With ``always=True`` every
    trigger from ``occurrence`` on fails (the "record" policy's repeated
    failure case).  ``op_type`` narrows faults to contexts whose ``type``
    matches; other ops are observed but never faulted.
    """

    def __init__(self, i_point: str = "before_forward_op",
                 occurrence: int = 1, mode: str = "analysis",
                 op_type: str | None = None, always: bool = False,
                 name: str | None = None) -> None:
        super().__init__(name=name)
        if i_point not in _I_POINTS:
            raise ValueError(f"unknown i_point {i_point!r} "
                             f"(choose from {', '.join(_I_POINTS)})")
        if mode not in ("analysis", "instrumentation"):
            raise ValueError(f"unknown mode {mode!r} "
                             "(choose 'analysis' or 'instrumentation')")
        self.i_point = i_point
        self.occurrence = occurrence
        self.mode = mode
        self.op_type = op_type
        self.always = always
        #: matching triggers seen so far (analysis calls or routine firings)
        self.triggers = 0
        #: faults actually raised
        self.faults = 0
        backward, require_outputs = _I_POINTS[i_point]
        self._backward = backward
        self.add_inst_for_op(self._analyze, backward=backward,
                             require_outputs=require_outputs)

    def _matches(self, context: OpContext) -> bool:
        return self.op_type is None or context.get("type") == self.op_type

    def _should_fault(self) -> bool:
        self.triggers += 1
        if self.always:
            return self.triggers >= self.occurrence
        return self.triggers == self.occurrence

    def _fault(self) -> None:
        self.faults += 1
        raise ToolFault(
            f"injected fault #{self.faults} from {self.name} "
            f"at {self.i_point} (trigger {self.triggers})")

    # -- analysis routine ---------------------------------------------------
    def _analyze(self, context: OpContext) -> None:
        if not self._matches(context):
            return
        if self.mode == "analysis":
            if self._should_fault():
                self._fault()
            return
        # instrumentation mode: record an insert action at the matching
        # point; the occurrence counter then ticks per routine *firing*
        if self._backward:
            if self.i_point == "before_backward_op":
                context.insert_before_backward_op(self._routine)
            else:
                context.insert_after_backward_op(self._routine)
        else:
            if self.i_point == "before_forward_op":
                context.insert_before_op(self._routine)
            else:
                context.insert_after_op(self._routine)

    # -- instrumentation routine --------------------------------------------
    def _routine(self, *arrays):
        if self._should_fault():
            self._fault()
        return None  # observation: leave the tensors untouched
