"""Guarded capture of eager modules onto the compiled graph executor.

:func:`capture` wraps an eager :class:`~repro.eager.module.Module` so that
calls execute through a :class:`~repro.graph.session.Session` — inheriting
the whole compiled-executor stack (plan cache, static verifier, effect-based
race analysis, fusion, wavefront scheduling, slot table, arena reuse) while
staying bit-identical to plain eager dispatch.

The mechanism is concrete tracing with **guard buckets**:

* The first call with a given *guard key* (input shapes/dtypes, scalar
  argument values, train/eval mode) runs eagerly under the tracer, which
  records the op stream into a fresh :class:`~repro.graph.core.Graph`.
  Mutable module state is snapshotted before and restored after the trace,
  then the recorded graph is replayed — so even the tracing call returns
  replay results and every captured call is executor-served.
* Subsequent calls that hit the same guard replay the cached session
  directly.  A different shape/dtype/mode re-traces into a new bucket.
* Anything untraceable — a concrete value escaping into Python control flow
  (``Tensor.item()``), an unsupported operator, gradient hooks, non-array
  inputs — poisons the bucket with a structured reason and the call (and all
  future calls on that guard) falls back to plain eager dispatch.  The
  reason is surfaced as :attr:`CapturedModule.last_fallback_reason`.

Training steps are captured by :func:`capture_step`, which additionally
mirrors the autograd tape into the same graph (see
:func:`~repro.capture.tracer.mirror_backward`), so one ``Session.run``
computes the loss and every parameter gradient.

Captured forward outputs are detached (``requires_grad=False``): capture of
a bare forward is an inference contract; differentiate through captured
execution with :func:`capture_step`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from ..core.manager import disabled as _instrumentation_disabled
from ..core.config import config
from ..eager import dispatch
from ..eager.module import Module
from ..eager.tensor import Tensor
from ..graph.core import Graph, GraphTensor
from ..graph.session import Session
from . import ops as _capture_ops
from .tracer import CaptureBailout, Tracer, mirror_backward

__all__ = ["CapturedModule", "CapturedStep", "capture", "capture_step"]

_capture_ops.ensure_registered()


# ---------------------------------------------------------------------------
# guard keys
# ---------------------------------------------------------------------------

def _arg_spec(value: Any) -> tuple:
    if isinstance(value, Tensor):
        return ("tensor", tuple(value.data.shape), value.data.dtype.str)
    if isinstance(value, np.ndarray):
        return ("array", tuple(value.shape), value.dtype.str)
    return ("value", type(value).__name__, repr(value))


def guard_key(module: Module, args: tuple, kwargs: dict,
              grads: tuple | None = None) -> tuple:
    """Shape/dtype/mode signature selecting a capture bucket.

    Scalar (non-array) arguments contribute their *values*: the trace bakes
    them into the graph, so a different value must select a different bucket.
    For training-step capture, ``grads`` carries the per-parameter
    grads-present pattern — pre-existing gradients seed accumulation chains,
    so their presence changes the captured graph.
    """
    spec: list[tuple] = [("training", bool(module.training))]
    spec += [("arg", i) + _arg_spec(a) for i, a in enumerate(args)]
    spec += [("kwarg", k) + _arg_spec(v) for k, v in sorted(kwargs.items())]
    if grads is not None:
        spec.append(("grads",) + grads)
    return tuple(spec)


def _fuse_captured(key: tuple, graph: Graph,
                   fetches: list[GraphTensor]) -> tuple[Graph, list, dict]:
    """Route a captured graph through operator fusion before compilation.

    Elementwise runs in the trace collapse into ``FusedElementwise`` ops, so
    plan compilation (and the rematerialization planner, which treats a fused
    chain as one keep-vs-recompute unit) sees the optimized graph.  Forward
    ops a captured backward reads are control targets and survive untouched
    (their OpCtx stash must keep happening); fetched ops are protected.
    Returns ``(graph, fetches, report)`` — the originals when nothing fused.
    """
    from ..graph.fusion import fuse_graph
    fused, report = fuse_graph(graph,
                               protected={t.op.name for t in fetches})
    if not report:
        graph.guard_token = key
        return graph, fetches, report
    for name in report:
        # a pinned consumer may stash the fused output by reference in its
        # backward OpCtx; keep fused outputs out of the arena pool so the
        # stash outlives any buffer recycling
        fused.get_operation(name).tags["no_pool"] = True
    fused.guard_token = key
    remapped = [fused.get_operation(t.op.name).outputs[t.index]
                for t in fetches]
    return fused, remapped, report


def _untraceable_args(args: tuple, kwargs: dict) -> str | None:
    for value in list(args) + list(kwargs.values()):
        if isinstance(value, np.ndarray) \
                and np.issubdtype(value.dtype, np.floating) \
                and value.dtype != np.float64:
            # eager dispatch passes raw ndarrays through unconverted, but a
            # session feed would normalize them to float64 — replay could
            # not be bit-identical, so this guard stays eager
            return (f"raw {value.dtype} ndarray argument cannot be fed "
                    "bit-identically through the graph executor")
    return None


# ---------------------------------------------------------------------------
# module-state snapshotting (traces run eagerly, then state rolls back and
# the recorded graph replays — state must not advance twice)
# ---------------------------------------------------------------------------

def _state_tensors(module: Module):
    seen: set[int] = set()
    for _, param in module.named_parameters():
        if id(param) not in seen:
            seen.add(id(param))
            yield param, True
    for _, sub in module.named_modules():
        for _, buf in sub._buffers.items():
            if id(buf) not in seen:
                seen.add(id(buf))
                yield buf, False


def _snapshot_state(module: Module) -> list:
    entries = []
    for tensor, is_param in _state_tensors(module):
        grad = None
        if is_param and tensor.grad is not None:
            grad = np.array(tensor.grad)
        entries.append((tensor, tensor.data.copy(), grad, is_param))
    return entries


def _restore_state(entries: list) -> None:
    for tensor, data, grad, is_param in entries:
        # copy back in place: aliases (adopted store entries, optimizer
        # references) must keep pointing at the same buffers
        np.copyto(tensor.data, data)
        if is_param:
            tensor.grad = grad


def _param_name_map(module: Module):
    """``id(array) -> variable name`` plus ``name -> owning tensor``."""
    names: dict[int, str] = {}
    owners: dict[str, Tensor] = {}
    for name, param in module.named_parameters():
        key = f"param/{name}"
        names.setdefault(id(param.data), key)
        owners.setdefault(key, param)
    for mod_name, sub in module.named_modules():
        for buf_name, buf in sub._buffers.items():
            qual = f"{mod_name}.{buf_name}" if mod_name else buf_name
            key = f"buffer/{qual}"
            names.setdefault(id(buf.data), key)
            owners.setdefault(key, buf)
    return names, owners


class _install_tracer:
    def __init__(self, tracer: Tracer) -> None:
        self._tracer = tracer

    def __enter__(self) -> Tracer:
        dispatch.set_capture_tracer(self._tracer)
        return self._tracer

    def __exit__(self, *exc) -> bool:
        dispatch.set_capture_tracer(None)
        return False


# ---------------------------------------------------------------------------
# guard buckets
# ---------------------------------------------------------------------------

@dataclass
class _Bucket:
    """One captured graph + session, valid under one guard key."""

    key: tuple
    poisoned: str | None = None
    graph: Graph | None = None
    session: Session | None = None
    #: (kind, index-or-name, placeholder name) for every array argument
    feeds: list = field(default_factory=list)
    fetches: list = field(default_factory=list)
    single_output: bool = True
    #: (variable name, owning eager tensor) for every lifted param/buffer
    aliases: list = field(default_factory=list)
    #: fused op name -> original op types (graph.fusion provenance)
    fusion_report: dict = field(default_factory=dict)
    # training-step extras
    leaf_params: list = field(default_factory=list)
    grad_feeds: list = field(default_factory=list)

    def refresh_aliases(self) -> None:
        """Re-adopt any param/buffer whose data array was rebound.

        ``load_state_dict`` and optimizer updates mutate in place (aliases
        survive), but user code may assign ``param.data = ...``; the store
        must then track the new buffer.
        """
        store = self.graph.variables
        for var_name, holder in self.aliases:
            if store.read(var_name) is not holder.data:
                store.adopt(var_name, holder.data)


def _wrap_result(bucket: _Bucket, array: np.ndarray) -> Tensor:
    if bucket.graph.variables.owns(array):
        # fetching a Variable returns the stored buffer itself; hand the
        # caller a copy so result mutation cannot corrupt parameters
        array = np.array(array)
    return Tensor(array)


def _build_feed(bucket: _Bucket, args: tuple, kwargs: dict) -> dict:
    feed = {}
    for kind, key, ph_name in bucket.feeds:
        value = args[key] if kind == "arg" else kwargs[key]
        feed[ph_name] = value.data if isinstance(value, Tensor) else value
    return feed


# ---------------------------------------------------------------------------
# captured forward
# ---------------------------------------------------------------------------

class CapturedModule:
    """An eager module whose calls run through the compiled graph executor."""

    def __init__(self, module: Module) -> None:
        self._module = module
        self._buckets: dict[tuple, _Bucket] = {}
        self.last_fallback_reason: str | None = None
        self.capture_count = 0
        self.replay_count = 0
        self.fallback_count = 0

    @property
    def module(self) -> Module:
        return self._module

    def __getattr__(self, name: str):
        return getattr(self._module, name)

    def __call__(self, *args, **kwargs):
        if not config.capture or dispatch.get_capture_tracer() is not None:
            # knob off, or already inside an outer trace: nested captured
            # modules must contribute their ops to the outer graph
            return self._module(*args, **kwargs)
        key = guard_key(self._module, args, kwargs)
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = self._trace(key, args, kwargs)
            self._buckets[key] = bucket
        if bucket.poisoned is not None:
            self.last_fallback_reason = bucket.poisoned
            self.fallback_count += 1
            return self._module(*args, **kwargs)
        return self._replay(bucket, args, kwargs)

    # -- trace --------------------------------------------------------------
    def _trace(self, key: tuple, args: tuple, kwargs: dict) -> _Bucket:
        bucket = _Bucket(key=key)
        reason = _untraceable_args(args, kwargs)
        if reason is not None:
            bucket.poisoned = reason
            return bucket
        module = self._module
        graph = Graph()
        names, owners = _param_name_map(module)
        tracer = Tracer(graph, names, [t.data for t, _ in _state_tensors(module)])
        for i, value in enumerate(args):
            if isinstance(value, (Tensor, np.ndarray)):
                arr = value.data if isinstance(value, Tensor) else value
                bucket.feeds.append(
                    ("arg", i, tracer.add_placeholder(arr, f"input_{i}")))
        for k in sorted(kwargs):
            value = kwargs[k]
            if isinstance(value, (Tensor, np.ndarray)):
                arr = value.data if isinstance(value, Tensor) else value
                bucket.feeds.append(
                    ("kwarg", k, tracer.add_placeholder(arr, f"input_{k}")))
        snapshot = _snapshot_state(module)
        try:
            with _instrumentation_disabled(), dispatch.no_grad(), \
                    _install_tracer(tracer):
                output = module(*args, **kwargs)
        finally:
            _restore_state(snapshot)
        if tracer.escape_reason is not None:
            bucket.poisoned = tracer.escape_reason
            return bucket
        bucket.single_output = not isinstance(output, tuple)
        outputs = (output,) if bucket.single_output else output
        for out in outputs:
            if not isinstance(out, Tensor):
                bucket.poisoned = (
                    f"module returned a non-tensor ({type(out).__name__})")
                return bucket
            sym = tracer.lookup(out.data)
            if sym is None:
                bucket.poisoned = ("module output was not produced by a "
                                   "traced operator")
                return bucket
            bucket.fetches.append(sym)
        if tracer.num_ops == 0:
            bucket.poisoned = "trace recorded no operators"
            return bucket
        graph, bucket.fetches, bucket.fusion_report = \
            _fuse_captured(key, graph, bucket.fetches)
        bucket.graph = graph
        bucket.session = Session(graph)
        bucket.aliases = [(name, owners[name]) for name in tracer.lifted]
        self.capture_count += 1
        return bucket

    # -- replay -------------------------------------------------------------
    def _replay(self, bucket: _Bucket, args: tuple, kwargs: dict):
        bucket.refresh_aliases()
        try:
            results = bucket.session.run(bucket.fetches,
                                         _build_feed(bucket, args, kwargs))
        except NotImplementedError as exc:
            # a captured compute went missing (e.g. an op deregistered after
            # trace): poison the bucket and serve the call eagerly
            bucket.poisoned = f"replay failed: {exc}"
            self.last_fallback_reason = bucket.poisoned
            self.fallback_count += 1
            return self._module(*args, **kwargs)
        self.replay_count += 1
        wrapped = [_wrap_result(bucket, r) for r in results]
        return wrapped[0] if bucket.single_output else tuple(wrapped)


# ---------------------------------------------------------------------------
# captured training step
# ---------------------------------------------------------------------------

class CapturedStep:
    """A training step (loss forward + full backward) as one captured graph.

    ``loss_fn(module, *args, **kwargs)`` must return a scalar loss tensor.
    The eager-equivalent semantics of one call are::

        loss = loss_fn(module, *args, **kwargs)
        loss.backward()          # accumulates into param.grad
        return loss

    After a captured call, every parameter's ``.grad`` holds bit-identical
    bytes to the eager step, including accumulation on top of pre-existing
    gradients.  The returned loss is detached.  Run the optimizer eagerly
    afterwards — parameter updates mutate in place and stay visible to the
    captured graph through the aliased variable store.
    """

    def __init__(self, module: Module, loss_fn: Callable) -> None:
        if isinstance(module, CapturedModule):
            module = module.module
        self._module = module
        self._loss_fn = loss_fn
        self._buckets: dict[tuple, _Bucket] = {}
        self.last_fallback_reason: str | None = None
        self.capture_count = 0
        self.replay_count = 0
        self.fallback_count = 0

    @property
    def module(self) -> Module:
        return self._module

    def _eager_step(self, args: tuple, kwargs: dict) -> Tensor:
        loss = self._loss_fn(self._module, *args, **kwargs)
        loss.backward()
        return loss

    def __call__(self, *args, **kwargs) -> Tensor:
        if not config.capture or dispatch.get_capture_tracer() is not None:
            return self._eager_step(args, kwargs)
        grads = tuple(p.grad is not None
                      for _, p in self._module.named_parameters())
        key = guard_key(self._module, args, kwargs, grads=grads)
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = self._trace(key, args, kwargs)
            self._buckets[key] = bucket
        if bucket.poisoned is not None:
            self.last_fallback_reason = bucket.poisoned
            self.fallback_count += 1
            return self._eager_step(args, kwargs)
        return self._replay(bucket, args, kwargs)

    # -- trace --------------------------------------------------------------
    def _trace(self, key: tuple, args: tuple, kwargs: dict) -> _Bucket:
        bucket = _Bucket(key=key)
        reason = _untraceable_args(args, kwargs)
        if reason is not None:
            bucket.poisoned = reason
            return bucket
        module = self._module
        graph = Graph()
        names, owners = _param_name_map(module)
        tracer = Tracer(graph, names, [t.data for t, _ in _state_tensors(module)])
        for i, value in enumerate(args):
            if isinstance(value, (Tensor, np.ndarray)):
                arr = value.data if isinstance(value, Tensor) else value
                bucket.feeds.append(
                    ("arg", i, tracer.add_placeholder(arr, f"input_{i}")))
        for k in sorted(kwargs):
            value = kwargs[k]
            if isinstance(value, (Tensor, np.ndarray)):
                arr = value.data if isinstance(value, Tensor) else value
                bucket.feeds.append(
                    ("kwarg", k, tracer.add_placeholder(arr, f"input_{k}")))
        snapshot = _snapshot_state(module)
        try:
            with _instrumentation_disabled():
                with _install_tracer(tracer):
                    loss = self._loss_fn(module, *args, **kwargs)
                if tracer.escape_reason is not None:
                    bucket.poisoned = tracer.escape_reason
                    return bucket
                if not isinstance(loss, Tensor):
                    bucket.poisoned = (
                        f"loss_fn returned a non-tensor "
                        f"({type(loss).__name__})")
                    return bucket
                loss_sym = tracer.lookup(loss.data)
                if loss_sym is None:
                    bucket.poisoned = ("loss was not produced by a traced "
                                       "operator")
                    return bucket
                leaf_params, leaf_fetches, grad_feeds = \
                    mirror_backward(tracer, loss)
        except CaptureBailout as exc:
            bucket.poisoned = exc.reason
            return bucket
        finally:
            _restore_state(snapshot)
        fetches = [loss_sym] + list(leaf_fetches)
        graph, fetches, bucket.fusion_report = \
            _fuse_captured(key, graph, fetches)
        bucket.graph = graph
        bucket.session = Session(graph)
        bucket.fetches = fetches
        bucket.aliases = [(name, owners[name]) for name in tracer.lifted]
        bucket.leaf_params = leaf_params
        bucket.grad_feeds = grad_feeds
        self.capture_count += 1
        return bucket

    # -- replay -------------------------------------------------------------
    def _replay(self, bucket: _Bucket, args: tuple, kwargs: dict) -> Tensor:
        bucket.refresh_aliases()
        feed = _build_feed(bucket, args, kwargs)
        for param, ph_name in bucket.grad_feeds:
            # guard key pins the grads-present pattern, so .grad is non-None
            feed[ph_name] = param.grad
        try:
            results = bucket.session.run(bucket.fetches, feed)
        except NotImplementedError as exc:
            bucket.poisoned = f"replay failed: {exc}"
            self.last_fallback_reason = bucket.poisoned
            self.fallback_count += 1
            return self._eager_step(args, kwargs)
        self.replay_count += 1
        for param, grad in zip(bucket.leaf_params, results[1:]):
            # fresh copy, exactly like the engine's value.copy() / g + v
            param.grad = np.array(grad)
        return Tensor(np.array(results[0]))


def capture(module: Module) -> CapturedModule:
    """Wrap ``module`` so calls run on the compiled graph executor."""
    return CapturedModule(module)


def capture_step(module: Module | CapturedModule,
                 loss_fn: Callable) -> CapturedStep:
    """Capture a full training step (loss + backward) as one graph."""
    return CapturedStep(module, loss_fn)
