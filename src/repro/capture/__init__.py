"""Symbolic capture: run eager modules on the compiled graph executor.

The reproduction has two frontends — define-by-run eager modules and the
define-then-run graph backend — but only the graph backend owns the compiled
execution stack (plan caching, static verification, effect-based race
analysis, fusion, wavefront parallelism, slot-table arenas).  This package
unifies them: :func:`capture` traces an eager module into the graph IR and
executes subsequent calls through a :class:`~repro.graph.session.Session`,
guarded by input shapes/dtypes and train/eval mode, with transparent
bail-out to plain eager dispatch whenever a trace cannot be replayed
faithfully.  :func:`capture_step` extends the capture across the autograd
tape, so a whole training step (loss forward plus every parameter gradient)
becomes one compiled graph.

The contract is bit-identity: a captured call returns byte-for-byte the
arrays plain eager dispatch would, including under instrumentation tools,
because replay executes the very same eager kernel functions in the same
order on the same parameter buffers (lifted to graph variables by aliasing,
not copying).

The ``AMANDA_CAPTURE`` environment knob (default on) is a kill-switch:
when off, captured wrappers pass every call straight to eager dispatch.
"""

from .captured import CapturedModule, CapturedStep, capture, capture_step
from .ops import CAPTURABLE, ensure_registered
from .tracer import CaptureBailout, Tracer, mirror_backward

__all__ = [
    "CAPTURABLE",
    "CaptureBailout",
    "CapturedModule",
    "CapturedStep",
    "Tracer",
    "capture",
    "capture_step",
    "ensure_registered",
    "mirror_backward",
]
