"""Concrete tracer: records eager dispatch into a graph, mirrors backward.

The tracer implements *concrete* (``jit.trace``-style) capture: the module
runs eagerly on real arrays while :func:`repro.eager.dispatch.vanilla_apply`
reports every executed operator.  Array provenance is tracked by object
identity — each concrete ``ndarray`` seen during the trace maps to the
symbolic :class:`~repro.graph.core.GraphTensor` that will reproduce it at
replay:

* call arguments become ``Placeholder`` nodes (fed fresh on every replay);
* module parameters and buffers are lifted lazily to ``Variable`` nodes whose
  store entries *alias* the live eager buffers (no copies, no sync step);
* any other array (a constant baked into the module's Python code) becomes a
  ``Const`` holding a defensive copy with its exact dtype.

Python control flow is baked in by construction.  Whenever the trace observes
something it cannot replay faithfully — a concrete value escaping into
Python (``Tensor.item()``), an operator without captured-compute support, a
gradient hook — it records a structured *escape reason* and the caller bails
out to plain eager dispatch for that guard bucket.
"""

from __future__ import annotations

import numpy as np

from ..eager import autograd, dispatch
from ..eager.tensor import Tensor
from ..graph import builder
from ..graph.core import Graph, GraphTensor, Operation

__all__ = ["CaptureBailout", "Tracer", "mirror_backward"]


class CaptureBailout(Exception):
    """Raised when a trace cannot be completed; carries the escape reason."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


class Tracer:
    """Records one eager execution into ``graph``.

    ``param_names`` maps ``id(array) -> variable name`` for every parameter
    and buffer of the module being traced; those arrays lift to ``Variable``
    nodes, everything else unknown bakes to a ``Const``.
    """

    def __init__(self, graph: Graph, param_names: dict[int, str],
                 param_arrays: list[np.ndarray]) -> None:
        self.graph = graph
        self.param_names = dict(param_names)
        #: id -> symbolic tensor for every concrete array seen so far
        self.symbols: dict[int, GraphTensor] = {}
        #: strong refs to every keyed array — an id() must not be recycled
        #: by the allocator while the trace still maps it
        self.keepalive: list[np.ndarray] = list(param_arrays)
        #: (variable op name,) for each param/buffer actually lifted
        self.lifted: list[str] = []
        self.escape_reason: str | None = None
        self.num_ops = 0

    # -- provenance ---------------------------------------------------------
    def add_placeholder(self, array: np.ndarray, name: str) -> str:
        ph = builder.placeholder(shape=tuple(array.shape), name=name,
                                 graph=self.graph)
        ph.op.tags["captured"] = True
        self.symbols[id(array)] = ph
        self.keepalive.append(array)
        return ph.op.name

    def lookup(self, array: np.ndarray) -> GraphTensor | None:
        return self.symbols.get(id(array))

    def symbol_for(self, array: np.ndarray) -> GraphTensor:
        sym = self.symbols.get(id(array))
        if sym is not None:
            return sym
        pname = self.param_names.get(id(array))
        if pname is not None:
            sym = builder.capture_variable(array, name=pname,
                                           graph=self.graph)
            self.lifted.append(sym.op.name)
        else:
            # defensive copy: the eager program may mutate the source array
            # after the trace, but the baked constant must stay frozen
            sym = builder.capture_constant(np.array(array),
                                           name="traced_const",
                                           graph=self.graph)
        self.symbols[id(array)] = sym
        self.keepalive.append(array)
        return sym

    # -- dispatch callbacks (invoked by vanilla_apply / Tensor.item) --------
    def record_apply(self, opdef, inputs: tuple, attrs: dict,
                     outputs: tuple) -> None:
        if self.escape_reason is not None:
            return
        from .ops import CAPTURABLE
        if opdef.name not in CAPTURABLE:
            self.record_escape(
                f"operator {opdef.name!r} has no captured compute")
            return
        syms = []
        for value in inputs:
            if isinstance(value, Tensor):
                arr = value.data
            elif isinstance(value, np.ndarray):
                arr = value
            else:
                self.record_escape(
                    f"non-array input of type {type(value).__name__} "
                    f"to operator {opdef.name!r}")
                return
            syms.append(self.symbol_for(arr))
        op = builder.capture_op(opdef.name, syms, dict(attrs),
                                num_outputs=len(outputs), graph=self.graph)
        for index, out in enumerate(outputs):
            self.symbols[id(out.data)] = op.outputs[index]
            self.keepalive.append(out.data)
        self.num_ops += 1

    def record_escape(self, reason: str) -> None:
        if self.escape_reason is None:
            self.escape_reason = reason


# ---------------------------------------------------------------------------
# backward mirror
# ---------------------------------------------------------------------------

def _grad_add(graph: Graph, a: GraphTensor, b: GraphTensor,
              forward_op: Operation) -> GraphTensor:
    op = builder.capture_op("add", [a, b], name="grad_acc", graph=graph)
    op.forward_op = forward_op
    return op.outputs[0]


def mirror_backward(tracer: Tracer, loss: Tensor):
    """Replay ``autograd.backward(loss)`` symbolically into the traced graph.

    Walks the autograd tape in the engine's exact order, executing each
    backward def concretely (to feed downstream defs real gradient arrays)
    while emitting one captured backward op per def.  Gradient accumulation
    — repeated input indices, fan-in at a parent output slot, and leaf
    ``.grad`` accumulation — is mirrored as explicit ``add`` ops in the
    engine's association order, because float addition is not associative
    and the contract is bit-identity.

    Leaves with a pre-existing ``.grad`` get a ``grad_in`` placeholder that
    seeds their accumulation chain (``param.grad + v`` is anchored on the
    value at call time, which differs between replays).

    Returns ``(leaf_params, leaf_grad_syms, grad_feeds)`` where ``grad_feeds``
    is a list of ``(param, placeholder_name)`` pairs to feed each replay.
    """
    graph = tracer.graph
    node = loss.node
    if node is None:
        raise CaptureBailout("loss tensor is a leaf; nothing to differentiate")
    if loss.size != 1:
        raise CaptureBailout("captured backward requires a scalar loss")
    loss_sym = tracer.lookup(loss.data)
    if loss_sym is None:
        raise CaptureBailout("loss was not produced by a traced operator")

    seed = np.asarray(np.ones_like(loss.data), dtype=loss.data.dtype)
    seed_op = builder.capture_op("OnesLike", [loss_sym], name="grad_seed",
                                 graph=graph)
    seed_op.forward_op = loss_sym.op

    pending: dict[int, list] = {id(node): [None] * len(node.outputs)}
    pending_sym: dict[int, list] = {id(node): [None] * len(node.outputs)}
    out_index = node.outputs.index(loss)
    pending[id(node)][out_index] = seed
    pending_sym[id(node)][out_index] = seed_op.outputs[0]

    leaf_syms: dict[int, GraphTensor] = {}
    leaf_params: list[Tensor] = []
    grad_feeds: list[tuple[Tensor, str]] = []
    order = autograd._topological_order(node)

    with dispatch.no_grad():
        for n in reversed(order):
            slot = pending.pop(id(n), None)
            if slot is None:
                continue
            ssym = pending_sym.pop(id(n))
            fwd_sym = tracer.lookup(n.outputs[0].data)
            if fwd_sym is None:
                raise CaptureBailout(
                    f"tape node {n.opdef.name!r} was not traced")
            fop = fwd_sym.op
            grad_outputs = []
            grad_syms = []
            for out, gval, gsym in zip(n.outputs, slot, ssym):
                if out._grad_hooks:
                    raise CaptureBailout(
                        "tensor gradient hooks are not capturable")
                if gval is None:
                    gval = np.zeros_like(out.data)
                    zop = builder.capture_op(
                        "zeros_like", [tracer.symbol_for(out.data)],
                        name="grad_zero", graph=graph)
                    zop.forward_op = fop
                    gsym = zop.outputs[0]
                grad_outputs.append(gval)
                grad_syms.append(gsym)
            grad_tuple = tuple(grad_outputs)
            input_grads: dict[int, np.ndarray] = {}
            input_syms: dict[int, GraphTensor] = {}
            for bdef in n.opdef.backward_defs:
                partial = dispatch.execute_backward_def(n, bdef, grad_tuple)
                indices = tuple(partial)
                # the control edge on the forward op orders the ctx stash
                # before this op's ctx fetch under any executor schedule
                bop = builder.capture_op(
                    bdef.name, grad_syms,
                    {"forward_name": fop.name, "grad_indices": indices},
                    num_outputs=len(indices), name=bdef.name, graph=graph,
                    control_inputs=(fop,))
                bop.forward_op = fop
                for position, index in enumerate(indices):
                    value = partial[index]
                    vsym = bop.outputs[position]
                    if index in input_grads:
                        input_grads[index] = input_grads[index] + value
                        input_syms[index] = _grad_add(
                            graph, input_syms[index], vsym, fop)
                    else:
                        input_grads[index] = value
                        input_syms[index] = vsym
            for index, value in input_grads.items():
                source = n.inputs[index]
                if not isinstance(source, Tensor):
                    continue
                if source._grad_hooks:
                    raise CaptureBailout(
                        "tensor gradient hooks are not capturable")
                value = np.asarray(value)
                vsym = input_syms[index]
                if source.node is not None:
                    slot2 = pending.setdefault(
                        id(source.node), [None] * len(source.node.outputs))
                    ssym2 = pending_sym.setdefault(
                        id(source.node), [None] * len(source.node.outputs))
                    position = source.node.outputs.index(source)
                    if slot2[position] is None:
                        slot2[position] = value
                        ssym2[position] = vsym
                    else:
                        slot2[position] = slot2[position] + value
                        parent = tracer.lookup(source.data)
                        ssym2[position] = _grad_add(
                            graph, ssym2[position], vsym,
                            parent.op if parent is not None else fop)
                elif source.requires_grad:
                    key = id(source)
                    if key not in leaf_syms:
                        if source.grad is not None:
                            # seed the chain with the caller's accumulated
                            # grad: (g0 + v1) + v2 is not (v1 + v2) + g0
                            ph = builder.placeholder(
                                shape=tuple(source.grad.shape),
                                name="grad_in", graph=graph)
                            ph.op.tags["captured"] = True
                            grad_feeds.append((source, ph.op.name))
                            leaf_syms[key] = _grad_add(graph, ph, vsym, fop)
                        else:
                            leaf_syms[key] = vsym
                        leaf_params.append(source)
                    else:
                        leaf_syms[key] = _grad_add(
                            graph, leaf_syms[key], vsym, fop)
    return (leaf_params,
            [leaf_syms[id(p)] for p in leaf_params],
            grad_feeds)
