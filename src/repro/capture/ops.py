"""Runtime support for captured graphs: computes, schemas, effect rules.

Symbolic capture (see :mod:`repro.capture`) records *eager* operators into a
:class:`repro.graph.core.Graph`.  Captured ops keep the eager operator names
(``matmul``, ``conv2d``, ...) — lowercase, so they never collide with the
TF-style CamelCase types of the hand-built graph backend — and their runtime
compute functions wrap the eager :class:`~repro.eager.dispatch.OpDef`
forwards directly.  That makes replay bit-identical to eager dispatch by
construction: the same kernel functions run on the same arrays, and the
output coercion below replicates exactly what
:class:`~repro.eager.tensor.Tensor` does to every eager op result.

Registration is driven by the op registry's snooping hook, so eager
operators registered *after* ``repro.capture`` is imported (user extensions)
become capturable too.  For every capturable operator three tables are
updated atomically — ``builder.COMPUTE``, ``GRAPH_SCHEMAS`` and
``GRAPH_EFFECTS`` — which keeps ``check_registry_complete()`` and
``check_effects_complete()`` consistent whether or not this module was ever
imported.
"""

from __future__ import annotations

import threading
from typing import Callable

import numpy as np

from ..analysis.effects import (GRAPH_EFFECTS, PURE, RNG_KEY, EffectSig,
                                register_graph_effect)
from ..analysis.schemas import (EAGER_SCHEMAS, GRAPH_SCHEMAS, OpSchema,
                                register_graph_schema)
from ..eager.dispatch import BackwardDef, OpCtx, OpDef, registry
from ..graph.builder import COMPUTE

__all__ = ["CAPTURABLE", "ensure_registered"]

#: eager operator names with full captured-graph support (compute + schema +
#: effect rule registered); the tracer bails out on anything else
CAPTURABLE: set[str] = set()

_RNG = EffectSig(reads=frozenset((RNG_KEY,)), writes=frozenset((RNG_KEY,)))

#: per-run side table carrying each captured forward op's ``OpCtx`` to its
#: backward ops; stored as an attribute on the session's ``_Runtime`` so the
#: table's lifetime is exactly one ``Session.run``
_CTX_TABLE_ATTR = "_capture_op_ctxs"
_ctx_lock = threading.Lock()


def _ctx_table(runtime) -> dict:
    table = getattr(runtime, _CTX_TABLE_ATTR, None)
    if table is None:
        # wavefront workers may race the first stash of a run; the lock makes
        # table creation a once-only event (stashes themselves are per-key)
        with _ctx_lock:
            table = getattr(runtime, _CTX_TABLE_ATTR, None)
            if table is None:
                table = {}
                setattr(runtime, _CTX_TABLE_ATTR, table)
    return table


def _coerce(value) -> np.ndarray:
    """Replicate ``Tensor.__init__``'s dtype policy on an op output.

    Eager dispatch wraps every raw forward result in a ``Tensor``, which
    upcasts non-float64 floating arrays and leaves integer arrays alone; the
    next eager op then consumes ``tensor.data``.  Captured replay must feed
    the identical bytes to the next compute.
    """
    arr = np.asarray(value)
    if arr.dtype != np.float64 and np.issubdtype(arr.dtype, np.floating):
        arr = arr.astype(np.float64)
    return arr


def _forward_compute(opdef: OpDef) -> Callable:
    def compute(op, inputs, runtime):
        ctx = OpCtx()
        raw = opdef.forward(ctx, *inputs, **op.attrs)
        _ctx_table(runtime)[op.name] = ctx
        raw_outputs = raw if isinstance(raw, tuple) else (raw,)
        return tuple(_coerce(o) for o in raw_outputs)

    compute.__name__ = f"_captured_{opdef.name}"
    return compute


def _backward_compute(opdef: OpDef, bdef: BackwardDef) -> Callable:
    def compute(op, inputs, runtime):
        ctx = _ctx_table(runtime).get(op.attrs["forward_name"])
        if ctx is None:
            raise RuntimeError(
                f"captured backward op {op.name!r} ran before its forward "
                f"op {op.attrs['forward_name']!r} stashed a context")
        # the autograd engine hands backward defs raw ndarrays (grads are
        # never Tensor-wrapped), so no float coercion here
        partial = bdef.fn(ctx, tuple(np.asarray(g) for g in inputs))
        return tuple(np.asarray(partial[i]) for i in op.attrs["grad_indices"])

    compute.__name__ = f"_captured_{bdef.name}"
    return compute


def _permissive_schema(name: str) -> OpSchema:
    """Schema for captured backward op types.

    Backward defs have no eager schema (they are not operators of the
    registry); arity and output count are data-dependent (``grad_indices``
    is observed at trace time), so the schema checks structural sanity only.
    """
    return OpSchema(name, 0, None, None, {}, (), None,
                    allow_extra_attrs=True,
                    num_outputs_fn=lambda op: len(op.outputs))


def _captured_batch_norm_effect(op) -> EffectSig:
    # the eager forward mutates the running-stat arrays *in place*
    # (np.copyto); at replay those arrays are the adopted Variable buffers at
    # inputs 3 and 4, so training mode reads and writes their store keys
    if not op.attrs.get("training", True):
        return PURE
    keys = frozenset(edge.op.name for edge in op.inputs[3:5]
                     if edge.op.type == "Variable")
    if not keys:
        return PURE  # stats were baked constants: nothing shared is touched
    return EffectSig(reads=keys, writes=keys)


def _captured_dropout_effect(op) -> EffectSig:
    if op.attrs.get("training", True) and op.attrs.get("p", 0.5) > 0 \
            and op.attrs.get("seed") is None:
        return _RNG
    return PURE


def _pure_effect(op) -> EffectSig:
    return PURE


def _register_opdef(opdef: OpDef) -> None:
    """Make one eager operator capturable (idempotent, all-or-nothing)."""
    if opdef.name in CAPTURABLE:
        return
    names = [opdef.name] + [b.name for b in opdef.backward_defs]
    for name in names:
        if name in COMPUTE or name in GRAPH_SCHEMAS or name in GRAPH_EFFECTS:
            # a collision with an existing graph type (or a backward-def name
            # shared with another operator): leave the op un-capturable so
            # the tracer bails instead of replaying through the wrong compute
            return
    COMPUTE[opdef.name] = _forward_compute(opdef)
    register_graph_schema(EAGER_SCHEMAS.get(opdef.name)
                          or _permissive_schema(opdef.name))
    if opdef.name == "batch_norm":
        register_graph_effect(opdef.name, _captured_batch_norm_effect)
    elif opdef.name == "dropout":
        register_graph_effect(opdef.name, _captured_dropout_effect)
    else:
        register_graph_effect(opdef.name, _pure_effect)
    for bdef in opdef.backward_defs:
        COMPUTE[bdef.name] = _backward_compute(opdef, bdef)
        register_graph_schema(_permissive_schema(bdef.name))
        register_graph_effect(bdef.name, _pure_effect)
    CAPTURABLE.add(opdef.name)


def _compute_zeros_like(op, inputs, runtime):
    return (np.zeros_like(np.asarray(inputs[0])),)


_registered = False


def ensure_registered() -> None:
    """Register capture support for every current and future eager operator."""
    global _registered
    if _registered:
        return
    _registered = True
    # the None-gradient filler emitted by the backward mirror (the engine
    # zero-fills unused output slots before running backward defs)
    COMPUTE["zeros_like"] = _compute_zeros_like
    register_graph_schema(OpSchema(
        "zeros_like", 1, 1, 1, {}, (),
        lambda op, in_shapes, env: [in_shapes[0]]))
    register_graph_effect("zeros_like", _pure_effect)
    # snoop the registry: replay covers already-registered ops, the listener
    # covers extensions registered later
    registry.add_registration_listener(_register_opdef, replay=True)


ensure_registered()
