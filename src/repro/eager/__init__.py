"""Eager (define-by-run) execution backend — the reproduction's PyTorch analog.

Operators execute immediately through an instrumentable dispatcher, autograd
records a tape whose backward operators are themselves dispatched ops, and a
``Module`` system provides the module-hook baseline interface.
"""

from . import ops as _ops  # noqa: F401  (registers the default operator set)
from . import alloc, checkpoint, functional, optim, schedulers
from .autograd import backward, grad
from .dispatch import apply_op, enable_grad, no_grad, registry
from .layers import (AdaptiveAvgPool2d, AvgPool2d, BatchNorm1d, BatchNorm2d,
                     Conv2d, Dropout, Embedding, Flatten, GELU, Identity,
                     LayerNorm, Linear, MaxPool2d, MultiheadAttention, ReLU,
                     Sigmoid, Softmax, Tanh)
from .module import Module, ModuleList, Parameter, Sequential
from .tensor import Tensor, arange, as_tensor, ones, randn, tensor, zeros

F = functional

__all__ = [
    "Tensor", "Parameter", "Module", "Sequential", "ModuleList",
    "tensor", "as_tensor", "zeros", "ones", "randn", "arange",
    "backward", "grad", "no_grad", "enable_grad", "apply_op", "registry",
    "functional", "F", "optim", "alloc", "schedulers", "checkpoint",
    "Linear", "Conv2d", "BatchNorm1d", "BatchNorm2d", "LayerNorm", "Embedding",
    "ReLU", "GELU", "Tanh", "Sigmoid", "Softmax", "MaxPool2d", "AvgPool2d",
    "AdaptiveAvgPool2d", "Dropout", "Flatten", "Identity", "MultiheadAttention",
]
