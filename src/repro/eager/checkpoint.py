"""Checkpointing: save/load module state as ``.npz`` archives."""

from __future__ import annotations

import numpy as np

from .module import Module

__all__ = ["save_checkpoint", "load_checkpoint"]

_OPTIMIZER_PREFIX = "__optimizer__/"


def save_checkpoint(path: str, module: Module, optimizer=None) -> None:
    """Persist a module's parameters and buffers (and optimizer state)."""
    state = dict(module.state_dict())
    if optimizer is not None:
        for index, param in enumerate(optimizer.params):
            for slot_name, slots in _optimizer_slots(optimizer).items():
                state[f"{_OPTIMIZER_PREFIX}{slot_name}/{index}"] = slots[index]
        state[f"{_OPTIMIZER_PREFIX}step"] = np.array(
            getattr(optimizer, "_step_count", 0))
    np.savez(path, **state)


def load_checkpoint(path: str, module: Module, optimizer=None) -> None:
    """Restore a module (and optimizer) from :func:`save_checkpoint` output."""
    archive = np.load(path)
    model_state = {key: archive[key] for key in archive.files
                   if not key.startswith(_OPTIMIZER_PREFIX)}
    module.load_state_dict(model_state)
    if optimizer is not None:
        for slot_name, slots in _optimizer_slots(optimizer).items():
            for index in range(len(optimizer.params)):
                key = f"{_OPTIMIZER_PREFIX}{slot_name}/{index}"
                if key in archive.files:
                    np.copyto(slots[index], archive[key])
        step_key = f"{_OPTIMIZER_PREFIX}step"
        if step_key in archive.files and hasattr(optimizer, "_step_count"):
            optimizer._step_count = int(archive[step_key])


def _optimizer_slots(optimizer) -> dict[str, list[np.ndarray]]:
    slots: dict[str, list[np.ndarray]] = {}
    if hasattr(optimizer, "_velocity"):
        slots["velocity"] = optimizer._velocity
    if hasattr(optimizer, "_m"):
        slots["m"] = optimizer._m
        slots["v"] = optimizer._v
    return slots
