"""Tensor allocation accounting for the memory-footprint experiment (Fig. 13).

Every :class:`~repro.eager.tensor.Tensor` (and graph-backend runtime buffer)
registers its byte size here under the *allocation scope* current at creation
time.  The Amanda manager pushes the ``"amanda"`` scope while framework code
runs and the ``"tool"`` scope while user instrumentation routines run, so the
footprint can be split into DNN / framework / tool shares exactly like the
paper's Fig. 13 breakdown.
"""

from __future__ import annotations

from contextlib import contextmanager

__all__ = ["AllocationTracker", "tracker", "scope"]


class AllocationTracker:
    """Accumulates live and peak bytes per allocation scope."""

    SCOPES = ("dnn", "amanda", "tool")

    def __init__(self) -> None:
        self._stack: list[str] = ["dnn"]
        self.reset()

    def reset(self) -> None:
        self.live = dict.fromkeys(self.SCOPES, 0)
        self.peak = dict.fromkeys(self.SCOPES, 0)
        self.total_allocated = dict.fromkeys(self.SCOPES, 0)

    @property
    def current_scope(self) -> str:
        return self._stack[-1]

    def push_scope(self, name: str) -> None:
        if name not in self.SCOPES:
            raise ValueError(f"unknown allocation scope {name!r}")
        self._stack.append(name)

    def pop_scope(self) -> None:
        if len(self._stack) > 1:
            self._stack.pop()

    def allocate(self, nbytes: int, scope: str | None = None) -> str:
        scope = scope or self.current_scope
        self.live[scope] += nbytes
        self.total_allocated[scope] += nbytes
        if self.live[scope] > self.peak[scope]:
            self.peak[scope] = self.live[scope]
        return scope

    def release(self, nbytes: int, scope: str) -> None:
        self.live[scope] -= nbytes

    def snapshot(self) -> dict[str, dict[str, int]]:
        return {
            "live": dict(self.live),
            "peak": dict(self.peak),
            "total": dict(self.total_allocated),
        }


#: Process-global tracker shared by both backends.
tracker = AllocationTracker()


@contextmanager
def scope(name: str):
    """Attribute allocations inside the block to ``name``."""
    tracker.push_scope(name)
    try:
        yield
    finally:
        tracker.pop_scope()
