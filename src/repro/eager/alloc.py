"""Tensor allocation accounting for the memory-footprint experiment (Fig. 13).

Every :class:`~repro.eager.tensor.Tensor` (and graph-backend runtime buffer)
registers its byte size here under the *allocation scope* current at creation
time.  The Amanda manager pushes the ``"amanda"`` scope while framework code
runs and the ``"tool"`` scope while user instrumentation routines run, so the
footprint can be split into DNN / framework / tool shares exactly like the
paper's Fig. 13 breakdown.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

import numpy as np

__all__ = ["AllocationTracker", "Arena", "tracker", "scope"]


class AllocationTracker:
    """Accumulates live and peak bytes per allocation scope.

    Thread-safe: the serving runtime (``repro.serve``) runs concurrent
    sessions that all account through this process-global instance, so the
    counter read-modify-writes are lock-guarded and the *scope stack* is
    per-thread (a tool scope pushed by one worker must not re-attribute a
    concurrent worker's allocations).
    """

    SCOPES = ("dnn", "amanda", "tool")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._tls = threading.local()
        self.reset()

    def reset(self) -> None:
        with self._lock:
            self.live = dict.fromkeys(self.SCOPES, 0)
            self.peak = dict.fromkeys(self.SCOPES, 0)
            self.total_allocated = dict.fromkeys(self.SCOPES, 0)

    def _scope_stack(self) -> list[str]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = ["dnn"]
        return stack

    @property
    def current_scope(self) -> str:
        return self._scope_stack()[-1]

    def push_scope(self, name: str) -> None:
        if name not in self.SCOPES:
            raise ValueError(f"unknown allocation scope {name!r}")
        self._scope_stack().append(name)

    def pop_scope(self) -> None:
        stack = self._scope_stack()
        if len(stack) > 1:
            stack.pop()

    def allocate(self, nbytes: int, scope: str | None = None) -> str:
        scope = scope or self.current_scope
        with self._lock:
            self.live[scope] += nbytes
            self.total_allocated[scope] += nbytes
            if self.live[scope] > self.peak[scope]:
                self.peak[scope] = self.live[scope]
        return scope

    def release(self, nbytes: int, scope: str) -> None:
        with self._lock:
            self.live[scope] -= nbytes

    def snapshot(self) -> dict[str, dict[str, int]]:
        with self._lock:
            return {
                "live": dict(self.live),
                "peak": dict(self.peak),
                "total": dict(self.total_allocated),
            }


class Arena:
    """Size-bucketed pool of reusable float64 buffers for the graph executor.

    The slot-table executor (``repro.graph.session``) returns every
    intermediate to the arena at its statically-computed last use, so a
    steady-state ``Session.run`` loop recycles the same buffers instead of
    churning fresh numpy arrays (the Fig. 13 allocation-churn axis).  Buckets
    are powers of two of the element count; an acquisition is served from the
    bucket's free list when possible and otherwise *grows* the arena by one
    buffer.

    Ownership is reference-counted per backing buffer: publishing an op
    output ``adopt``\\ s it (aliases — ``Identity``, views, ``PyCall``
    pass-throughs — adopt the same backing buffer again), and each slot
    release drops one reference; the buffer only re-enters the free list at
    zero.  ``acquire``/``owns`` are safe to call from wavefront worker
    threads; the bookkeeping calls (``adopt``/``release``/``take_growth_bytes``)
    run on the submitting thread.

    The arena never calls the :data:`tracker` itself (worker threads race):
    growth bytes accumulate in ``take_growth_bytes()`` and the session
    flushes them into the tracker at its sequential bookkeeping points.
    Pooled capacity stays "live" in the tracker until :meth:`drain`.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        #: bucket element count -> free backing buffers
        self._free: dict[int, list[np.ndarray]] = {}
        #: id(backing buffer) -> [buffer, bucket numel, refcount]
        self._lent: dict[int, list] = {}
        self.growths = 0  # lifetime buffer creations
        self.reuses = 0   # lifetime acquisitions served from the pool
        self.held_bytes = 0  # capacity currently owned (free + lent)
        self._pending_growth = 0  # grown bytes not yet flushed to a tracker

    @staticmethod
    def _bucket(numel: int) -> int:
        return 1 << max(0, numel - 1).bit_length() if numel > 1 else 1

    @staticmethod
    def _backing(array: np.ndarray):
        """Chase ``.base`` to the backing buffer a view ultimately borrows."""
        while isinstance(array, np.ndarray) and array.base is not None:
            array = array.base
        return array

    def acquire(self, shape) -> np.ndarray | None:
        """Lend a float64 buffer reshaped to ``shape`` (refcount zero)."""
        numel = 1
        for dim in shape:
            numel *= int(dim)
        bucket = self._bucket(numel)
        with self._lock:
            stack = self._free.get(bucket)
            if stack:
                flat = stack.pop()
                self.reuses += 1
            else:
                flat = np.empty(bucket, dtype=np.float64)
                self.growths += 1
                self.held_bytes += flat.nbytes
                self._pending_growth += flat.nbytes
            self._lent[id(flat)] = [flat, bucket, 0]
        return flat[:numel].reshape(shape)

    def owns(self, array) -> bool:
        """Whether ``array`` is (a view of) a currently-lent arena buffer."""
        if not isinstance(array, np.ndarray):
            return False
        return id(self._backing(array)) in self._lent

    def adopt(self, array) -> bool:
        """Take one reference on the arena buffer backing ``array``."""
        if not isinstance(array, np.ndarray):
            return False
        entry = self._lent.get(id(self._backing(array)))
        if entry is None:
            return False
        with self._lock:
            entry[2] += 1
        return True

    def release(self, array) -> bool:
        """Drop one reference; the buffer re-enters the pool at zero."""
        if not isinstance(array, np.ndarray):
            return False
        key = id(self._backing(array))
        with self._lock:
            entry = self._lent.get(key)
            if entry is None:
                return False
            entry[2] -= 1
            if entry[2] <= 0:
                del self._lent[key]
                self._free.setdefault(entry[1], []).append(entry[0])
        return True

    def reclaim_unadopted(self) -> int:
        """Return never-published buffers to the pool (end-of-run sweep).

        A compute may acquire an out-buffer and then fail (or discard it);
        such buffers sit lent with refcount zero and would otherwise leak
        from the pool.  Only call this at a serial point between runs.
        """
        reclaimed = 0
        with self._lock:
            for key in [k for k, entry in self._lent.items() if entry[2] == 0]:
                entry = self._lent.pop(key)
                self._free.setdefault(entry[1], []).append(entry[0])
                reclaimed += 1
        return reclaimed

    def take_growth_bytes(self) -> int:
        """Bytes grown since the last call (caller flushes to a tracker)."""
        with self._lock:
            grown = self._pending_growth
            self._pending_growth = 0
        return grown

    def drain(self) -> int:
        """Drop every pooled buffer; returns the bytes the caller should
        release from its tracker (pending growth was never tracked, so it
        is subtracted here)."""
        with self._lock:
            tracked = self.held_bytes - self._pending_growth
            self._free.clear()
            self._lent.clear()
            self.held_bytes = 0
            self._pending_growth = 0
        return tracked

    def stats(self) -> dict[str, int]:
        return {"growths": self.growths, "reuses": self.reuses,
                "held_bytes": self.held_bytes,
                "lent": len(self._lent),
                "free": sum(len(stack) for stack in self._free.values())}


#: Process-global tracker shared by both backends.
tracker = AllocationTracker()


@contextmanager
def scope(name: str):
    """Attribute allocations inside the block to ``name``."""
    tracker.push_scope(name)
    try:
        yield
    finally:
        tracker.pop_scope()
