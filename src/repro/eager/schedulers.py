"""Learning-rate schedulers for the eager backend's optimizers."""

from __future__ import annotations

import math

from .optim import Optimizer

__all__ = ["LRScheduler", "StepLR", "CosineAnnealingLR", "WarmupLR"]


class LRScheduler:
    """Base class: adjusts ``optimizer.lr`` on every :meth:`step`."""

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def get_lr(self) -> float:
        raise NotImplementedError

    def step(self) -> float:
        self.epoch += 1
        self.optimizer.lr = self.get_lr()
        return self.optimizer.lr


class StepLR(LRScheduler):
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int,
                 gamma: float = 0.1) -> None:
        super().__init__(optimizer)
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        self.step_size = step_size
        self.gamma = gamma

    def get_lr(self) -> float:
        return self.base_lr * self.gamma ** (self.epoch // self.step_size)


class CosineAnnealingLR(LRScheduler):
    """Cosine decay from the base LR to ``eta_min`` over ``t_max`` epochs."""

    def __init__(self, optimizer: Optimizer, t_max: int,
                 eta_min: float = 0.0) -> None:
        super().__init__(optimizer)
        if t_max <= 0:
            raise ValueError("t_max must be positive")
        self.t_max = t_max
        self.eta_min = eta_min

    def get_lr(self) -> float:
        progress = min(self.epoch, self.t_max) / self.t_max
        return self.eta_min + 0.5 * (self.base_lr - self.eta_min) * (
            1.0 + math.cos(math.pi * progress))


class WarmupLR(LRScheduler):
    """Linear warmup to the base LR over ``warmup_epochs``, then constant."""

    def __init__(self, optimizer: Optimizer, warmup_epochs: int) -> None:
        super().__init__(optimizer)
        if warmup_epochs <= 0:
            raise ValueError("warmup_epochs must be positive")
        self.warmup_epochs = warmup_epochs
        optimizer.lr = self.base_lr / warmup_epochs

    def get_lr(self) -> float:
        if self.epoch >= self.warmup_epochs:
            return self.base_lr
        return self.base_lr * (self.epoch + 1) / self.warmup_epochs
