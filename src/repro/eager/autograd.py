"""Reverse-mode automatic differentiation for the eager backend.

The engine mirrors the structure the Amanda paper relies on (Sec. 5.2/5.3):

* a forward operator *declares* one or more backward operators
  (:class:`~repro.eager.dispatch.BackwardDef`), which are only executed when
  ``backward()`` runs — and each backward execution flows through the
  instrumentable :func:`~repro.eager.dispatch.execute_backward_def`;
* leaf gradients are accumulated through an explicit ``accumulate_grad``
  operator — the gradient-accumulation ops that PyTorch module hooks miss
  entirely (Fig. 9) but Amanda exposes;
* the driver can subscribe to *backward completion*, which the framework uses
  as an iteration boundary for consistent operator IDs.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from . import dispatch
from .dispatch import BackwardDef, OpCall, OpCtx, OpDef, Tensor

__all__ = ["Node", "backward", "grad", "add_backward_completion_listener",
           "remove_backward_completion_listener", "ACCUMULATE_GRAD"]


class Node:
    """One autograd-graph node: a forward op execution awaiting backward."""

    __slots__ = ("opdef", "ctx", "inputs", "outputs", "op_call")

    def __init__(self, opdef: OpDef, ctx: OpCtx, inputs: tuple,
                 outputs: tuple, op_call: OpCall | None = None) -> None:
        self.opdef = opdef
        self.ctx = ctx
        self.inputs = inputs
        self.outputs = outputs
        self.op_call = op_call

    def parent_nodes(self):
        for tensor in self.inputs:
            if isinstance(tensor, Tensor) and tensor.node is not None:
                yield tensor.node

    def __repr__(self) -> str:
        return f"Node({self.opdef.name})"


# The explicit gradient-accumulation operator.  Its "forward" is an identity
# on the incoming gradient; the engine performs the actual ``.grad`` update
# with whatever (possibly instrumented) value the op returns.
def _accumulate_grad_forward(ctx: OpCtx, param: np.ndarray, grad: np.ndarray):
    return grad


ACCUMULATE_GRAD = dispatch.registry.register(
    OpDef("accumulate_grad", _accumulate_grad_forward, differentiable=False)
)


_completion_listeners: list[Callable[[], None]] = []


def add_backward_completion_listener(listener: Callable[[], None]) -> None:
    _completion_listeners.append(listener)


def remove_backward_completion_listener(listener: Callable[[], None]) -> None:
    if listener in _completion_listeners:
        _completion_listeners.remove(listener)


def _topological_order(root: Node) -> list[Node]:
    order: list[Node] = []
    visited: set[int] = set()
    stack: list[tuple[Node, bool]] = [(root, False)]
    while stack:
        node, processed = stack.pop()
        if processed:
            order.append(node)
            continue
        if id(node) in visited:
            continue
        visited.add(id(node))
        stack.append((node, True))
        for parent in node.parent_nodes():
            if id(parent) not in visited:
                stack.append((parent, False))
    return order


def backward(tensor: Tensor, grad: np.ndarray | None = None) -> None:
    """Back-propagate from ``tensor`` through the recorded graph."""
    if tensor.node is None:
        if tensor.requires_grad:
            seed = np.ones_like(tensor.data) if grad is None else np.asarray(grad)
            _accumulate(tensor, seed)
        return
    if grad is None:
        if tensor.size != 1:
            raise RuntimeError(
                "backward() without an explicit gradient requires a scalar output"
            )
        grad = np.ones_like(tensor.data)
    grad = np.asarray(grad, dtype=tensor.data.dtype)

    order = _topological_order(tensor.node)
    pending: dict[int, list[np.ndarray | None]] = {
        id(tensor.node): [None] * len(tensor.node.outputs)
    }
    out_index = tensor.node.outputs.index(tensor)
    pending[id(tensor.node)][out_index] = grad

    with dispatch.no_grad():
        for node in reversed(order):
            slot = pending.pop(id(node), None)
            if slot is None:
                continue
            grad_outputs = tuple(
                g if g is not None else np.zeros_like(out.data)
                for g, out in zip(slot, node.outputs)
            )
            # per-tensor gradient hooks on the node's outputs
            grad_outputs = tuple(
                out._run_grad_hooks(g) for out, g in zip(node.outputs, grad_outputs)
            )
            input_grads: dict[int, np.ndarray] = {}
            for bdef in node.opdef.backward_defs:
                partial = dispatch.execute_backward_def(node, bdef, grad_outputs)
                for index, value in partial.items():
                    if index in input_grads:
                        input_grads[index] = input_grads[index] + value
                    else:
                        input_grads[index] = value
            for index, value in input_grads.items():
                source = node.inputs[index]
                if not isinstance(source, Tensor):
                    continue
                value = source._run_grad_hooks(np.asarray(value))
                if source.node is not None:
                    slot = pending.setdefault(
                        id(source.node), [None] * len(source.node.outputs)
                    )
                    position = source.node.outputs.index(source)
                    if slot[position] is None:
                        slot[position] = value
                    else:
                        slot[position] = slot[position] + value
                elif source.requires_grad:
                    _accumulate(source, value)

    for listener in list(_completion_listeners):
        listener()


def _accumulate(param: Tensor, grad: np.ndarray) -> None:
    """Route a leaf gradient through the instrumentable accumulate_grad op."""
    result = dispatch.apply_op("accumulate_grad", param, Tensor(grad))
    value = result.data if isinstance(result, Tensor) else np.asarray(result)
    if param.grad is None:
        param.grad = value.copy()
    else:
        param.grad = param.grad + value


def grad(output: Tensor, inputs: list[Tensor],
         grad_output: np.ndarray | None = None) -> list[np.ndarray]:
    """Convenience: compute gradients of ``output`` w.r.t. ``inputs``."""
    saved = [(t, t.grad) for t in inputs]
    for t in inputs:
        t.grad = None
    backward(output, grad_output)
    grads = [t.grad if t.grad is not None else np.zeros_like(t.data) for t in inputs]
    for t, previous in saved:
        t.grad = previous
    return grads
