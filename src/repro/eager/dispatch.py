"""Operator registry and dispatch pipeline of the eager backend.

This module is the seam Amanda's eager driver instruments:

* every operator is an :class:`OpDef` registered in the global
  :class:`OpRegistry`; registration is observable (*snooping*, Sec. 5.3), so a
  driver can patch operators that are registered after it attaches;
* every forward execution flows through :func:`apply_op`, which consults a
  per-op ``call_override`` (the monkey-patch installed by the driver) before
  falling back to the vanilla pipeline;
* every backward execution flows through :func:`execute_backward_def`, with
  the same override mechanism keyed by the *forward* op, so backward ops are
  mapped to the forward op that declared them (Fig. 5).

An executed operator (forward or backward) is described by an :class:`OpCall`
record — the raw material the driver turns into an ``OpContext``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from ..kernels.runtime import runtime as _kernel_runtime
from .tensor import Tensor

__all__ = [
    "OpCtx", "OpDef", "BackwardDef", "OpCall", "OpRegistry", "registry",
    "apply_op", "vanilla_apply", "execute_backward_def", "grad_enabled",
    "no_grad", "enable_grad", "unbroadcast", "current_module",
    "push_module", "pop_module", "set_capture_tracer", "get_capture_tracer",
]


# ---------------------------------------------------------------------------
# grad mode
# ---------------------------------------------------------------------------

_grad_enabled = True


def grad_enabled() -> bool:
    return _grad_enabled


class _GradMode:
    def __init__(self, enabled: bool) -> None:
        self._enabled = enabled
        self._previous = True

    def __enter__(self):
        global _grad_enabled
        self._previous = _grad_enabled
        _grad_enabled = self._enabled
        return self

    def __exit__(self, *exc):
        global _grad_enabled
        _grad_enabled = self._previous
        return False


def no_grad() -> _GradMode:
    """Disable autograd tracking inside the block."""
    return _GradMode(False)


def enable_grad() -> _GradMode:
    return _GradMode(True)


# ---------------------------------------------------------------------------
# module ownership stack (used by Module.__call__; lets OpCall know which
# module, if any, produced it — the information module hooks are limited to)
# ---------------------------------------------------------------------------

_module_stack: list[Any] = []

#: listeners fired when a *top-level* module call begins; Amanda's eager
#: driver uses this as an iteration boundary for stable op IDs
_top_level_entry_listeners: list[Callable[[], None]] = []


def add_top_level_entry_listener(listener: Callable[[], None]) -> None:
    _top_level_entry_listeners.append(listener)


def remove_top_level_entry_listener(listener: Callable[[], None]) -> None:
    if listener in _top_level_entry_listeners:
        _top_level_entry_listeners.remove(listener)


def push_module(module: Any) -> None:
    if not _module_stack:
        for listener in list(_top_level_entry_listeners):
            listener(module)
    _module_stack.append(module)


def pop_module() -> None:
    if _module_stack:
        _module_stack.pop()


def current_module() -> Any | None:
    return _module_stack[-1] if _module_stack else None


# ---------------------------------------------------------------------------
# op definitions
# ---------------------------------------------------------------------------

class OpCtx(dict):
    """Scratch space an op's forward uses to stash values for its backward."""

    def save(self, **values: Any) -> None:
        self.update(values)


@dataclass
class BackwardDef:
    """One backward operator declared by a forward operator.

    ``fn(ctx, grad_outputs)`` returns ``{input_index: grad_array}`` for the
    subset of the forward inputs this backward op differentiates.
    """

    name: str
    fn: Callable[[OpCtx, tuple[np.ndarray, ...]], dict[int, np.ndarray]]


class OpDef:
    """A registered operator: a forward function plus its backward ops."""

    def __init__(self, name: str,
                 forward: Callable[..., Any],
                 backward_defs: list[BackwardDef] | None = None,
                 differentiable: bool = True,
                 num_outputs: int = 1) -> None:
        self.name = name
        self.forward = forward
        self.backward_defs = backward_defs or []
        self.differentiable = differentiable and bool(self.backward_defs)
        self.num_outputs = num_outputs
        #: driver-installed replacement for the forward call pipeline
        self.call_override: Callable | None = None
        #: driver-installed replacement for the backward call pipeline
        self.backward_call_override: Callable | None = None


@dataclass
class OpCall:
    """Record of one operator execution (forward or backward)."""

    opdef: OpDef
    inputs: tuple
    attrs: dict
    seq: int
    outputs: tuple = ()
    is_backward: bool = False
    backward_name: str | None = None
    forward_call: "OpCall | None" = None
    module: Any = None
    node: Any = None  # autograd node (set on forward calls that track grad)
    metadata: dict = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.backward_name if self.is_backward else self.opdef.name


class OpRegistry:
    """Global operator table with observable registration."""

    def __init__(self) -> None:
        self._ops: dict[str, OpDef] = {}
        self._listeners: list[Callable[[OpDef], None]] = []

    def register(self, opdef: OpDef) -> OpDef:
        if opdef.name in self._ops:
            raise ValueError(f"operator {opdef.name!r} already registered")
        self._ops[opdef.name] = opdef
        for listener in list(self._listeners):
            listener(opdef)
        return opdef

    def get(self, name: str) -> OpDef:
        try:
            return self._ops[name]
        except KeyError:
            raise KeyError(f"unknown operator {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._ops

    def names(self) -> list[str]:
        return sorted(self._ops)

    def all_ops(self) -> list[OpDef]:
        return list(self._ops.values())

    def add_registration_listener(self, listener: Callable[[OpDef], None],
                                  replay: bool = True) -> None:
        """Snoop op registration; with ``replay`` the listener also sees every
        already-registered op (so attaching a driver late still patches all)."""
        self._listeners.append(listener)
        if replay:
            for opdef in list(self._ops.values()):
                listener(opdef)

    def remove_registration_listener(self, listener) -> None:
        if listener in self._listeners:
            self._listeners.remove(listener)


registry = OpRegistry()

_seq_counter = itertools.count()


def next_seq() -> int:
    return next(_seq_counter)


# ---------------------------------------------------------------------------
# symbolic-capture tracer seam (repro.capture)
# ---------------------------------------------------------------------------

#: while non-None, every vanilla forward execution is reported to the tracer
#: *after* it ran eagerly (concrete tracing: real values flow, the tracer
#: only records the op stream and array provenance)
_capture_tracer: Any | None = None


def set_capture_tracer(tracer: Any | None) -> None:
    """Install (or clear, with ``None``) the active capture tracer."""
    global _capture_tracer
    _capture_tracer = tracer


def get_capture_tracer() -> Any | None:
    return _capture_tracer


# ---------------------------------------------------------------------------
# forward execution pipeline
# ---------------------------------------------------------------------------

def apply_op(name: str | OpDef, *inputs: Any, **attrs: Any):
    """Execute operator ``name`` on ``inputs`` — the backend's dispatch entry.

    Accepts either an operator name or an already-resolved :class:`OpDef`
    (layers/functional memoize the lookup at construction; overrides are
    patched onto the OpDef in place, so a memoized handle stays current).
    """
    opdef = name if isinstance(name, OpDef) else registry.get(name)
    if opdef.call_override is not None:
        return opdef.call_override(opdef, inputs, attrs)
    return vanilla_apply(opdef, inputs, attrs)


def vanilla_apply(opdef: OpDef, inputs: tuple, attrs: dict,
                  forward_override: Callable | None = None,
                  op_call: OpCall | None = None,
                  autograd_inputs: tuple | None = None):
    """The un-instrumented execution pipeline.

    Drivers that override :attr:`OpDef.call_override` call back into this with
    possibly modified ``inputs`` and an optional ``forward_override`` (the
    ``replace_op`` semantics).  When a driver substitutes input *values*
    (``insert_before_op`` routines), it passes the original tensors as
    ``autograd_inputs`` so gradients still flow to the original producers —
    the AD-isolation behaviour of Sec. 5.2.
    """
    arrays = tuple(t.data if isinstance(t, Tensor) else t for t in inputs)
    # a forward_override never receives the ctx, so skip the allocation on
    # that path; the autograd node below creates one lazily if needed
    ctx = OpCtx() if forward_override is None else None
    forward = forward_override or opdef.forward
    tag_kernels = _kernel_runtime.has_subscribers
    if tag_kernels:
        _kernel_runtime.push_tag(f"{opdef.name}|{op_call.seq if op_call else ''}")
    try:
        if forward_override is not None:
            raw = forward(*arrays, **attrs)
        else:
            raw = forward(ctx, *arrays, **attrs)
    finally:
        if tag_kernels:
            _kernel_runtime.pop_tag()
    multi = isinstance(raw, tuple)
    raw_outputs = raw if multi else (raw,)
    outputs = tuple(Tensor(np.asarray(o)) for o in raw_outputs)

    grad_sources = autograd_inputs if autograd_inputs is not None else inputs
    needs_grad = (
        _grad_enabled
        and opdef.differentiable
        and any(isinstance(t, Tensor) and t.requires_grad for t in grad_sources)
    )
    if needs_grad:
        from . import autograd
        if ctx is None:
            ctx = OpCtx()
        node = autograd.Node(opdef, ctx, grad_sources, outputs, op_call=op_call)
        for out in outputs:
            out.requires_grad = True
            out.node = node
        if op_call is not None:
            op_call.node = node
    if op_call is not None:
        op_call.outputs = outputs
    if _capture_tracer is not None and forward_override is None:
        _capture_tracer.record_apply(opdef, inputs, attrs, outputs)
    return outputs if multi else outputs[0]


# ---------------------------------------------------------------------------
# backward execution pipeline
# ---------------------------------------------------------------------------

def execute_backward_def(node, bdef: BackwardDef,
                         grad_outputs: tuple[np.ndarray, ...]) -> dict[int, np.ndarray]:
    """Run one backward op of ``node``, honouring any driver override."""
    opdef = node.opdef
    if opdef.backward_call_override is not None:
        return opdef.backward_call_override(node, bdef, grad_outputs)
    return bdef.fn(node.ctx, grad_outputs)


# ---------------------------------------------------------------------------
# helpers shared by op implementations
# ---------------------------------------------------------------------------

def unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` after numpy broadcasting."""
    if grad.shape == shape:
        return grad
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    axes = tuple(i for i, (g, s) in enumerate(zip(grad.shape, shape)) if s == 1 and g != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)
