"""Functional operator API of the eager backend (the ``F`` namespace).

These free functions are the analogue of ``torch.nn.functional``: they invoke
operators directly, *outside* any module.  Models that use them (residual
adds, functional activations, attention math) are exactly the models on which
module-hook-based instrumentation loses coverage (Sec. 6.4).
"""

from __future__ import annotations

from .dispatch import apply_op
from .tensor import Tensor, as_tensor

__all__ = [
    "relu", "sigmoid", "tanh", "gelu", "softmax", "log_softmax", "dropout",
    "linear", "conv2d", "bias_add", "max_pool2d", "avg_pool2d", "batch_norm",
    "layer_norm", "embedding", "matmul", "reshape", "transpose", "concat",
    "cross_entropy", "mse_loss", "flatten", "clip", "abs", "where", "stack",
    "split", "pad",
]


def relu(x: Tensor) -> Tensor:
    return apply_op("relu", x)


def sigmoid(x: Tensor) -> Tensor:
    return apply_op("sigmoid", x)


def tanh(x: Tensor) -> Tensor:
    return apply_op("tanh", x)


def gelu(x: Tensor) -> Tensor:
    return apply_op("gelu", x)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    return apply_op("softmax", x, axis=axis)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    return apply_op("log_softmax", x, axis=axis)


def dropout(x: Tensor, p: float = 0.5, training: bool = True,
            seed: int | None = None) -> Tensor:
    return apply_op("dropout", x, p=p, training=training, seed=seed)


def linear(x: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    if bias is None:
        return apply_op("linear", x, weight)
    return apply_op("linear", x, weight, bias)


def conv2d(x: Tensor, weight: Tensor, bias: Tensor | None = None,
           stride=(1, 1), padding=(0, 0), algorithm: str = "auto") -> Tensor:
    out = apply_op("conv2d", x, weight, stride=stride, padding=padding,
                   algorithm=algorithm)
    if bias is not None:
        out = apply_op("bias_add", out, bias)
    return out


def bias_add(x: Tensor, bias: Tensor) -> Tensor:
    return apply_op("bias_add", x, bias)


def max_pool2d(x: Tensor, kernel=(2, 2), stride=None, padding=(0, 0)) -> Tensor:
    return apply_op("max_pool2d", x, kernel=kernel, stride=stride, padding=padding)


def avg_pool2d(x: Tensor, kernel=(2, 2), stride=None, padding=(0, 0)) -> Tensor:
    return apply_op("avg_pool2d", x, kernel=kernel, stride=stride, padding=padding)


def batch_norm(x, gamma, beta, running_mean, running_var, training=True,
               momentum=0.1, eps=1e-5) -> Tensor:
    return apply_op("batch_norm", x, gamma, beta, running_mean, running_var,
                    training=training, momentum=momentum, eps=eps)


def layer_norm(x, gamma, beta, eps=1e-5) -> Tensor:
    return apply_op("layer_norm", x, gamma, beta, eps=eps)


def embedding(indices, weight) -> Tensor:
    return apply_op("embedding", as_tensor(indices), weight)


def matmul(a: Tensor, b: Tensor) -> Tensor:
    return apply_op("matmul", a, b)


def reshape(x: Tensor, shape) -> Tensor:
    return apply_op("reshape", x, shape=tuple(shape))


def transpose(x: Tensor, axes=None) -> Tensor:
    return apply_op("transpose", x, axes=axes)


def concat(tensors, axis: int = 0) -> Tensor:
    return apply_op("concat", *tensors, axis=axis)


def flatten(x: Tensor, start_dim: int = 1) -> Tensor:
    shape = x.shape[:start_dim] + (-1,)
    return apply_op("reshape", x, shape=shape)


def cross_entropy(logits: Tensor, targets) -> Tensor:
    return apply_op("cross_entropy", logits, as_tensor(targets))


def mse_loss(pred: Tensor, target) -> Tensor:
    return apply_op("mse_loss", pred, as_tensor(target))


def clip(x: Tensor, minimum=None, maximum=None) -> Tensor:
    return apply_op("clip", x, minimum=minimum, maximum=maximum)


def abs(x: Tensor) -> Tensor:  # noqa: A001 (mirrors torch.abs)
    return apply_op("abs", x)


def where(condition, a: Tensor, b: Tensor) -> Tensor:
    return apply_op("where", as_tensor(condition), as_tensor(a), as_tensor(b))


def stack(tensors, axis: int = 0) -> Tensor:
    return apply_op("stack", *tensors, axis=axis)


def split(x: Tensor, sections: int = 2, axis: int = 0):
    return apply_op("split", x, sections=sections, axis=axis)


def pad(x: Tensor, pad_width) -> Tensor:
    return apply_op("pad", x, pad_width=tuple(map(tuple, pad_width)))
