"""Functional operator API of the eager backend (the ``F`` namespace).

These free functions are the analogue of ``torch.nn.functional``: they invoke
operators directly, *outside* any module.  Models that use them (residual
adds, functional activations, attention math) are exactly the models on which
module-hook-based instrumentation loses coverage (Sec. 6.4).
"""

from __future__ import annotations

from .dispatch import OpDef, apply_op, registry
from .tensor import Tensor, as_tensor

__all__ = [
    "resolve", "relu", "sigmoid", "tanh", "gelu", "softmax", "log_softmax", "dropout",
    "linear", "conv2d", "bias_add", "max_pool2d", "avg_pool2d", "batch_norm",
    "layer_norm", "embedding", "matmul", "reshape", "transpose", "concat",
    "cross_entropy", "mse_loss", "flatten", "clip", "abs", "where", "stack",
    "split", "pad",
]


_OPDEFS: dict[str, OpDef] = {}


def resolve(name: str) -> OpDef:
    """Memoized registry lookup for the hot dispatch path.

    Driver overrides are patched onto the ``OpDef`` in place, so a cached
    handle observes instrumentation installed at any later time; lookups are
    lazy so importing this module never races operator registration.
    """
    opdef = _OPDEFS.get(name)
    if opdef is None:
        opdef = _OPDEFS[name] = registry.get(name)
    return opdef


def relu(x: Tensor) -> Tensor:
    return apply_op(resolve("relu"), x)


def sigmoid(x: Tensor) -> Tensor:
    return apply_op(resolve("sigmoid"), x)


def tanh(x: Tensor) -> Tensor:
    return apply_op(resolve("tanh"), x)


def gelu(x: Tensor) -> Tensor:
    return apply_op(resolve("gelu"), x)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    return apply_op(resolve("softmax"), x, axis=axis)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    return apply_op(resolve("log_softmax"), x, axis=axis)


def dropout(x: Tensor, p: float = 0.5, training: bool = True,
            seed: int | None = None) -> Tensor:
    return apply_op(resolve("dropout"), x, p=p, training=training, seed=seed)


def linear(x: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    if bias is None:
        return apply_op(resolve("linear"), x, weight)
    return apply_op(resolve("linear"), x, weight, bias)


def conv2d(x: Tensor, weight: Tensor, bias: Tensor | None = None,
           stride=(1, 1), padding=(0, 0), algorithm: str = "auto") -> Tensor:
    out = apply_op(resolve("conv2d"), x, weight, stride=stride, padding=padding,
                   algorithm=algorithm)
    if bias is not None:
        out = apply_op(resolve("bias_add"), out, bias)
    return out


def bias_add(x: Tensor, bias: Tensor) -> Tensor:
    return apply_op(resolve("bias_add"), x, bias)


def max_pool2d(x: Tensor, kernel=(2, 2), stride=None, padding=(0, 0)) -> Tensor:
    return apply_op(resolve("max_pool2d"), x, kernel=kernel, stride=stride, padding=padding)


def avg_pool2d(x: Tensor, kernel=(2, 2), stride=None, padding=(0, 0)) -> Tensor:
    return apply_op(resolve("avg_pool2d"), x, kernel=kernel, stride=stride, padding=padding)


def batch_norm(x, gamma, beta, running_mean, running_var, training=True,
               momentum=0.1, eps=1e-5) -> Tensor:
    return apply_op(resolve("batch_norm"), x, gamma, beta, running_mean, running_var,
                    training=training, momentum=momentum, eps=eps)


def layer_norm(x, gamma, beta, eps=1e-5) -> Tensor:
    return apply_op(resolve("layer_norm"), x, gamma, beta, eps=eps)


def embedding(indices, weight) -> Tensor:
    return apply_op(resolve("embedding"), as_tensor(indices), weight)


def matmul(a: Tensor, b: Tensor) -> Tensor:
    return apply_op(resolve("matmul"), a, b)


def reshape(x: Tensor, shape) -> Tensor:
    return apply_op(resolve("reshape"), x, shape=tuple(shape))


def transpose(x: Tensor, axes=None) -> Tensor:
    return apply_op(resolve("transpose"), x, axes=axes)


def concat(tensors, axis: int = 0) -> Tensor:
    return apply_op(resolve("concat"), *tensors, axis=axis)


def flatten(x: Tensor, start_dim: int = 1) -> Tensor:
    shape = x.shape[:start_dim] + (-1,)
    return apply_op(resolve("reshape"), x, shape=shape)


def cross_entropy(logits: Tensor, targets) -> Tensor:
    return apply_op(resolve("cross_entropy"), logits, as_tensor(targets))


def mse_loss(pred: Tensor, target) -> Tensor:
    return apply_op(resolve("mse_loss"), pred, as_tensor(target))


def clip(x: Tensor, minimum=None, maximum=None) -> Tensor:
    return apply_op(resolve("clip"), x, minimum=minimum, maximum=maximum)


def abs(x: Tensor) -> Tensor:  # noqa: A001 (mirrors torch.abs)
    return apply_op(resolve("abs"), x)


def where(condition, a: Tensor, b: Tensor) -> Tensor:
    return apply_op(resolve("where"), as_tensor(condition), as_tensor(a), as_tensor(b))


def stack(tensors, axis: int = 0) -> Tensor:
    return apply_op(resolve("stack"), *tensors, axis=axis)


def split(x: Tensor, sections: int = 2, axis: int = 0):
    return apply_op(resolve("split"), x, sections=sections, axis=axis)


def pad(x: Tensor, pad_width) -> Tensor:
    return apply_op(resolve("pad"), x, pad_width=tuple(map(tuple, pad_width)))
