"""Operator definitions of the eager backend.

Each operator registers a numpy forward plus one or more named backward
operators.  Heavy numerics are delegated to :mod:`repro.kernels.nn`, so both
execution backends share kernels and the simulated-CUPTI profiler sees the
same kernel stream either way.

Operators that matter for the paper's evaluation are modelled faithfully:

* ``conv2d`` declares *three* backward ops (data / filter gradients are
  separate kernels, as in cuDNN), so one forward op launches several backward
  ops — the multiplicity module hooks cannot see (Fig. 9);
* ``bias_add`` is a separate op (as in TensorFlow), inflating realistic op
  counts relative to module counts;
* elementwise ops (``add`` used by residual connections, ``mul``, ...) are
  plain functional ops with no owning module.
"""

from __future__ import annotations

import numpy as np

from ..kernels import nn as K
from ..kernels.runtime import launch
from .dispatch import BackwardDef, OpDef, registry, unbroadcast

__all__ = ["register_default_ops"]


def _register(name, forward, backward_defs=None, **kwargs):
    return registry.register(OpDef(name, forward, backward_defs, **kwargs))


# ---------------------------------------------------------------------------
# elementwise binary ops (with broadcasting-aware backward)
# ---------------------------------------------------------------------------

def _add_fwd(ctx, a, b):
    ctx.save(a_shape=a.shape, b_shape=b.shape)
    return launch("ewise_add", np.add, a, b)


def _add_bwd(ctx, grads):
    g = grads[0]
    return {0: unbroadcast(g, ctx["a_shape"]), 1: unbroadcast(g, ctx["b_shape"])}


def _sub_fwd(ctx, a, b):
    ctx.save(a_shape=a.shape, b_shape=b.shape)
    return launch("ewise_sub", np.subtract, a, b)


def _sub_bwd(ctx, grads):
    g = grads[0]
    return {0: unbroadcast(g, ctx["a_shape"]), 1: unbroadcast(-g, ctx["b_shape"])}


def _mul_fwd(ctx, a, b):
    ctx.save(a=a, b=b)
    return launch("ewise_mul", np.multiply, a, b)


def _mul_bwd(ctx, grads):
    g = grads[0]
    return {
        0: unbroadcast(g * ctx["b"], ctx["a"].shape),
        1: unbroadcast(g * ctx["a"], ctx["b"].shape),
    }


def _div_fwd(ctx, a, b):
    ctx.save(a=a, b=b)
    return launch("ewise_div", np.divide, a, b)


def _div_bwd(ctx, grads):
    g = grads[0]
    a, b = ctx["a"], ctx["b"]
    return {
        0: unbroadcast(g / b, a.shape),
        1: unbroadcast(-g * a / (b * b), b.shape),
    }


def _neg_fwd(ctx, a):
    return launch("ewise_neg", np.negative, a)


def _pow_fwd(ctx, a, exponent=2.0):
    ctx.save(a=a, exponent=exponent)
    return launch("ewise_pow", np.power, a, exponent)


def _pow_bwd(ctx, grads):
    a, p = ctx["a"], ctx["exponent"]
    return {0: grads[0] * p * np.power(a, p - 1)}


def _exp_fwd(ctx, a):
    out = launch("ewise_exp", np.exp, a)
    ctx.save(out=out)
    return out


def _log_fwd(ctx, a):
    ctx.save(a=a)
    return launch("ewise_log", np.log, a)


def _sqrt_fwd(ctx, a):
    out = launch("ewise_sqrt", np.sqrt, a)
    ctx.save(out=out)
    return out


# ---------------------------------------------------------------------------
# matmul / linear
# ---------------------------------------------------------------------------

def _matmul_fwd(ctx, a, b):
    ctx.save(a=a, b=b)
    return K.matmul(a, b)


def _matmul_bwd(ctx, grads):
    g = grads[0]
    a, b = ctx["a"], ctx["b"]
    ga = K.matmul(g, np.swapaxes(b, -1, -2))
    gb = K.matmul(np.swapaxes(a, -1, -2), g)
    return {0: unbroadcast(ga, a.shape), 1: unbroadcast(gb, b.shape)}


def _linear_fwd(ctx, x, weight, bias=None):
    ctx.save(x=x, weight=weight, has_bias=bias is not None)
    out = K.matmul(x, weight.T)
    if bias is not None:
        out = launch("bias_add", np.add, out, bias)
    return out


def _linear_bwd_input(ctx, grads):
    return {0: K.matmul(grads[0], ctx["weight"])}


def _linear_bwd_weight(ctx, grads):
    g = grads[0].reshape(-1, grads[0].shape[-1])
    x = ctx["x"].reshape(-1, ctx["x"].shape[-1])
    return {1: K.matmul(g.T, x)}


def _linear_bwd_bias(ctx, grads):
    if not ctx["has_bias"]:
        return {}
    g = grads[0]
    return {2: launch("reduce_sum", g.reshape(-1, g.shape[-1]).sum, 0)}


# ---------------------------------------------------------------------------
# convolution family
# ---------------------------------------------------------------------------

def _conv2d_fwd(ctx, x, weight, stride=(1, 1), padding=(0, 0), algorithm="auto"):
    stride, padding = tuple(stride), tuple(padding)
    ctx.save(x=x, weight=weight, stride=stride, padding=padding)
    return K.conv2d_forward(x, weight, stride, padding, algorithm)


def _conv2d_bwd_input(ctx, grads):
    return {0: K.conv2d_backward_input(grads[0], ctx["weight"], ctx["x"].shape,
                                       ctx["stride"], ctx["padding"])}


def _conv2d_bwd_weight(ctx, grads):
    return {1: K.conv2d_backward_weight(grads[0], ctx["x"], ctx["weight"].shape,
                                        ctx["stride"], ctx["padding"])}


def _bias_add_fwd(ctx, x, bias):
    ctx.save(ndim=x.ndim, bias_shape=bias.shape)
    if x.ndim == 4:  # NCHW channel bias
        return launch("bias_add", np.add, x, bias.reshape(1, -1, 1, 1))
    return launch("bias_add", np.add, x, bias)


def _bias_add_bwd(ctx, grads):
    g = grads[0]
    if ctx["ndim"] == 4:
        gb = g.sum(axis=(0, 2, 3))
    else:
        gb = g.reshape(-1, g.shape[-1]).sum(axis=0)
    return {0: g, 1: gb.reshape(ctx["bias_shape"])}


def _maxpool2d_fwd(ctx, x, kernel=(2, 2), stride=None, padding=(0, 0)):
    kernel = tuple(kernel)
    stride = tuple(stride) if stride else kernel
    padding = tuple(padding)
    out = K.maxpool2d_forward(x, kernel, stride, padding)
    ctx.save(x=x, out=out, kernel=kernel, stride=stride, padding=padding)
    return out


def _maxpool2d_bwd(ctx, grads):
    return {0: K.maxpool2d_backward(grads[0], ctx["x"], ctx["out"],
                                    ctx["kernel"], ctx["stride"], ctx["padding"])}


def _avgpool2d_fwd(ctx, x, kernel=(2, 2), stride=None, padding=(0, 0)):
    kernel = tuple(kernel)
    stride = tuple(stride) if stride else kernel
    padding = tuple(padding)
    ctx.save(x_shape=x.shape, kernel=kernel, stride=stride, padding=padding)
    return K.avgpool2d_forward(x, kernel, stride, padding)


def _avgpool2d_bwd(ctx, grads):
    return {0: K.avgpool2d_backward(grads[0], ctx["x_shape"], ctx["kernel"],
                                    ctx["stride"], ctx["padding"])}


# ---------------------------------------------------------------------------
# normalization
# ---------------------------------------------------------------------------

def _batch_norm_fwd(ctx, x, gamma, beta, running_mean, running_var,
                    training=True, momentum=0.1, eps=1e-5):
    out, cache, new_rm, new_rv = K.batch_norm_forward(
        x, gamma, beta, running_mean, running_var, training, momentum, eps)
    # running statistics are updated in place, as framework batch norms do
    np.copyto(running_mean, new_rm)
    np.copyto(running_var, new_rv)
    ctx.save(cache=cache, training=training)
    return out


def _batch_norm_bwd(ctx, grads):
    dx, dgamma, dbeta = K.batch_norm_backward(grads[0], ctx["cache"], ctx["training"])
    return {0: dx, 1: dgamma, 2: dbeta}


def _layer_norm_fwd(ctx, x, gamma, beta, eps=1e-5):
    out, cache = K.layer_norm_forward(x, gamma, beta, eps)
    ctx.save(cache=cache)
    return out


def _layer_norm_bwd(ctx, grads):
    dx, dgamma, dbeta = K.layer_norm_backward(grads[0], ctx["cache"])
    return {0: dx, 1: dgamma, 2: dbeta}


# ---------------------------------------------------------------------------
# activations
# ---------------------------------------------------------------------------

def _relu_fwd(ctx, x):
    ctx.save(x=x)
    return K.relu(x)


def _relu_bwd(ctx, grads):
    return {0: K.relu_backward(grads[0], ctx["x"])}


def _sigmoid_fwd(ctx, x):
    out = K.sigmoid(x)
    ctx.save(out=out)
    return out


def _tanh_fwd(ctx, x):
    out = launch("tanh", np.tanh, x)
    ctx.save(out=out)
    return out


def _gelu_fwd(ctx, x):
    ctx.save(x=x)
    return K.gelu(x)


def _softmax_fwd(ctx, x, axis=-1):
    out = K.softmax(x, axis)
    ctx.save(out=out, axis=axis)
    return out


def _softmax_bwd(ctx, grads):
    return {0: K.softmax_backward(grads[0], ctx["out"], ctx["axis"])}


def _log_softmax_fwd(ctx, x, axis=-1):
    out = K.log_softmax(x, axis)
    ctx.save(out=out, axis=axis)
    return out


def _log_softmax_bwd(ctx, grads):
    return {0: K.log_softmax_backward(grads[0], ctx["out"], ctx["axis"])}


def _dropout_fwd(ctx, x, p=0.5, training=True, seed=None):
    if not training or p <= 0.0:
        ctx.save(mask=None)
        return x.copy()
    rng = np.random.default_rng(seed)
    mask = (rng.random(x.shape) >= p) / (1.0 - p)
    ctx.save(mask=mask)
    return launch("dropout", np.multiply, x, mask)


def _dropout_bwd(ctx, grads):
    mask = ctx["mask"]
    return {0: grads[0] if mask is None else grads[0] * mask}


# ---------------------------------------------------------------------------
# shape ops
# ---------------------------------------------------------------------------

def _reshape_fwd(ctx, x, shape=None):
    ctx.save(x_shape=x.shape)
    return launch("reshape", np.reshape, x, shape)


def _reshape_bwd(ctx, grads):
    return {0: grads[0].reshape(ctx["x_shape"])}


def _transpose_fwd(ctx, x, axes=None):
    ctx.save(axes=axes)
    return launch("transpose", np.transpose, x, axes)


def _transpose_bwd(ctx, grads):
    axes = ctx["axes"]
    if axes is None:
        return {0: np.transpose(grads[0])}
    inverse = np.argsort(axes)
    return {0: np.transpose(grads[0], inverse)}


def _slice_fwd(ctx, x, index=None):
    ctx.save(x_shape=x.shape, index=index)
    return launch("slice", lambda a: np.ascontiguousarray(a[index]), x)


def _slice_bwd(ctx, grads):
    out = np.zeros(ctx["x_shape"], dtype=grads[0].dtype)
    out[ctx["index"]] = grads[0]
    return {0: out}


def _concat_fwd(ctx, *arrays, axis=0):
    ctx.save(sizes=[a.shape[axis] for a in arrays], axis=axis)
    return launch("concat", np.concatenate, arrays, axis=axis)


def _concat_bwd(ctx, grads):
    axis, sizes = ctx["axis"], ctx["sizes"]
    splits = np.cumsum(sizes)[:-1]
    pieces = np.split(grads[0], splits, axis=axis)
    return dict(enumerate(pieces))


def _abs_fwd(ctx, a):
    ctx.save(a=a)
    return launch("ewise_abs", np.abs, a)


def _abs_bwd(ctx, grads):
    return {0: grads[0] * np.sign(ctx["a"])}


def _clip_fwd(ctx, a, minimum=None, maximum=None):
    ctx.save(a=a, minimum=minimum, maximum=maximum)
    return launch("ewise_clip", np.clip, a, minimum, maximum)


def _clip_bwd(ctx, grads):
    a, lo, hi = ctx["a"], ctx["minimum"], ctx["maximum"]
    inside = np.ones_like(a, dtype=bool)
    if lo is not None:
        inside &= a >= lo
    if hi is not None:
        inside &= a <= hi
    return {0: grads[0] * inside}


def _where_fwd(ctx, condition, a, b):
    ctx.save(condition=condition.astype(bool))
    return launch("ewise_where", np.where, condition.astype(bool), a, b)


def _where_bwd(ctx, grads):
    condition = ctx["condition"]
    g = grads[0]
    return {1: unbroadcast(g * condition, g.shape),
            2: unbroadcast(g * ~condition, g.shape)}


def _stack_fwd(ctx, *arrays, axis=0):
    ctx.save(axis=axis, count=len(arrays))
    return launch("stack", np.stack, arrays, axis=axis)


def _stack_bwd(ctx, grads):
    pieces = np.split(grads[0], ctx["count"], axis=ctx["axis"])
    return {i: np.squeeze(p, axis=ctx["axis"]) for i, p in enumerate(pieces)}


def _split_fwd(ctx, a, sections=2, axis=0):
    ctx.save(axis=axis)
    return tuple(launch("split", np.split, a, sections, axis=axis))


def _split_bwd(ctx, grads):
    return {0: np.concatenate(grads, axis=ctx["axis"])}


def _pad_fwd(ctx, a, pad_width=None):
    ctx.save(pad_width=tuple(map(tuple, pad_width)))
    return launch("pad", np.pad, a, pad_width)


def _pad_bwd(ctx, grads):
    slices = tuple(slice(before, grads[0].shape[i] - after)
                   for i, (before, after) in enumerate(ctx["pad_width"]))
    return {0: grads[0][slices]}


# ---------------------------------------------------------------------------
# reductions
# ---------------------------------------------------------------------------

def _sum_fwd(ctx, x, axis=None, keepdims=False):
    ctx.save(x_shape=x.shape, axis=axis, keepdims=keepdims)
    return launch("reduce_sum", np.sum, x, axis=axis, keepdims=keepdims)


def _expand_reduce_grad(ctx, g):
    axis, keepdims, shape = ctx["axis"], ctx["keepdims"], ctx["x_shape"]
    if axis is not None and not keepdims:
        axes = axis if isinstance(axis, tuple) else (axis,)
        for a in sorted(a % len(shape) for a in axes):
            g = np.expand_dims(g, a)
    return np.broadcast_to(g, shape).copy()


def _sum_bwd(ctx, grads):
    return {0: _expand_reduce_grad(ctx, np.asarray(grads[0]))}


def _mean_fwd(ctx, x, axis=None, keepdims=False):
    ctx.save(x_shape=x.shape, axis=axis, keepdims=keepdims, size=x.size)
    return launch("reduce_mean", np.mean, x, axis=axis, keepdims=keepdims)


def _mean_bwd(ctx, grads):
    shape = ctx["x_shape"]
    axis = ctx["axis"]
    if axis is None:
        count = ctx["size"]
    else:
        axes = axis if isinstance(axis, tuple) else (axis,)
        count = int(np.prod([shape[a] for a in axes]))
    return {0: _expand_reduce_grad(ctx, np.asarray(grads[0])) / count}


# ---------------------------------------------------------------------------
# embedding / losses
# ---------------------------------------------------------------------------

def _embedding_fwd(ctx, indices, weight):
    idx = indices.astype(np.int64)
    ctx.save(indices=idx, vocab=weight.shape[0])
    return K.embedding_forward(idx, weight)


def _embedding_bwd(ctx, grads):
    return {1: K.embedding_backward(grads[0], ctx["indices"], ctx["vocab"])}


def _cross_entropy_fwd(ctx, logits, targets):
    tgt = targets.astype(np.int64)
    log_probs = K.log_softmax(logits, axis=-1)
    flat = log_probs.reshape(-1, log_probs.shape[-1])
    picked = flat[np.arange(flat.shape[0]), tgt.reshape(-1)]
    ctx.save(log_probs=log_probs, targets=tgt, count=flat.shape[0])
    return launch("nll_loss", lambda p: -p.mean(), picked)


def _cross_entropy_bwd(ctx, grads):
    log_probs, tgt, count = ctx["log_probs"], ctx["targets"], ctx["count"]
    probs = np.exp(log_probs).reshape(-1, log_probs.shape[-1])
    one_hot = np.zeros_like(probs)
    one_hot[np.arange(count), tgt.reshape(-1)] = 1.0
    g = (probs - one_hot) / count * grads[0]
    return {0: g.reshape(log_probs.shape)}


def _mse_fwd(ctx, pred, target):
    diff = pred - target
    ctx.save(diff=diff)
    return launch("mse_loss", lambda d: (d * d).mean(), diff)


def _mse_bwd(ctx, grads):
    diff = ctx["diff"]
    g = 2.0 * diff / diff.size * grads[0]
    return {0: g, 1: -g}


# ---------------------------------------------------------------------------
# registration
# ---------------------------------------------------------------------------

_REGISTERED = False


def register_default_ops() -> None:
    """Register the backend's built-in operator set (idempotent)."""
    global _REGISTERED
    if _REGISTERED:
        return
    _REGISTERED = True

    _register("add", _add_fwd, [BackwardDef("add_backward", _add_bwd)])
    _register("sub", _sub_fwd, [BackwardDef("sub_backward", _sub_bwd)])
    _register("mul", _mul_fwd, [BackwardDef("mul_backward", _mul_bwd)])
    _register("div", _div_fwd, [BackwardDef("div_backward", _div_bwd)])
    _register("neg", _neg_fwd,
              [BackwardDef("neg_backward", lambda ctx, g: {0: -g[0]})])
    _register("pow", _pow_fwd, [BackwardDef("pow_backward", _pow_bwd)])
    _register("exp", _exp_fwd,
              [BackwardDef("exp_backward", lambda ctx, g: {0: g[0] * ctx["out"]})])
    _register("log", _log_fwd,
              [BackwardDef("log_backward", lambda ctx, g: {0: g[0] / ctx["a"]})])
    _register("sqrt", _sqrt_fwd,
              [BackwardDef("sqrt_backward",
                           lambda ctx, g: {0: g[0] * 0.5 / ctx["out"]})])

    _register("matmul", _matmul_fwd,
              [BackwardDef("matmul_backward", _matmul_bwd)])
    _register("linear", _linear_fwd, [
        BackwardDef("linear_backward_input", _linear_bwd_input),
        BackwardDef("linear_backward_weight", _linear_bwd_weight),
        BackwardDef("linear_backward_bias", _linear_bwd_bias),
    ])
    _register("conv2d", _conv2d_fwd, [
        BackwardDef("conv2d_backward_input", _conv2d_bwd_input),
        BackwardDef("conv2d_backward_weight", _conv2d_bwd_weight),
    ])
    _register("bias_add", _bias_add_fwd,
              [BackwardDef("bias_add_backward", _bias_add_bwd)])
    _register("max_pool2d", _maxpool2d_fwd,
              [BackwardDef("max_pool2d_backward", _maxpool2d_bwd)])
    _register("avg_pool2d", _avgpool2d_fwd,
              [BackwardDef("avg_pool2d_backward", _avgpool2d_bwd)])

    _register("batch_norm", _batch_norm_fwd,
              [BackwardDef("batch_norm_backward", _batch_norm_bwd)])
    _register("layer_norm", _layer_norm_fwd,
              [BackwardDef("layer_norm_backward", _layer_norm_bwd)])

    _register("relu", _relu_fwd, [BackwardDef("relu_backward", _relu_bwd)])
    _register("sigmoid", _sigmoid_fwd,
              [BackwardDef("sigmoid_backward",
                           lambda ctx, g: {0: K.sigmoid_backward(g[0], ctx["out"])})])
    _register("tanh", _tanh_fwd,
              [BackwardDef("tanh_backward",
                           lambda ctx, g: {0: K.tanh_backward(g[0], ctx["out"])})])
    _register("gelu", _gelu_fwd,
              [BackwardDef("gelu_backward",
                           lambda ctx, g: {0: K.gelu_backward(g[0], ctx["x"])})])
    _register("softmax", _softmax_fwd,
              [BackwardDef("softmax_backward", _softmax_bwd)])
    _register("log_softmax", _log_softmax_fwd,
              [BackwardDef("log_softmax_backward", _log_softmax_bwd)])
    _register("dropout", _dropout_fwd,
              [BackwardDef("dropout_backward", _dropout_bwd)])

    _register("reshape", _reshape_fwd,
              [BackwardDef("reshape_backward", _reshape_bwd)])
    _register("transpose", _transpose_fwd,
              [BackwardDef("transpose_backward", _transpose_bwd)])
    _register("slice", _slice_fwd,
              [BackwardDef("slice_backward", _slice_bwd)])
    _register("concat", _concat_fwd,
              [BackwardDef("concat_backward", _concat_bwd)])

    _register("abs", _abs_fwd, [BackwardDef("abs_backward", _abs_bwd)])
    _register("clip", _clip_fwd, [BackwardDef("clip_backward", _clip_bwd)])
    _register("where", _where_fwd,
              [BackwardDef("where_backward", _where_bwd)])
    _register("stack", _stack_fwd,
              [BackwardDef("stack_backward", _stack_bwd)])
    _register("split", _split_fwd,
              [BackwardDef("split_backward", _split_bwd)], num_outputs=2)
    _register("pad", _pad_fwd, [BackwardDef("pad_backward", _pad_bwd)])

    _register("sum", _sum_fwd, [BackwardDef("sum_backward", _sum_bwd)])
    _register("mean", _mean_fwd, [BackwardDef("mean_backward", _mean_bwd)])

    _register("embedding", _embedding_fwd,
              [BackwardDef("embedding_backward", _embedding_bwd)])
    _register("cross_entropy", _cross_entropy_fwd,
              [BackwardDef("cross_entropy_backward", _cross_entropy_bwd)])
    _register("mse_loss", _mse_fwd,
              [BackwardDef("mse_loss_backward", _mse_bwd)])


register_default_ops()
