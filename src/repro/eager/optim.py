"""Optimizers for the eager backend (SGD with momentum, Adam).

The APEX-style baseline in :mod:`repro.baselines.optimizer_wrap` wraps
``Optimizer.step`` — the optimizer-wrapping instrumentation approach the
paper's Fig. 1 criticizes — so the interface here mirrors PyTorch's.
"""

from __future__ import annotations

import numpy as np

from .module import Parameter

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    def __init__(self, params) -> None:
        self.params: list[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer got an empty parameter list")

    def zero_grad(self) -> None:
        for param in self.params:
            param.grad = None

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    def __init__(self, params, lr: float = 0.01, momentum: float = 0.0,
                 weight_decay: float = 0.0) -> None:
        super().__init__(params)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for param, velocity in zip(self.params, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            param.data -= self.lr * grad


class Adam(Optimizer):
    def __init__(self, params, lr: float = 1e-3, betas=(0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.0) -> None:
        super().__init__(params)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        self._step_count += 1
        t = self._step_count
        bias1 = 1.0 - self.beta1 ** t
        bias2 = 1.0 - self.beta2 ** t
        for param, m, v in zip(self.params, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1 - self.beta1) * grad
            v *= self.beta2
            v += (1 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
