"""Module (layer container) system of the eager backend, with hooks.

Mirrors ``torch.nn.Module`` closely enough that the paper's *module hook*
baseline can be reproduced faithfully:

* ``register_forward_pre_hook`` / ``register_forward_hook`` observe only
  module boundaries — functional ops between modules are invisible to them;
* ``register_full_backward_hook`` observes only the gradient at the module's
  boundary tensors, not the (often multiple) backward operators inside —
  which is the coverage gap Fig. 9 quantifies.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Iterator

import numpy as np

from . import dispatch
from .tensor import Tensor

__all__ = ["Parameter", "Module", "Sequential", "ModuleList"]


class Parameter(Tensor):
    """A trainable tensor owned by a module."""

    def __init__(self, data, name: str | None = None) -> None:
        super().__init__(data, requires_grad=True, name=name)


class RemovableHandle:
    """Deregistration handle returned by hook registration."""

    def __init__(self, container: list, item) -> None:
        self._container = container
        self._item = item

    def remove(self) -> None:
        if self._item in self._container:
            self._container.remove(self._item)


class Module:
    """Base class for layers and models."""

    def __init__(self) -> None:
        self._parameters: OrderedDict[str, Parameter] = OrderedDict()
        self._buffers: OrderedDict[str, Tensor] = OrderedDict()
        self._modules: OrderedDict[str, Module] = OrderedDict()
        self._forward_pre_hooks: list[Callable] = []
        self._forward_hooks: list[Callable] = []
        self._backward_hooks: list[Callable] = []
        self.training = True

    # -- attribute routing ---------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, tensor: Tensor) -> None:
        self._buffers[name] = tensor
        object.__setattr__(self, name, tensor)

    def register_parameter(self, name: str, param: Parameter) -> None:
        self._parameters[name] = param
        object.__setattr__(self, name, param)

    # -- traversal -----------------------------------------------------------
    def named_children(self) -> Iterator[tuple[str, "Module"]]:
        yield from self._modules.items()

    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        yield prefix, self
        for name, child in self._modules.items():
            child_prefix = f"{prefix}.{name}" if prefix else name
            yield from child.named_modules(child_prefix)

    def modules(self) -> Iterator["Module"]:
        for _, module in self.named_modules():
            yield module

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}.{name}" if prefix else name), param
        for name, child in self._modules.items():
            child_prefix = f"{prefix}.{name}" if prefix else name
            yield from child.named_parameters(child_prefix)

    def parameters(self) -> list[Parameter]:
        return [p for _, p in self.named_parameters()]

    def state_dict(self) -> dict[str, np.ndarray]:
        state = {name: p.data.copy() for name, p in self.named_parameters()}
        for mod_name, module in self.named_modules():
            for buf_name, buf in module._buffers.items():
                key = f"{mod_name}.{buf_name}" if mod_name else buf_name
                state[key] = buf.data.copy()
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        params = dict(self.named_parameters())
        buffers = {}
        for mod_name, module in self.named_modules():
            for buf_name, buf in module._buffers.items():
                buffers[f"{mod_name}.{buf_name}" if mod_name else buf_name] = buf
        for key, value in state.items():
            target = params.get(key) or buffers.get(key)
            if target is None:
                raise KeyError(f"unexpected state entry {key!r}")
            np.copyto(target.data, value)

    # -- train / eval --------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for child in self._modules.values():
            child.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.grad = None

    # -- hooks (the PyTorch-style baseline interface) -------------------------
    def register_forward_pre_hook(self, hook: Callable) -> RemovableHandle:
        self._forward_pre_hooks.append(hook)
        return RemovableHandle(self._forward_pre_hooks, hook)

    def register_forward_hook(self, hook: Callable) -> RemovableHandle:
        self._forward_hooks.append(hook)
        return RemovableHandle(self._forward_hooks, hook)

    def register_full_backward_hook(self, hook: Callable) -> RemovableHandle:
        self._backward_hooks.append(hook)
        return RemovableHandle(self._backward_hooks, hook)

    # -- execution -----------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        for hook in list(self._forward_pre_hooks):
            result = hook(self, args)
            if result is not None:
                args = result if isinstance(result, tuple) else (result,)
        dispatch.push_module(self)
        try:
            output = self.forward(*args, **kwargs)
        finally:
            dispatch.pop_module()
        for hook in list(self._forward_hooks):
            result = hook(self, args, output)
            if result is not None:
                output = result
        if self._backward_hooks:
            self._attach_backward_hooks(args, output)
        return output

    def _attach_backward_hooks(self, inputs: tuple, output) -> None:
        outputs = output if isinstance(output, tuple) else (output,)
        out_tensors = [t for t in outputs if isinstance(t, Tensor)]
        in_tensors = [t for t in inputs if isinstance(t, Tensor) and t.requires_grad]
        grad_outputs: list = [None] * len(out_tensors)
        grad_inputs: list = [None] * len(in_tensors)
        fired = [False]

        def fire() -> None:
            if fired[0]:
                return
            fired[0] = True
            for hook in list(self._backward_hooks):
                hook(self, tuple(grad_inputs), tuple(grad_outputs))

        def make_out_hook(index: int):
            def hook(grad):
                grad_outputs[index] = grad
                if not in_tensors:
                    fire()
                return None
            return hook

        def make_in_hook(index: int):
            def hook(grad):
                grad_inputs[index] = grad
                fire()
                return None
            return hook

        for i, t in enumerate(out_tensors):
            t.register_hook(make_out_hook(i))
        for i, t in enumerate(in_tensors):
            t.register_hook(make_in_hook(i))

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        for index, module in enumerate(modules):
            setattr(self, str(index), module)

    def forward(self, x):
        for module in self._modules.values():
            x = module(x)
        return x

    def __iter__(self):
        return iter(self._modules.values())

    def __len__(self):
        return len(self._modules)

    def __getitem__(self, index: int) -> Module:
        return list(self._modules.values())[index]


class ModuleList(Module):
    """A list of sub-modules that registers each for traversal."""

    def __init__(self, modules=()) -> None:
        super().__init__()
        for index, module in enumerate(modules):
            setattr(self, str(index), module)

    def append(self, module: Module) -> "ModuleList":
        setattr(self, str(len(self._modules)), module)
        return self

    def __iter__(self):
        return iter(self._modules.values())

    def __len__(self):
        return len(self._modules)

    def __getitem__(self, index: int) -> Module:
        return list(self._modules.values())[index]
