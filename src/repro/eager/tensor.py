"""The eager backend's tensor type.

A :class:`Tensor` wraps a ``numpy.ndarray`` together with autograd state
(``requires_grad``, accumulated ``grad``, and the producing autograd node).
All arithmetic dispatches through the operator registry in
:mod:`repro.eager.dispatch`, which is the surface Amanda's eager driver
instruments.
"""

from __future__ import annotations

import weakref
from typing import Any, Callable

import numpy as np

from . import alloc

__all__ = ["Tensor", "tensor", "zeros", "ones", "randn", "arange", "as_tensor"]


class Tensor:
    """An eagerly evaluated n-dimensional array with reverse-mode autograd."""

    __slots__ = ("data", "requires_grad", "grad", "node", "name",
                 "_grad_hooks", "_alloc_scope", "__weakref__")

    def __init__(self, data: Any, requires_grad: bool = False,
                 name: str | None = None) -> None:
        if isinstance(data, Tensor):
            data = data.data
        arr = np.asarray(data)
        if arr.dtype == np.float64:
            pass  # default compute dtype of the reproduction
        elif np.issubdtype(arr.dtype, np.floating):
            arr = arr.astype(np.float64)
        self.data: np.ndarray = arr
        self.requires_grad = bool(requires_grad)
        self.grad: np.ndarray | None = None
        self.node = None  # autograd.Node that produced this tensor
        self.name = name
        self._grad_hooks: list[Callable[[np.ndarray], np.ndarray | None]] = []
        scope = alloc.tracker.allocate(arr.nbytes)
        self._alloc_scope = scope
        weakref.finalize(self, alloc.tracker.release, arr.nbytes, scope)

    # -- basic introspection -------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def is_leaf(self) -> bool:
        return self.node is None

    def numpy(self) -> np.ndarray:
        return self.data

    def item(self) -> float:
        from .dispatch import get_capture_tracer
        tracer = get_capture_tracer()
        if tracer is not None:
            # the concrete value escapes into Python control flow: the trace
            # being recorded cannot be replayed safely for other inputs
            tracer.record_escape("Tensor.item() read during trace")
        return float(self.data.reshape(-1)[0])

    def detach(self) -> "Tensor":
        return Tensor(self.data, requires_grad=False, name=self.name)

    def copy_(self, value) -> "Tensor":
        """In-place overwrite of the underlying buffer (optimizer updates)."""
        src = value.data if isinstance(value, Tensor) else np.asarray(value)
        np.copyto(self.data, src)
        return self

    def zero_grad(self) -> None:
        self.grad = None

    def register_hook(self, fn: Callable[[np.ndarray], np.ndarray | None]) -> Callable[[], None]:
        """Register a hook called with this tensor's gradient during backward.

        The hook may return a replacement gradient.  Returns a deregistration
        callable (mirroring ``torch.Tensor.register_hook``).
        """
        self._grad_hooks.append(fn)

        def remove() -> None:
            if fn in self._grad_hooks:
                self._grad_hooks.remove(fn)

        return remove

    def _run_grad_hooks(self, grad: np.ndarray) -> np.ndarray:
        for hook in list(self._grad_hooks):
            result = hook(grad)
            if result is not None:
                grad = result
        return grad

    # -- autograd entry point ------------------------------------------------
    def backward(self, grad: np.ndarray | None = None) -> None:
        from . import autograd
        autograd.backward(self, grad)

    # -- operator sugar (dispatches through the instrumentable registry) -----
    def _apply(self, op: str, *others, **attrs) -> "Tensor":
        from .dispatch import apply_op
        return apply_op(op, self, *others, **attrs)

    def __add__(self, other):
        return self._apply("add", as_tensor(other))

    __radd__ = __add__

    def __sub__(self, other):
        return self._apply("sub", as_tensor(other))

    def __rsub__(self, other):
        return as_tensor(other)._apply("sub", self)

    def __mul__(self, other):
        return self._apply("mul", as_tensor(other))

    __rmul__ = __mul__

    def __truediv__(self, other):
        return self._apply("div", as_tensor(other))

    def __rtruediv__(self, other):
        return as_tensor(other)._apply("div", self)

    def __neg__(self):
        return self._apply("neg")

    def __pow__(self, exponent):
        return self._apply("pow", exponent=float(exponent))

    def __matmul__(self, other):
        return self._apply("matmul", as_tensor(other))

    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return self._apply("reshape", shape=shape)

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        return self._apply("transpose", axes=axes or None)

    def sum(self, axis=None, keepdims=False) -> "Tensor":
        return self._apply("sum", axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims=False) -> "Tensor":
        return self._apply("mean", axis=axis, keepdims=keepdims)

    def __getitem__(self, index) -> "Tensor":
        return self._apply("slice", index=index)

    def __repr__(self) -> str:
        grad_note = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}, dtype={self.dtype}{grad_note})"

    def __len__(self) -> int:
        return len(self.data)


def as_tensor(value: Any) -> Tensor:
    return value if isinstance(value, Tensor) else Tensor(value)


def tensor(data: Any, requires_grad: bool = False, name: str | None = None) -> Tensor:
    return Tensor(data, requires_grad=requires_grad, name=name)


def zeros(*shape, requires_grad: bool = False) -> Tensor:
    return Tensor(np.zeros(shape), requires_grad=requires_grad)


def ones(*shape, requires_grad: bool = False) -> Tensor:
    return Tensor(np.ones(shape), requires_grad=requires_grad)


def randn(*shape, requires_grad: bool = False, rng: np.random.Generator | None = None,
          scale: float = 1.0) -> Tensor:
    rng = rng or np.random.default_rng()
    return Tensor(rng.standard_normal(shape) * scale, requires_grad=requires_grad)


def arange(*args, requires_grad: bool = False) -> Tensor:
    return Tensor(np.arange(*args, dtype=np.float64), requires_grad=requires_grad)
