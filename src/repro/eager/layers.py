"""Standard neural-network layers for the eager backend."""

from __future__ import annotations

import math

import numpy as np

from . import functional as F
from .dispatch import apply_op
from .module import Module, Parameter
from .tensor import Tensor

__all__ = [
    "Linear", "Conv2d", "BatchNorm2d", "BatchNorm1d", "LayerNorm", "Embedding",
    "ReLU", "GELU", "Tanh", "Sigmoid", "Softmax", "MaxPool2d", "AvgPool2d",
    "AdaptiveAvgPool2d", "Dropout", "Flatten", "Identity", "MultiheadAttention",
]


def _rng(rng: np.random.Generator | None) -> np.random.Generator:
    return rng if rng is not None else np.random.default_rng()


def _pair(value) -> tuple[int, int]:
    if isinstance(value, (tuple, list)):
        return tuple(value)
    return (value, value)


class Linear(Module):
    """Affine layer ``y = x W^T + b``."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        bound = 1.0 / math.sqrt(in_features)
        gen = _rng(rng)
        self.weight = Parameter(gen.uniform(-bound, bound, (out_features, in_features)))
        self.bias = Parameter(gen.uniform(-bound, bound, out_features)) if bias else None
        # registry lookups memoized at construction; overrides patch the
        # OpDef in place, so the handle stays instrumentation-aware
        self._linear_op = F.resolve("linear")

    def forward(self, x: Tensor) -> Tensor:
        if self.bias is None:
            return apply_op(self._linear_op, x, self.weight)
        return apply_op(self._linear_op, x, self.weight, self.bias)

    def __repr__(self) -> str:
        return f"Linear({self.in_features}, {self.out_features})"


class Conv2d(Module):
    """2-D convolution over NCHW inputs; weight layout OIHW."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size,
                 stride=1, padding=0, bias: bool = True,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = _pair(kernel_size)
        self.stride = _pair(stride)
        self.padding = _pair(padding)
        fan_in = in_channels * self.kernel_size[0] * self.kernel_size[1]
        bound = 1.0 / math.sqrt(fan_in)
        gen = _rng(rng)
        self.weight = Parameter(
            gen.uniform(-bound, bound, (out_channels, in_channels) + self.kernel_size))
        self.bias = Parameter(gen.uniform(-bound, bound, out_channels)) if bias else None
        self._conv_op = F.resolve("conv2d")
        self._bias_op = F.resolve("bias_add") if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = apply_op(self._conv_op, x, self.weight, stride=self.stride,
                       padding=self.padding, algorithm="auto")
        if self.bias is not None:
            out = apply_op(self._bias_op, out, self.bias)
        return out

    def __repr__(self) -> str:
        return (f"Conv2d({self.in_channels}, {self.out_channels}, "
                f"kernel_size={self.kernel_size}, stride={self.stride})")


class BatchNorm2d(Module):
    def __init__(self, num_features: int, momentum: float = 0.1,
                 eps: float = 1e-5) -> None:
        super().__init__()
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.weight = Parameter(np.ones(num_features))
        self.bias = Parameter(np.zeros(num_features))
        self.register_buffer("running_mean", Tensor(np.zeros(num_features)))
        self.register_buffer("running_var", Tensor(np.ones(num_features)))
        self._bn_op = F.resolve("batch_norm")

    def forward(self, x: Tensor) -> Tensor:
        return apply_op(self._bn_op, x, self.weight, self.bias,
                        self.running_mean, self.running_var,
                        training=self.training, momentum=self.momentum,
                        eps=self.eps)


class BatchNorm1d(BatchNorm2d):
    pass


class LayerNorm(Module):
    def __init__(self, normalized_shape: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.normalized_shape = normalized_shape
        self.eps = eps
        self.weight = Parameter(np.ones(normalized_shape))
        self.bias = Parameter(np.zeros(normalized_shape))
        self._ln_op = F.resolve("layer_norm")

    def forward(self, x: Tensor) -> Tensor:
        return apply_op(self._ln_op, x, self.weight, self.bias, eps=self.eps)


class Embedding(Module):
    def __init__(self, num_embeddings: int, embedding_dim: int,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(_rng(rng).standard_normal(
            (num_embeddings, embedding_dim)) * 0.02)

    def forward(self, indices) -> Tensor:
        return F.embedding(indices, self.weight)


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.relu(x)


class GELU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.gelu(x)


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.tanh(x)


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.sigmoid(x)


class Softmax(Module):
    def __init__(self, axis: int = -1) -> None:
        super().__init__()
        self.axis = axis

    def forward(self, x: Tensor) -> Tensor:
        return F.softmax(x, axis=self.axis)


class MaxPool2d(Module):
    def __init__(self, kernel_size, stride=None, padding=0) -> None:
        super().__init__()
        self.kernel_size = _pair(kernel_size)
        self.stride = _pair(stride) if stride is not None else self.kernel_size
        self.padding = _pair(padding)

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel_size, self.stride, self.padding)


class AvgPool2d(Module):
    def __init__(self, kernel_size, stride=None, padding=0) -> None:
        super().__init__()
        self.kernel_size = _pair(kernel_size)
        self.stride = _pair(stride) if stride is not None else self.kernel_size
        self.padding = _pair(padding)

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel_size, self.stride, self.padding)


class AdaptiveAvgPool2d(Module):
    """Global average pooling to a 1x1 spatial output."""

    def forward(self, x: Tensor) -> Tensor:
        return x.mean(axis=(2, 3), keepdims=True)


class Dropout(Module):
    def __init__(self, p: float = 0.5) -> None:
        super().__init__()
        self.p = p

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, p=self.p, training=self.training)


class Flatten(Module):
    def __init__(self, start_dim: int = 1) -> None:
        super().__init__()
        self.start_dim = start_dim

    def forward(self, x: Tensor) -> Tensor:
        return F.flatten(x, self.start_dim)


class Identity(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x


class MultiheadAttention(Module):
    """Scaled dot-product multi-head self-attention.

    The attention math (matmuls, scaling, softmax, residual projections) is
    written with functional ops, as in real transformer implementations —
    another source of operators invisible to module hooks.
    """

    def __init__(self, embed_dim: int, num_heads: int,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        if embed_dim % num_heads:
            raise ValueError("embed_dim must be divisible by num_heads")
        self.embed_dim = embed_dim
        self.num_heads = num_heads
        self.head_dim = embed_dim // num_heads
        gen = _rng(rng)
        self.q_proj = Linear(embed_dim, embed_dim, rng=gen)
        self.k_proj = Linear(embed_dim, embed_dim, rng=gen)
        self.v_proj = Linear(embed_dim, embed_dim, rng=gen)
        self.out_proj = Linear(embed_dim, embed_dim, rng=gen)

    def forward(self, x: Tensor) -> Tensor:
        batch, seq, _ = x.shape
        h, d = self.num_heads, self.head_dim

        def split(t: Tensor) -> Tensor:
            return t.reshape(batch, seq, h, d).transpose(0, 2, 1, 3)

        q, k, v = split(self.q_proj(x)), split(self.k_proj(x)), split(self.v_proj(x))
        scores = F.matmul(q, k.transpose(0, 1, 3, 2)) * (1.0 / math.sqrt(d))
        weights = F.softmax(scores, axis=-1)
        attended = F.matmul(weights, v)
        merged = attended.transpose(0, 2, 1, 3).reshape(batch, seq, self.embed_dim)
        return self.out_proj(merged)
