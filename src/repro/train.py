"""High-level training loop with first-class instrumentation support.

``Trainer`` wires together the pieces a downstream user otherwise assembles
by hand: minibatching, the optimizer and (optional) LR scheduler, Amanda
instrumentation tools applied around the whole run, iteration boundaries for
the tools' caches, and checkpointing.

    trainer = Trainer(model, optimizer, tools=[MagnitudePruningTool(0.5)])
    history = trainer.fit(train_x, train_y, epochs=10, batch_size=32)
    accuracy = trainer.evaluate(test_x, test_y)
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field

import numpy as np

from .core.manager import apply as amanda_apply
from .core.manager import new_iteration
from .data.synthetic import batches
from .eager import functional as F
from .eager.checkpoint import save_checkpoint
from .eager.module import Module
from .eager.optim import Optimizer
from .eager.tensor import Tensor

__all__ = ["Trainer", "TrainingHistory"]


@dataclass
class TrainingHistory:
    epoch_losses: list[float] = field(default_factory=list)
    learning_rates: list[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.epoch_losses[-1] if self.epoch_losses else float("nan")

    @property
    def improved(self) -> bool:
        return (len(self.epoch_losses) >= 2
                and self.epoch_losses[-1] < self.epoch_losses[0])


class Trainer:
    """Trains an eager-backend model, optionally under instrumentation."""

    def __init__(self, model: Module, optimizer: Optimizer,
                 loss_fn=None, scheduler=None, tools=(),
                 checkpoint_path: str | None = None,
                 checkpoint_every: int = 0, seed: int = 0) -> None:
        self.model = model
        self.optimizer = optimizer
        self.loss_fn = loss_fn or F.cross_entropy
        self.scheduler = scheduler
        self.tools = tuple(tools)
        self.checkpoint_path = checkpoint_path
        self.checkpoint_every = checkpoint_every
        self.seed = seed
        self.history = TrainingHistory()

    # -- training -----------------------------------------------------------------
    def fit(self, x: np.ndarray, y: np.ndarray, epochs: int,
            batch_size: int | None = None) -> TrainingHistory:
        scope = amanda_apply(*self.tools) if self.tools else nullcontext()
        with scope:
            for epoch in range(epochs):
                losses = []
                for batch_x, batch_y in batches(
                        x, y, batch_size or len(x), seed=self.seed + epoch):
                    losses.append(self._step(batch_x, batch_y))
                self.history.epoch_losses.append(float(np.mean(losses)))
                self.history.learning_rates.append(self.optimizer.lr)
                if self.scheduler is not None:
                    self.scheduler.step()
                if (self.checkpoint_path and self.checkpoint_every
                        and (epoch + 1) % self.checkpoint_every == 0):
                    save_checkpoint(self.checkpoint_path, self.model,
                                    self.optimizer)
        return self.history

    def _step(self, batch_x: np.ndarray, batch_y: np.ndarray) -> float:
        self.optimizer.zero_grad()
        logits = self.model(Tensor(batch_x))
        loss = self.loss_fn(logits, Tensor(batch_y))
        loss.backward()  # backward completion marks the iteration boundary
        self.optimizer.step()
        return loss.item()

    # -- evaluation ----------------------------------------------------------------
    def evaluate(self, x: np.ndarray, y: np.ndarray,
                 instrumented: bool = True) -> float:
        scope = (amanda_apply(*self.tools)
                 if self.tools and instrumented else nullcontext())
        was_training = self.model.training
        self.model.eval()
        try:
            with scope:
                logits = self.model(Tensor(x)).data
        finally:
            self.model.train(was_training)
        predictions = np.argmax(logits, axis=-1)
        return float(np.mean(predictions == y))

    def predict(self, x: np.ndarray, instrumented: bool = True) -> np.ndarray:
        scope = (amanda_apply(*self.tools)
                 if self.tools and instrumented else nullcontext())
        with scope:
            if self.tools and instrumented:
                new_iteration()
            return self.model(Tensor(x)).data
