"""Op builders and runtime compute functions for the graph backend.

``builder`` plays the role of the TensorFlow python op library: each builder
appends a node to the default graph.  Op types follow TF naming and tensors
are NHWC (conv weights HWIO); the compute functions convert at op boundaries
and delegate the numerics to :mod:`repro.kernels.nn`, sharing kernels with the
eager backend.

The ``COMPUTE`` registry maps op type -> runtime function and the ``GRAD``
registry maps op type -> backward-graph builder used by
:func:`repro.graph.gradients.gradients`.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..kernels import nn as K
from ..kernels.runtime import launch
from .core import Graph, GraphTensor, Operation, get_default_graph

__all__ = [
    "COMPUTE", "GRAD", "register_compute", "register_grad",
    "convert_to_tensor", "placeholder", "constant", "variable", "identity",
    "conv2d", "bias_add", "matmul", "relu", "gelu", "sigmoid", "tanh",
    "softmax", "log_softmax", "max_pool", "avg_pool", "fused_batch_norm",
    "layer_norm", "reshape", "transpose", "concat", "reduce_mean",
    "reduce_sum", "gather", "dropout", "sparse_softmax_cross_entropy",
    "square", "sqrt", "assign_sub", "assign_add", "group", "py_call",
    "capture_op", "capture_variable", "capture_constant",
]

COMPUTE: dict[str, Callable] = {}
GRAD: dict[str, Callable] = {}


def register_compute(op_type: str):
    def deco(fn):
        COMPUTE[op_type] = fn
        return fn
    return deco


def register_grad(op_type: str):
    def deco(fn):
        GRAD[op_type] = fn
        return fn
    return deco


def _graph(explicit: Graph | None = None) -> Graph:
    # explicit identity check: an *empty* Graph is falsy (len() == 0), and
    # building the first node of a fresh graph must not silently target the
    # default graph
    return explicit if explicit is not None else get_default_graph()


def _pool_out(runtime, *operands):
    """A recycled elementwise output buffer from the session's arena.

    ``None`` (= "allocate fresh" for numpy ufuncs) when the arena is off or
    the runtime doesn't pool — computes pass the result straight through as
    the kernel's ``out=``.
    """
    helper = getattr(runtime, "ewise_out", None)
    return helper(*operands) if helper is not None else None


def convert_to_tensor(value, graph: Graph | None = None) -> GraphTensor:
    if isinstance(value, GraphTensor):
        return value
    return constant(np.asarray(value, dtype=np.float64), graph=graph)


# ---------------------------------------------------------------------------
# sources
# ---------------------------------------------------------------------------

def placeholder(shape=None, name: str = "Placeholder",
                graph: Graph | None = None) -> GraphTensor:
    op = _graph(graph).add_op("Placeholder", [], {"shape": shape}, name=name)
    return op.outputs[0]


@register_compute("Placeholder")
def _compute_placeholder(op, inputs, runtime):
    try:
        return (runtime.feeds[op.name],)
    except KeyError:
        raise KeyError(f"placeholder {op.name!r} was not fed") from None


def constant(value, name: str = "Const", graph: Graph | None = None) -> GraphTensor:
    arr = np.asarray(value)
    if np.issubdtype(arr.dtype, np.floating):
        arr = arr.astype(np.float64)
    op = _graph(graph).add_op("Const", [], {"value": arr}, name=name)
    return op.outputs[0]


@register_compute("Const")
def _compute_const(op, inputs, runtime):
    return (op.attrs["value"],)


def variable(initial_value, name: str = "Variable",
             trainable: bool = True, graph: Graph | None = None) -> GraphTensor:
    g = _graph(graph)
    op = g.add_op("Variable", [], {"trainable": trainable}, name=name)
    g.variables.create(op.name, np.asarray(initial_value))
    return op.outputs[0]


@register_compute("Variable")
def _compute_variable(op, inputs, runtime):
    return (runtime.variables.read(op.name),)


def identity(x: GraphTensor, name: str = "Identity") -> GraphTensor:
    return x.graph.add_op("Identity", [x], name=name).outputs[0]


@register_compute("Identity")
def _compute_identity(op, inputs, runtime):
    return (inputs[0],)


@register_grad("Identity")
def _grad_identity(op, grads):
    return [grads[0]]


# ---------------------------------------------------------------------------
# elementwise binary (+ broadcasting-aware backward via BroadcastGradient)
# ---------------------------------------------------------------------------

@register_compute("Add")
def _compute_add(op, inputs, runtime):
    return (launch("ewise_add", np.add, inputs[0], inputs[1],
                   out=_pool_out(runtime, inputs[0], inputs[1])),)


@register_compute("Sub")
def _compute_sub(op, inputs, runtime):
    return (launch("ewise_sub", np.subtract, inputs[0], inputs[1],
                   out=_pool_out(runtime, inputs[0], inputs[1])),)


@register_compute("Mul")
def _compute_mul(op, inputs, runtime):
    return (launch("ewise_mul", np.multiply, inputs[0], inputs[1],
                   out=_pool_out(runtime, inputs[0], inputs[1])),)


@register_compute("RealDiv")
def _compute_div(op, inputs, runtime):
    return (launch("ewise_div", np.divide, inputs[0], inputs[1],
                   out=_pool_out(runtime, inputs[0], inputs[1])),)


@register_compute("Neg")
def _compute_neg(op, inputs, runtime):
    return (launch("ewise_neg", np.negative, inputs[0],
                   out=_pool_out(runtime, inputs[0])),)


def _unbroadcast_to(grad: GraphTensor, reference: GraphTensor) -> GraphTensor:
    """Insert a BroadcastGradient op reducing ``grad`` to ``reference``'s shape."""
    op = grad.graph.add_op("BroadcastGradient", [grad, reference])
    return op.outputs[0]


@register_compute("BroadcastGradient")
def _compute_broadcast_gradient(op, inputs, runtime):
    grad, reference = inputs
    from ..eager.dispatch import unbroadcast
    return (unbroadcast(np.asarray(grad), reference.shape),)


@register_grad("Add")
def _grad_add(op, grads):
    g = grads[0]
    return [_unbroadcast_to(g, op.inputs[0]), _unbroadcast_to(g, op.inputs[1])]


@register_grad("Sub")
def _grad_sub(op, grads):
    g = grads[0]
    neg = g.graph.add_op("Neg", [g]).outputs[0]
    return [_unbroadcast_to(g, op.inputs[0]), _unbroadcast_to(neg, op.inputs[1])]


@register_grad("Mul")
def _grad_mul(op, grads):
    g = grads[0]
    a, b = op.inputs
    ga = g.graph.add_op("Mul", [g, b]).outputs[0]
    gb = g.graph.add_op("Mul", [g, a]).outputs[0]
    return [_unbroadcast_to(ga, a), _unbroadcast_to(gb, b)]


@register_grad("RealDiv")
def _grad_div(op, grads):
    g = grads[0]
    a, b = op.inputs
    ga = g.graph.add_op("RealDiv", [g, b]).outputs[0]
    ab2 = g.graph.add_op("Mul", [a, g]).outputs[0]
    b2 = g.graph.add_op("Mul", [b, b]).outputs[0]
    gb_pos = g.graph.add_op("RealDiv", [ab2, b2]).outputs[0]
    gb = g.graph.add_op("Neg", [gb_pos]).outputs[0]
    return [_unbroadcast_to(ga, a), _unbroadcast_to(gb, b)]


@register_grad("Neg")
def _grad_neg(op, grads):
    return [grads[0].graph.add_op("Neg", [grads[0]]).outputs[0]]


def square(x: GraphTensor) -> GraphTensor:
    return x.graph.add_op("Square", [x]).outputs[0]


@register_compute("Square")
def _compute_square(op, inputs, runtime):
    return (launch("ewise_mul", np.multiply, inputs[0], inputs[0],
                   out=_pool_out(runtime, inputs[0])),)


@register_grad("Square")
def _grad_square(op, grads):
    g, x = grads[0], op.inputs[0]
    two_x = g.graph.add_op("Mul", [x, convert_to_tensor(2.0, g.graph)]).outputs[0]
    return [g.graph.add_op("Mul", [g, two_x]).outputs[0]]


def sqrt(x: GraphTensor) -> GraphTensor:
    return x.graph.add_op("Sqrt", [x]).outputs[0]


@register_compute("Sqrt")
def _compute_sqrt(op, inputs, runtime):
    return (launch("ewise_sqrt", np.sqrt, inputs[0],
                   out=_pool_out(runtime, inputs[0])),)


# ---------------------------------------------------------------------------
# matmul / conv / bias
# ---------------------------------------------------------------------------

def matmul(a: GraphTensor, b: GraphTensor, transpose_a: bool = False,
           transpose_b: bool = False, name: str = "MatMul") -> GraphTensor:
    op = a.graph.add_op("MatMul", [a, b],
                        {"transpose_a": transpose_a, "transpose_b": transpose_b},
                        name=name)
    return op.outputs[0]


@register_compute("MatMul")
def _compute_matmul(op, inputs, runtime):
    a, b = inputs
    if op.attrs.get("transpose_a"):
        a = np.swapaxes(a, -1, -2)
    if op.attrs.get("transpose_b"):
        b = np.swapaxes(b, -1, -2)
    return (K.matmul(a, b),)


@register_grad("MatMul")
def _grad_matmul(op, grads):
    g = grads[0]
    a, b = op.inputs
    ta = op.attrs.get("transpose_a", False)
    tb = op.attrs.get("transpose_b", False)
    # Standard TF MatMul gradient table (no transposes on gradients needed
    # beyond flag combinations); only the common (False, *) cases are used by
    # the model zoo but all four are supported.
    if not ta and not tb:
        ga = matmul(g, b, transpose_b=True)
        gb = matmul(a, g, transpose_a=True)
    elif not ta and tb:
        ga = matmul(g, b)
        gb = matmul(g, a, transpose_a=True)
    elif ta and not tb:
        ga = matmul(b, g, transpose_b=True)
        gb = matmul(a, g)
    else:
        ga = matmul(b, g, transpose_a=True, transpose_b=True)
        gb = matmul(g, a, transpose_a=True, transpose_b=True)
    return [ga, gb]


def conv2d(x: GraphTensor, filters: GraphTensor, strides=(1, 1),
           padding=(0, 0), name: str = "Conv2D") -> GraphTensor:
    op = x.graph.add_op("Conv2D", [x, filters],
                        {"strides": tuple(strides), "padding": tuple(padding)},
                        name=name)
    return op.outputs[0]


def _nhwc_to_nchw(x):
    return np.ascontiguousarray(np.transpose(x, (0, 3, 1, 2)))


def _nchw_to_nhwc(x):
    return np.ascontiguousarray(np.transpose(x, (0, 2, 3, 1)))


def _hwio_to_oihw(w):
    return np.ascontiguousarray(np.transpose(w, (3, 2, 0, 1)))


@register_compute("Conv2D")
def _compute_conv2d(op, inputs, runtime):
    x, w = inputs
    out = K.conv2d_forward(_nhwc_to_nchw(x), _hwio_to_oihw(w),
                           op.attrs["strides"], op.attrs["padding"])
    return (_nchw_to_nhwc(out),)


@register_grad("Conv2D")
def _grad_conv2d(op, grads):
    g = grads[0]
    x, w = op.inputs
    attrs = {"strides": op.attrs["strides"], "padding": op.attrs["padding"]}
    gi = g.graph.add_op("Conv2DBackpropInput", [x, w, g], attrs)
    gf = g.graph.add_op("Conv2DBackpropFilter", [x, w, g], attrs)
    return [gi.outputs[0], gf.outputs[0]]


@register_compute("Conv2DBackpropInput")
def _compute_conv2d_bwd_input(op, inputs, runtime):
    x, w, g = inputs
    out = K.conv2d_backward_input(_nhwc_to_nchw(g), _hwio_to_oihw(w),
                                  _nhwc_to_nchw(x).shape,
                                  op.attrs["strides"], op.attrs["padding"])
    return (_nchw_to_nhwc(out),)


@register_compute("Conv2DBackpropFilter")
def _compute_conv2d_bwd_filter(op, inputs, runtime):
    x, w, g = inputs
    out = K.conv2d_backward_weight(_nhwc_to_nchw(g), _nhwc_to_nchw(x),
                                   _hwio_to_oihw(w).shape,
                                   op.attrs["strides"], op.attrs["padding"])
    # OIHW -> HWIO
    return (np.ascontiguousarray(np.transpose(out, (2, 3, 1, 0))),)


def bias_add(x: GraphTensor, bias: GraphTensor, name: str = "BiasAdd") -> GraphTensor:
    return x.graph.add_op("BiasAdd", [x, bias], name=name).outputs[0]


@register_compute("BiasAdd")
def _compute_bias_add(op, inputs, runtime):
    # NHWC: bias broadcasts over the trailing channel dim
    return (launch("bias_add", np.add, inputs[0], inputs[1],
                   out=_pool_out(runtime, inputs[0], inputs[1])),)


@register_grad("BiasAdd")
def _grad_bias_add(op, grads):
    g = grads[0]
    gb = g.graph.add_op("BiasAddGrad", [g])
    return [g, gb.outputs[0]]


@register_compute("BiasAddGrad")
def _compute_bias_add_grad(op, inputs, runtime):
    g = inputs[0]
    return (g.reshape(-1, g.shape[-1]).sum(axis=0),)


# ---------------------------------------------------------------------------
# activations
# ---------------------------------------------------------------------------

def _unary(op_type: str):
    def build(x: GraphTensor, name: str | None = None) -> GraphTensor:
        return x.graph.add_op(op_type, [x], name=name or op_type).outputs[0]
    return build


relu = _unary("Relu")
gelu = _unary("Gelu")
sigmoid = _unary("Sigmoid")
tanh = _unary("Tanh")


@register_compute("Relu")
def _compute_relu(op, inputs, runtime):
    return (K.relu(inputs[0], out=_pool_out(runtime, inputs[0])),)


@register_grad("Relu")
def _grad_relu(op, grads):
    g = grads[0]
    return [g.graph.add_op("ReluGrad", [g, op.inputs[0]]).outputs[0]]


@register_compute("ReluGrad")
def _compute_relu_grad(op, inputs, runtime):
    return (K.relu_backward(inputs[0], inputs[1]),)


@register_compute("Gelu")
def _compute_gelu(op, inputs, runtime):
    return (K.gelu(inputs[0]),)


@register_grad("Gelu")
def _grad_gelu(op, grads):
    g = grads[0]
    return [g.graph.add_op("GeluGrad", [g, op.inputs[0]]).outputs[0]]


@register_compute("GeluGrad")
def _compute_gelu_grad(op, inputs, runtime):
    return (K.gelu_backward(inputs[0], inputs[1]),)


@register_compute("Sigmoid")
def _compute_sigmoid(op, inputs, runtime):
    return (K.sigmoid(inputs[0]),)


@register_grad("Sigmoid")
def _grad_sigmoid(op, grads):
    g = grads[0]
    return [g.graph.add_op("SigmoidGrad", [g, op.outputs[0]]).outputs[0]]


@register_compute("SigmoidGrad")
def _compute_sigmoid_grad(op, inputs, runtime):
    return (K.sigmoid_backward(inputs[0], inputs[1]),)


@register_compute("Tanh")
def _compute_tanh(op, inputs, runtime):
    return (launch("tanh", np.tanh, inputs[0],
                   out=_pool_out(runtime, inputs[0])),)


@register_grad("Tanh")
def _grad_tanh(op, grads):
    g = grads[0]
    return [g.graph.add_op("TanhGrad", [g, op.outputs[0]]).outputs[0]]


@register_compute("TanhGrad")
def _compute_tanh_grad(op, inputs, runtime):
    return (K.tanh_backward(inputs[0], inputs[1]),)


def softmax(x: GraphTensor, name: str = "Softmax") -> GraphTensor:
    return x.graph.add_op("Softmax", [x], name=name).outputs[0]


@register_compute("Softmax")
def _compute_softmax(op, inputs, runtime):
    return (K.softmax(inputs[0], axis=-1),)


@register_grad("Softmax")
def _grad_softmax(op, grads):
    g = grads[0]
    return [g.graph.add_op("SoftmaxGrad", [g, op.outputs[0]]).outputs[0]]


@register_compute("SoftmaxGrad")
def _compute_softmax_grad(op, inputs, runtime):
    return (K.softmax_backward(inputs[0], inputs[1], axis=-1),)


def log_softmax(x: GraphTensor, name: str = "LogSoftmax") -> GraphTensor:
    return x.graph.add_op("LogSoftmax", [x], name=name).outputs[0]


@register_compute("LogSoftmax")
def _compute_log_softmax(op, inputs, runtime):
    return (K.log_softmax(inputs[0], axis=-1),)


@register_grad("LogSoftmax")
def _grad_log_softmax(op, grads):
    g = grads[0]
    return [g.graph.add_op("LogSoftmaxGrad", [g, op.outputs[0]]).outputs[0]]


@register_compute("LogSoftmaxGrad")
def _compute_log_softmax_grad(op, inputs, runtime):
    return (K.log_softmax_backward(inputs[0], inputs[1], axis=-1),)


# ---------------------------------------------------------------------------
# pooling
# ---------------------------------------------------------------------------

def max_pool(x: GraphTensor, ksize=(2, 2), strides=None, padding=(0, 0),
             name: str = "MaxPool") -> GraphTensor:
    attrs = {"ksize": tuple(ksize), "strides": tuple(strides or ksize),
             "padding": tuple(padding)}
    return x.graph.add_op("MaxPool", [x], attrs, name=name).outputs[0]


@register_compute("MaxPool")
def _compute_max_pool(op, inputs, runtime):
    out = K.maxpool2d_forward(_nhwc_to_nchw(inputs[0]), op.attrs["ksize"],
                              op.attrs["strides"], op.attrs["padding"])
    return (_nchw_to_nhwc(out),)


@register_grad("MaxPool")
def _grad_max_pool(op, grads):
    g = grads[0]
    node = g.graph.add_op("MaxPoolGrad", [op.inputs[0], op.outputs[0], g],
                          dict(op.attrs))
    return [node.outputs[0]]


@register_compute("MaxPoolGrad")
def _compute_max_pool_grad(op, inputs, runtime):
    x, y, g = (_nhwc_to_nchw(v) for v in inputs)
    out = K.maxpool2d_backward(g, x, y, op.attrs["ksize"], op.attrs["strides"],
                               op.attrs["padding"])
    return (_nchw_to_nhwc(out),)


def avg_pool(x: GraphTensor, ksize=(2, 2), strides=None, padding=(0, 0),
             name: str = "AvgPool") -> GraphTensor:
    attrs = {"ksize": tuple(ksize), "strides": tuple(strides or ksize),
             "padding": tuple(padding)}
    return x.graph.add_op("AvgPool", [x], attrs, name=name).outputs[0]


@register_compute("AvgPool")
def _compute_avg_pool(op, inputs, runtime):
    out = K.avgpool2d_forward(_nhwc_to_nchw(inputs[0]), op.attrs["ksize"],
                              op.attrs["strides"], op.attrs["padding"])
    return (_nchw_to_nhwc(out),)


@register_grad("AvgPool")
def _grad_avg_pool(op, grads):
    g = grads[0]
    node = g.graph.add_op("AvgPoolGrad", [op.inputs[0], g], dict(op.attrs))
    return [node.outputs[0]]


@register_compute("AvgPoolGrad")
def _compute_avg_pool_grad(op, inputs, runtime):
    x, g = (_nhwc_to_nchw(v) for v in inputs)
    out = K.avgpool2d_backward(g, x.shape, op.attrs["ksize"],
                               op.attrs["strides"], op.attrs["padding"])
    return (_nchw_to_nhwc(out),)


# ---------------------------------------------------------------------------
# normalization
# ---------------------------------------------------------------------------

def fused_batch_norm(x, gamma, beta, running_mean_name: str,
                     running_var_name: str, training: bool = True,
                     momentum: float = 0.1, eps: float = 1e-5,
                     name: str = "FusedBatchNorm") -> GraphTensor:
    """BatchNorm over the channel (last) axis of an NHWC tensor.

    Running statistics live in the variable store under the given names and
    are updated as a side effect in training mode (as TF's fused op does).
    """
    attrs = {"training": training, "momentum": momentum, "eps": eps,
             "running_mean": running_mean_name, "running_var": running_var_name}
    op = x.graph.add_op("FusedBatchNorm", [x, gamma, beta], attrs,
                        name=name, num_outputs=3)
    return op.outputs[0]


@register_compute("FusedBatchNorm")
def _compute_fused_batch_norm(op, inputs, runtime):
    x, gamma, beta = inputs
    rm = runtime.variables.read(op.attrs["running_mean"])
    rv = runtime.variables.read(op.attrs["running_var"])
    xc = _nhwc_to_nchw(x)
    out, cache, new_rm, new_rv = K.batch_norm_forward(
        xc, gamma, beta, rm, rv, op.attrs["training"],
        op.attrs["momentum"], op.attrs["eps"])
    if op.attrs["training"]:
        runtime.variables.write(op.attrs["running_mean"], new_rm)
        runtime.variables.write(op.attrs["running_var"], new_rv)
    xhat, inv_std, _ = cache
    return (_nchw_to_nhwc(out), _nchw_to_nhwc(xhat), inv_std)


@register_grad("FusedBatchNorm")
def _grad_fused_batch_norm(op, grads):
    g = grads[0]
    node = g.graph.add_op(
        "FusedBatchNormGrad",
        [g, op.outputs[1], op.outputs[2], op.inputs[1]],
        {"training": op.attrs["training"]},
        num_outputs=3,
    )
    return [node.outputs[0], node.outputs[1], node.outputs[2]]


@register_compute("FusedBatchNormGrad")
def _compute_fused_batch_norm_grad(op, inputs, runtime):
    g, xhat, inv_std, gamma = inputs
    cache = (_nhwc_to_nchw(xhat), inv_std, gamma)
    dx, dgamma, dbeta = K.batch_norm_backward(_nhwc_to_nchw(g), cache,
                                              op.attrs["training"])
    return (_nchw_to_nhwc(dx), dgamma, dbeta)


def layer_norm(x, gamma, beta, eps: float = 1e-5,
               name: str = "LayerNorm") -> GraphTensor:
    op = x.graph.add_op("LayerNorm", [x, gamma, beta], {"eps": eps},
                        name=name, num_outputs=3)
    return op.outputs[0]


@register_compute("LayerNorm")
def _compute_layer_norm(op, inputs, runtime):
    out, cache = K.layer_norm_forward(inputs[0], inputs[1], inputs[2],
                                      op.attrs["eps"])
    xhat, inv_std, _ = cache
    return (out, xhat, inv_std)


@register_grad("LayerNorm")
def _grad_layer_norm(op, grads):
    g = grads[0]
    node = g.graph.add_op(
        "LayerNormGrad", [g, op.outputs[1], op.outputs[2], op.inputs[1]],
        num_outputs=3)
    return [node.outputs[0], node.outputs[1], node.outputs[2]]


@register_compute("LayerNormGrad")
def _compute_layer_norm_grad(op, inputs, runtime):
    g, xhat, inv_std, gamma = inputs
    dx, dgamma, dbeta = K.layer_norm_backward(g, (xhat, inv_std, gamma))
    return (dx, dgamma, dbeta)


# ---------------------------------------------------------------------------
# shape ops
# ---------------------------------------------------------------------------

def reshape(x: GraphTensor, shape, name: str = "Reshape") -> GraphTensor:
    return x.graph.add_op("Reshape", [x], {"shape": tuple(shape)},
                          name=name).outputs[0]


@register_compute("Reshape")
def _compute_reshape(op, inputs, runtime):
    return (launch("reshape", np.reshape, inputs[0], op.attrs["shape"]),)


@register_grad("Reshape")
def _grad_reshape(op, grads):
    g = grads[0]
    node = g.graph.add_op("ReshapeGrad", [g, op.inputs[0]])
    return [node.outputs[0]]


@register_compute("ReshapeGrad")
def _compute_reshape_grad(op, inputs, runtime):
    return (inputs[0].reshape(inputs[1].shape),)


def transpose(x: GraphTensor, perm, name: str = "Transpose") -> GraphTensor:
    return x.graph.add_op("Transpose", [x], {"perm": tuple(perm)},
                          name=name).outputs[0]


@register_compute("Transpose")
def _compute_transpose(op, inputs, runtime):
    return (launch("transpose", np.transpose, inputs[0], op.attrs["perm"]),)


@register_grad("Transpose")
def _grad_transpose(op, grads):
    perm = op.attrs["perm"]
    inverse = tuple(int(i) for i in np.argsort(perm))
    return [transpose(grads[0], inverse)]


def concat(tensors, axis: int = 0, name: str = "ConcatV2") -> GraphTensor:
    g = tensors[0].graph
    return g.add_op("ConcatV2", list(tensors), {"axis": axis},
                    name=name).outputs[0]


@register_compute("ConcatV2")
def _compute_concat(op, inputs, runtime):
    return (launch("concat", np.concatenate, inputs, axis=op.attrs["axis"]),)


@register_grad("ConcatV2")
def _grad_concat(op, grads):
    g = grads[0]
    node = g.graph.add_op("ConcatGrad", [g] + list(op.inputs),
                          {"axis": op.attrs["axis"]},
                          num_outputs=len(op.inputs))
    return list(node.outputs)


@register_compute("ConcatGrad")
def _compute_concat_grad(op, inputs, runtime):
    g, refs = inputs[0], inputs[1:]
    axis = op.attrs["axis"]
    sizes = [r.shape[axis] for r in refs]
    splits = np.cumsum(sizes)[:-1]
    return tuple(np.split(g, splits, axis=axis))


# ---------------------------------------------------------------------------
# reductions
# ---------------------------------------------------------------------------

def reduce_mean(x: GraphTensor, axis=None, keepdims: bool = False,
                name: str = "Mean") -> GraphTensor:
    return x.graph.add_op("Mean", [x], {"axis": axis, "keepdims": keepdims},
                          name=name).outputs[0]


def reduce_sum(x: GraphTensor, axis=None, keepdims: bool = False,
               name: str = "Sum") -> GraphTensor:
    return x.graph.add_op("Sum", [x], {"axis": axis, "keepdims": keepdims},
                          name=name).outputs[0]


@register_compute("Mean")
def _compute_mean(op, inputs, runtime):
    return (launch("reduce_mean", np.mean, inputs[0], axis=op.attrs["axis"],
                   keepdims=op.attrs["keepdims"]),)


@register_compute("Sum")
def _compute_sum(op, inputs, runtime):
    return (launch("reduce_sum", np.sum, inputs[0], axis=op.attrs["axis"],
                   keepdims=op.attrs["keepdims"]),)


def _reduce_grad(op, grads, mean: bool):
    g = grads[0]
    node = g.graph.add_op("ReduceGrad", [g, op.inputs[0]],
                          {"axis": op.attrs["axis"],
                           "keepdims": op.attrs["keepdims"], "mean": mean})
    return [node.outputs[0]]


@register_grad("Mean")
def _grad_mean(op, grads):
    return _reduce_grad(op, grads, mean=True)


@register_grad("Sum")
def _grad_sum(op, grads):
    return _reduce_grad(op, grads, mean=False)


@register_compute("ReduceGrad")
def _compute_reduce_grad(op, inputs, runtime):
    g, ref = inputs
    axis, keepdims, mean = op.attrs["axis"], op.attrs["keepdims"], op.attrs["mean"]
    g = np.asarray(g)
    if axis is not None and not keepdims:
        axes = axis if isinstance(axis, tuple) else (axis,)
        for a in sorted(a % ref.ndim for a in axes):
            g = np.expand_dims(g, a)
    out = np.broadcast_to(g, ref.shape).copy()
    if mean:
        if axis is None:
            count = ref.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([ref.shape[a] for a in axes]))
        out /= count
    return (out,)


# ---------------------------------------------------------------------------
# embedding / loss / dropout
# ---------------------------------------------------------------------------

def gather(params: GraphTensor, indices: GraphTensor,
           name: str = "GatherV2") -> GraphTensor:
    return params.graph.add_op("GatherV2", [params, indices],
                               name=name).outputs[0]


@register_compute("GatherV2")
def _compute_gather(op, inputs, runtime):
    params, indices = inputs
    return (K.embedding_forward(indices.astype(np.int64), params),)


@register_grad("GatherV2")
def _grad_gather(op, grads):
    g = grads[0]
    node = g.graph.add_op("GatherGrad", [g, op.inputs[0], op.inputs[1]])
    return [node.outputs[0], None]


@register_compute("GatherGrad")
def _compute_gather_grad(op, inputs, runtime):
    g, params, indices = inputs
    return (K.embedding_backward(g, indices.astype(np.int64), params.shape[0]),)


def sparse_softmax_cross_entropy(logits: GraphTensor, labels: GraphTensor,
                                 name: str = "SparseSoftmaxCrossEntropyWithLogits"
                                 ) -> GraphTensor:
    op = logits.graph.add_op("SparseSoftmaxCrossEntropyWithLogits",
                             [logits, labels], name=name, num_outputs=2)
    return op.outputs[0]


@register_compute("SparseSoftmaxCrossEntropyWithLogits")
def _compute_xent(op, inputs, runtime):
    logits, labels = inputs
    labels = labels.astype(np.int64)
    log_probs = K.log_softmax(logits, axis=-1)
    flat = log_probs.reshape(-1, log_probs.shape[-1])
    picked = flat[np.arange(flat.shape[0]), labels.reshape(-1)]
    loss = launch("nll_loss", lambda p: -p.mean(), picked)
    probs = np.exp(flat)
    one_hot = np.zeros_like(probs)
    one_hot[np.arange(flat.shape[0]), labels.reshape(-1)] = 1.0
    backprop = ((probs - one_hot) / flat.shape[0]).reshape(log_probs.shape)
    return (np.asarray(loss), backprop)


@register_grad("SparseSoftmaxCrossEntropyWithLogits")
def _grad_xent(op, grads):
    g = grads[0]
    node = g.graph.add_op("XentGrad", [g, op.outputs[1]])
    return [node.outputs[0], None]


@register_compute("XentGrad")
def _compute_xent_grad(op, inputs, runtime):
    g, backprop = inputs
    return (np.asarray(g) * backprop,)


def dropout(x: GraphTensor, rate: float = 0.5, training: bool = True,
            seed: int | None = None, name: str = "Dropout") -> GraphTensor:
    op = x.graph.add_op("Dropout", [x],
                        {"rate": rate, "training": training, "seed": seed},
                        name=name, num_outputs=2)
    return op.outputs[0]


@register_compute("Dropout")
def _compute_dropout(op, inputs, runtime):
    x = inputs[0]
    rate, training = op.attrs["rate"], op.attrs["training"]
    if not training or rate <= 0:
        return (x.copy(), np.ones_like(x))
    rng = np.random.default_rng(op.attrs["seed"])
    mask = (rng.random(x.shape) >= rate) / (1.0 - rate)
    return (launch("dropout", np.multiply, x, mask), mask)


@register_grad("Dropout")
def _grad_dropout(op, grads):
    g = grads[0]
    return [g.graph.add_op("Mul", [g, op.outputs[1]]).outputs[0]]


# ---------------------------------------------------------------------------
# state mutation / control
# ---------------------------------------------------------------------------

def assign_sub(var: GraphTensor, delta: GraphTensor,
               name: str = "AssignSub") -> Operation:
    if var.op.type != "Variable":
        raise ValueError("assign_sub target must be a Variable output")
    return var.graph.add_op("AssignSub", [var, delta],
                            {"var_name": var.op.name}, name=name)


@register_compute("AssignSub")
def _compute_assign_sub(op, inputs, runtime):
    current, delta = inputs
    updated = current - delta
    runtime.variables.write(op.attrs["var_name"], updated)
    return (updated,)


def assign_add(var: GraphTensor, delta: GraphTensor,
               name: str = "AssignAdd") -> Operation:
    if var.op.type != "Variable":
        raise ValueError("assign_add target must be a Variable output")
    return var.graph.add_op("AssignAdd", [var, delta],
                            {"var_name": var.op.name}, name=name)


@register_compute("AssignVar")
def _compute_assign_var(op, inputs, runtime):
    _, value = inputs
    runtime.variables.write(op.attrs["var_name"], value)
    return (value,)


@register_compute("AssignAdd")
def _compute_assign_add(op, inputs, runtime):
    current, delta = inputs
    updated = current + delta
    runtime.variables.write(op.attrs["var_name"], updated)
    return (updated,)


def group(ops, name: str = "NoOp", graph: Graph | None = None) -> Operation:
    """A no-output op with control dependencies on ``ops`` (tf.group)."""
    # explicit length check (not truthiness) mirroring _graph's identity
    # check: only a genuinely empty dependency list falls back
    g = ops[0].graph if len(ops) > 0 else _graph(graph)
    deps = [o if isinstance(o, Operation) else o.op for o in ops]
    return g.add_op("NoOp", [], name=name, num_outputs=1, control_inputs=deps)


@register_compute("NoOp")
def _compute_noop(op, inputs, runtime):
    return (np.zeros(()),)


def py_call(func, inputs, num_outputs: int = 1, attrs: dict | None = None,
            name: str = "PyCall", graph: Graph | None = None) -> Operation:
    """A python-callback op — the vehicle instrumentation routines ride in.

    ``func(*arrays)`` must return an array (or a tuple of ``num_outputs``).
    An input-less callback targets ``graph`` when given — routed through
    ``_graph``'s identity check, so a fresh *empty* explicit graph is
    honored — and the default graph otherwise.
    """
    inputs = list(inputs)
    g = inputs[0].graph if len(inputs) > 0 else _graph(graph)
    merged = {"func": func}
    merged.update(attrs or {})
    return g.add_op("PyCall", inputs, merged, name=name,
                    num_outputs=num_outputs)


@register_compute("PyCall")
def _compute_py_call(op, inputs, runtime):
    result = op.attrs["func"](*inputs)
    if not isinstance(result, tuple):
        result = (result,)
    return tuple(np.asarray(r) for r in result)


# ---------------------------------------------------------------------------
# symbolic-capture builders (repro.capture)
# ---------------------------------------------------------------------------

def capture_op(op_type: str, inputs, attrs: dict | None = None,
               num_outputs: int = 1, name: str | None = None,
               graph: Graph | None = None,
               control_inputs=()) -> Operation:
    """Append one captured op (eager op-type namespace) to ``graph``.

    Unlike the TF-style builders above, captured ops keep the *eager*
    operator names (``matmul``, ``conv2d``...); their compute functions wrap
    the eager :class:`~repro.eager.dispatch.OpDef` forwards (registered by
    :mod:`repro.capture.ops`).  Tagged ``captured`` so analyses and tools can
    distinguish them from hand-built TF-style graphs.
    """
    g = _graph(graph)
    op = g.add_op(op_type, list(inputs), dict(attrs or {}),
                  name=name or op_type, num_outputs=num_outputs,
                  control_inputs=control_inputs)
    op.tags["captured"] = True
    return op


def capture_variable(array: np.ndarray, name: str = "CapturedVariable",
                     trainable: bool = True,
                     graph: Graph | None = None) -> GraphTensor:
    """A ``Variable`` node whose store entry *aliases* ``array`` (no copy).

    Symbolic capture lifts eager parameters/buffers this way so eager
    in-place updates stay visible to the captured graph (and vice versa).
    """
    g = _graph(graph)
    op = g.add_op("Variable", [], {"trainable": trainable}, name=name)
    op.tags["captured"] = True
    g.variables.adopt(op.name, array)
    return op.outputs[0]


def capture_constant(value, name: str = "Const",
                     graph: Graph | None = None) -> GraphTensor:
    """A ``Const`` preserving the exact dtype of ``value``.

    Captured eager constants are already concrete arrays in the dtype the
    eager kernels saw; coercing to float64 (as :func:`constant` does) would
    change integer index/label arrays and break bit-equivalence.
    """
    op = _graph(graph).add_op("Const", [], {"value": np.asarray(value)},
                              name=name)
    op.tags["captured"] = True
    return op.outputs[0]


# AddN: gradient accumulation when a tensor has several consumers.
@register_compute("AddN")
def _compute_add_n(op, inputs, runtime):
    total = inputs[0]
    out = _pool_out(runtime, *inputs)
    for value in inputs[1:]:
        # after the first write ``total`` is the pooled buffer; in-place
        # accumulation into it is exact (same ufunc, same order)
        total = launch("ewise_add", np.add, total, value, out=out)
    return (total,)


@register_grad("AddN")
def _grad_add_n(op, grads):
    return [grads[0]] * len(op.inputs)
