"""Compiler-style operator fusion for the graph backend (paper Sec. 7).

The paper discusses how DNN compilers that fuse operators *remove
instrumentation points*, and sketches the fix: "an intermediate level that
maintains the relationship between the remaining instrumentation points and
the original ones".  This module implements both halves:

* :func:`fuse_graph` — a TVM/Grappler-flavoured optimization pass that fuses
  ``Conv2D(+BiasAdd)(+Relu)`` and ``MatMul(+BiasAdd)(+Relu)`` chains into
  single ``FusedConv2D``/``FusedMatMul`` operators (whenever the intermediate
  values have no other consumers and are not fetched);
* the **fusion provenance** record: every fused op carries
  ``tags["fused_from"]`` — the ordered list of original op types — which the
  standard mapping tool surfaces as ``context["fused_types"]`` so
  instrumentation tools can still find the points that fusion absorbed.
"""

from __future__ import annotations

import numpy as np

from ..kernels import nn as K
from ..kernels.runtime import launch
from .builder import register_compute
from .core import Graph, Operation
from .rewrite import copy_graph

__all__ = ["fuse_graph", "fusion_report"]


@register_compute("FusedConv2D")
def _compute_fused_conv(op, inputs, runtime):
    x, w = inputs[0], inputs[1]
    xc = np.ascontiguousarray(np.transpose(x, (0, 3, 1, 2)))
    wc = np.ascontiguousarray(np.transpose(w, (3, 2, 0, 1)))
    out = K.conv2d_forward(xc, wc, op.attrs["strides"], op.attrs["padding"])
    out = np.ascontiguousarray(np.transpose(out, (0, 2, 3, 1)))
    if op.attrs.get("has_bias"):
        out = launch("bias_add", np.add, out, inputs[2])
    if op.attrs.get("has_relu"):
        out = K.relu(out)
    return (out,)


@register_compute("FusedMatMul")
def _compute_fused_matmul(op, inputs, runtime):
    out = K.matmul(inputs[0], inputs[1])
    if op.attrs.get("has_bias"):
        out = launch("bias_add", np.add, out, inputs[2])
    if op.attrs.get("has_relu"):
        out = K.relu(out)
    return (out,)


_FUSABLE_HEADS = {"Conv2D": "FusedConv2D", "MatMul": "FusedMatMul"}


def _single_consumer(graph: Graph, op: Operation) -> Operation | None:
    """The unique consumer of op's single output, or None."""
    consumers = [candidate for candidate in graph.operations
                 for edge in candidate.inputs if edge.op is op]
    if len(consumers) == 1:
        return consumers[0]
    return None


def fuse_graph(graph: Graph,
               protected: set[str] | None = None) -> tuple[Graph, dict]:
    """Return an optimized copy of ``graph`` with fused operator chains.

    ``protected`` names ops that must survive (e.g. fetched tensors' ops).
    The returned report maps each fused op name to the original chain.
    """
    protected = protected or set()
    clone, mapping = copy_graph(graph)
    report: dict[str, list[str]] = {}
    consumed: set[str] = set()

    for op in list(clone.operations):
        fused_type = _FUSABLE_HEADS.get(op.type)
        if fused_type is None or op.name in consumed:
            continue
        chain = [op]
        cursor = op
        # try to absorb BiasAdd
        nxt = _single_consumer(clone, cursor)
        has_bias = False
        if (nxt is not None and nxt.type == "BiasAdd"
                and nxt.inputs[0].op is cursor and nxt.name not in protected
                and cursor.name not in protected):
            chain.append(nxt)
            cursor = nxt
            has_bias = True
        # try to absorb Relu
        nxt = _single_consumer(clone, cursor)
        has_relu = False
        if (nxt is not None and nxt.type == "Relu"
                and cursor.name not in protected
                and nxt.name not in protected):
            chain.append(nxt)
            cursor = nxt
            has_relu = True
        if len(chain) == 1:
            continue

        head = chain[0]
        attrs = {
            "strides": head.attrs.get("strides", (1, 1)),
            "padding": head.attrs.get("padding", (0, 0)),
            "transpose_a": head.attrs.get("transpose_a", False),
            "transpose_b": head.attrs.get("transpose_b", False),
            "has_bias": has_bias,
            "has_relu": has_relu,
        }
        inputs = list(head.inputs)
        if has_bias:
            inputs.append(chain[1].inputs[1])
        clone._internal_mutation = True
        try:
            fused = clone.add_op(fused_type, inputs, attrs,
                                 name=f"{head.name}_fused")
        finally:
            clone._internal_mutation = False
        fused.tags["fused_from"] = [link.type for link in chain]
        fused.tags["fused_names"] = [link.name for link in chain]
        report[fused.name] = [link.type for link in chain]

        # rewire consumers of the chain tail to the fused op
        tail_output = cursor.outputs[0]
        for candidate in clone.operations:
            if candidate is fused:
                continue
            for index, edge in enumerate(candidate.inputs):
                if edge is tail_output:
                    candidate.inputs[index] = fused.outputs[0]
        for link in chain:
            consumed.add(link.name)
        clone.version += 1

    # drop the now-dead chain ops (no consumers, not protected)
    survivors = []
    for op in clone.operations:
        if op.name in consumed and op.name not in protected:
            still_used = any(edge.op is op for candidate in clone.operations
                             if candidate.name not in consumed
                             for edge in candidate.inputs)
            if not still_used:
                continue
        survivors.append(op)
    # restore topological order (fused ops were appended after their
    # consumers were rewired to them)
    ordered: list[Operation] = []
    visited: set[str] = set()

    def visit(op: Operation) -> None:
        if op.name in visited:
            return
        visited.add(op.name)
        for edge in op.inputs:
            visit(edge.op)
        for dep in op.control_inputs:
            visit(dep)
        ordered.append(op)

    for op in survivors:
        visit(op)
    clone.operations = [op for op in ordered
                        if op.name in {s.name for s in survivors}]
    clone._by_name = {op.name: op for op in clone.operations}
    clone.version += 1
    return clone, report


def fusion_report(report: dict) -> str:
    lines = [f"{name}: {' + '.join(chain)}" for name, chain in report.items()]
    return "\n".join(lines)
