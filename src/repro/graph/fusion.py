"""Compiler-style operator fusion for the graph backend (paper Sec. 7).

The paper discusses how DNN compilers that fuse operators *remove
instrumentation points*, and sketches the fix: "an intermediate level that
maintains the relationship between the remaining instrumentation points and
the original ones".  This module implements both halves:

* :func:`fuse_graph` — a TVM/Grappler-flavoured optimization pass that fuses
  ``Conv2D(+BiasAdd)(+Relu)`` and ``MatMul(+BiasAdd)(+Relu)`` chains into
  single ``FusedConv2D``/``FusedMatMul`` operators, and linear **elementwise
  chains** (``Add``/``Sub``/``Mul``/``RealDiv``/``Neg``/``Square``/``Sqrt``/
  ``Relu``/``Tanh`` — e.g. a residual block's ``Add -> Relu``) into a single
  ``FusedElementwise`` op that replays the chain in-place over one buffer
  (whenever the intermediate values have no other consumers and are not
  fetched);
* the **fusion provenance** record: every fused op carries
  ``tags["fused_from"]`` — the ordered list of original op types — which the
  standard mapping tool surfaces as ``context["fused_types"]`` so
  instrumentation tools can still find the points that fusion absorbed.
"""

from __future__ import annotations

import numpy as np

from ..kernels import nn as K
from ..kernels.runtime import launch
from .builder import register_compute
from .core import Graph, Operation
from .rewrite import copy_graph

__all__ = ["fuse_graph", "fusion_report"]


@register_compute("FusedConv2D")
def _compute_fused_conv(op, inputs, runtime):
    x, w = inputs[0], inputs[1]
    xc = np.ascontiguousarray(np.transpose(x, (0, 3, 1, 2)))
    wc = np.ascontiguousarray(np.transpose(w, (3, 2, 0, 1)))
    out = K.conv2d_forward(xc, wc, op.attrs["strides"], op.attrs["padding"])
    out = np.ascontiguousarray(np.transpose(out, (0, 2, 3, 1)))
    # the epilogue stages run in place on the (private) conv result: same
    # ufuncs in the same order, so the bits match the unfused chain
    if op.attrs.get("has_bias"):
        out = launch("bias_add", np.add, out, inputs[2], out=out)
    if op.attrs.get("has_relu"):
        out = K.relu(out, out=out)
    return (out,)


@register_compute("FusedMatMul")
def _compute_fused_matmul(op, inputs, runtime):
    out = K.matmul(inputs[0], inputs[1])
    if op.attrs.get("has_bias"):
        out = launch("bias_add", np.add, out, inputs[2], out=out)
    if op.attrs.get("has_relu"):
        out = K.relu(out, out=out)
    return (out,)


#: elementwise op types a FusedElementwise chain may absorb.  Each entry
#: replays the exact kernel launch of the unfused compute, so fused
#: execution produces bit-identical values *and* kernel event streams.
_EWISE_UNARY = ("Neg", "Square", "Sqrt", "Relu", "Tanh")
_EWISE_BINARY = ("Add", "Sub", "Mul", "RealDiv")

#: captured graphs spell the same elementwise ops with their eager names
#: (lowercase, attr-free); fusion canonicalizes them so captured chains fuse
#: exactly like builder-built ones.  Forward ops a captured backward reads
#: are control targets and therefore never absorbed (their OpCtx stash must
#: keep happening), so this only fuses chains with no backward readers.
_CAPTURED_EWISE = {"add": "Add", "sub": "Sub", "mul": "Mul",
                   "div": "RealDiv", "neg": "Neg", "sqrt": "Sqrt",
                   "relu": "Relu", "tanh": "Tanh"}


def _canon_ewise(op: Operation) -> str | None:
    """Canonical elementwise type of a fusable op, or None."""
    if op.type in _EWISE_UNARY or op.type in _EWISE_BINARY:
        return op.type
    if not op.attrs:
        return _CAPTURED_EWISE.get(op.type)
    return None
_EWISE_BINARY_KERNELS = {
    "Add": ("ewise_add", np.add),
    "Sub": ("ewise_sub", np.subtract),
    "Mul": ("ewise_mul", np.multiply),
    "RealDiv": ("ewise_div", np.divide),
}


def _apply_ewise(op_type, a, b=None, out=None):
    if op_type == "Relu":
        return launch("relu", np.maximum, a, 0.0, out=out)
    if op_type == "Square":
        return launch("ewise_mul", np.multiply, a, a, out=out)
    if op_type == "Neg":
        return launch("ewise_neg", np.negative, a, out=out)
    if op_type == "Sqrt":
        return launch("ewise_sqrt", np.sqrt, a, out=out)
    if op_type == "Tanh":
        return launch("tanh", np.tanh, a, out=out)
    name, fn = _EWISE_BINARY_KERNELS[op_type]
    return launch(name, fn, a, b, out=out)


def _reusable(value, shape) -> bool:
    """Whether the chain value can serve as the next stage's out-buffer."""
    return (isinstance(value, np.ndarray) and value.dtype == np.float64
            and value.shape == shape)


@register_compute("FusedElementwise")
def _compute_fused_elementwise(op, inputs, runtime):
    """Replay the absorbed chain over a single rolling buffer.

    ``attrs["chain"]`` is a tuple of ``(op_type, side)`` links: ``side`` is
    ``None`` for the head and for unary links, and for a binary link names
    which operand position the chain value feeds (the other operand is the
    next external input).  The head writes into a fresh (or arena) buffer;
    every later link runs in place on it when shape/dtype allow, so an
    N-op chain costs one intermediate instead of N.
    """
    from .builder import _pool_out
    chain = op.attrs["chain"]
    head_type, _ = chain[0]
    if head_type in _EWISE_BINARY_KERNELS:
        operands = (inputs[0], inputs[1])
        pos = 2
    else:
        operands = (inputs[0],)
        pos = 1
    # captured graphs tag fused ops no_pool: a pinned consumer may stash the
    # fused output by reference in its backward OpCtx, which must outlive
    # any arena recycling of the buffer
    head_out = (None if op.tags.get("no_pool")
                else _pool_out(runtime, *operands))
    value = _apply_ewise(head_type, *operands, out=head_out)
    for op_type, side in chain[1:]:
        if op_type in _EWISE_BINARY_KERNELS:
            other = inputs[pos]
            pos += 1
            a, b = (value, other) if side == 0 else (other, value)
            shape = np.broadcast_shapes(np.shape(a), np.shape(b))
            ok = _reusable(value, shape) and (
                not isinstance(other, np.ndarray)
                or other.dtype == np.float64)
            out = value if ok else (
                None if op.tags.get("no_pool")
                else _pool_out(runtime, a, b))
            value = _apply_ewise(op_type, a, b, out=out)
        else:
            out = value if _reusable(value, np.shape(value)) else None
            value = _apply_ewise(op_type, value, out=out)
    return (value,)


_FUSABLE_HEADS = {"Conv2D": "FusedConv2D", "MatMul": "FusedMatMul"}


def _single_consumer(graph: Graph, op: Operation) -> Operation | None:
    """The unique consumer of op's single output, or None."""
    consumers = [candidate for candidate in graph.operations
                 for edge in candidate.inputs if edge.op is op]
    if len(consumers) == 1:
        return consumers[0]
    return None


def fuse_graph(graph: Graph,
               protected: set[str] | None = None) -> tuple[Graph, dict]:
    """Return an optimized copy of ``graph`` with fused operator chains.

    ``protected`` names ops that must survive (e.g. fetched tensors' ops).
    The returned report maps each fused op name to the original chain.
    """
    protected = protected or set()
    clone, mapping = copy_graph(graph)
    # captured graphs carry their guard key here; replay relies on it
    clone.guard_token = graph.guard_token
    report: dict[str, list[str]] = {}
    consumed: set[str] = set()

    for op in list(clone.operations):
        fused_type = _FUSABLE_HEADS.get(op.type)
        if fused_type is None or op.name in consumed:
            continue
        chain = [op]
        cursor = op
        # try to absorb BiasAdd
        nxt = _single_consumer(clone, cursor)
        has_bias = False
        if (nxt is not None and nxt.type == "BiasAdd"
                and nxt.inputs[0].op is cursor and nxt.name not in protected
                and cursor.name not in protected):
            chain.append(nxt)
            cursor = nxt
            has_bias = True
        # try to absorb Relu
        nxt = _single_consumer(clone, cursor)
        has_relu = False
        if (nxt is not None and nxt.type == "Relu"
                and cursor.name not in protected
                and nxt.name not in protected):
            chain.append(nxt)
            cursor = nxt
            has_relu = True
        if len(chain) == 1:
            continue

        head = chain[0]
        attrs = {
            "strides": head.attrs.get("strides", (1, 1)),
            "padding": head.attrs.get("padding", (0, 0)),
            "transpose_a": head.attrs.get("transpose_a", False),
            "transpose_b": head.attrs.get("transpose_b", False),
            "has_bias": has_bias,
            "has_relu": has_relu,
        }
        inputs = list(head.inputs)
        if has_bias:
            inputs.append(chain[1].inputs[1])
        clone._internal_mutation = True
        try:
            fused = clone.add_op(fused_type, inputs, attrs,
                                 name=f"{head.name}_fused")
        finally:
            clone._internal_mutation = False
        fused.tags["fused_from"] = [link.type for link in chain]
        fused.tags["fused_names"] = [link.name for link in chain]
        report[fused.name] = [link.type for link in chain]

        # rewire consumers of the chain tail to the fused op
        tail_output = cursor.outputs[0]
        for candidate in clone.operations:
            if candidate is fused:
                continue
            for index, edge in enumerate(candidate.inputs):
                if edge is tail_output:
                    candidate.inputs[index] = fused.outputs[0]
        for link in chain:
            consumed.add(link.name)
        clone.version += 1

    # -- elementwise chains: Add/Sub/Mul/.../Relu runs of length >= 2 ---------
    control_targets = {dep.name for candidate in clone.operations
                       for dep in candidate.control_inputs}

    def _chainable(candidate: Operation) -> bool:
        return (_canon_ewise(candidate) is not None
                and len(candidate.outputs) == 1
                and candidate.name not in consumed
                and candidate.name not in protected
                and candidate.name not in control_targets)

    def _is_extension(producer: Operation, candidate: Operation) -> bool:
        # candidate will be absorbed into producer's chain instead
        return (_chainable(producer)
                and _single_consumer(clone, producer) is candidate)

    for op in list(clone.operations):
        if not _chainable(op):
            continue
        if any(_is_extension(edge.op, op) for edge in op.inputs):
            continue  # mid-chain: the head's walk will absorb it
        chain = [op]
        spec: list[tuple[str, int | None]] = [(_canon_ewise(op), None)]
        external = list(op.inputs)
        cursor = op
        while True:
            nxt = _single_consumer(clone, cursor)
            if nxt is None or not _chainable(nxt):
                break
            canon = _canon_ewise(nxt)
            if canon in _EWISE_BINARY:
                feeds0 = nxt.inputs[0].op is cursor
                feeds1 = nxt.inputs[1].op is cursor
                if feeds0 and feeds1:
                    break  # both operands come from the chain value
                side = 0 if feeds0 else 1
                spec.append((canon, side))
                external.append(nxt.inputs[1 - side])
            else:
                spec.append((canon, None))
            chain.append(nxt)
            cursor = nxt
        if len(chain) < 2:
            continue
        clone._internal_mutation = True
        try:
            fused = clone.add_op("FusedElementwise", external,
                                 {"chain": tuple(spec)},
                                 name=f"{chain[0].name}_ewfused")
        finally:
            clone._internal_mutation = False
        fused.tags["fused_from"] = [link.type for link in chain]
        fused.tags["fused_names"] = [link.name for link in chain]
        report[fused.name] = [link.type for link in chain]
        tail_output = cursor.outputs[0]
        for candidate in clone.operations:
            if candidate is fused:
                continue
            for index, edge in enumerate(candidate.inputs):
                if edge is tail_output:
                    candidate.inputs[index] = fused.outputs[0]
        consumed.update(link.name for link in chain)
        clone.version += 1

    # drop the now-dead chain ops (no consumers, not protected)
    survivors = []
    for op in clone.operations:
        if op.name in consumed and op.name not in protected:
            still_used = any(edge.op is op for candidate in clone.operations
                             if candidate.name not in consumed
                             for edge in candidate.inputs)
            if not still_used:
                continue
        survivors.append(op)
    # restore topological order (fused ops were appended after their
    # consumers were rewired to them)
    ordered: list[Operation] = []
    visited: set[str] = set()

    def visit(op: Operation) -> None:
        if op.name in visited:
            return
        visited.add(op.name)
        for edge in op.inputs:
            visit(edge.op)
        for dep in op.control_inputs:
            visit(dep)
        ordered.append(op)

    for op in survivors:
        visit(op)
    clone.operations = [op for op in ordered
                        if op.name in {s.name for s in survivors}]
    clone._by_name = {op.name: op for op in clone.operations}
    clone.version += 1
    return clone, report


def fusion_report(report: dict) -> str:
    lines = [f"{name}: {' + '.join(chain)}" for name, chain in report.items()]
    return "\n".join(lines)
