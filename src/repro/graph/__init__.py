"""Graph (define-then-run) execution backend — the TensorFlow analog.

Models are built as append-only data-flow graphs with TF-style op types and
NHWC layout, differentiated by constructing an explicit backward graph, and
executed by a Session with run hooks.
"""

from . import builder, fusion, optim, rewrite
from .core import (Graph, GraphFinalizedError, GraphTensor, Operation,
                   VariableStore, default_graph, get_default_graph)
from .gradients import gradients
from .session import RunContext, Session, SessionRunHook

__all__ = [
    "builder", "fusion", "optim", "rewrite", "Graph", "GraphTensor", "Operation",
    "VariableStore", "GraphFinalizedError", "default_graph",
    "get_default_graph", "gradients", "Session", "SessionRunHook",
    "RunContext",
]
