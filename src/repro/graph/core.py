"""Core data structures of the graph (define-then-run) backend.

This is the reproduction's TensorFlow-1.x analog: a model is first built as an
append-only :class:`Graph` of symbolic :class:`Operation` nodes connected by
:class:`GraphTensor` edges, then executed by a
:class:`~repro.graph.session.Session`.  Mirroring TF semantics that matter to
the paper:

* the graph is **append-only** for users and **finalized** (sealed) once a
  session first runs it — the limitation that breaks user-level tracing via
  graph transformation (Sec. 7);
* variables live in a :class:`VariableStore` shared between a vanilla graph
  and any instrumented copies the Amanda driver builds, so graph switching
  keeps computation state consistent (Sec. 5.3);
* op types use TensorFlow naming (``Conv2D``, ``BiasAdd``...) and NHWC/HWIO
  layouts, so the context MappingTool has a real divergence to normalize.
"""

from __future__ import annotations

import itertools
from typing import Any, Iterable

import numpy as np

__all__ = ["Graph", "GraphTensor", "Operation", "VariableStore",
           "default_graph", "get_default_graph", "GraphFinalizedError",
           "SKIP_TYPES", "topo_plan", "plan_levels"]

#: op types the instrumentation machinery never analyzes or re-instruments:
#: ``PyCall`` nodes are themselves instrumentation artifacts and ``NoOp``
#: anchors carry no data.  Shared by the graph driver and the static verifier.
SKIP_TYPES = frozenset({"PyCall", "NoOp"})


class GraphFinalizedError(RuntimeError):
    """Raised when user code mutates a graph already submitted to a session."""


def topo_plan(roots: Iterable["Operation"]) -> list["Operation"]:
    """Depth-first topological order over the dependency closure of ``roots``.

    Follows data *and* control dependencies.  This is the single scheduling
    model of the graph backend: :meth:`Session._plan` executes it, and the
    static liveness estimator (:mod:`repro.analysis.liveness`) replays it
    symbolically — keeping the two in lockstep by construction.  (Creation
    order is not sufficient: the rewriter may append a node that earlier ops
    were rewired to consume.)
    """
    plan: list[Operation] = []
    visited: set[str] = set()
    stack: list[tuple[Operation, bool]] = [(op, False) for op in roots]
    while stack:
        op, expanded = stack.pop()
        if expanded:
            plan.append(op)
            continue
        if op.name in visited:
            continue
        visited.add(op.name)
        stack.append((op, True))
        for edge in op.inputs:
            if edge.op.name not in visited:
                stack.append((edge.op, False))
        for dep in op.control_inputs:
            if dep.name not in visited:
                stack.append((dep, False))
    return plan


def plan_levels(plan: list["Operation"],
                extra_deps: dict | None = None) -> list[list["Operation"]]:
    """Partition a topological plan into dependency *wavefronts*.

    Level ``L`` holds every op whose longest dependency chain within the plan
    has length ``L``; all ops in one level are mutually independent (no data
    or control path connects them), so a parallel executor may run each level
    concurrently with a barrier between levels.  Within a level, ops keep
    their plan order, so the partition is deterministic.

    ``extra_deps`` (op name -> iterable of predecessor op names) adds
    serialization edges beyond the graph's own data/control edges — the race
    analysis (:mod:`repro.analysis.effects`) uses it to barrier-separate
    effect-conflicting op pairs without mutating the (finalized) graph.
    Every extra predecessor must precede its op in ``plan``; a predecessor
    that does not (a typo'd or stale serialization edge) raises
    :class:`ValueError` — silently dropping it would silently drop the race
    protection it encodes.
    """
    level: dict[str, int] = {}
    levels: list[list[Operation]] = []
    for op in plan:
        depth = 0
        for edge in op.inputs:
            depth = max(depth, level[edge.op.name] + 1)
        for dep in op.control_inputs:
            depth = max(depth, level[dep.name] + 1)
        if extra_deps:
            for name in extra_deps.get(op.name, ()):
                prior = level.get(name)
                if prior is None:
                    raise ValueError(
                        f"extra_deps predecessor {name!r} of op "
                        f"{op.name!r} does not precede it in the plan")
                depth = max(depth, prior + 1)
        level[op.name] = depth
        if depth == len(levels):
            levels.append([])
        levels[depth].append(op)
    return levels


class GraphTensor:
    """A symbolic edge: the ``index``-th output of ``op``."""

    __slots__ = ("op", "index", "name")

    def __init__(self, op: "Operation", index: int) -> None:
        self.op = op
        self.index = index
        self.name = f"{op.name}:{index}"

    @property
    def graph(self) -> "Graph":
        return self.op.graph

    # arithmetic sugar builds graph nodes (like TF operator overloading)
    def _binary(self, op_type: str, other) -> "GraphTensor":
        from . import builder
        other = builder.convert_to_tensor(other, graph=self.graph)
        return self.graph.add_op(op_type, [self, other]).outputs[0]

    def __add__(self, other):
        return self._binary("Add", other)

    __radd__ = __add__

    def __sub__(self, other):
        return self._binary("Sub", other)

    def __mul__(self, other):
        return self._binary("Mul", other)

    __rmul__ = __mul__

    def __truediv__(self, other):
        return self._binary("RealDiv", other)

    def __neg__(self):
        return self.graph.add_op("Neg", [self]).outputs[0]

    def __repr__(self) -> str:
        return f"GraphTensor({self.name})"


class Operation:
    """A node in the data-flow graph."""

    __slots__ = ("graph", "type", "name", "inputs", "attrs", "outputs",
                 "control_inputs", "forward_op", "op_id", "tags")

    def __init__(self, graph: "Graph", op_type: str, name: str,
                 inputs: Iterable[GraphTensor], attrs: dict | None = None,
                 num_outputs: int = 1,
                 control_inputs: Iterable["Operation"] = ()) -> None:
        self.graph = graph
        self.type = op_type
        self.name = name
        self.inputs = list(inputs)
        self.attrs = dict(attrs or {})
        self.outputs = [GraphTensor(self, i) for i in range(num_outputs)]
        self.control_inputs = list(control_inputs)
        #: for backward ops: the forward Operation they differentiate
        self.forward_op: Operation | None = None
        #: stable instrumentation id, assigned by the framework
        self.op_id: int | None = None
        #: free-form annotations (instrumentation bookkeeping)
        self.tags: dict[str, Any] = {}

    def __repr__(self) -> str:
        return f"Operation(type={self.type!r}, name={self.name!r})"


class VariableStore:
    """Mutable storage for variable values, shared across graph instances.

    The store also tracks the identity of every array it holds (``owns``),
    so the executor's allocation accounting can recognize op outputs that
    *alias* stored state — a ``Variable`` read returns the stored array
    itself — instead of counting them as freshly allocated activation bytes.
    """

    def __init__(self) -> None:
        self._values: dict[str, np.ndarray] = {}
        self._array_ids: dict[int, str] = {}

    def _forget(self, name: str) -> None:
        old = self._values.get(name)
        if old is not None:
            self._array_ids.pop(id(old), None)

    def create(self, name: str, value: np.ndarray) -> None:
        self._forget(name)
        arr = np.array(value, dtype=np.float64)
        self._values[name] = arr
        self._array_ids[id(arr)] = name

    def adopt(self, name: str, array: np.ndarray) -> None:
        """Store ``array`` itself (no copy) as variable ``name``.

        Symbolic capture lifts eager parameters into Variables by *aliasing*
        their live buffers: eager in-place updates (optimizer steps,
        batch-norm running stats, ``load_state_dict``) then stay visible to
        the captured graph without any synchronization step, and vice versa.
        """
        self._forget(name)
        arr = np.asarray(array)
        self._values[name] = arr
        self._array_ids[id(arr)] = name

    def read(self, name: str) -> np.ndarray:
        return self._values[name]

    def write(self, name: str, value: np.ndarray) -> None:
        self._forget(name)
        arr = np.asarray(value)
        self._values[name] = arr
        self._array_ids[id(arr)] = name

    def update_in_place(self, name: str, fn) -> None:
        new = fn(self._values[name])
        self._forget(name)
        self._values[name] = new
        self._array_ids[id(new)] = name

    def owns(self, array) -> bool:
        """Whether ``array`` is one of the store's value arrays."""
        return id(array) in self._array_ids

    def names(self) -> list[str]:
        return sorted(self._values)

    def __contains__(self, name: str) -> bool:
        return name in self._values


class Graph:
    """An append-only data-flow graph of operations."""

    def __init__(self, variable_store: VariableStore | None = None) -> None:
        self.operations: list[Operation] = []
        self._by_name: dict[str, Operation] = {}
        self._name_counter = itertools.count()
        self.variables = variable_store or VariableStore()
        self.finalized = False
        self.version = 0
        #: instrumented copies bypass the finalize check (driver-internal)
        self._internal_mutation = False
        #: (fingerprint, version) memo — valid while the version is unchanged
        self._fingerprint_memo: tuple[tuple, int] | None = None
        #: capture guard-bucket token: two captured graphs of the same module
        #: traced under different guards (input shapes/dtypes, train/eval)
        #: are structurally near-identical, so the token is mixed into the
        #: fingerprint digest to keep their cache entries distinct
        self.guard_token: Any = None

    # -- construction ---------------------------------------------------------
    def unique_name(self, base: str) -> str:
        name = base
        while name in self._by_name:
            name = f"{base}_{next(self._name_counter)}"
        return name

    def add_op(self, op_type: str, inputs: Iterable[GraphTensor] = (),
               attrs: dict | None = None, name: str | None = None,
               num_outputs: int = 1,
               control_inputs: Iterable[Operation] = ()) -> Operation:
        if self.finalized and not self._internal_mutation:
            raise GraphFinalizedError(
                f"graph is finalized; cannot add op {op_type!r}. "
                "(TensorFlow graphs seal after session submission.)")
        name = self.unique_name(name or op_type)
        op = Operation(self, op_type, name, inputs, attrs, num_outputs,
                       control_inputs)
        self.operations.append(op)
        self._by_name[name] = op
        self.version += 1
        return op

    def get_operation(self, name: str) -> Operation:
        return self._by_name[name]

    def get_tensor(self, name: str) -> GraphTensor:
        op_name, _, index = name.partition(":")
        return self._by_name[op_name].outputs[int(index or 0)]

    # -- lifecycle -------------------------------------------------------------
    def finalize(self) -> None:
        self.finalized = True

    def fingerprint(self) -> tuple:
        """Structural identity used by the session/driver plan caches.

        ``(id, version, structural digest)``: the digest guards against id
        reuse after a graph is garbage-collected (a recycled ``id()`` with a
        coincidentally equal version must not resurrect a stale cache entry).
        Computing it walks the whole graph, an O(ops) cost ``Session.run``
        would otherwise pay on every iteration — so the result is memoized
        and only recomputed when ``version`` moves (user mutation before
        finalization, or a driver rewrite of an instrumented copy).
        """
        memo = self._fingerprint_memo
        if memo is not None and memo[1] == self.version:
            return memo[0]
        digest = hash((self.guard_token, tuple(
            (op.type, op.name,
             tuple(edge.name for edge in op.inputs),
             tuple(dep.name for dep in op.control_inputs))
            for op in self.operations)))
        fingerprint = (id(self), self.version, digest)
        self._fingerprint_memo = (fingerprint, self.version)
        return fingerprint

    # -- queries ----------------------------------------------------------------
    def consumers(self, tensor: GraphTensor) -> list[Operation]:
        return [op for op in self.operations if tensor in op.inputs]

    def __len__(self) -> int:
        return len(self.operations)

    def __repr__(self) -> str:
        return f"Graph({len(self.operations)} ops, version={self.version})"


_default_graph_stack: list[Graph] = [Graph()]


def get_default_graph() -> Graph:
    return _default_graph_stack[-1]


class default_graph:
    """Context manager making ``graph`` the implicit build target."""

    def __init__(self, graph: Graph | None = None) -> None:
        # explicit identity check (same falsy-empty-graph hazard as
        # builder._graph): a fresh Graph has len() == 0 and is falsy, and
        # ``with default_graph(my_graph):`` must target *that* graph even
        # before its first op is added
        self.graph = graph if graph is not None else Graph()

    def __enter__(self) -> Graph:
        _default_graph_stack.append(self.graph)
        return self.graph

    def __exit__(self, *exc) -> bool:
        _default_graph_stack.pop()
        return False
