"""Graph execution: Session, execution plans, and session hooks.

``Session.run(fetches, feed_dict)`` compiles (and caches) an execution plan —
the dependency closure of the fetches in topological order — then evaluates it
with the runtime compute functions.  Mirrors the TF-1 details the paper leans
on:

* the graph *finalizes* on first submission (user mutations then raise);
* :class:`SessionRunHook` offers the ``before_run``/``after_run`` interface —
  the session-hook instrumentation baseline, which can only attach extra
  fetches, not rewrite the graph;
* the Amanda graph driver intercepts ``Session.run`` via the class-level
  ``run_interceptor`` seam to swap in an instrumented graph (graph switching,
  Sec. 5.3).

Two executors share the compiled plan (see DESIGN.md, "Parallel execution"
and "Slot-table execution and arena reuse"):

* the **serial** executor walks the topological plan in order and keeps every
  intermediate alive until the run ends — the reference semantics;
* the **wavefront** executor (``amanda.config.num_workers > 1``, env
  ``AMANDA_NUM_WORKERS``) partitions the plan into dependency levels and runs
  each level across a thread pool (numpy/BLAS release the GIL on the hot
  kernels), releasing every intermediate at its statically-computed last-use
  level so the runtime memory peak tracks the static liveness estimate.

Both executors move values through an integer-indexed **slot table** assigned
at plan-compile time (one stable slot id per op output) instead of name-keyed
dicts, so the per-op framework overhead is a couple of list indexings.  With
``amanda.config.arena_reuse`` on (env ``AMANDA_ARENA``) freed intermediates
additionally return to a size-bucketed :class:`repro.eager.alloc.Arena` at
their last use — per-op last-use *steps* for the serial path, last-use levels
for the wavefront path — and elementwise computes write into recycled
buffers, so steady-state runs stop allocating.  Results stay bit-identical;
fetched arena buffers are copied out before the pool recycles them.

Parallel eligibility is decided by the static effect system
(:mod:`repro.analysis.effects`): plan compilation runs the race detector,
injects serialization edges between (only) the effect-conflicting op pairs,
and the plan runs wavefronted with those pairs barrier-separated — ordering
each pair by plan position reproduces the serial executor's per-key state
access sequence, so results stay bit-identical.  Only two conditions still
force the whole plan serial: an effect-*opaque* op (a ``PyCall`` whose tool
declared no effects) and a kernel subscriber demanding in-order delivery.
``config.effect_analysis = False`` (env ``AMANDA_EFFECT_ANALYSIS=0``)
restores the legacy all-or-nothing rule — any store writer, training batch
norm or non-``parallel_safe`` PyCall falls back serial — kept as an escape
hatch and as the A/B baseline for ``benchmarks/bench_effects_ab.py``.
``Session.last_serialization_report`` records, per run, which executor ran,
why a fallback happened, and every serialized op with its conflict reason.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..core.config import config
from ..eager import alloc
from ..kernels.runtime import runtime as kernel_runtime
from .builder import COMPUTE
from .core import (Graph, GraphTensor, Operation, VariableStore, plan_levels,
                   topo_plan)

__all__ = ["Session", "SessionRunHook", "RunContext", "CompiledPlan",
           "SerializationReport"]


class SessionRunHook:
    """TF-style session hook: observe runs and request extra fetches."""

    def before_run(self, run_context: "RunContext"):
        """Return extra fetches (list of GraphTensor) or None."""
        return None

    def after_run(self, run_context: "RunContext", run_values) -> None:
        pass


@dataclass
class RunContext:
    session: "Session"
    fetches: list
    feed_dict: dict
    extra_results: dict = field(default_factory=dict)


class _Runtime:
    """Per-run evaluation state handed to compute functions."""

    def __init__(self, feeds: dict[str, np.ndarray], variables: VariableStore,
                 arena: alloc.Arena | None = None):
        self.feeds = feeds
        self.variables = variables
        self.arena = arena

    def ewise_out(self, *operands) -> np.ndarray | None:
        """A recycled output buffer for an elementwise kernel, or ``None``.

        Returns an arena buffer shaped like the broadcast of ``operands``
        when the arena is on and every operand is a float64 ndarray (so the
        kernel's result dtype is unchanged); ``None`` otherwise — numpy
        ufuncs treat ``out=None`` as "allocate fresh", so computes can pass
        the result through unconditionally.  Safe from wavefront workers.
        """
        arena = self.arena
        if arena is None:
            return None
        shapes = []
        for value in operands:
            if not (isinstance(value, np.ndarray)
                    and value.dtype == np.float64):
                return None
            shapes.append(value.shape)
        return arena.acquire(np.broadcast_shapes(*shapes))


#: op types whose compute writes the shared variable store — under the
#: legacy (pre-effect-system) classification their presence forced serial
_STORE_WRITERS = frozenset({"AssignSub", "AssignAdd", "AssignVar"})


@dataclass(frozen=True)
class SerializationReport:
    """Structured record of the most recent run's executor decision.

    ``executor`` is ``"wavefront"`` or ``"serial"``; ``fallback_reason``
    names the construct that forced a serial run despite ``num_workers > 1``
    (None for a plain single-worker run or a successful wavefront run);
    ``conflicts`` lists the effect-conflicting op pairs a wavefront run
    serialized via injected edges.
    """

    executor: str
    fallback_reason: str | None = None
    conflicts: tuple = ()  # repro.analysis.effects.Conflict pairs

    @property
    def parallel(self) -> bool:
        return self.executor == "wavefront"

    @property
    def serialized_ops(self) -> dict[str, list[str]]:
        """Every op serialized by an injected edge -> its conflict reasons."""
        ops: dict[str, list[str]] = {}
        for conflict in self.conflicts:
            ops.setdefault(conflict.first, []).append(
                conflict.describe(conflict.first))
            ops.setdefault(conflict.second, []).append(
                conflict.describe(conflict.second))
        return ops

    def __str__(self) -> str:
        if self.fallback_reason is not None:
            return f"serial executor: {self.fallback_reason}"
        if not self.parallel:
            return "serial executor (single worker)"
        if not self.conflicts:
            return "wavefront executor, no conflicting op pairs"
        lines = [f"wavefront executor, {len(self.conflicts)} conflicting "
                 f"op pair(s) serialized:"]
        lines += [f"  {conflict}" for conflict in self.conflicts]
        return "\n".join(lines)


class CompiledPlan:
    """A cached execution plan: topo order, wavefront levels, lifetimes.

    Compiled once per ``(graph fingerprint, fetches)`` and replayed by every
    later ``run()``.  Compilation runs the static race analysis
    (:func:`repro.analysis.effects.analyze_plan`) and computes the wavefront
    levels *with the analysis' serialization edges injected*, so
    effect-conflicting op pairs land in different levels and the barrier
    between levels orders them like the serial executor would.

    Compilation also lowers the plan onto an integer-indexed **slot table**:
    every op output gets a stable slot id (``slot_base[name] + output
    index``), ``input_slots[i]`` holds the slot ids op ``i`` reads and
    ``output_base[i]`` where it publishes, so the executors never touch a
    name-keyed dict on the hot path.

    ``release_after_level[L]`` lists the ops whose outputs see their last
    consumer in level ``L`` (fetched ops are never listed), so the wavefront
    executor can free each intermediate at its statically computed last use;
    ``release_levels``/``release_after_step`` are the same lifetimes lowered
    to op indices — per wavefront level and per serial *step* (the serial
    executor uses the latter only in arena mode; without the arena it keeps
    every intermediate alive, the reference semantics).
    ``serial_only_reason`` names the first effect-opaque op (which makes the
    analysis — and therefore parallel execution — unsound), or ``None`` when
    the plan is wavefront-eligible.  ``legacy_serial_reason`` preserves the
    pre-effect-system all-or-nothing verdict for the
    ``config.effect_analysis = False`` escape hatch.

    Both classifications and the race analysis happen once here; the per-op
    effect signatures are additionally memoized on the ops themselves (and
    survive the driver's graph cloning), so plan recompilation after a
    ``tool_epoch`` bump never redoes the per-op effect scan.
    """

    __slots__ = ("ops", "levels", "position", "release_after_level",
                 "races", "serial_only_reason", "legacy_serial_reason",
                 "num_slots", "slot_base", "input_slots", "output_base",
                 "computes", "level_indices", "release_levels",
                 "release_after_step", "remat", "remat_error")

    def __init__(self, ops: list[Operation], fetch_ops: tuple[str, ...],
                 memory_budget: int = 0,
                 feed_shapes: dict[str, tuple] | None = None):
        # lazy import: the analysis package sits above the graph core in the
        # layering (same pattern as the graph driver's verifier import)
        from ..analysis.effects import analyze_plan
        self.ops = ops
        self.races = analyze_plan(ops)
        self.levels = plan_levels(ops, extra_deps=self.races.extra_edges)
        self.position = {op.name: i for i, op in enumerate(ops)}
        level_of = {op.name: i for i, level in enumerate(self.levels)
                    for op in level}
        last_level = dict(level_of)
        for op in ops:
            for edge in op.inputs:
                last_level[edge.op.name] = max(last_level[edge.op.name],
                                               level_of[op.name])
        fetched = set(fetch_ops)
        self.release_after_level: list[list[str]] = [[] for _ in self.levels]
        for op in ops:
            if op.name not in fetched:
                self.release_after_level[last_level[op.name]].append(op.name)
        self.serial_only_reason = self.races.serial_only_reason
        self.legacy_serial_reason = self._classify_legacy(ops)

        # -- slot table: one stable integer slot per op output --------------
        self.slot_base: dict[str, int] = {}
        next_slot = 0
        for op in ops:
            self.slot_base[op.name] = next_slot
            next_slot += len(op.outputs)
        self.num_slots = next_slot
        self.input_slots: list[tuple[int, ...]] = [
            tuple(self.slot_base[edge.op.name] + edge.index
                  for edge in op.inputs)
            for op in ops]
        self.output_base: list[int] = [self.slot_base[op.name] for op in ops]
        # compute callables resolved once at compile time; a None entry
        # (op type registered after this plan compiled) falls back to a
        # registry lookup at execution
        self.computes: list = [COMPUTE.get(op.type) for op in ops]
        self.level_indices: list[tuple[int, ...]] = [
            tuple(self.position[op.name] for op in level)
            for level in self.levels]
        self.release_levels: list[tuple[int, ...]] = [
            tuple(self.position[name] for name in names)
            for names in self.release_after_level]
        # serial last-use steps: an op's outputs die once the last op that
        # reads them has executed (its own step when nothing reads them)
        last_step = {op.name: i for i, op in enumerate(ops)}
        for i, op in enumerate(ops):
            for edge in op.inputs:
                if last_step[edge.op.name] < i:
                    last_step[edge.op.name] = i
        steps: list[list[int]] = [[] for _ in ops]
        for op in ops:
            if op.name not in fetched:
                steps[last_step[op.name]].append(self.position[op.name])
        self.release_after_step: list[tuple[int, ...]] = [
            tuple(step) for step in steps]

        # -- memory-budgeted lowering (amanda.config.memory_budget) ----------
        # with a budget the static rematerialization pass replaces the
        # executable arrays above with a per-*instance* schedule: evicted
        # intermediates are freed at their scheduled last use and republished
        # by recompute instances (extra slot-table entries over the same
        # slots) before later consumers run
        self.remat = None
        self.remat_error: str | None = None
        if memory_budget > 0 and ops:
            try:
                self._lower_remat(ops, fetch_ops, memory_budget, feed_shapes)
            except Exception as exc:  # budgeting must never break execution
                self.remat = None
                self.remat_error = f"{type(exc).__name__}: {exc}"

    def _lower_remat(self, ops: list[Operation], fetch_ops: tuple[str, ...],
                     budget: int, feed_shapes: dict | None) -> None:
        from ..analysis.remat import op_costs, plan_remat
        bytes_of, flops_of, _unknown = op_costs(
            ops, ops[0].graph, feed_shapes=feed_shapes)
        schedule = plan_remat(ops, fetch_ops, budget, bytes_of, flops_of,
                              extra_deps=self.races.extra_edges)
        self.remat = schedule
        # slot table and base positions are untouched: a recompute instance
        # republishes the *same* slots its op always owned
        inst_ops = [ops[i] for i in schedule.instances]
        self.ops = inst_ops
        self.computes = [COMPUTE.get(op.type) for op in inst_ops]
        self.input_slots = [
            tuple(self.slot_base[edge.op.name] + edge.index
                  for edge in op.inputs)
            for op in inst_ops]
        self.output_base = [self.slot_base[op.name] for op in inst_ops]
        self.level_indices = [tuple(level) for level in schedule.levels]
        self.release_levels = [tuple(level) for level in schedule.release_levels]
        self.release_after_step = list(schedule.release_after_step)
        self.levels = [[inst_ops[t] for t in level]
                       for level in schedule.levels]
        self.release_after_level = [[inst_ops[t].name for t in level]
                                    for level in schedule.release_levels]

    @staticmethod
    def _classify_legacy(ops: list[Operation]) -> str | None:
        """Pre-effect-system whole-plan verdict (``effect_analysis`` off)."""
        for op in ops:
            if op.type == "PyCall" and not op.tags.get("parallel_safe"):
                return f"PyCall op {op.name!r} without parallel_safe tag"
            if op.type in _STORE_WRITERS:
                return f"variable-store writer {op.name!r} ({op.type})"
            if op.type == "FusedBatchNorm" and op.attrs.get("training"):
                return f"training-mode batch norm {op.name!r}"
        return None

    @property
    def parallel_safe(self) -> bool:
        return self.serial_only_reason is None

    def __repr__(self) -> str:
        remat = ""
        if self.remat is not None:
            remat = (f", remat={self.remat.num_recomputes} recomputes"
                     f"/{self.remat.budget}B budget")
        return (f"CompiledPlan({len(self.ops)} ops, {len(self.levels)} levels, "
                f"parallel_safe={self.parallel_safe}, "
                f"{len(self.races.conflicts)} serialized pairs{remat})")


class Session:
    """Executes a graph; holds the plan cache and registered hooks."""

    #: class-level interception seam used by the Amanda graph driver:
    #: ``run_interceptor(session, fetches, feed_dict, run_impl) -> results``
    run_interceptor: Callable | None = None

    def __init__(self, graph: Graph, hooks: list[SessionRunHook] | None = None):
        self.graph = graph
        self.hooks: list[SessionRunHook] = list(hooks or [])
        #: LRU-ordered plan cache, bounded by ``config.plan_cache_size``
        self._plan_cache: OrderedDict[tuple, CompiledPlan] = OrderedDict()
        #: plan-cache key -> tenant that compiled it (None outside serving)
        self._plan_owner: dict[tuple, str | None] = {}
        #: set by the serving runtime before each batch: entries compiled
        #: while set are charged to this tenant, and eviction respects
        #: per-tenant quotas (a tenant cycling budget-variant plans evicts
        #: its own entries before touching another tenant's hot plans)
        self.cache_tenant: str | None = None
        #: guards the plan cache and lazily-created executor/arena: ``run()``
        #: is safe to call from concurrent threads on a shared session (the
        #: serving runtime's hammer case) — LRU reorder, eviction and
        #: single-instance creation all happen under this lock
        self._state_lock = threading.RLock()
        self._executor: ThreadPoolExecutor | None = None
        self._executor_workers = 0
        #: lazily-created buffer arena (``config.arena_reuse``)
        self._arena: alloc.Arena | None = None
        #: instrumentation opt-out consulted by the Amanda graph driver: an
        #: exempt session always runs its vanilla graph even while tools are
        #: active.  The serving runtime marks its vanilla-lane pooled
        #: sessions exempt so an open instrumentation lease for one tenant
        #: can never leak into another tenant's un-sampled requests.
        self.instrumentation_exempt = False
        self.run_count = 0
        self.last_run_seconds = 0.0
        #: whether the most recent run used the wavefront executor
        self.last_run_parallel = False
        #: structured executor decision of the most recent run: executor
        #: kind, fallback reason, and every serialized op with its
        #: effect-conflict reason
        self.last_serialization_report: SerializationReport | None = None
        #: the plan the most recent run executed — diagnostic access to the
        #: rematerialization schedule (``last_compiled.remat``) under a
        #: memory budget
        self.last_compiled: CompiledPlan | None = None

    @property
    def last_fallback_reason(self) -> str | None:
        """Why the most recent run stayed serial despite ``num_workers > 1``.

        Derived alias over :attr:`last_serialization_report` (which also
        lists the per-op conflicts a wavefront run serialized).
        """
        report = self.last_serialization_report
        return report.fallback_reason if report is not None else None

    def add_hook(self, hook: SessionRunHook) -> None:
        self.hooks.append(hook)

    # -- public entry ---------------------------------------------------------
    def run(self, fetches, feed_dict: dict | None = None):
        if not self.graph.finalized:
            self.graph.finalize()
        single = not isinstance(fetches, (list, tuple))
        fetch_list = [fetches] if single else list(fetches)
        feed = self._normalize_feed(feed_dict or {})

        context = RunContext(self, fetch_list, feed)
        extra: list[GraphTensor] = []
        for hook in self.hooks:
            requested = hook.before_run(context)
            if requested:
                extra.extend(requested)

        all_fetches = fetch_list + extra
        if Session.run_interceptor is not None:
            results = Session.run_interceptor(self, all_fetches, feed,
                                              self._run_impl)
        else:
            results = self._run_impl(self.graph, all_fetches, feed)

        main = results[:len(fetch_list)]
        if extra:
            context.extra_results = dict(zip((t.name for t in extra),
                                             results[len(fetch_list):]))
        for hook in self.hooks:
            hook.after_run(context, main)
        with self._state_lock:
            self.run_count += 1
        return main[0] if single else main

    # -- execution ------------------------------------------------------------
    def _normalize_feed(self, feed_dict: dict) -> dict[str, np.ndarray]:
        feed: dict[str, np.ndarray] = {}
        for key, value in feed_dict.items():
            name = key.op.name if isinstance(key, GraphTensor) else str(key)
            arr = np.asarray(value)
            if np.issubdtype(arr.dtype, np.floating):
                arr = arr.astype(np.float64)
            feed[name] = arr
        return feed

    def _plan(self, graph: Graph, fetch_ops: tuple[str, ...],
              memory_budget: int = 0,
              feed_shapes: dict[str, tuple] | None = None) -> CompiledPlan:
        # the whole lookup-or-compile is one critical section: unlocked, a
        # concurrent get/move_to_end/insert/evict on the OrderedDict corrupts
        # the LRU order (or double-evicts) the first time two run() calls
        # share a session — the serving runtime's baseline workload
        key = graph.fingerprint() + (fetch_ops,)
        if memory_budget > 0:
            # the remat schedule depends on the budget and on the feed shapes
            # (byte costs), so budget variants get distinct cache entries; the
            # fingerprint stays in key[:3] so stale-version eviction below
            # keeps working unchanged
            shapes_key = (tuple(sorted(feed_shapes.items()))
                          if feed_shapes else ())
            key = key + (memory_budget, shapes_key)
        with self._state_lock:
            compiled = self._plan_cache.get(key)
            if compiled is not None:
                self._plan_cache.move_to_end(key)
                return compiled
            # evict plans compiled for earlier versions of this same graph:
            # the rewriter mutates instrumented copies across tool epochs, and
            # stale entries would otherwise accumulate without bound
            stale = [cached for cached in self._plan_cache
                     if cached[0] == key[0] and cached[:3] != key[:3]]
            for cached in stale:
                del self._plan_cache[cached]
                self._plan_owner.pop(cached, None)
            plan = topo_plan([graph.get_operation(name) for name in fetch_ops])
            compiled = CompiledPlan(plan, fetch_ops,
                                    memory_budget=memory_budget,
                                    feed_shapes=feed_shapes)
            self._plan_cache[key] = compiled
            self._plan_owner[key] = self.cache_tenant
            # distinct fetch tuples (and distinct graphs) are evicted
            # LRU-first: a long-lived session cycling fetch sets stays bounded
            bound = max(1, config.plan_cache_size)
            while len(self._plan_cache) > bound:
                victim = self._cache_victim(bound)
                del self._plan_cache[victim]
                self._plan_owner.pop(victim, None)
            return compiled

    def _cache_victim(self, bound: int) -> tuple:
        """The plan-cache key to evict: quota-aware LRU.

        With multiple tenants charged (serving), each gets an equal share of
        the bound; the oldest entry of any tenant *over* its share goes
        first, so one tenant churning through plan variants (e.g. per-budget
        remat schedules) cannot evict another tenant's hot plans.  With one
        or no tenants this degrades to plain LRU.
        """
        owners = {owner for owner in self._plan_owner.values()
                  if owner is not None}
        if len(owners) > 1:
            quota = max(1, bound // len(owners))
            counts: dict[str, int] = {}
            for owner in self._plan_owner.values():
                if owner is not None:
                    counts[owner] = counts.get(owner, 0) + 1
            for key in self._plan_cache:  # OrderedDict: oldest first
                owner = self._plan_owner.get(key)
                if owner is not None and counts.get(owner, 0) > quota:
                    return key
        return next(iter(self._plan_cache))

    def _run_impl(self, graph: Graph, fetches: list[GraphTensor],
                  feed: dict[str, np.ndarray]) -> list[np.ndarray]:
        start = time.perf_counter()
        budget = config.memory_budget
        feed_shapes = ({name: value.shape for name, value in feed.items()}
                       if budget > 0 else None)
        compiled = self._plan(graph, tuple(t.op.name for t in fetches),
                              memory_budget=budget, feed_shapes=feed_shapes)
        self.last_compiled = compiled
        arena = None
        if config.arena_reuse:
            with self._state_lock:
                if self._arena is None:
                    self._arena = alloc.Arena()
                arena = self._arena
        runtime = _Runtime(feed, graph.variables, arena)
        workers = config.num_workers
        self.last_run_parallel = False
        report = SerializationReport("serial")
        if workers > 1:
            reason = (compiled.serial_only_reason if config.effect_analysis
                      else compiled.legacy_serial_reason)
            if reason is not None:
                report = SerializationReport("serial", fallback_reason=reason)
            elif kernel_runtime.has_ordered_subscribers:
                report = SerializationReport(
                    "serial", fallback_reason=
                    "kernel subscriber demands in-order delivery")
            else:
                self.last_run_parallel = True
                report = SerializationReport(
                    "wavefront", conflicts=compiled.races.conflicts)
        self.last_serialization_report = report
        try:
            if self.last_run_parallel:
                return self._run_wavefront(compiled, fetches, runtime, workers)
            return self._run_serial(compiled, fetches, runtime)
        finally:
            self.last_run_seconds = time.perf_counter() - start

    # -- serial executor (reference semantics) --------------------------------
    def _run_serial(self, compiled: CompiledPlan, fetches: list[GraphTensor],
                    runtime: _Runtime) -> list[np.ndarray]:
        slots: list = [None] * compiled.num_slots
        live: list[tuple[int, str] | None] = [None] * len(compiled.ops)
        arena = runtime.arena
        variables = runtime.variables
        tag_kernels = kernel_runtime.has_subscribers
        # the per-op body is _execute_op inlined (and its locals hoisted):
        # a serial run pays this loop once per op, and the call overhead
        # alone outweighs the slot table's win on small kernels
        computes = compiled.computes
        input_slots = compiled.input_slots
        output_base = compiled.output_base
        allocate = alloc.tracker.allocate
        try:
            for index, op in enumerate(compiled.ops):
                compute = computes[index]
                if compute is None:
                    compute = COMPUTE.get(op.type)
                    if compute is None:
                        raise NotImplementedError(
                            f"no compute for op type {op.type!r}")
                    computes[index] = compute
                inputs = [slots[slot] for slot in input_slots[index]]
                if tag_kernels:
                    kernel_runtime.push_tag(f"{op.type}|{op.name}")
                    try:
                        outputs = compute(op, inputs, runtime)
                    finally:
                        kernel_runtime.pop_tag()
                else:
                    outputs = compute(op, inputs, runtime)
                base = output_base[index]
                input_ids = {id(value) for value in inputs}
                nbytes = 0
                for offset, value in enumerate(outputs):
                    slots[base + offset] = value
                    if id(value) in input_ids or variables.owns(value):
                        continue  # aliased pass-throughs are not fresh
                    if arena is not None and arena.owns(value):
                        continue  # pooled: accounted at arena growth time
                    nbytes += np.asarray(value).nbytes
                scope = allocate(nbytes, scope=op.tags.get("alloc_scope"))
                live[index] = (nbytes, scope)
                if arena is not None:
                    for value in outputs:
                        arena.adopt(value)
                    self._flush_arena_growth(arena)
                if arena is not None or compiled.remat is not None:
                    # per-op last-use release: in arena mode, and under a
                    # memory budget (where the remat schedule's frees are the
                    # whole point) — otherwise the serial executor keeps
                    # every intermediate alive until the run ends (the
                    # reference semantics)
                    for released in compiled.release_after_step[index]:
                        self._release_op(released, compiled, slots, live,
                                         arena)
            return self._extract(compiled, fetches, slots, arena)
        finally:
            # an op failure (e.g. a raising instrumentation callback inside a
            # PyCall) must not leak the run's live-tensor accounting
            self._release_remaining(compiled, slots, live, arena)

    # -- wavefront executor (level-parallel, liveness-driven release) ----------
    def _run_wavefront(self, compiled: CompiledPlan,
                       fetches: list[GraphTensor], runtime: _Runtime,
                       workers: int) -> list[np.ndarray]:
        slots: list = [None] * compiled.num_slots
        live: list[tuple[int, str] | None] = [None] * len(compiled.ops)
        arena = runtime.arena
        tag_kernels = kernel_runtime.has_subscribers
        # deferred kernel events, indexed by plan position: delivered post-run
        # sorted by plan position, so profiler output is bit-identical to a
        # serial run regardless of worker count
        event_lists: list[list] | None = \
            [None] * len(compiled.ops) if tag_kernels else None
        executor = self._ensure_executor(workers)
        try:
            for index, indices in enumerate(compiled.level_indices):
                if len(indices) == 1:
                    outcomes = [self._execute_op(indices[0], compiled, slots,
                                                 runtime, tag_kernels,
                                                 defer=True)]
                else:
                    outcomes = list(executor.map(
                        lambda i: self._execute_op(i, compiled, slots,
                                                   runtime, tag_kernels,
                                                   defer=True),
                        indices))
                # bookkeeping is sequential, on the submitting thread: value
                # publication, allocation accounting and early release never
                # race with the workers (which only compute)
                for op_index, (outputs, nbytes, events) in zip(indices,
                                                               outcomes):
                    op = compiled.ops[op_index]
                    base = compiled.output_base[op_index]
                    for offset, value in enumerate(outputs):
                        slots[base + offset] = value
                    scope = alloc.tracker.allocate(
                        nbytes, scope=op.tags.get("alloc_scope"))
                    live[op_index] = (nbytes, scope)
                    if arena is not None:
                        for value in outputs:
                            arena.adopt(value)
                    if events is not None:
                        event_lists[op_index] = events
                if arena is not None:
                    self._flush_arena_growth(arena)
                for op_index in compiled.release_levels[index]:
                    self._release_op(op_index, compiled, slots, live, arena)
            if event_lists is not None:
                kernel_runtime.deliver(
                    [event for events in event_lists if events
                     for event in events])
            return self._extract(compiled, fetches, slots, arena)
        finally:
            self._release_remaining(compiled, slots, live, arena)

    # -- shared executor plumbing ----------------------------------------------
    @staticmethod
    def _flush_arena_growth(arena: alloc.Arena) -> None:
        """Account arena growth with the tracker (submitting thread only)."""
        grown = arena.take_growth_bytes()
        if grown:
            alloc.tracker.allocate(grown, scope="dnn")

    @staticmethod
    def _release_op(index: int, compiled: CompiledPlan, slots: list,
                    live: list, arena: alloc.Arena | None) -> None:
        """Free op ``index``'s accounting entry and slot values."""
        entry = live[index]
        if entry is not None:
            alloc.tracker.release(*entry)
            live[index] = None
        base = compiled.output_base[index]
        for slot in range(base, base + len(compiled.ops[index].outputs)):
            value = slots[slot]
            if value is not None and arena is not None:
                arena.release(value)
            slots[slot] = None

    def _release_remaining(self, compiled: CompiledPlan, slots: list,
                           live: list, arena: alloc.Arena | None) -> None:
        for index in range(len(compiled.ops)):
            self._release_op(index, compiled, slots, live, arena)
        if arena is not None:
            # buffers a failed compute acquired but never published
            arena.reclaim_unadopted()
            self._flush_arena_growth(arena)

    @staticmethod
    def _extract(compiled: CompiledPlan, fetches: list[GraphTensor],
                 slots: list, arena: alloc.Arena | None) -> list[np.ndarray]:
        results = []
        for t in fetches:
            value = slots[compiled.slot_base[t.op.name] + t.index]
            if arena is not None and arena.owns(value):
                # detach the result before the pool recycles its buffer
                value = np.array(value)
            results.append(value)
        return results

    def _execute_op(self, index: int, compiled: CompiledPlan, slots: list,
                    runtime: _Runtime, tag_kernels: bool, defer: bool):
        """Run one op; returns ``(outputs, fresh bytes, deferred events)``.

        Thread-safe for parallel-eligible plans: reads of ``slots`` only
        touch entries published by earlier levels, the kernel runtime's tag
        stack is per-thread, and with ``defer`` the op's kernel events are
        captured instead of delivered inline.
        """
        op = compiled.ops[index]
        compute = compiled.computes[index]
        if compute is None:
            compute = COMPUTE.get(op.type)
            if compute is None:
                raise NotImplementedError(
                    f"no compute for op type {op.type!r}")
            compiled.computes[index] = compute
        inputs = [slots[slot] for slot in compiled.input_slots[index]]
        events: list | None = None
        if tag_kernels:
            kernel_runtime.push_tag(f"{op.type}|{op.name}")
            try:
                if defer:
                    events = []
                    with kernel_runtime.capture(events):
                        outputs = compute(op, inputs, runtime)
                else:
                    outputs = compute(op, inputs, runtime)
            finally:
                kernel_runtime.pop_tag()
        else:
            outputs = compute(op, inputs, runtime)
        input_ids = {id(v) for v in inputs}
        arena = runtime.arena
        variables = runtime.variables
        nbytes = 0
        for o in outputs:
            if id(o) in input_ids or variables.owns(o):
                # aliased pass-throughs and store-backed reads (a Variable
                # compute returns the stored array itself) are not fresh
                continue
            if arena is not None and arena.owns(o):
                continue  # pooled buffers are accounted at arena growth time
            nbytes += np.asarray(o).nbytes
        return outputs, nbytes, events

    def _ensure_executor(self, workers: int) -> ThreadPoolExecutor:
        """The session's (lazily created, size-keyed) worker pool.

        Lock-guarded so concurrent runs on a shared session create exactly
        one pool.  (Concurrent runs requesting *different* worker counts
        would still tear down a pool the other run is using — callers that
        share a session across threads should pin ``num_workers``.)
        """
        with self._state_lock:
            if self._executor is None or self._executor_workers != workers:
                if self._executor is not None:
                    self._executor.shutdown(wait=False, cancel_futures=True)
                self._executor = ThreadPoolExecutor(
                    max_workers=workers, thread_name_prefix="amanda-wavefront")
                self._executor_workers = workers
            return self._executor

    # -- lifecycle -------------------------------------------------------------
    def close(self) -> None:
        """Release the worker pool, pooled arena buffers and cached plans.

        Idempotent; the session stays usable afterwards (the pool and arena
        are recreated lazily on the next run).  Prefer the context-manager
        form: ``with Session(graph) as sess: ...``.
        """
        with self._state_lock:
            if self._executor is not None:
                self._executor.shutdown(wait=True, cancel_futures=True)
                self._executor = None
                self._executor_workers = 0
            if self._arena is not None:
                freed = self._arena.drain()
                if freed:
                    alloc.tracker.release(freed, "dnn")
                self._arena = None
            self._plan_cache.clear()
            self._plan_owner.clear()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            # interpreter teardown may have dismantled our dependencies
            pass
